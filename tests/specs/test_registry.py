"""Tests for the component registries."""

import pytest

from repro.blocking import IdOverlapBlocking, TokenOverlapBlocking
from repro.core.cleanup import gralmatch_cleanup
from repro.registry import (
    BLOCKINGS,
    CLEANUPS,
    MATCHERS,
    ComponentRegistry,
    RegistryError,
    register_blocking,
)


class TestBuiltinRegistrations:
    def test_blockings_are_registered(self):
        assert {"id_overlap", "token_overlap", "issuer_match", "combined"} <= set(
            BLOCKINGS.names()
        )

    def test_matcher_kinds_are_registered(self):
        assert {"transformer", "logistic", "id-overlap"} <= set(MATCHERS.names())

    def test_cleanup_strategies_are_registered(self):
        assert {"gralmatch", "bridge_removal", "adaptive"} <= set(CLEANUPS.names())

    def test_lookup_returns_the_component_itself(self):
        assert BLOCKINGS.get("id_overlap") is IdOverlapBlocking
        assert CLEANUPS.get("gralmatch") is gralmatch_cleanup

    def test_create_passes_params(self):
        blocking = BLOCKINGS.create("token_overlap", top_n=7)
        assert isinstance(blocking, TokenOverlapBlocking)
        assert blocking.top_n == 7


class TestRegistryErrors:
    def test_unknown_name_lists_registered_names(self):
        with pytest.raises(RegistryError) as excinfo:
            BLOCKINGS.get("does_not_exist")  # repro-lint: disable=registry-consistency -- exercising the unknown-name error path
        message = str(excinfo.value)
        assert "unknown blocking 'does_not_exist'" in message
        for name in ("'id_overlap'", "'token_overlap'", "'issuer_match'"):
            assert name in message

    def test_duplicate_name_is_rejected(self):
        with pytest.raises(RegistryError, match="already registered"):

            @register_blocking("id_overlap")
            class Shadow:  # pragma: no cover - never constructed
                pass

    def test_shadowing_a_builtin_fails_in_a_fresh_process(self):
        # register() loads the builtin modules before the duplicate check,
        # so shadowing fails at the offending registration even when
        # nothing else has touched the registry yet — not later from
        # inside an unrelated lookup.
        import subprocess
        import sys
        from pathlib import Path

        src = str(Path(__file__).resolve().parents[2] / "src")
        code = (
            "import sys; sys.path.insert(0, %r)\n"
            "from repro.registry import RegistryError, register_blocking\n"
            "try:\n"
            "    @register_blocking('token_overlap')\n"
            "    class Mine: pass\n"
            "except RegistryError:\n"
            "    print('REJECTED')\n"
        ) % src
        result = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, check=True
        )
        assert "REJECTED" in result.stdout

    def test_invalid_params_mention_the_component(self):
        with pytest.raises(RegistryError, match="invalid params for blocking 'token_overlap'"):
            BLOCKINGS.create("token_overlap", not_a_param=1)

    def test_empty_name_is_rejected(self):
        registry = ComponentRegistry("widget")
        with pytest.raises(RegistryError, match="non-empty string"):
            registry.register("")


class TestRegisterAndUnregister:
    def test_register_create_unregister_round_trip(self):
        registry = ComponentRegistry("widget")

        @registry.register("custom")
        class Widget:
            def __init__(self, size: int = 1) -> None:
                self.size = size

        assert "custom" in registry
        assert registry.create("custom", size=3).size == 3
        registry.unregister("custom")
        assert "custom" not in registry
        with pytest.raises(RegistryError):
            registry.unregister("custom")

    def test_custom_blocking_is_buildable_from_a_spec(self):
        from repro.specs import ComponentSpec, PipelineSpec

        @register_blocking("test_null_blocking")
        class NullBlocking:
            def candidate_pairs(self, dataset):
                return []

        try:
            spec = PipelineSpec(blocking=(ComponentSpec("test_null_blocking"),))
            blocking = spec.build_blocking()
            assert isinstance(blocking, NullBlocking)
        finally:
            BLOCKINGS.unregister("test_null_blocking")
