"""Spec round-tripping: dataclass ⇄ JSON/TOML ⇄ runnable pipeline.

The load-bearing property: a spec serialised to JSON or TOML, parsed back
and resolved with ``build_pipeline`` produces *identical run artefacts* to
the directly constructed pipeline on a real (small, generated) dataset.
"""

import pytest

from repro.api import build_pipeline, load_spec
from repro.blocking import CombinedBlocking, IdOverlapBlocking, TokenOverlapBlocking
from repro.core.cleanup import CleanupConfig
from repro.core.pipeline import EntityGroupMatchingPipeline
from repro.core.precleanup import PreCleanupConfig
from repro.datagen import GenerationConfig, generate_benchmark
from repro.matching import LogisticRegressionMatcher
from repro.matching.pairs import as_record_pairs, build_labeled_pairs
from repro.runtime import RuntimeConfig
from repro.specs import (
    CleanupSpec,
    ComponentSpec,
    ExperimentSpec,
    PipelineSpec,
    PreCleanupSpec,
    RuntimeSpec,
    SpecValidationError,
    StateSpec,
)


def full_pipeline_spec() -> PipelineSpec:
    return PipelineSpec(
        blocking=(
            ComponentSpec("id_overlap"),
            ComponentSpec("token_overlap", {"top_n": 3}),
        ),
        cleanup=CleanupSpec(strategy="gralmatch", gamma=20, mu=4),
        pre_cleanup=PreCleanupSpec(enabled=True, max_component_size=30),
        runtime=RuntimeSpec(workers=2, batch_size=64, executor="thread",
                            blocking_shards=3, profile_cache=False,
                            warm_pool=False),
        state=StateSpec(dir="state/companies", autosave=False),
    )


def full_experiment_spec() -> ExperimentSpec:
    return ExperimentSpec(
        dataset="data/companies.csv",
        kind="companies",
        model="logistic",
        epochs=2,
        seed=1,
        negative_ratio=4,
        token_top_n=3,
        pipeline=full_pipeline_spec(),
    )


class TestSerializationRoundTrip:
    @pytest.mark.parametrize("fmt", ["json", "toml"])
    def test_pipeline_spec_round_trips(self, fmt):
        spec = full_pipeline_spec()
        text = getattr(spec, f"to_{fmt}")()
        assert getattr(PipelineSpec, f"from_{fmt}")(text) == spec

    @pytest.mark.parametrize("fmt", ["json", "toml"])
    def test_experiment_spec_round_trips(self, fmt):
        spec = full_experiment_spec()
        text = getattr(spec, f"to_{fmt}")()
        assert getattr(ExperimentSpec, f"from_{fmt}")(text) == spec

    @pytest.mark.parametrize("fmt", ["json", "toml"])
    def test_defaults_round_trip(self, fmt):
        spec = ExperimentSpec()
        text = getattr(spec, f"to_{fmt}")()
        assert getattr(ExperimentSpec, f"from_{fmt}")(text) == spec

    def test_gamma_infinity_round_trips(self):
        spec = PipelineSpec(
            blocking=(ComponentSpec("id_overlap"),),
            cleanup=CleanupSpec(gamma="inf", mu=4),
        )
        parsed = PipelineSpec.from_toml(spec.to_toml())
        assert parsed == spec
        assert parsed.build_cleanup_config().gamma is None

    def test_load_spec_from_files(self, tmp_path):
        spec = full_experiment_spec()
        toml_path = tmp_path / "exp.toml"
        toml_path.write_text(spec.to_toml())
        json_path = tmp_path / "exp.json"
        json_path.write_text(spec.to_json())
        assert load_spec(toml_path) == spec
        assert load_spec(json_path) == spec

    def test_load_spec_rejects_unknown_suffix(self, tmp_path):
        path = tmp_path / "exp.yaml"
        path.write_text("experiment:\n")
        with pytest.raises(SpecValidationError, match="unsupported spec format"):
            load_spec(path)


class TestLoadSpecFailureModes:
    """The satellite: every load failure is a SpecValidationError naming the
    path and the supported extensions — never a raw traceback."""

    def test_missing_file_names_path_and_extensions(self, tmp_path):
        path = tmp_path / "nowhere.toml"
        with pytest.raises(SpecValidationError) as excinfo:
            load_spec(path)
        message = str(excinfo.value)
        assert str(path) in message
        assert "spec file not found" in message
        assert ".toml or .json" in message
        assert not isinstance(excinfo.value, FileNotFoundError)

    def test_directory_is_rejected_not_traceback(self, tmp_path):
        with pytest.raises(SpecValidationError) as excinfo:
            load_spec(tmp_path)
        message = str(excinfo.value)
        assert str(tmp_path) in message
        assert "directory" in message
        assert ".toml or .json" in message

    def test_unknown_suffix_lists_supported_extensions(self, tmp_path):
        path = tmp_path / "exp.ini"
        path.write_text("[experiment]\n")
        with pytest.raises(SpecValidationError) as excinfo:
            load_spec(path)
        message = str(excinfo.value)
        assert "'.ini'" in message
        assert ".toml or .json" in message

    def test_suffixless_file_names_the_file(self, tmp_path):
        path = tmp_path / "config"
        path.write_text("{}")
        with pytest.raises(SpecValidationError, match="unsupported spec format"):
            load_spec(path)

    def test_suffix_dispatch_is_case_insensitive(self, tmp_path):
        spec = full_experiment_spec()
        path = tmp_path / "EXP.TOML"
        path.write_text(spec.to_toml())
        assert load_spec(path) == spec


class TestValidationErrorsNameTheKey:
    @pytest.mark.parametrize(
        "document,key",
        [
            ('[experiment]\nepochs = "three"\n', "experiment.epochs"),
            ("[experiment]\nepochs = 0\n", "experiment.epochs"),
            ('[experiment]\nknid = "companies"\n', "experiment.knid"),
            ('[experiment]\nkind = "galaxies"\n', "experiment.kind"),
            ("[[pipeline.blocking]]\nparams = {}\n", "pipeline.blocking[0].name"),
            ("[[pipeline.blocking]]\ntop_n = 5\n", "pipeline.blocking[0].top_n"),
            ('[pipeline.cleanup]\ngamma = "huge"\n', "pipeline.cleanup.gamma"),
            ("[pipeline.cleanup]\nmu = 0\n", "pipeline.cleanup.mu"),
            ('[pipeline.runtime]\nexecutor = "fiber"\n', "pipeline.runtime.executor"),
            ("[pipeline.runtime]\nworkers = -1\n", "pipeline.runtime.workers"),
            ("[pipeline.runtime]\nblocking_shards = 0\n", "pipeline.runtime.blocking_shards"),
            ('[pipeline.runtime]\nblocking_shards = "all"\n', "pipeline.runtime.blocking_shards"),
            ('[pipeline.runtime]\nprofile_cache = "yes"\n', "pipeline.runtime.profile_cache"),
            ("[pipeline.runtime]\nprofile_cache = 1\n", "pipeline.runtime.profile_cache"),
            ('[pipeline.runtime]\nwarm_pool = "yes"\n', "pipeline.runtime.warm_pool"),
            ("[pipeline.runtime]\nwarm_pool = 0\n", "pipeline.runtime.warm_pool"),
            ("[pipeline.state]\ndir = 5\n", "pipeline.state.dir"),
            ('[pipeline.state]\nautosave = "yes"\n', "pipeline.state.autosave"),
            ('[pipeline.state]\ndirectory = "x"\n', "pipeline.state.directory"),
        ],
    )
    def test_offending_key_is_named(self, document, key):
        with pytest.raises(SpecValidationError) as excinfo:
            ExperimentSpec.from_toml(document)
        assert str(excinfo.value).startswith(key + ":")
        assert excinfo.value.key == key

    def test_second_blocking_entry_is_indexed(self):
        document = (
            '[[pipeline.blocking]]\nname = "id_overlap"\n'
            "[[pipeline.blocking]]\nnme = 5\n"
        )
        with pytest.raises(SpecValidationError, match=r"pipeline\.blocking\[1\]"):
            ExperimentSpec.from_toml(document)


class TestBuildPipelineEquivalence:
    @pytest.fixture(scope="class")
    def small_setup(self):
        benchmark = generate_benchmark(
            GenerationConfig(num_entities=30, num_sources=4, seed=11,
                             acquisition_rate=0.05, merger_rate=0.05)
        )
        companies = benchmark.companies
        pairs = build_labeled_pairs(companies, negative_ratio=3, seed=0)
        record_pairs, labels = as_record_pairs(pairs)
        matcher = LogisticRegressionMatcher(num_iterations=100).fit(record_pairs, labels)
        return companies, matcher

    @pytest.mark.parametrize("fmt", ["json", "toml"])
    def test_round_tripped_spec_runs_identically(self, small_setup, fmt):
        companies, matcher = small_setup

        direct = EntityGroupMatchingPipeline(
            matcher=matcher,
            blocking=CombinedBlocking(
                [IdOverlapBlocking(), TokenOverlapBlocking(top_n=3)]
            ),
            cleanup_config=CleanupConfig(gamma=20, mu=4),
            pre_cleanup_config=PreCleanupConfig(enabled=True, max_component_size=30),
            runtime=RuntimeConfig(workers=2, batch_size=64, executor="thread",
                                  blocking_shards=3, profile_cache=False,
                                  warm_pool=False),
        )
        spec = full_pipeline_spec()
        text = getattr(spec, f"to_{fmt}")()
        parsed = getattr(PipelineSpec, f"from_{fmt}")(text)
        from_spec = build_pipeline(parsed, matcher)

        expected = direct.run(companies)
        observed = from_spec.run(companies)

        assert observed.candidates == expected.candidates
        assert observed.decisions == expected.decisions
        assert observed.positive_edges == expected.positive_edges
        assert observed.pre_cleanup_removed == expected.pre_cleanup_removed
        assert observed.cleanup_report.removed_edges == expected.cleanup_report.removed_edges
        assert observed.groups.groups == expected.groups.groups
        assert observed.pre_cleanup_groups.groups == expected.pre_cleanup_groups.groups

    def test_experiment_spec_build_pipeline_injects_token_top_n(self, small_setup):
        _, matcher = small_setup
        spec = ExperimentSpec(kind="companies", token_top_n=3)
        pipeline = build_pipeline(spec, matcher)
        assert isinstance(pipeline.blocking, CombinedBlocking)
        token = pipeline.blocking.blockings[1]
        assert isinstance(token, TokenOverlapBlocking)
        assert token.top_n == 3

    def test_experiment_spec_derives_cleanup_from_dataset(self, small_setup):
        companies, matcher = small_setup
        pipeline = build_pipeline(ExperimentSpec(kind="companies"), matcher,
                                  dataset=companies)
        assert pipeline.cleanup_config.mu == len(companies.sources)
        assert pipeline.cleanup_config.gamma == 5 * len(companies.sources)

    def test_gamma_only_cleanup_derives_mu_from_dataset(self, small_setup):
        # A partially-set [pipeline.cleanup] must still derive the unset
        # threshold from the dataset: gamma=4 is valid on a 4-source dataset
        # (mu=4), and must not fall back to the library default mu=5.
        companies, _ = small_setup
        from repro.evaluation.experiment import EntityGroupMatchingExperiment

        spec = ExperimentSpec(
            kind="companies", model="logistic", epochs=1,
            pipeline=PipelineSpec(cleanup=CleanupSpec(gamma=4)),
        )
        experiment = EntityGroupMatchingExperiment(companies, spec.to_experiment_config())
        config = experiment.build_cleanup_config()
        assert config.mu == len(companies.sources) == 4
        assert config.gamma == 4

    def test_gamma_infinity_via_experiment_spec(self, small_setup):
        companies, _ = small_setup
        from repro.evaluation.experiment import EntityGroupMatchingExperiment

        spec = ExperimentSpec(
            kind="companies", model="logistic",
            pipeline=PipelineSpec(cleanup=CleanupSpec(gamma="inf")),
        )
        experiment = EntityGroupMatchingExperiment(companies, spec.to_experiment_config())
        config = experiment.build_cleanup_config()
        assert config.gamma is None
        assert config.mu == len(companies.sources)

    def test_unknown_model_is_a_named_spec_error(self):
        with pytest.raises(SpecValidationError, match="experiment.model") as excinfo:
            ExperimentSpec(model="distilbert")
        assert "available" in str(excinfo.value)


class TestStageEditing:
    def test_insert_and_replace_stages(self, tmp_path):
        from repro.core.stages import PipelineStage
        from repro.matching import IdOverlapMatcher

        class AuditStage(PipelineStage):
            name = "audit"

            def run(self, context):
                context.extras["audited_candidates"] = len(context.candidates)

        pipeline = EntityGroupMatchingPipeline(
            matcher=IdOverlapMatcher(),
            blocking=IdOverlapBlocking(),
        )
        assert pipeline.stage_names() == [
            "blocking",
            "pairwise_matching",
            "pre_cleanup",
            "gralmatch_cleanup",
            "grouping",
        ]
        pipeline.insert_after("blocking", AuditStage())
        assert pipeline.stage_names()[1] == "audit"

        benchmark = generate_benchmark(
            GenerationConfig(num_entities=10, num_sources=3, seed=5)
        )
        result = pipeline.run(benchmark.companies)
        assert "audit" in result.timings
        assert result.groups is not None

    def test_unknown_stage_name_raises(self):
        from repro.matching import IdOverlapMatcher

        pipeline = EntityGroupMatchingPipeline(
            matcher=IdOverlapMatcher(), blocking=IdOverlapBlocking()
        )
        with pytest.raises(KeyError, match="no stage named 'nope'"):
            pipeline.insert_before("nope", object())
