"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.datagen import GenerationConfig, generate_benchmark
from repro.datagen.io import read_dataset_csv, write_dataset_csv


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate"])
        assert args.command == "generate"
        assert args.entities == 1000
        assert args.sources == 5

    def test_match_arguments(self):
        args = build_parser().parse_args(
            ["match", "data.csv", "--kind", "securities", "--model", "logistic"]
        )
        assert args.kind == "securities"
        assert args.model == "logistic"

    def test_match_runtime_defaults_are_serial(self):
        args = build_parser().parse_args(["match", "data.csv"])
        assert args.workers == 1
        assert args.batch_size == 2048
        assert args.executor == "process"
        assert args.blocking_shards == 1
        assert args.profile_cache is True
        assert args.warm_pool is True

    def test_match_runtime_flags(self):
        args = build_parser().parse_args([
            "match", "data.csv", "--workers", "4",
            "--batch-size", "512", "--executor", "thread",
            "--blocking-shards", "8", "--no-profile-cache",
            "--no-warm-pool",
        ])
        assert args.workers == 4
        assert args.batch_size == 512
        assert args.executor == "thread"
        assert args.blocking_shards == 8
        assert args.profile_cache is False
        assert args.warm_pool is False

    def test_run_runtime_flags_default_to_unset(self):
        # `run` must distinguish "not passed" from any concrete value so the
        # spec file's [pipeline.runtime] survives unless overridden.
        args = build_parser().parse_args(["run", "config.toml"])
        assert args.workers is None
        assert args.batch_size is None
        assert args.executor is None
        assert args.blocking_shards is None
        assert args.profile_cache is None
        assert args.warm_pool is None

    def test_run_accepts_runtime_flags(self):
        args = build_parser().parse_args([
            "run", "config.toml", "--workers", "3",
            "--batch-size", "128", "--executor", "thread",
            "--blocking-shards", "4", "--profile-cache",
            "--warm-pool",
        ])
        assert args.workers == 3
        assert args.batch_size == 128
        assert args.executor == "thread"
        assert args.blocking_shards == 4
        assert args.profile_cache is True
        assert args.warm_pool is True

    @pytest.mark.parametrize("flag,value", [
        ("--workers", "0"),
        ("--workers", "-2"),
        ("--workers", "two"),
        ("--batch-size", "0"),
        ("--batch-size", "-16"),
        ("--batch-size", "1.5"),
    ])
    def test_invalid_runtime_values_fail_with_clear_error(self, flag, value, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["match", "data.csv", flag, value])
        assert excinfo.value.code == 2
        assert "expected a positive integer" in capsys.readouterr().err

    def test_unknown_executor_is_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(
                ["match", "data.csv", "--workers", "2", "--executor", "fiber"]
            )
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err


class TestGenerateCommand:
    def test_writes_csv_files(self, tmp_path, capsys):
        exit_code = main([
            "generate", "--entities", "25", "--sources", "3",
            "--seed", "5", "--output-dir", str(tmp_path),
        ])
        assert exit_code == 0
        companies = read_dataset_csv(tmp_path / "companies.csv")
        securities = read_dataset_csv(tmp_path / "securities.csv")
        assert len(companies) > 0
        assert len(securities) > 0
        output = capsys.readouterr().out
        assert "company records" in output

    def test_wdc_flag(self, tmp_path):
        exit_code = main([
            "generate", "--entities", "20", "--sources", "3",
            "--output-dir", str(tmp_path), "--wdc",
        ])
        assert exit_code == 0
        assert (tmp_path / "wdc_products.csv").exists()


class TestStatsCommand:
    def test_prints_table1_row(self, tmp_path, capsys):
        benchmark = generate_benchmark(GenerationConfig(num_entities=20, num_sources=3, seed=2))
        path = write_dataset_csv(benchmark.companies, tmp_path / "companies.csv")
        exit_code = main(["stats", str(path)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "# of Records" in output
        assert "# of Matches" in output

    def test_missing_file(self, tmp_path, capsys):
        exit_code = main(["stats", str(tmp_path / "missing.csv")])
        assert exit_code == 2
        assert "not found" in capsys.readouterr().err


class TestMatchCommand:
    def test_end_to_end_with_logistic_model(self, tmp_path, capsys):
        benchmark = generate_benchmark(GenerationConfig(num_entities=40, num_sources=3, seed=3))
        path = write_dataset_csv(benchmark.companies, tmp_path / "companies.csv")
        exit_code = main([
            "match", str(path), "--kind", "companies",
            "--model", "logistic", "--epochs", "1",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Post F1" in output

    def test_missing_file(self, tmp_path):
        assert main(["match", str(tmp_path / "missing.csv")]) == 2

    def test_parallel_match_runs_end_to_end(self, tmp_path, capsys):
        benchmark = generate_benchmark(GenerationConfig(num_entities=40, num_sources=3, seed=3))
        path = write_dataset_csv(benchmark.companies, tmp_path / "companies.csv")
        exit_code = main([
            "match", str(path), "--kind", "companies",
            "--model", "logistic", "--epochs", "1",
            "--workers", "2", "--batch-size", "64", "--executor", "thread",
        ])
        assert exit_code == 0
        assert "Post F1" in capsys.readouterr().out

    def test_match_missing_file_message_matches_stats(self, tmp_path, capsys):
        # `_require_dataset` is shared, so the two commands must report a
        # missing dataset with byte-identical messages.
        missing = tmp_path / "missing.csv"
        assert main(["stats", str(missing)]) == 2
        stats_err = capsys.readouterr().err
        assert main(["match", str(missing)]) == 2
        match_err = capsys.readouterr().err
        assert stats_err == match_err

    def test_parallel_match_reproduces_serial_output(self, tmp_path, capsys):
        benchmark = generate_benchmark(GenerationConfig(num_entities=30, num_sources=3, seed=6))
        path = write_dataset_csv(benchmark.companies, tmp_path / "companies.csv")
        base = ["match", str(path), "--kind", "companies", "--model", "logistic",
                "--epochs", "1"]
        assert main(base) == 0
        serial_output = capsys.readouterr().out
        assert main(base + ["--workers", "2", "--batch-size", "32",
                            "--executor", "thread"]) == 0
        parallel_output = capsys.readouterr().out

        def score_cells(text):
            # All table cells except the wall-clock "Inference (s)" column.
            return [
                [cell.strip() for cell in line.split("|")][:-1]
                for line in text.splitlines()
                if "|" in line
            ]

        assert score_cells(parallel_output) == score_cells(serial_output)


def _score_cells(text):
    """All table cells except the wall-clock "Inference (s)" column."""
    return [
        [cell.strip() for cell in line.split("|")][:-1]
        for line in text.splitlines()
        if "|" in line
    ]


class TestRunCommand:
    def _write_dataset(self, tmp_path):
        benchmark = generate_benchmark(
            GenerationConfig(num_entities=30, num_sources=3, seed=6)
        )
        return write_dataset_csv(benchmark.companies, tmp_path / "companies.csv")

    def test_run_matches_equivalent_match_invocation(self, tmp_path, capsys):
        dataset = self._write_dataset(tmp_path)
        config = tmp_path / "experiment.toml"
        config.write_text(
            "[experiment]\n"
            f'dataset = "{dataset}"\n'
            'kind = "companies"\n'
            'model = "logistic"\n'
            "epochs = 1\n"
            "seed = 0\n"
        )
        assert main(["run", str(config)]) == 0
        run_output = capsys.readouterr().out
        assert main([
            "match", str(dataset), "--kind", "companies",
            "--model", "logistic", "--epochs", "1", "--seed", "0",
        ]) == 0
        match_output = capsys.readouterr().out
        assert _score_cells(run_output) == _score_cells(match_output)

    def test_run_json_spec(self, tmp_path, capsys):
        dataset = self._write_dataset(tmp_path)
        config = tmp_path / "experiment.json"
        config.write_text(
            '{"experiment": {"dataset": "%s", "kind": "companies", '
            '"model": "logistic", "epochs": 1}}' % dataset
        )
        assert main(["run", str(config)]) == 0
        assert "Post F1" in capsys.readouterr().out

    def test_run_dataset_flag_overrides_spec(self, tmp_path, capsys):
        dataset = self._write_dataset(tmp_path)
        config = tmp_path / "experiment.toml"
        config.write_text(
            '[experiment]\ndataset = "does/not/exist.csv"\n'
            'kind = "companies"\nmodel = "logistic"\nepochs = 1\n'
        )
        assert main(["run", str(config), "--dataset", str(dataset)]) == 0
        assert "Post F1" in capsys.readouterr().out

    def test_run_missing_config(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "nope.toml")]) == 2
        assert "spec file not found" in capsys.readouterr().err

    def test_run_invalid_spec_names_the_key(self, tmp_path, capsys):
        config = tmp_path / "experiment.toml"
        config.write_text('[experiment]\nepochs = "three"\n')
        assert main(["run", str(config)]) == 2
        assert "experiment.epochs" in capsys.readouterr().err

    def test_run_unknown_model_names_the_key(self, tmp_path, capsys):
        config = tmp_path / "experiment.toml"
        config.write_text('[experiment]\nmodel = "distilbert"\n')
        assert main(["run", str(config)]) == 2
        err = capsys.readouterr().err
        assert "experiment.model" in err and "available" in err

    def test_match_unknown_model_exits_cleanly(self, tmp_path, capsys):
        benchmark = generate_benchmark(GenerationConfig(num_entities=10, num_sources=3, seed=1))
        path = write_dataset_csv(benchmark.companies, tmp_path / "companies.csv")
        assert main(["match", str(path), "--model", "distilbert"]) == 2
        err = capsys.readouterr().err
        assert "experiment.model" in err and "unknown model" in err

    def test_run_without_any_dataset(self, tmp_path, capsys):
        config = tmp_path / "experiment.toml"
        config.write_text('[experiment]\nkind = "companies"\nmodel = "logistic"\n')
        assert main(["run", str(config)]) == 2
        assert "no experiment.dataset" in capsys.readouterr().err

    def test_run_missing_dataset_file(self, tmp_path, capsys):
        config = tmp_path / "experiment.toml"
        config.write_text(
            '[experiment]\ndataset = "does/not/exist.csv"\n'
            'kind = "companies"\nmodel = "logistic"\n'
        )
        assert main(["run", str(config)]) == 2
        assert "dataset file not found" in capsys.readouterr().err


class TestRunRuntimeOverrides:
    SPEC = (
        '[experiment]\nkind = "companies"\nmodel = "logistic"\nepochs = 1\n'
        "[pipeline.runtime]\nworkers = 2\nbatch_size = 32\nexecutor = \"thread\"\n"
    )

    def _overridden_runtime(self, tmp_path, extra_argv):
        from repro.api import load_spec
        from repro.cli import _apply_runtime_overrides

        config = tmp_path / "experiment.toml"
        config.write_text(self.SPEC)
        args = build_parser().parse_args(["run", str(config)] + extra_argv)
        return _apply_runtime_overrides(load_spec(config), args).pipeline.runtime

    def test_no_flags_keep_spec_values(self, tmp_path):
        runtime = self._overridden_runtime(tmp_path, [])
        assert runtime.workers == 2
        assert runtime.batch_size == 32
        assert runtime.executor == "thread"
        assert runtime.blocking_shards == 1

    def test_cli_flags_beat_spec_values(self, tmp_path):
        runtime = self._overridden_runtime(
            tmp_path, ["--workers", "1", "--blocking-shards", "4"]
        )
        # Overridden by the CLI:
        assert runtime.workers == 1
        assert runtime.blocking_shards == 4
        # Untouched flags keep the spec file's values, not the defaults:
        assert runtime.batch_size == 32
        assert runtime.executor == "thread"

    def test_profile_cache_flag_beats_spec_value(self, tmp_path):
        from repro.api import load_spec
        from repro.cli import _apply_runtime_overrides

        config = tmp_path / "experiment.toml"
        config.write_text(self.SPEC + "profile_cache = false\n")
        # No flag: the spec file's opt-out survives.
        args = build_parser().parse_args(["run", str(config)])
        runtime = _apply_runtime_overrides(load_spec(config), args).pipeline.runtime
        assert runtime.profile_cache is False
        # Explicit flag: CLI beats spec.
        args = build_parser().parse_args(["run", str(config), "--profile-cache"])
        runtime = _apply_runtime_overrides(load_spec(config), args).pipeline.runtime
        assert runtime.profile_cache is True

    def test_warm_pool_flag_beats_spec_value(self, tmp_path):
        from repro.api import load_spec
        from repro.cli import _apply_runtime_overrides

        config = tmp_path / "experiment.toml"
        config.write_text(self.SPEC + "warm_pool = false\n")
        # No flag: the spec file's opt-out survives.
        args = build_parser().parse_args(["run", str(config)])
        runtime = _apply_runtime_overrides(load_spec(config), args).pipeline.runtime
        assert runtime.warm_pool is False
        # Explicit flag: CLI beats spec.
        args = build_parser().parse_args(["run", str(config), "--warm-pool"])
        runtime = _apply_runtime_overrides(load_spec(config), args).pipeline.runtime
        assert runtime.warm_pool is True

    def test_sharded_run_reproduces_plain_run(self, tmp_path, capsys):
        benchmark = generate_benchmark(
            GenerationConfig(num_entities=30, num_sources=3, seed=6)
        )
        dataset = write_dataset_csv(benchmark.companies, tmp_path / "companies.csv")
        config = tmp_path / "experiment.toml"
        config.write_text(
            "[experiment]\n"
            f'dataset = "{dataset}"\n'
            'kind = "companies"\nmodel = "logistic"\nepochs = 1\nseed = 0\n'
        )
        assert main(["run", str(config)]) == 0
        plain_output = capsys.readouterr().out
        assert main([
            "run", str(config), "--workers", "2", "--executor", "thread",
            "--blocking-shards", "3",
        ]) == 0
        sharded_output = capsys.readouterr().out
        assert _score_cells(sharded_output) == _score_cells(plain_output)
