"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.datagen import GenerationConfig, generate_benchmark
from repro.datagen.io import read_dataset_csv, write_dataset_csv


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate"])
        assert args.command == "generate"
        assert args.entities == 1000
        assert args.sources == 5

    def test_match_arguments(self):
        args = build_parser().parse_args(
            ["match", "data.csv", "--kind", "securities", "--model", "logistic"]
        )
        assert args.kind == "securities"
        assert args.model == "logistic"


class TestGenerateCommand:
    def test_writes_csv_files(self, tmp_path, capsys):
        exit_code = main([
            "generate", "--entities", "25", "--sources", "3",
            "--seed", "5", "--output-dir", str(tmp_path),
        ])
        assert exit_code == 0
        companies = read_dataset_csv(tmp_path / "companies.csv")
        securities = read_dataset_csv(tmp_path / "securities.csv")
        assert len(companies) > 0
        assert len(securities) > 0
        output = capsys.readouterr().out
        assert "company records" in output

    def test_wdc_flag(self, tmp_path):
        exit_code = main([
            "generate", "--entities", "20", "--sources", "3",
            "--output-dir", str(tmp_path), "--wdc",
        ])
        assert exit_code == 0
        assert (tmp_path / "wdc_products.csv").exists()


class TestStatsCommand:
    def test_prints_table1_row(self, tmp_path, capsys):
        benchmark = generate_benchmark(GenerationConfig(num_entities=20, num_sources=3, seed=2))
        path = write_dataset_csv(benchmark.companies, tmp_path / "companies.csv")
        exit_code = main(["stats", str(path)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "# of Records" in output
        assert "# of Matches" in output

    def test_missing_file(self, tmp_path, capsys):
        exit_code = main(["stats", str(tmp_path / "missing.csv")])
        assert exit_code == 2
        assert "not found" in capsys.readouterr().err


class TestMatchCommand:
    def test_end_to_end_with_logistic_model(self, tmp_path, capsys):
        benchmark = generate_benchmark(GenerationConfig(num_entities=40, num_sources=3, seed=3))
        path = write_dataset_csv(benchmark.companies, tmp_path / "companies.csv")
        exit_code = main([
            "match", str(path), "--kind", "companies",
            "--model", "logistic", "--epochs", "1",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Post F1" in output

    def test_missing_file(self, tmp_path):
        assert main(["match", str(tmp_path / "missing.csv")]) == 2
