"""CLI surface of the observability layer: ``--trace``, ``repro report``,
``--chrome`` and the traced-equals-untraced contract at the command level.
"""

import json

import pytest

from repro.cli import build_parser, main
from repro.datagen import GenerationConfig, generate_benchmark
from repro.datagen.io import write_dataset_csv
from repro.obs import TRACE_FORMAT_VERSION, read_trace_jsonl


@pytest.fixture(scope="module")
def dataset_csv(tmp_path_factory):
    root = tmp_path_factory.mktemp("report-cli")
    companies = generate_benchmark(
        GenerationConfig(num_entities=30, num_sources=3, seed=7)
    ).companies
    return write_dataset_csv(companies, root / "companies.csv")


def run_match(dataset_csv, extra):
    return main([
        "match", str(dataset_csv), "--kind", "companies",
        "--model", "logistic", "--epochs", "1", *extra,
    ])


class TestTraceFlag:
    def test_parser_accepts_trace_on_match_run_and_ingest(self):
        parser = build_parser()
        for argv in (
            ["match", "d.csv", "--trace", "out.jsonl"],
            ["run", "config.toml", "--trace", "out.jsonl"],
            ["ingest", "d.csv", "--trace", "out.jsonl"],
        ):
            assert parser.parse_args(argv).trace == "out.jsonl"
        assert parser.parse_args(["match", "d.csv"]).trace is None

    def test_match_writes_a_versioned_jsonl_trace(self, dataset_csv, tmp_path,
                                                  capsys):
        trace_path = tmp_path / "run.jsonl"
        assert run_match(dataset_csv, ["--trace", str(trace_path)]) == 0
        capsys.readouterr()
        first = json.loads(trace_path.read_text().splitlines()[0])
        assert first == {"type": "trace", "version": TRACE_FORMAT_VERSION}
        trace = read_trace_jsonl(trace_path)
        (run_span,) = trace.find("pipeline.run", kind="run")
        assert any(s.kind == "stage" for s in run_span.children)

    def test_traced_run_output_matches_untraced(self, dataset_csv, tmp_path,
                                                capsys):
        assert run_match(dataset_csv, []) == 0
        untraced = capsys.readouterr().out
        assert run_match(
            dataset_csv, ["--trace", str(tmp_path / "t.jsonl")]
        ) == 0
        traced = capsys.readouterr().out
        assert traced == untraced


class TestReportCommand:
    @pytest.fixture(scope="class")
    def trace_file(self, dataset_csv, tmp_path_factory):
        path = tmp_path_factory.mktemp("traces") / "run.jsonl"
        assert run_match(dataset_csv, ["--trace", str(path)]) == 0
        return path

    def test_renders_the_span_tree(self, trace_file, capsys):
        assert main(["report", str(trace_file)]) == 0
        output = capsys.readouterr().out
        assert "Trace" in output
        assert "pipeline.run [run]" in output
        assert "pairwise_matching [stage]" in output
        assert "chunks" in output  # the per-stage throughput rollup

    def test_chrome_export_is_valid_trace_event_json(self, trace_file,
                                                     tmp_path, capsys):
        out = tmp_path / "chrome.json"
        assert main(["report", str(trace_file), "--chrome", str(out)]) == 0
        stdout = capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert payload["traceEvents"], "expected at least one trace event"
        assert all(e["ph"] in ("X", "i") for e in payload["traceEvents"])
        assert f"wrote {len(payload['traceEvents'])} trace events" in stdout

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "ghost.jsonl")]) == 2
        assert "trace file not found" in capsys.readouterr().err

    def test_invalid_trace_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "span"}\n')
        assert main(["report", str(bad)]) == 2
        assert "invalid trace" in capsys.readouterr().err


class TestVerboseFlag:
    def test_parser_counts_verbosity(self):
        parser = build_parser()
        assert parser.parse_args(["generate"]).verbose == 0
        assert parser.parse_args(["-v", "generate"]).verbose == 1
        assert parser.parse_args(["-vv", "generate"]).verbose == 2

    def test_verbose_routes_library_logs_to_stderr(self, tmp_path, capsys):
        # Logging is stderr-only: machine-readable stdout stays clean.
        assert main(["-v", "generate", "--entities", "5", "--sources", "2",
                     "--output-dir", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "INFO" not in captured.out
