"""Tests for record-pair serialisation schemes."""

import pytest

from repro.text import DittoSerializer, PlainSerializer
from repro.text.serialize import make_serializer
from repro.text.tokenize import COL_TOKEN, SEP_TOKEN, VAL_TOKEN

COMPANY = {
    "name": "Crowdstrike Holdings Inc",
    "city": "Austin",
    "country": "USA",
    "description": "Cloud-delivered endpoint protection",
}
OTHER = {
    "name": "Crowd Strike Platforms",
    "city": "Austin",
    "country": None,
    "description": "",
}
ATTRIBUTES = ["name", "city", "country", "description"]


class TestPlainSerializer:
    def test_serialize_record_concatenates_values(self):
        tokens = PlainSerializer(ATTRIBUTES).serialize_record(COMPANY)
        assert tokens[:3] == ["crowdstrike", "holdings", "inc"]
        assert "austin" in tokens

    def test_missing_values_skipped(self):
        tokens = PlainSerializer(ATTRIBUTES).serialize_record(OTHER)
        assert "none" not in tokens

    def test_pair_contains_separator(self):
        tokens = PlainSerializer(ATTRIBUTES).serialize_pair(COMPANY, OTHER)
        assert SEP_TOKEN in tokens

    def test_pair_respects_budget(self):
        long_record = {"name": " ".join(f"tok{i}" for i in range(500))}
        serializer = PlainSerializer(["name"], max_tokens=64)
        tokens = serializer.serialize_pair(long_record, long_record)
        assert len(tokens) <= 64

    def test_list_values_are_joined(self):
        record = {"name": "x", "city": None, "country": None, "description": None,
                  }
        record["name"] = ["beta", "alpha"]
        tokens = PlainSerializer(["name"]).serialize_record(record)
        assert tokens == ["alpha", "beta"]

    def test_pair_text_is_string(self):
        text = PlainSerializer(ATTRIBUTES).serialize_pair_text(COMPANY, OTHER)
        assert isinstance(text, str)
        assert "crowdstrike" in text


class TestDittoSerializer:
    def test_wraps_attributes_with_col_val(self):
        tokens = DittoSerializer(ATTRIBUTES).serialize_record(COMPANY)
        assert tokens.count(COL_TOKEN) == len(ATTRIBUTES)
        assert tokens.count(VAL_TOKEN) == len(ATTRIBUTES)

    def test_attribute_names_included(self):
        tokens = DittoSerializer(ATTRIBUTES).serialize_record(COMPANY)
        assert "city" in tokens

    def test_ditto_encoding_is_longer_than_plain(self):
        plain = PlainSerializer(ATTRIBUTES).serialize_record(COMPANY)
        ditto = DittoSerializer(ATTRIBUTES).serialize_record(COMPANY)
        assert len(ditto) > len(plain)

    def test_truncation_hurts_ditto_more(self):
        # With a tight budget, DITTO loses informative value tokens because
        # the structural tokens consume part of the budget — the mechanism
        # behind DITTO (128)'s weak scores in Table 3.
        budget = 16
        plain = PlainSerializer(ATTRIBUTES, max_tokens=budget)
        ditto = DittoSerializer(ATTRIBUTES, max_tokens=budget)
        plain_pair = plain.serialize_pair(COMPANY, OTHER)
        ditto_pair = ditto.serialize_pair(COMPANY, OTHER)
        informative = {"crowdstrike", "holdings", "austin", "crowd", "strike", "platforms"}
        plain_informative = sum(1 for t in plain_pair if t in informative)
        ditto_informative = sum(1 for t in ditto_pair if t in informative)
        assert plain_informative > ditto_informative


class TestSerializerValidation:
    def test_empty_attributes_rejected(self):
        with pytest.raises(ValueError):
            PlainSerializer([])

    def test_tiny_budget_rejected(self):
        with pytest.raises(ValueError):
            DittoSerializer(["name"], max_tokens=2)

    def test_factory(self):
        assert isinstance(make_serializer("plain", ["name"]), PlainSerializer)
        assert isinstance(make_serializer("ditto", ["name"]), DittoSerializer)
        with pytest.raises(ValueError):
            make_serializer("bert", ["name"])
