"""Bitwise equivalence of the batched similarity kernels with the scalars.

The batch kernels are the matching hot path's arithmetic core; their
contract is *bitwise* agreement with the scalar functions in
:mod:`repro.text.similarity` for every input, on every internal code path.
The kernels pick a path by batch width — Myers bit-vector Levenshtein and
the bit-parallel Jaro matcher when every string fits in 63 bits, array-DP
fallbacks beyond — so the strategies here are width-banded: a batch drawn
from one band stays on one path, and the 63/64 boundary is pinned
explicitly.  The interned-id fast path (deduplicating kernel tables by
string identity) is exercised against the id-less path on batches with
forced duplicates.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.batch_similarity import (
    _BIT_WIDTH,
    _pack_pairs,
    jaro_winkler_similarity_batch,
    jaro_winkler_similarity_packed,
    levenshtein_distance_batch,
    levenshtein_distance_packed,
    levenshtein_similarity_batch,
    levenshtein_similarity_packed,
    longest_common_substring_batch,
    longest_common_substring_similarity_batch,
)
from repro.text.similarity import (
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    longest_common_substring,
    longest_common_substring_similarity,
)

# A small alphabet maximises collisions (shared characters, equal strings,
# shared prefixes) — the interesting regime for every kernel.
ALPHABET = "abAB ü-"

# Width bands: "bit" stays under the 63-codepoint bit-kernel limit for the
# whole batch; "boundary" straddles it; "wide" forces the array fallbacks.
short_text = st.text(alphabet=ALPHABET, max_size=12)
boundary_text = st.text(alphabet=ALPHABET, min_size=_BIT_WIDTH - 2, max_size=_BIT_WIDTH + 2)
wide_text = st.text(alphabet=ALPHABET, min_size=_BIT_WIDTH + 1, max_size=_BIT_WIDTH + 30)

BANDS = [
    st.one_of(st.just(""), short_text),
    st.one_of(st.just(""), boundary_text),
    st.one_of(st.just(""), wide_text),
    st.one_of(st.just(""), short_text, wide_text),  # mixed: wide rows force the fallback for all
]


def pair_batches(band):
    """Batches of string pairs from one width band, duplicates forced."""
    return st.lists(st.tuples(band, band), max_size=10).map(
        lambda pairs: pairs + pairs[:2]  # duplicated pairs hit the memo/dedup paths
    )


def unzip(pairs):
    if not pairs:
        return [], []
    lefts, rights = zip(*pairs)
    return list(lefts), list(rights)


class TestBatchEqualsScalar:
    @pytest.mark.parametrize("band", BANDS)
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_levenshtein_distance(self, band, data):
        lefts, rights = unzip(data.draw(pair_batches(band)))
        batch = levenshtein_distance_batch(lefts, rights)
        assert batch.dtype == np.int64
        expected = [levenshtein_distance(a, b) for a, b in zip(lefts, rights)]
        assert batch.tolist() == expected

    @pytest.mark.parametrize("band", BANDS)
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_levenshtein_similarity(self, band, data):
        lefts, rights = unzip(data.draw(pair_batches(band)))
        batch = levenshtein_similarity_batch(lefts, rights)
        expected = np.asarray(
            [levenshtein_similarity(a, b) for a, b in zip(lefts, rights)],
            dtype=np.float64,
        )
        assert np.array_equal(batch, expected)

    @pytest.mark.parametrize("band", BANDS)
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_longest_common_substring(self, band, data):
        lefts, rights = unzip(data.draw(pair_batches(band)))
        lengths = longest_common_substring_batch(lefts, rights)
        assert lengths.tolist() == [
            longest_common_substring(a, b) for a, b in zip(lefts, rights)
        ]
        sims = longest_common_substring_similarity_batch(lefts, rights)
        expected = np.asarray(
            [longest_common_substring_similarity(a, b) for a, b in zip(lefts, rights)],
            dtype=np.float64,
        )
        assert np.array_equal(sims, expected)

    @pytest.mark.parametrize("band", BANDS)
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_jaro_winkler(self, band, data):
        lefts, rights = unzip(data.draw(pair_batches(band)))
        batch = jaro_winkler_similarity_batch(lefts, rights)
        expected = np.asarray(
            [jaro_winkler_similarity(a, b) for a, b in zip(lefts, rights)],
            dtype=np.float64,
        )
        assert np.array_equal(batch, expected)


class TestInternedIdPath:
    """The id-deduplicated kernel tables must change nothing but speed."""

    @pytest.mark.parametrize("band", BANDS)
    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_ids_do_not_change_results(self, band, data):
        lefts, rights = unzip(data.draw(pair_batches(band)))
        if not lefts:
            return
        # Intern: equal strings <-> equal ids, the ProfileStore invariant.
        table: dict[str, int] = {}
        ids = lambda strings: np.asarray(
            [table.setdefault(s, len(table)) for s in strings], dtype=np.int64
        )
        a_codes, a_lengths, b_codes, b_lengths = _pack_pairs(lefts, rights)
        a_ids, b_ids = ids(lefts), ids(rights)
        equal = np.asarray([a == b for a, b in zip(lefts, rights)])

        plain = levenshtein_similarity_packed(a_codes, a_lengths, b_codes, b_lengths, equal)
        with_ids = levenshtein_similarity_packed(
            a_codes, a_lengths, b_codes, b_lengths, equal, a_ids=a_ids, b_ids=b_ids
        )
        assert np.array_equal(plain, with_ids)

        plain = jaro_winkler_similarity_packed(a_codes, a_lengths, b_codes, b_lengths, equal)
        with_ids = jaro_winkler_similarity_packed(
            a_codes, a_lengths, b_codes, b_lengths, equal, a_ids=a_ids, b_ids=b_ids
        )
        assert np.array_equal(plain, with_ids)


class TestPathBoundary:
    def test_63_64_boundary_is_exact(self):
        # Lengths straddling the bit-kernel width limit, one batch per pair
        # so each side of the boundary actually runs its own path.
        for la in (_BIT_WIDTH - 1, _BIT_WIDTH, _BIT_WIDTH + 1):
            for lb in (_BIT_WIDTH - 1, _BIT_WIDTH, _BIT_WIDTH + 1):
                a, b = "ab" * 40, "ba" * 40
                left, right = a[:la], b[:lb]
                assert levenshtein_distance_batch([left], [right])[0] == (
                    levenshtein_distance(left, right)
                )
                assert jaro_winkler_similarity_batch([left], [right])[0] == (
                    jaro_winkler_similarity(left, right)
                )

    def test_bit_and_wide_paths_agree(self):
        # The same pairs scored once on the bit path (batch width <= 63)
        # and once on the fallback path (a wide row widens the batch) must
        # produce bitwise-identical rows.
        pairs = [
            ("acme holdings", "acme hldgs"),
            ("", "nonempty"),
            ("same", "same"),
            ("a" * 60, "a" * 59 + "b"),
            ("üü-ab", "ab-üü"),
        ]
        lefts, rights = unzip(pairs)
        narrow_lev = levenshtein_distance_batch(lefts, rights)
        narrow_jw = jaro_winkler_similarity_batch(lefts, rights)
        wide_row = ("x" * (_BIT_WIDTH + 5), "y" * (_BIT_WIDTH + 5))
        wide_lev = levenshtein_distance_batch(
            lefts + [wide_row[0]], rights + [wide_row[1]]
        )
        wide_jw = jaro_winkler_similarity_batch(
            lefts + [wide_row[0]], rights + [wide_row[1]]
        )
        assert np.array_equal(narrow_lev, wide_lev[:-1])
        assert np.array_equal(narrow_jw, wide_jw[:-1])


class TestEdges:
    def test_empty_batches(self):
        assert levenshtein_distance_batch([], []).shape == (0,)
        assert levenshtein_similarity_batch([], []).shape == (0,)
        assert longest_common_substring_batch([], []).shape == (0,)
        assert longest_common_substring_similarity_batch([], []).shape == (0,)
        assert jaro_winkler_similarity_batch([], []).shape == (0,)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            levenshtein_distance_batch(["a"], [])
        with pytest.raises(ValueError):
            longest_common_substring_batch(["a"], [])

    def test_prefix_weight_validation(self):
        with pytest.raises(ValueError):
            jaro_winkler_similarity_batch(["a"], ["b"], prefix_weight=0.3)
