"""Tests for string similarity measures, including hypothesis invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import (
    cosine_token_similarity,
    dice_coefficient,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    longest_common_substring,
    overlap_coefficient,
)
from repro.text.similarity import longest_common_substring_similarity

short_text = st.text(alphabet="abcdefgh ", max_size=20)


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein_distance("abc", "abc") == 0

    def test_empty(self):
        assert levenshtein_distance("", "abc") == 3
        assert levenshtein_distance("abc", "") == 3

    def test_known_value(self):
        assert levenshtein_distance("kitten", "sitting") == 3

    def test_similarity_range(self):
        assert levenshtein_similarity("abc", "abc") == 1.0
        assert levenshtein_similarity("", "") == 1.0
        assert 0.0 <= levenshtein_similarity("abc", "xyz") <= 1.0

    @given(short_text, short_text)
    @settings(max_examples=80, deadline=None)
    def test_symmetry(self, a, b):
        assert levenshtein_distance(a, b) == levenshtein_distance(b, a)

    @given(short_text, short_text, short_text)
    @settings(max_examples=50, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein_distance(a, c) <= (
            levenshtein_distance(a, b) + levenshtein_distance(b, c)
        )


class TestJaro:
    def test_identical(self):
        assert jaro_similarity("martha", "martha") == 1.0

    def test_known_value(self):
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_disjoint(self):
        assert jaro_similarity("abc", "xyz") == 0.0

    def test_empty(self):
        assert jaro_similarity("", "abc") == 0.0
        assert jaro_similarity("", "") == 1.0

    def test_winkler_boosts_common_prefix(self):
        base = jaro_similarity("crowdstrike", "crowdstreet")
        boosted = jaro_winkler_similarity("crowdstrike", "crowdstreet")
        assert boosted >= base

    def test_winkler_invalid_weight(self):
        with pytest.raises(ValueError):
            jaro_winkler_similarity("a", "b", prefix_weight=0.5)

    @given(short_text, short_text)
    @settings(max_examples=80, deadline=None)
    def test_jaro_winkler_in_unit_interval(self, a, b):
        score = jaro_winkler_similarity(a, b)
        assert 0.0 <= score <= 1.0

    @given(short_text, short_text)
    @settings(max_examples=80, deadline=None)
    def test_jaro_symmetry(self, a, b):
        assert jaro_similarity(a, b) == pytest.approx(jaro_similarity(b, a))


class TestSetSimilarities:
    def test_jaccard_identical(self):
        assert jaccard_similarity(["a", "b"], ["b", "a"]) == 1.0

    def test_jaccard_disjoint(self):
        assert jaccard_similarity(["a"], ["b"]) == 0.0

    def test_jaccard_both_empty(self):
        assert jaccard_similarity([], []) == 1.0

    def test_dice(self):
        assert dice_coefficient(["a", "b"], ["b", "c"]) == pytest.approx(0.5)

    def test_overlap_subset(self):
        assert overlap_coefficient(["a", "b"], ["a", "b", "c", "d"]) == 1.0

    def test_overlap_one_empty(self):
        assert overlap_coefficient([], ["a"]) == 0.0

    def test_cosine_tokens(self):
        assert cosine_token_similarity(["a", "a", "b"], ["a", "b"]) > 0.9
        assert cosine_token_similarity(["a"], ["b"]) == 0.0
        assert cosine_token_similarity([], []) == 1.0

    token_lists = st.lists(st.sampled_from(["alpha", "beta", "gamma", "delta"]), max_size=6)

    @given(token_lists, token_lists)
    @settings(max_examples=60, deadline=None)
    def test_jaccard_leq_dice_leq_overlap(self, a, b):
        if not a or not b:
            return
        jac = jaccard_similarity(a, b)
        dice = dice_coefficient(a, b)
        over = overlap_coefficient(a, b)
        assert jac <= dice + 1e-12
        assert dice <= over + 1e-12


class TestLongestCommonSubstring:
    def test_crowdstrike_crowdstreet(self):
        # The false-positive motivation from Figure 2: a long shared prefix.
        assert longest_common_substring("crowdstrike", "crowdstreet") >= 7

    def test_disjoint(self):
        assert longest_common_substring("abc", "xyz") == 0

    def test_empty(self):
        assert longest_common_substring("", "abc") == 0

    def test_similarity_normalised(self):
        assert longest_common_substring_similarity("abc", "abc") == 1.0
        assert longest_common_substring_similarity("", "") == 1.0
        assert longest_common_substring_similarity("", "a") == 0.0

    @given(short_text, short_text)
    @settings(max_examples=60, deadline=None)
    def test_bounded_by_shorter_string(self, a, b):
        assert longest_common_substring(a, b) <= min(len(a), len(b))


def _reference_levenshtein(a: str, b: str) -> int:
    """The plain full-matrix DP, kept as the equivalence oracle for the
    prefix/suffix-trimmed production implementation."""
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            )
        previous = current
    return previous[-1]


class TestLevenshteinTrimEquivalence:
    """The trimmed implementation must equal the unoptimised reference."""

    @given(short_text, short_text)
    @settings(max_examples=200, deadline=None)
    def test_matches_reference(self, a, b):
        assert levenshtein_distance(a, b) == _reference_levenshtein(a, b)

    @given(short_text, short_text, short_text)
    @settings(max_examples=120, deadline=None)
    def test_matches_reference_with_shared_affixes(self, prefix, core, suffix):
        # Stress the trimming paths: identical prefix and suffix, differing core.
        a = prefix + core + suffix
        b = prefix + core[::-1] + suffix
        assert levenshtein_distance(a, b) == _reference_levenshtein(a, b)

    @pytest.mark.parametrize("a,b", [
        ("microsoft corp", "microsoft corporation"),
        ("acme", "acme"),
        ("", ""),
        ("", "abc"),
        ("abc", ""),
        ("aaa", "aa"),
        ("abcdef", "abXdef"),
        ("xabc", "abc"),
        ("abcx", "abc"),
        ("ab", "ba"),
    ])
    def test_known_cases_match_reference(self, a, b):
        assert levenshtein_distance(a, b) == _reference_levenshtein(a, b)

    @given(short_text, short_text)
    @settings(max_examples=100, deadline=None)
    def test_similarity_shortcut_matches_formula(self, a, b):
        expected = (
            1.0
            if not a and not b
            else 1.0 - _reference_levenshtein(a, b) / max(len(a), len(b))
        )
        assert levenshtein_similarity(a, b) == expected


class TestSimilarityFastPaths:
    """The a == b / set-input fast paths must not change any value."""

    @given(short_text)
    @settings(max_examples=60, deadline=None)
    def test_lcs_similarity_identical_strings(self, a):
        expected = 1.0 if not a else longest_common_substring(a, a) / len(a)
        assert longest_common_substring_similarity(a, a) == expected == 1.0

    @given(st.lists(st.text(alphabet="abc", max_size=3), max_size=6),
           st.lists(st.text(alphabet="abc", max_size=3), max_size=6))
    @settings(max_examples=80, deadline=None)
    def test_set_inputs_equal_list_inputs(self, a, b):
        for measure in (jaccard_similarity, dice_coefficient, overlap_coefficient):
            assert measure(frozenset(a), frozenset(b)) == measure(a, b)
            assert measure(set(a), set(b)) == measure(a, b)
