"""Tests for text normalisation."""

from repro.text import normalize_text, strip_corporate_terms
from repro.text.normalize import acronym_of, normalize_identifier


class TestNormalizeText:
    def test_lowercases(self):
        assert normalize_text("MicroSoft") == "microsoft"

    def test_none_and_empty(self):
        assert normalize_text(None) == ""
        assert normalize_text("") == ""

    def test_strips_punctuation(self):
        assert normalize_text("Crowd-Strike, Inc.") == "crowd strike inc"

    def test_collapses_whitespace(self):
        assert normalize_text("  a   b \t c ") == "a b c"

    def test_removes_accents(self):
        assert normalize_text("Société Générale") == "societe generale"

    def test_keep_punctuation_option(self):
        assert normalize_text("A.B.C", strip_punctuation=False) == "a.b.c"


class TestStripCorporateTerms:
    def test_strips_suffixes(self):
        assert strip_corporate_terms("Crowdstrike Holdings Inc") == "crowdstrike"

    def test_keeps_informative_tokens(self):
        assert strip_corporate_terms("Acme Data Systems Ltd") == "acme data systems"

    def test_all_corporate_terms_returns_normalized_name(self):
        assert strip_corporate_terms("Holdings Inc") == "holdings inc"

    def test_empty_input(self):
        assert strip_corporate_terms("") == ""
        assert strip_corporate_terms(None) == ""


class TestAcronym:
    def test_basic_acronym(self):
        assert acronym_of("Advanced Micro Devices Inc") == "amd"

    def test_single_word(self):
        assert acronym_of("Crowdstrike") == "c"

    def test_empty(self):
        assert acronym_of("") == ""


class TestNormalizeIdentifier:
    def test_uppercases_and_strips_separators(self):
        assert normalize_identifier("us-0378 3310.0005") == "US03783310 0005".replace(" ", "")

    def test_none(self):
        assert normalize_identifier(None) == ""
