"""Tests for tokenisation and the trainable vocabulary."""

import pytest

from repro.text import Vocabulary, char_ngrams, whitespace_tokenize, word_tokenize
from repro.text.tokenize import CLS_TOKEN, PAD_TOKEN, SEP_TOKEN, SPECIAL_TOKENS


class TestWordTokenize:
    def test_basic(self):
        assert word_tokenize("Crowdstrike Holdings, Inc.") == [
            "crowdstrike",
            "holdings",
            "inc",
        ]

    def test_none(self):
        assert word_tokenize(None) == []

    def test_whitespace_tokenize_no_normalisation(self):
        assert whitespace_tokenize("A  B") == ["A", "B"]


class TestCharNgrams:
    def test_trigram_count(self):
        grams = char_ngrams("abcd", n=3)
        # "#abcd#" has length 6 -> 4 trigrams
        assert grams == ["#ab", "abc", "bcd", "cd#"]

    def test_short_text_single_gram(self):
        assert char_ngrams("ab", n=5) == ["#ab#"]

    def test_empty(self):
        assert char_ngrams("", n=3) == []
        assert char_ngrams(None, n=3) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            char_ngrams("abc", n=0)

    def test_no_padding(self):
        assert char_ngrams("abcd", n=3, pad=False) == ["abc", "bcd"]


class TestVocabulary:
    def test_special_tokens_present(self):
        vocab = Vocabulary().fit(["hello world"])
        for token in SPECIAL_TOKENS:
            assert token in vocab

    def test_fit_learns_words(self):
        vocab = Vocabulary().fit(["crowdstrike holdings", "crowdstrike platforms"])
        assert "crowdstrike" in vocab
        assert vocab.token_id("crowdstrike") != vocab.unk_id

    def test_unknown_word_falls_back_to_subwords_or_unk(self):
        vocab = Vocabulary().fit(["alpha beta gamma"])
        ids = vocab.encode_word("zzzzqqqq")
        assert ids  # never empty
        assert all(isinstance(i, int) for i in ids)

    def test_encode_adds_cls_and_sep(self):
        vocab = Vocabulary().fit(["a b c"])
        ids = vocab.encode(["a", "b"])
        assert ids[0] == vocab.cls_id
        assert ids[-1] == vocab.sep_id

    def test_encode_respects_max_length(self):
        vocab = Vocabulary().fit(["one two three four five six"])
        ids = vocab.encode(["one"] * 100, max_length=16)
        assert len(ids) == 16
        assert ids[-1] == vocab.sep_id

    def test_encode_handles_special_tokens_inline(self):
        vocab = Vocabulary().fit(["a b"])
        ids = vocab.encode(["a", SEP_TOKEN, "b"], add_special_tokens=False)
        assert vocab.sep_id in ids

    def test_pad_extends_and_truncates(self):
        vocab = Vocabulary().fit(["x"])
        assert vocab.pad([5, 6], 4) == [5, 6, vocab.pad_id, vocab.pad_id]
        assert vocab.pad([1, 2, 3, 4, 5], 3) == [1, 2, 3]

    def test_max_size_limit(self):
        texts = [f"word{i}" for i in range(100)]
        vocab = Vocabulary(max_size=20).fit(texts)
        assert len(vocab) <= 20

    def test_max_size_too_small_raises(self):
        with pytest.raises(ValueError):
            Vocabulary(max_size=3)

    def test_ids_round_trip(self):
        vocab = Vocabulary().fit(["alpha beta"])
        idx = vocab.token_id("alpha")
        assert vocab.id_to_token(idx) == "alpha"

    def test_pad_and_cls_are_distinct(self):
        vocab = Vocabulary().fit(["a"])
        assert vocab.pad_id != vocab.cls_id
        assert vocab.token_id(PAD_TOKEN) == vocab.pad_id
        assert vocab.token_id(CLS_TOKEN) == vocab.cls_id
