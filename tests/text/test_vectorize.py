"""Tests for TF-IDF and hashing vectorisers."""

import math

import pytest

from repro.text import HashingVectorizer, TfidfVectorizer
from repro.text.vectorize import sparse_cosine, sparse_dot, sparse_norm


class TestSparseOps:
    def test_dot(self):
        assert sparse_dot({0: 1.0, 1: 2.0}, {1: 3.0}) == pytest.approx(6.0)

    def test_norm(self):
        assert sparse_norm({0: 3.0, 1: 4.0}) == pytest.approx(5.0)

    def test_cosine_empty(self):
        assert sparse_cosine({}, {0: 1.0}) == 0.0

    def test_cosine_identical(self):
        v = {0: 0.6, 1: 0.8}
        assert sparse_cosine(v, v) == pytest.approx(1.0)


class TestTfidfVectorizer:
    corpus = [
        "crowdstrike holdings cybersecurity platform",
        "crowdstreet real estate investment platform",
        "acme energy resources",
    ]

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            TfidfVectorizer().transform_one("hello")

    def test_vectors_are_normalised(self):
        vec = TfidfVectorizer().fit(self.corpus).transform_one(self.corpus[0])
        assert sparse_norm(vec) == pytest.approx(1.0)

    def test_identical_text_has_cosine_one(self):
        vectorizer = TfidfVectorizer().fit(self.corpus)
        a = vectorizer.transform_one(self.corpus[0])
        b = vectorizer.transform_one(self.corpus[0])
        assert sparse_cosine(a, b) == pytest.approx(1.0)

    def test_related_texts_more_similar_than_unrelated(self):
        vectorizer = TfidfVectorizer().fit(self.corpus)
        crowdstrike = vectorizer.transform_one(self.corpus[0])
        crowdstreet = vectorizer.transform_one(self.corpus[1])
        acme = vectorizer.transform_one(self.corpus[2])
        assert sparse_cosine(crowdstrike, crowdstreet) > sparse_cosine(crowdstrike, acme)

    def test_unknown_tokens_ignored(self):
        vectorizer = TfidfVectorizer().fit(self.corpus)
        assert vectorizer.transform_one("completely unrelated words") == {}

    def test_min_document_frequency(self):
        vectorizer = TfidfVectorizer(min_document_frequency=2).fit(self.corpus)
        assert "platform" in vectorizer.vocabulary
        assert "cybersecurity" not in vectorizer.vocabulary

    def test_max_features(self):
        vectorizer = TfidfVectorizer(max_features=3).fit(self.corpus)
        assert len(vectorizer.vocabulary) == 3

    def test_invalid_min_df(self):
        with pytest.raises(ValueError):
            TfidfVectorizer(min_document_frequency=0)

    def test_fit_transform_matches_separate_calls(self):
        vectorizer = TfidfVectorizer()
        combined = vectorizer.fit_transform(self.corpus)
        separate = vectorizer.transform(self.corpus)
        assert combined == separate


class TestHashingVectorizer:
    def test_no_fit_needed(self):
        vec = HashingVectorizer(num_features=64).transform_one("alpha beta")
        assert vec

    def test_deterministic_across_instances(self):
        a = HashingVectorizer(num_features=128).transform_one("crowdstrike holdings")
        b = HashingVectorizer(num_features=128).transform_one("crowdstrike holdings")
        assert a == b

    def test_normalised(self):
        vec = HashingVectorizer(num_features=128).transform_one("one two three")
        assert sparse_norm(vec) == pytest.approx(1.0)

    def test_similar_texts_have_high_cosine(self):
        vectorizer = HashingVectorizer(num_features=2 ** 12)
        a = vectorizer.transform_one("crowdstrike holdings inc")
        b = vectorizer.transform_one("crowdstrike holdings")
        c = vectorizer.transform_one("acme energy resources")
        assert sparse_cosine(a, b) > sparse_cosine(a, c)

    def test_invalid_num_features(self):
        with pytest.raises(ValueError):
            HashingVectorizer(num_features=0)

    def test_empty_text(self):
        assert HashingVectorizer().transform_one("") == {}


class TestNormCaching:
    corpus = [
        "crowdstrike holdings cybersecurity platform",
        "crowdstreet real estate investment platform",
        "acme energy resources",
    ]

    def test_tfidf_vectors_carry_cached_norm(self):
        from repro.text.vectorize import NormedSparseVector

        vec = TfidfVectorizer().fit(self.corpus).transform_one(self.corpus[0])
        assert isinstance(vec, NormedSparseVector)
        # The cached norm is bitwise identical to a fresh reduction over the
        # same weights, so sparse_cosine results cannot drift.
        fresh = math.sqrt(sum(w * w for w in vec.values()))
        assert sparse_norm(vec) == fresh
        assert vec.norm == fresh

    def test_hashing_vectors_carry_cached_norm(self):
        from repro.text.vectorize import NormedSparseVector

        vec = HashingVectorizer(num_features=64).transform_one("acme energy resources")
        assert isinstance(vec, NormedSparseVector)
        assert sparse_norm(vec) == math.sqrt(sum(w * w for w in vec.values()))

    def test_cosine_uses_cache_not_recompute(self, monkeypatch):
        import repro.text.vectorize as vectorize_module

        vectorizer = TfidfVectorizer().fit(self.corpus)
        a = vectorizer.transform_one(self.corpus[0])
        b = vectorizer.transform_one(self.corpus[1])
        baseline = sparse_cosine(a, b)
        a.norm  # noqa: B018 - populate both caches
        b.norm  # noqa: B018

        def exploding_sqrt(value):
            raise AssertionError("sparse_cosine re-reduced a cached vector")

        monkeypatch.setattr(vectorize_module.math, "sqrt", exploding_sqrt)
        assert sparse_cosine(a, b) == baseline

    def test_normed_vector_still_a_plain_dict(self):
        vec = TfidfVectorizer().fit(self.corpus).transform_one(self.corpus[0])
        assert dict(vec) == {key: vec[key] for key in vec}
        assert vec == dict(vec)
