"""Tests for splits, reporting tables and the LLM cost model."""

import pytest

from repro.datagen import GenerationConfig, generate_benchmark
from repro.evaluation import LlmCostModel, format_table, rows_to_table, split_dataset


@pytest.fixture(scope="module")
def eval_benchmark():
    return generate_benchmark(GenerationConfig(num_entities=100, num_sources=4, seed=51))


class TestSplits:
    def test_fractions(self, eval_benchmark):
        companies = eval_benchmark.companies
        splits = split_dataset(companies, seed=0)
        total = splits.num_entities
        assert total == len(companies.entity_groups())
        assert len(splits.train_entities) == pytest.approx(0.6 * total, abs=2)
        assert len(splits.validation_entities) == pytest.approx(0.2 * total, abs=2)

    def test_splits_are_disjoint_and_cover(self, eval_benchmark):
        companies = eval_benchmark.companies
        splits = split_dataset(companies, seed=1)
        train = set(splits.train_entities)
        validation = set(splits.validation_entities)
        test = set(splits.test_entities)
        assert not train & validation
        assert not train & test
        assert not validation & test
        assert train | validation | test == set(companies.entity_groups())

    def test_no_cross_split_true_matches(self, eval_benchmark):
        """Splitting along groups means no true match crosses split borders."""
        companies = eval_benchmark.companies
        splits = split_dataset(companies, seed=2)
        entity_split = {}
        for name, entities in (
            ("train", splits.train_entities),
            ("val", splits.validation_entities),
            ("test", splits.test_entities),
        ):
            for entity in entities:
                entity_split[entity] = name
        for left_id, right_id in companies.true_matches():
            assert entity_split[companies.entity_of(left_id)] == entity_split[
                companies.entity_of(right_id)
            ]

    def test_deterministic(self, eval_benchmark):
        companies = eval_benchmark.companies
        assert split_dataset(companies, seed=3) == split_dataset(companies, seed=3)
        assert split_dataset(companies, seed=3) != split_dataset(companies, seed=4)

    def test_restrict(self, eval_benchmark):
        companies = eval_benchmark.companies
        splits = split_dataset(companies, seed=0)
        train = splits.restrict(companies, "train")
        assert set(train.entity_groups()) == set(splits.train_entities)
        with pytest.raises(ValueError):
            splits.restrict(companies, "dev")

    def test_invalid_fractions(self, eval_benchmark):
        companies = eval_benchmark.companies
        with pytest.raises(ValueError):
            split_dataset(companies, train_fraction=0.0)
        with pytest.raises(ValueError):
            split_dataset(companies, validation_fraction=1.0)
        with pytest.raises(ValueError):
            split_dataset(companies, train_fraction=0.8, validation_fraction=0.3)


class TestReporting:
    rows = [
        {"Model": "distilbert-128-all", "F1": 97.66},
        {"Model": "ditto-256", "F1": 98.20, "Note": "best"},
    ]

    def test_rows_to_table_collects_all_columns(self):
        table = rows_to_table(self.rows)
        assert table[0] == ["Model", "F1", "Note"]
        assert table[1][2] == "-"

    def test_format_table_contains_values(self):
        text = format_table(self.rows, title="Table 3")
        assert "Table 3" in text
        assert "distilbert-128-all" in text
        assert "98.20" in text

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], title="Empty")
        assert rows_to_table([]) == []


class TestLlmCostModel:
    def test_paper_claim_90_days(self):
        # The synthetic companies dataset has ~1.14M candidate pairs; at 7 s
        # per pair an LLM needs far more than 90 days.
        model = LlmCostModel(seconds_per_pair=7.0)
        assert model.total_days(1_140_000) > 90
        assert not model.is_feasible(1_140_000, budget_days=7)

    def test_small_workload_feasible(self):
        model = LlmCostModel(seconds_per_pair=7.0)
        assert model.is_feasible(1_000, budget_days=1)

    def test_speedup_required(self):
        model = LlmCostModel(seconds_per_pair=7.0)
        assert model.speedup_required(1_140_000, budget_days=7) > 10
        assert model.speedup_required(10, budget_days=7) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LlmCostModel(seconds_per_pair=0)
        model = LlmCostModel()
        with pytest.raises(ValueError):
            model.total_seconds(-1)
        with pytest.raises(ValueError):
            model.is_feasible(10, budget_days=0)
