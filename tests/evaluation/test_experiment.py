"""Integration tests for the fine-tuning evaluation and the end-to-end
entity group matching experiment (scaled-down Table 3 / Table 4 runs)."""

import pytest

from repro.datagen import GenerationConfig, generate_benchmark
from repro.datagen.wdc import WdcConfig, generate_wdc_products
from repro.evaluation import (
    EntityGroupMatchingExperiment,
    ExperimentConfig,
    evaluate_fine_tuning,
    split_dataset,
)
from repro.matching.training import FineTuner


@pytest.fixture(scope="module")
def experiment_benchmark():
    return generate_benchmark(
        GenerationConfig(num_entities=70, num_sources=4, seed=61,
                         acquisition_rate=0.05, merger_rate=0.05)
    )


class TestFineTuneEvaluation:
    def test_logistic_on_companies(self, experiment_benchmark):
        companies = experiment_benchmark.companies
        splits = split_dataset(companies, seed=0)
        tuner = FineTuner(negative_ratio=3, num_epochs=1, seed=0)
        evaluation = evaluate_fine_tuning(companies, splits, "logistic", tuner)
        assert evaluation.model == "logistic"
        assert evaluation.num_training_pairs > 0
        assert evaluation.num_test_pairs > 0
        assert evaluation.scores.f1 > 0.5
        row = evaluation.as_row()
        assert "F1 Score" in row and "Training Time (s)" in row

    def test_id_overlap_heuristic_scores(self, experiment_benchmark):
        securities = experiment_benchmark.securities
        splits = split_dataset(securities, seed=0)
        tuner = FineTuner(negative_ratio=3, num_epochs=1, seed=0)
        evaluation = evaluate_fine_tuning(securities, splits, "id-overlap", tuner)
        # The heuristic has high precision on the easy test negatives.
        assert evaluation.scores.precision > 0.9


class TestEntityGroupMatchingExperiment:
    def test_companies_experiment_with_logistic(self, experiment_benchmark):
        companies = experiment_benchmark.companies
        config = ExperimentConfig(
            model="logistic", dataset_kind="companies", negative_ratio=3,
            num_epochs=1, seed=0,
        )
        experiment = EntityGroupMatchingExperiment(companies, config)
        result = experiment.run()

        assert result.num_candidates > 0
        assert result.num_records == len(companies)
        # Post-clean-up precision must match or exceed the pre-clean-up
        # (transitive-inflated) precision — the core claim of the paper.
        assert result.post_cleanup.precision >= result.pre_cleanup.precision - 1e-9
        assert result.post_cleanup.cluster_purity >= result.pre_cleanup.cluster_purity - 1e-9
        assert result.mu == len(companies.sources)
        row = result.as_row()
        assert "Post F1" in row and "Pre ClPur" in row

    def test_securities_experiment_with_heuristic(self, experiment_benchmark):
        securities = experiment_benchmark.securities
        config = ExperimentConfig(
            model="id-overlap", dataset_kind="securities", negative_ratio=2,
            num_epochs=1, seed=0,
        )
        experiment = EntityGroupMatchingExperiment(securities, config)
        result = experiment.run()
        assert result.post_cleanup.precision > 0.8
        assert result.pairwise.recall > 0.5

    def test_issuer_groups_can_come_from_company_matching(self, experiment_benchmark):
        companies = experiment_benchmark.companies
        securities = experiment_benchmark.securities
        company_groups = [list(ids) for ids in companies.entity_groups().values()]
        config = ExperimentConfig(
            model="id-overlap", dataset_kind="securities",
            issuer_groups=company_groups, num_epochs=1, seed=0,
        )
        result = EntityGroupMatchingExperiment(securities, config).run()
        assert result.num_candidates > 0

    def test_issuer_match_spec_params_merge_with_injected_groups(self, experiment_benchmark):
        # A spec that tweaks an unrelated issuer_match param must still get
        # the run-time group mapping injected (explicit params win, extras
        # fill the rest).
        from repro.specs import ComponentSpec

        securities = experiment_benchmark.securities
        config = ExperimentConfig(
            model="id-overlap", dataset_kind="securities", num_epochs=1, seed=0,
            blocking=(
                ComponentSpec("id_overlap"),
                ComponentSpec("issuer_match", {"cross_source_only": False}),
            ),
        )
        experiment = EntityGroupMatchingExperiment(securities, config)
        blocking = experiment.build_blocking()
        issuer = blocking.blockings[1]
        assert issuer.cross_source_only is False
        assert issuer._group_of  # oracle mapping injected alongside the param

    def test_products_experiment(self):
        products = generate_wdc_products(WdcConfig(num_entities=60, num_sources=10, seed=7))
        config = ExperimentConfig(
            model="logistic", dataset_kind="products", negative_ratio=2,
            num_epochs=1, seed=0,
        )
        result = EntityGroupMatchingExperiment(products, config).run()
        assert result.num_candidates > 0
        assert 0.0 <= result.post_cleanup.f1 <= 1.0

    def test_unknown_dataset_kind(self, experiment_benchmark):
        config = ExperimentConfig(dataset_kind="images")
        experiment = EntityGroupMatchingExperiment(experiment_benchmark.companies, config)
        with pytest.raises(ValueError):
            experiment.build_blocking()

    def test_cleanup_config_defaults_to_num_sources(self, experiment_benchmark):
        companies = experiment_benchmark.companies
        experiment = EntityGroupMatchingExperiment(companies, ExperimentConfig())
        config = experiment.build_cleanup_config()
        assert config.mu == len(companies.sources)

    def test_pre_cleanup_enabled_only_for_companies(self, experiment_benchmark):
        companies = experiment_benchmark.companies
        company_experiment = EntityGroupMatchingExperiment(
            companies, ExperimentConfig(dataset_kind="companies")
        )
        security_experiment = EntityGroupMatchingExperiment(
            companies, ExperimentConfig(dataset_kind="securities")
        )
        assert company_experiment.build_pre_cleanup_config().enabled
        assert not security_experiment.build_pre_cleanup_config().enabled
