"""Tracing through the execution engine: spans from real runs, ordering,
pool events, and the only contract that really matters — recording never
changes what the engine computes.
"""

import pytest

from repro.blocking import CombinedBlocking, IdOverlapBlocking, TokenOverlapBlocking
from repro.core.pipeline import EntityGroupMatchingPipeline
from repro.datagen import GenerationConfig, figure2_dataset, generate_benchmark
from repro.matching import IdOverlapMatcher, LogisticRegressionMatcher
from repro.matching.pairs import as_record_pairs, build_labeled_pairs
from repro.obs import MemorySink, TraceRecorder, read_trace_jsonl
from repro.runtime import PipelineRuntime, RuntimeConfig, StageProfiler


@pytest.fixture(scope="module")
def workload():
    """A dataset + fitted matcher big enough to produce several chunks."""
    benchmark = generate_benchmark(
        GenerationConfig(num_entities=40, num_sources=4, seed=7,
                         acquisition_rate=0.05, merger_rate=0.05)
    )
    dataset = benchmark.companies
    pairs = build_labeled_pairs(dataset, negative_ratio=3, seed=0)
    record_pairs, labels = as_record_pairs(pairs)
    matcher = LogisticRegressionMatcher(num_iterations=60).fit(record_pairs, labels)
    blocking = CombinedBlocking([IdOverlapBlocking(), TokenOverlapBlocking(top_n=3)])
    candidates = blocking.candidate_pairs(dataset)
    return dataset, matcher, candidates


ENGINE_CONFIGS = [
    pytest.param(RuntimeConfig(batch_size=64), id="serial"),
    pytest.param(RuntimeConfig(workers=2, executor="thread", batch_size=64),
                 id="thread-warm"),
    pytest.param(RuntimeConfig(workers=2, executor="thread", batch_size=64,
                               warm_pool=False), id="thread-cold"),
    pytest.param(RuntimeConfig(workers=2, executor="process", batch_size=64),
                 id="process-warm"),
    pytest.param(RuntimeConfig(workers=2, executor="process", batch_size=64,
                               warm_pool=False), id="process-cold"),
]


class TestChunkSpans:
    @pytest.mark.parametrize("config", ENGINE_CONFIGS)
    def test_chunk_spans_arrive_in_submission_order(self, workload, config):
        """Every engine mode records one chunk span per batch, in submission
        order, nested under the stage span — out-of-order worker completion
        must never leak into the trace."""
        dataset, matcher, candidates = workload
        recorder = TraceRecorder()
        with PipelineRuntime(config, recorder=recorder) as runtime:
            profiler = runtime.profiler()
            with profiler.stage("pairwise_matching"):
                decisions = runtime.run_matching(
                    matcher, dataset, candidates, profiler=profiler
                )
        assert len(decisions) == len(candidates)
        (stage,) = recorder.trace().find("pairwise_matching", kind="stage")
        chunks = [c for c in stage.children if c.kind == "chunk"]
        expected = (len(candidates) + config.batch_size - 1) // config.batch_size
        assert len(chunks) == expected
        assert [c.attributes["index"] for c in chunks] == list(range(expected))
        # Chunk item counts tile the candidate list exactly.
        assert sum(c.attributes["items"] for c in chunks) == len(candidates)
        # Worker-measured endpoints are real intervals on the shared clock.
        assert all(c.end >= c.start for c in chunks)

    def test_warm_process_chunks_carry_fetch_attribute(self, workload):
        dataset, matcher, candidates = workload
        recorder = TraceRecorder()
        config = RuntimeConfig(workers=2, executor="process", batch_size=64)
        # One shared store across both calls: the epoch identity
        # (matcher, store, revision) stays current, so the second call's
        # chunks are all served from the workers' payload caches.
        profiles = matcher.prepare_profiles(dataset)
        with PipelineRuntime(config, recorder=recorder) as runtime:
            profiler = runtime.profiler()
            with profiler.stage("pairwise_matching"):
                runtime.run_matching(matcher, dataset, candidates,
                                     profiler=profiler, profiles=profiles)
            with profiler.stage("pairwise_matching"):
                runtime.run_matching(matcher, dataset, candidates,
                                     profiler=profiler, profiles=profiles)
        first, second = recorder.trace().find("pairwise_matching", kind="stage")
        cold_chunks = [c for c in first.children if c.kind == "chunk"]
        warm_chunks = [c for c in second.children if c.kind == "chunk"]
        assert all(isinstance(c.attributes["fetched"], bool) for c in cold_chunks)
        # Each worker fetches at most once per epoch; with two workers the
        # first call shows <= 2 fetches, the second call none at all.
        assert sum(c.attributes["fetched"] for c in cold_chunks) <= 2
        assert sum(c.attributes["fetched"] for c in warm_chunks) == 0
        counters = recorder.metrics.counters()
        total = len(cold_chunks) + len(warm_chunks)
        assert counters["pool.payload.hits"] + counters["pool.payload.misses"] == total


class TestPoolEvents:
    def test_warm_pool_spawn_and_publish_events(self, workload):
        dataset, matcher, candidates = workload
        recorder = TraceRecorder()
        config = RuntimeConfig(workers=2, executor="process", batch_size=64)
        profiles = matcher.prepare_profiles(dataset)
        with PipelineRuntime(config, recorder=recorder) as runtime:
            profiler = runtime.profiler()
            with profiler.stage("pairwise_matching"):
                runtime.run_matching(matcher, dataset, candidates,
                                     profiler=profiler, profiles=profiles)
            with profiler.stage("pairwise_matching"):
                runtime.run_matching(matcher, dataset, candidates,
                                     profiler=profiler, profiles=profiles)
        trace = recorder.trace()
        (spawn,) = trace.find("pool.spawn")
        assert spawn.attributes == {"executor": "process", "workers": 2,
                                    "mode": "warm"}
        (publish,) = trace.find("pool.publish")
        assert publish.attributes["slot"] == "pairwise_matching"
        assert publish.attributes["payload_bytes"] > 0
        # The second call reuses the published payload instead of re-pickling.
        (reuse,) = trace.find("pool.publish_reuse")
        assert reuse.attributes["slot"] == "pairwise_matching"
        counters = trace.counters
        assert counters["pool.spawns"] == 1
        assert counters["pool.publishes"] == 1
        assert counters["pool.publish_reuses"] == 1
        assert counters["pool.publish_bytes"] == publish.attributes["payload_bytes"]

    def test_cold_pool_spawns_per_call(self, workload):
        dataset, matcher, candidates = workload
        recorder = TraceRecorder()
        config = RuntimeConfig(workers=2, executor="thread", batch_size=64,
                               warm_pool=False)
        with PipelineRuntime(config, recorder=recorder) as runtime:
            runtime.run_matching(matcher, dataset, candidates)
            runtime.run_matching(matcher, dataset, candidates)
        trace = recorder.trace()
        spawns = trace.find("pool.spawn")
        assert len(spawns) == 2
        assert all(s.attributes["mode"] == "cold" for s in spawns)
        assert trace.counters["pool.spawns"] == 2


class TestTracedEqualsUntraced:
    @pytest.mark.parametrize("config", ENGINE_CONFIGS)
    def test_decisions_are_byte_identical(self, workload, config):
        """The core observability contract: recording only observes."""
        dataset, matcher, candidates = workload
        with PipelineRuntime(config) as runtime:
            untraced = runtime.run_matching(matcher, dataset, candidates)
        with PipelineRuntime(config, recorder=TraceRecorder()) as runtime:
            traced = runtime.run_matching(matcher, dataset, candidates)
        assert [d.probability for d in traced] == [d.probability for d in untraced]
        assert [d.is_match for d in traced] == [d.is_match for d in untraced]

    def test_pipeline_groups_are_identical_with_a_trace_file(self, tmp_path):
        dataset, _ = figure2_dataset()
        matcher = IdOverlapMatcher()

        def run(config):
            pipeline = EntityGroupMatchingPipeline(
                matcher=matcher,
                blocking=IdOverlapBlocking(),
                runtime=PipelineRuntime(config),
            )
            try:
                return pipeline.run(dataset)
            finally:
                pipeline.close()

        plain = run(RuntimeConfig())
        trace_path = tmp_path / "run.jsonl"
        traced = run(RuntimeConfig(trace=str(trace_path)))
        assert traced.groups.groups == plain.groups.groups
        assert [d.probability for d in traced.decisions] == [
            d.probability for d in plain.decisions
        ]
        assert traced.timings.keys() == plain.timings.keys()
        # And the trace file round-trips with the run span at the root.
        trace = read_trace_jsonl(trace_path)
        (run_span,) = trace.find("pipeline.run", kind="run")
        stage_names = [s.name for s in run_span.children if s.kind == "stage"]
        assert "pairwise_matching" in stage_names


class TestRuntimeRecorderWiring:
    def test_config_trace_builds_a_jsonl_recorder(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        runtime = PipelineRuntime(RuntimeConfig(trace=str(path)))
        assert runtime.recorder.enabled
        with runtime.recorder.span("probe"):
            pass
        runtime.close()
        assert [s.name for s in read_trace_jsonl(path).spans] == ["probe"]

    def test_default_runtime_uses_the_shared_null_recorder(self):
        runtime = PipelineRuntime()
        assert not runtime.recorder.enabled
        assert runtime.profiler().recorder is runtime.recorder

    def test_close_finalises_the_trace_with_metrics(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        runtime = PipelineRuntime(RuntimeConfig(trace=str(path)))
        runtime.recorder.metrics.add("probe.count", 3)
        with runtime.recorder.span("probe"):
            pass
        runtime.close()
        assert read_trace_jsonl(path).counters == {"probe.count": 3}

    def test_sink_records_sorted_stream(self, workload):
        # The MemorySink stream carries span records with resolvable links.
        dataset, matcher, candidates = workload
        sink = MemorySink()
        recorder = TraceRecorder(sink=sink)
        with PipelineRuntime(RuntimeConfig(batch_size=64),
                             recorder=recorder) as runtime:
            profiler = runtime.profiler()
            with profiler.stage("pairwise_matching"):
                runtime.run_matching(matcher, dataset, candidates,
                                     profiler=profiler)
        ids = {r["id"] for r in sink.records if r["type"] == "span"}
        parents = {r["parent"] for r in sink.records
                   if r["type"] == "span" and r["parent"] is not None}
        assert parents <= ids


class TestProfilerAccumulation:
    def test_stage_seconds_accumulate_across_repeats(self):
        """Multi-batch pin: repeated stages add up instead of clobbering.

        An ingest sequence reuses one runtime and times ``delta_blocking``
        once per batch — earlier profiler versions kept only the last batch.
        """
        profiler = StageProfiler()
        profiler.record_stage("delta_blocking", 1.0)
        profiler.record_stage("delta_blocking", 2.0)
        assert profiler.stage_seconds("delta_blocking") == pytest.approx(3.0)

    def test_stage_context_accumulates_across_invocations(self):
        profiler = StageProfiler()
        with profiler.stage("repeated"):
            pass
        first = profiler.stage_seconds("repeated")
        with profiler.stage("repeated"):
            pass
        assert profiler.stage_seconds("repeated") > first

    def test_stage_spans_nest_in_the_attached_recorder(self):
        recorder = TraceRecorder()
        profiler = StageProfiler(recorder=recorder)
        with recorder.span("run", kind="run"):
            with profiler.stage("blocking"):
                profiler.record_chunk("blocking", 0.5, items=10,
                                      start=1.0, end=1.5)
        (run,) = recorder.spans
        (stage,) = run.children
        assert (stage.name, stage.kind) == ("blocking", "stage")
        (chunk,) = stage.children
        assert chunk.attributes == {"index": 0, "items": 10}
        # The flat timing view is fed by the same call.
        assert profiler.chunk_seconds("blocking") == [0.5]

    def test_chunks_without_timeline_skip_the_trace(self):
        recorder = TraceRecorder()
        profiler = StageProfiler(recorder=recorder)
        profiler.record_chunk("blocking", 0.25, items=5)
        assert recorder.spans == []
        assert profiler.chunk_seconds("blocking") == [0.25]
