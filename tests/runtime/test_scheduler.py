"""Unit tests for the execution engine: config, chunking, scheduling,
profiling, the batched matcher path and blocking partitioning."""

import pytest

from repro.blocking import CombinedBlocking, IdOverlapBlocking, TokenOverlapBlocking
from repro.datagen import figure2_dataset
from repro.matching import IdOverlapMatcher, ThresholdNameMatcher
from repro.runtime import (
    ChunkScheduler,
    PipelineRuntime,
    RuntimeConfig,
    StageProfiler,
    chunked,
)


def double_all(chunk):
    """Module-level so the process pool can pickle it."""
    return [value * 2 for value in chunk]


class TestRuntimeConfig:
    def test_defaults_are_serial(self):
        config = RuntimeConfig()
        assert config.workers == 1
        assert not config.is_parallel

    @pytest.mark.parametrize("workers", [0, -1])
    def test_rejects_non_positive_workers(self, workers):
        with pytest.raises(ValueError, match="workers must be a positive integer"):
            RuntimeConfig(workers=workers)

    @pytest.mark.parametrize("batch_size", [0, -5])
    def test_rejects_non_positive_batch_size(self, batch_size):
        with pytest.raises(ValueError, match="batch_size must be a positive integer"):
            RuntimeConfig(batch_size=batch_size)

    def test_rejects_unknown_executor(self):
        with pytest.raises(ValueError, match="executor must be one of"):
            RuntimeConfig(executor="coroutine")


class TestChunked:
    def test_concatenation_is_identity(self):
        items = list(range(13))
        chunks = chunked(items, 4)
        assert [len(c) for c in chunks] == [4, 4, 4, 1]
        assert [value for chunk in chunks for value in chunk] == items

    def test_empty_sequence_yields_no_chunks(self):
        assert chunked([], 8) == []

    def test_oversized_chunk_size_yields_one_chunk(self):
        assert chunked([1, 2], 100) == [[1, 2]]

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            chunked([1], 0)


class TestChunkScheduler:
    @pytest.mark.parametrize(
        "config",
        [
            RuntimeConfig(),
            RuntimeConfig(workers=3, executor="thread"),
            RuntimeConfig(workers=2, executor="process"),
        ],
        ids=["serial", "thread", "process"],
    )
    def test_results_preserve_chunk_order(self, config):
        chunks = chunked(list(range(57)), 10)
        results = ChunkScheduler(config).map_chunks(double_all, chunks)
        assert [v for chunk in results for v in chunk] == [v * 2 for v in range(57)]

    def test_empty_chunk_list(self):
        assert ChunkScheduler(RuntimeConfig(workers=4)).map_chunks(double_all, []) == []

    def test_records_one_timing_per_chunk(self):
        profiler = StageProfiler()
        scheduler = ChunkScheduler(RuntimeConfig(workers=2, executor="thread"))
        chunks = chunked(list(range(40)), 10)
        scheduler.map_chunks(double_all, chunks, stage="work", profiler=profiler)
        assert len(profiler.chunk_seconds("work")) == len(chunks)
        assert all(seconds >= 0 for seconds in profiler.chunk_seconds("work"))


class TestStageProfiler:
    def test_stage_context_manager_records_elapsed(self):
        profiler = StageProfiler()
        with profiler.stage("blocking"):
            pass
        assert profiler.stage_seconds("blocking") >= 0
        assert profiler.stage_seconds("missing") == 0.0

    def test_as_timings_flattens_chunks_with_stable_keys(self):
        profiler = StageProfiler()
        profiler.record_stage("pairwise_matching", 1.5)
        profiler.record_chunk("pairwise_matching", 0.5)
        profiler.record_chunk("pairwise_matching", 1.0)
        timings = profiler.as_timings()
        assert timings["pairwise_matching"] == 1.5
        assert timings["pairwise_matching/chunk000"] == 0.5
        assert timings["pairwise_matching/chunk001"] == 1.0

    @pytest.mark.parametrize("num_chunks", [1, 999, 1000, 12345])
    def test_chunk_keys_sort_lexicographically_at_any_count(self, num_chunks):
        # The pad width grows with the chunk count (min 3 digits), so
        # lexicographic key order equals chunk order past 999 chunks —
        # record-sharded blocking makes thousand-chunk stages routine.
        profiler = StageProfiler()
        for index in range(num_chunks):
            profiler.record_chunk("blocking", float(index))
        keys = [key for key in profiler.as_timings() if key.startswith("blocking/chunk")]
        assert len(keys) == num_chunks
        assert sorted(keys) == keys
        timings = profiler.as_timings()
        assert [timings[key] for key in sorted(keys)] == [float(i) for i in range(num_chunks)]

    def test_pad_width_is_per_stage_and_backward_compatible(self):
        profiler = StageProfiler()
        for index in range(1001):
            profiler.record_chunk("big", float(index))
        profiler.record_chunk("small", 1.0)
        timings = profiler.as_timings()
        # ≤1000 chunks keep the historical three-digit keys.
        assert "small/chunk000" in timings
        # Index 1000 needs four digits — throughout the stage, so the keys
        # still sort.
        assert "big/chunk0000" in timings and "big/chunk1000" in timings
        assert "big/chunk000" not in timings


class TestDecideBatches:
    def test_matches_per_batch_decisions(self):
        companies, _ = figure2_dataset()
        records = companies.records
        pairs = [(records[i], records[j])
                 for i in range(len(records)) for j in range(i + 1, len(records))]
        matcher = ThresholdNameMatcher(similarity_threshold=0.85)
        batches = chunked(pairs, 7)
        fused = matcher.decide_batches(batches)
        assert [len(batch) for batch in fused] == [len(batch) for batch in batches]
        for batch, decided in zip(batches, fused):
            assert decided == matcher.decide(batch)

    def test_empty_batches(self):
        matcher = IdOverlapMatcher()
        assert matcher.decide_batches([]) == []
        assert matcher.decide_batches([[]]) == [[]]


class TestBlockingPartition:
    def test_plain_blocking_is_its_own_partition(self):
        blocking = IdOverlapBlocking()
        assert blocking.partition() == [blocking]

    def test_combined_blocking_partitions_into_members(self):
        members = [IdOverlapBlocking(), TokenOverlapBlocking(top_n=3)]
        assert CombinedBlocking(members).partition() == members

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_parallel_blocking_matches_serial(self, executor):
        companies, _ = figure2_dataset()
        blocking = CombinedBlocking([IdOverlapBlocking(), TokenOverlapBlocking(top_n=3)])
        serial = blocking.candidate_pairs(companies)
        runtime = PipelineRuntime(RuntimeConfig(workers=2, executor=executor))
        assert runtime.run_blocking(blocking, companies) == serial
