"""Golden end-to-end regression harness.

Pins the full pipeline's behaviour on a fixed-seed generated dataset: the
three-stage scores (pairwise / pre-cleanup / post-cleanup) and the group
counts must match the values recorded when the execution engine landed, for
the serial engine and for both parallel engines — and the parallel engines
must reproduce the serial artefacts *identically* (same decisions, same
edges, same groups), which is the runtime's central determinism guarantee.

If a change in matching, blocking, clean-up or the runtime shifts any of
these numbers, this suite fails and the pinned values must be re-derived
consciously (PYTHONPATH=src python -m pytest tests/runtime -q will print the
observed values on failure).

Tie-breaking note: the graphs layer iterates adjacency in sorted order
(``Graph.edges`` / ``Graph.subgraph`` / ``sorted_neighbors`` and the
maxflow/betweenness traversals built on them), so clean-up tie-breaks no
longer depend on ``PYTHONHASHSEED``.  The pins below were re-derived after
that change landed and came out identical — the golden dataset has no
minimum-cut or betweenness ties — but tie-prone datasets now reproduce
bit-for-bit under any hash seed (see
``tests/core/test_cleanup_determinism.py``).
"""

import pytest

from repro.blocking import CombinedBlocking, IdOverlapBlocking, TokenOverlapBlocking
from repro.core.cleanup import CleanupConfig
from repro.core.metrics import group_matching_scores, pairwise_scores
from repro.core.pipeline import EntityGroupMatchingPipeline
from repro.core.precleanup import PreCleanupConfig
from repro.datagen import GenerationConfig, generate_benchmark
from repro.matching import LogisticRegressionMatcher
from repro.matching.pairs import as_record_pairs, build_labeled_pairs
from repro.runtime import RuntimeConfig

#: Pinned golden values (seed 42, 50 entities, 4 sources; logistic matcher).
GOLDEN = {
    "num_records": 172,
    "num_candidates": 272,
    "num_positive": 224,
    "pairwise_f1": 0.966592428,
    "pre_cleanup_f1": 0.90349076,
    "post_cleanup_f1": 0.968325792,
    "pairwise_precision": 0.96875,
    "post_cleanup_precision": 0.986175115,
    "num_groups": 51,
    "num_pre_cleanup_groups": 46,
}

RUNTIMES = [
    pytest.param(None, id="serial"),
    pytest.param(RuntimeConfig(workers=2, batch_size=64, executor="thread"), id="thread"),
    pytest.param(RuntimeConfig(workers=2, batch_size=64, executor="process"), id="process"),
    pytest.param(
        RuntimeConfig(workers=2, batch_size=64, executor="thread", blocking_shards=4),
        id="thread-sharded",
    ),
    pytest.param(
        RuntimeConfig(workers=2, batch_size=64, executor="process", blocking_shards=4),
        id="process-sharded",
    ),
]


@pytest.fixture(scope="module")
def golden_setup():
    benchmark = generate_benchmark(
        GenerationConfig(num_entities=50, num_sources=4, seed=42,
                         acquisition_rate=0.05, merger_rate=0.05)
    )
    companies = benchmark.companies
    pairs = build_labeled_pairs(companies, negative_ratio=3, seed=0)
    record_pairs, labels = as_record_pairs(pairs)
    matcher = LogisticRegressionMatcher(num_iterations=120).fit(record_pairs, labels)
    return companies, matcher


def run_golden_pipeline(golden_setup, runtime):
    companies, matcher = golden_setup
    pipeline = EntityGroupMatchingPipeline(
        matcher=matcher,
        blocking=CombinedBlocking([IdOverlapBlocking(), TokenOverlapBlocking(top_n=3)]),
        cleanup_config=CleanupConfig.for_num_sources(4),
        pre_cleanup_config=PreCleanupConfig(max_component_size=30),
        runtime=runtime,
    )
    return pipeline.run(companies)


@pytest.fixture(scope="module")
def serial_result(golden_setup):
    return run_golden_pipeline(golden_setup, None)


@pytest.mark.parametrize("runtime", RUNTIMES)
class TestGoldenScores:
    def test_pinned_counts_and_scores(self, golden_setup, runtime):
        companies, _ = golden_setup
        result = run_golden_pipeline(golden_setup, runtime)
        truth = companies.true_matches()
        pairwise = pairwise_scores(result.positive_edges, truth)
        pre = group_matching_scores(result.pre_cleanup_groups, truth)
        post = group_matching_scores(result.groups, truth)

        observed = {
            "num_records": len(companies),
            "num_candidates": result.num_candidates,
            "num_positive": result.num_positive,
            "pairwise_f1": round(pairwise.f1, 9),
            "pre_cleanup_f1": round(pre.f1, 9),
            "post_cleanup_f1": round(post.f1, 9),
            "pairwise_precision": round(pairwise.precision, 9),
            "post_cleanup_precision": round(post.precision, 9),
            "num_groups": len(result.groups),
            "num_pre_cleanup_groups": len(result.pre_cleanup_groups),
        }
        assert observed == GOLDEN


@pytest.mark.parametrize("runtime", RUNTIMES[1:])
class TestParallelIdenticalToSerial:
    def test_all_artefacts_identical(self, golden_setup, runtime):
        # The determinism contract: at a fixed batch_size, worker count and
        # executor must not change a single bit of the output (chunk shapes
        # are identical, merge order is submission order).
        serial = run_golden_pipeline(
            golden_setup, RuntimeConfig(workers=1, batch_size=runtime.batch_size)
        )
        parallel = run_golden_pipeline(golden_setup, runtime)
        assert parallel.candidates == serial.candidates
        assert parallel.decisions == serial.decisions
        assert parallel.positive_edges == serial.positive_edges
        assert parallel.pre_cleanup_removed == serial.pre_cleanup_removed
        assert parallel.groups.groups == serial.groups.groups
        assert parallel.pre_cleanup_groups.groups == serial.pre_cleanup_groups.groups

    def test_groups_match_default_serial_engine(self, golden_setup, serial_result, runtime):
        # On the golden dataset the final EntityGroups also survive a
        # *different* batch shape (the default single-chunk serial engine):
        # no probability sits within one ULP of the decision threshold.
        parallel = run_golden_pipeline(golden_setup, runtime)
        assert parallel.groups.groups == serial_result.groups.groups
        assert parallel.pre_cleanup_groups.groups == serial_result.pre_cleanup_groups.groups


@pytest.mark.parametrize("workers", [1, 2])
def test_runs_record_chunk_timings(golden_setup, workers):
    result = run_golden_pipeline(
        golden_setup, RuntimeConfig(workers=workers, batch_size=64, executor="thread")
    )
    chunk_keys = [key for key in result.timings if key.startswith("pairwise_matching/chunk")]
    # 272 candidates at batch size 64 -> 5 chunks, serial and parallel alike.
    assert len(chunk_keys) == 5
    assert {"blocking", "pairwise_matching", "graph_cleanup"} <= set(result.timings)
