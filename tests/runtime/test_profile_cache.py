"""The profiled inference path: byte-identical to record-pair inference.

``RuntimeConfig.profile_cache`` selects how ``run_matching`` ships work to
the pool — per-record profiles prepared once + bare id pairs (on), or the
record objects themselves (off).  The contract mirrors the sharded-blocking
suite: the knob must never change a single bit of the output, at any worker
count, on either executor, and matchers that do not implement the profiled
protocol must fall back to the record-pair path transparently.
"""

import pytest

from repro.blocking import CombinedBlocking, IdOverlapBlocking, TokenOverlapBlocking
from repro.core.cleanup import CleanupConfig
from repro.core.pipeline import EntityGroupMatchingPipeline
from repro.core.precleanup import PreCleanupConfig
from repro.datagen import GenerationConfig, generate_benchmark
from repro.matching import LogisticRegressionMatcher, ThresholdNameMatcher
from repro.matching.base import PairwiseMatcher
from repro.matching.heuristic import IdOverlapMatcher
from repro.matching.pairs import as_record_pairs, build_labeled_pairs
from repro.runtime import PipelineRuntime, RuntimeConfig


@pytest.fixture(scope="module")
def setup():
    benchmark = generate_benchmark(
        GenerationConfig(num_entities=40, num_sources=4, seed=7,
                         acquisition_rate=0.05, merger_rate=0.05)
    )
    companies = benchmark.companies
    pairs = build_labeled_pairs(companies, negative_ratio=3, seed=0)
    record_pairs, labels = as_record_pairs(pairs)
    matcher = LogisticRegressionMatcher(num_iterations=80).fit(record_pairs, labels)
    blocking = CombinedBlocking([IdOverlapBlocking(), TokenOverlapBlocking(top_n=3)])
    candidates = blocking.candidate_pairs(companies)
    return companies, matcher, blocking, candidates


def run_matching(companies, matcher, candidates, **config):
    runtime = PipelineRuntime(RuntimeConfig(batch_size=32, **config))
    return runtime.run_matching(matcher, companies, candidates)


CONFIGS = [
    pytest.param({"workers": 1}, id="serial"),
    pytest.param({"workers": 2, "executor": "thread"}, id="thread"),
    pytest.param({"workers": 2, "executor": "process"}, id="process"),
]


@pytest.mark.parametrize("config", CONFIGS)
class TestCacheOnEqualsCacheOff:
    def test_logistic_decisions_bitwise_identical(self, setup, config):
        companies, matcher, _, candidates = setup
        cached = run_matching(companies, matcher, candidates,
                              profile_cache=True, **config)
        uncached = run_matching(companies, matcher, candidates,
                                profile_cache=False, **config)
        # Dataclass equality covers ids, verdicts and exact probabilities —
        # the knob trades work for speed, never a single bit of output.
        assert cached == uncached
        assert [d.probability for d in cached] == [d.probability for d in uncached]

    def test_threshold_matcher_decisions_identical(self, setup, config):
        companies, _, _, candidates = setup
        matcher = ThresholdNameMatcher(similarity_threshold=0.9)
        cached = run_matching(companies, matcher, candidates,
                              profile_cache=True, **config)
        uncached = run_matching(companies, matcher, candidates,
                                profile_cache=False, **config)
        assert cached == uncached

    def test_profile_incapable_matcher_falls_back(self, setup, config):
        companies, _, _, candidates = setup
        matcher = IdOverlapMatcher()
        assert not matcher.profile_capable
        cached = run_matching(companies, matcher, candidates,
                              profile_cache=True, **config)
        uncached = run_matching(companies, matcher, candidates,
                                profile_cache=False, **config)
        assert cached == uncached


class TestEndToEndPipeline:
    @pytest.mark.parametrize("runtime_config", [
        pytest.param(RuntimeConfig(batch_size=64, profile_cache=False), id="serial-off"),
        pytest.param(
            RuntimeConfig(workers=2, batch_size=64, executor="process",
                          profile_cache=False),
            id="process-off",
        ),
    ])
    def test_groups_identical_with_cache_on_and_off(self, setup, runtime_config):
        companies, matcher, blocking, _ = setup

        def run(runtime):
            pipeline = EntityGroupMatchingPipeline(
                matcher=matcher,
                blocking=blocking,
                cleanup_config=CleanupConfig.for_num_sources(4),
                pre_cleanup_config=PreCleanupConfig(max_component_size=30),
                runtime=runtime,
            )
            return pipeline.run(companies)

        from dataclasses import replace

        off = run(runtime_config)
        on = run(replace(runtime_config, profile_cache=True))
        assert on.decisions == off.decisions
        assert on.positive_edges == off.positive_edges
        assert on.groups.groups == off.groups.groups
        assert on.pre_cleanup_groups.groups == off.pre_cleanup_groups.groups


class TestProfiledPathMechanics:
    def test_empty_candidates_return_no_decisions(self, setup):
        companies, matcher, _, _ = setup
        assert run_matching(companies, matcher, [], workers=1) == []

    def test_prepare_profiles_called_once_per_run(self, setup):
        companies, _, _, candidates = setup

        class CountingMatcher(ThresholdNameMatcher):
            prepare_calls = 0

            def prepare_profiles(self, records):  # repro-lint: disable=protocol-conformance -- counting wrapper; flag and the rest of the protocol are inherited
                type(self).prepare_calls += 1
                return super().prepare_profiles(records)

        matcher = CountingMatcher(similarity_threshold=0.9)
        decisions = run_matching(companies, matcher, candidates, workers=1)
        assert len(decisions) == len(candidates)
        # batch_size=32 means many chunks, but the store is prepared once.
        assert CountingMatcher.prepare_calls == 1

    def test_profiled_chunk_shapes_match_record_path(self, setup):
        # The chunking — and therefore the numeric batch shape a vectorised
        # matcher sees — depends only on batch_size, not on the route.
        from repro.runtime import StageProfiler

        companies, matcher, _, candidates = setup
        profilers = {}
        for cache in (True, False):
            profiler = StageProfiler()
            runtime = PipelineRuntime(RuntimeConfig(batch_size=32, profile_cache=cache))
            runtime.run_matching(matcher, companies, candidates, profiler)
            profilers[cache] = [
                key for key in profiler.as_timings()
                if key.startswith("pairwise_matching/chunk")
            ]
        assert profilers[True] == profilers[False]

    def test_base_matcher_profiled_entry_points_raise(self):
        class Plain(PairwiseMatcher):
            def predict_proba(self, pairs):
                return [0.0 for _ in pairs]

        plain = Plain()
        with pytest.raises(NotImplementedError):
            plain.prepare_profiles([])
        with pytest.raises(NotImplementedError):
            plain.decide_profiled(None, [("a", "b")])

    def test_config_rejects_non_bool_profile_cache(self):
        with pytest.raises(ValueError):
            RuntimeConfig(profile_cache="yes")
