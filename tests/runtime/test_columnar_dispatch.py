"""Columnar dispatch: byte-identical to the object route, at any setting.

``RuntimeConfig.columnar_dispatch`` selects whether profiled inference
chunks run ``score_profiled`` (probability arrays, lazy
:class:`~repro.matching.decisions.DecisionVector`) or ``decide_profiled``
(per-pair :class:`~repro.matching.base.MatchDecision` objects).  The
contract mirrors the profile-cache suite: the knob must never change a
single bit of the output — decisions, positive edges, groups — at any
worker count, on either executor, warm pool on or off; matchers without
the columnar protocol must fall back to the object route transparently.
"""

import numpy as np
import pytest

from repro.blocking import CombinedBlocking, IdOverlapBlocking, TokenOverlapBlocking
from repro.core.cleanup import CleanupConfig
from repro.core.pipeline import EntityGroupMatchingPipeline
from repro.core.precleanup import PreCleanupConfig
from repro.core.stages import apply_pre_cleanup
from repro.datagen import GenerationConfig, generate_benchmark
from repro.matching import LogisticRegressionMatcher, ThresholdNameMatcher
from repro.matching.decisions import DecisionVector
from repro.matching.heuristic import IdOverlapMatcher
from repro.matching.pairs import as_record_pairs, build_labeled_pairs
from repro.runtime import PipelineRuntime, RuntimeConfig, StageProfiler


@pytest.fixture(scope="module")
def setup():
    benchmark = generate_benchmark(
        GenerationConfig(num_entities=40, num_sources=4, seed=7,
                         acquisition_rate=0.05, merger_rate=0.05)
    )
    companies = benchmark.companies
    pairs = build_labeled_pairs(companies, negative_ratio=3, seed=0)
    record_pairs, labels = as_record_pairs(pairs)
    matcher = LogisticRegressionMatcher(num_iterations=80).fit(record_pairs, labels)
    blocking = CombinedBlocking([IdOverlapBlocking(), TokenOverlapBlocking(top_n=3)])
    candidates = blocking.candidate_pairs(companies)
    return companies, matcher, blocking, candidates


def run_matching(companies, matcher, candidates, **config):
    with PipelineRuntime(RuntimeConfig(batch_size=32, **config)) as runtime:
        return runtime.run_matching(matcher, companies, candidates)


CONFIGS = [
    pytest.param({"workers": 1}, id="serial"),
    pytest.param({"workers": 2, "executor": "thread"}, id="thread"),
    pytest.param({"workers": 2, "executor": "process"}, id="process"),
    pytest.param({"workers": 2, "executor": "process", "warm_pool": False},
                 id="process-cold"),
    pytest.param({"workers": 2, "executor": "thread", "warm_pool": False},
                 id="thread-cold"),
]


@pytest.mark.parametrize("config", CONFIGS)
class TestColumnarOnEqualsOff:
    def test_logistic_decisions_bitwise_identical(self, setup, config):
        companies, matcher, _, candidates = setup
        columnar = run_matching(companies, matcher, candidates,
                                columnar_dispatch=True, **config)
        objects = run_matching(companies, matcher, candidates,
                               columnar_dispatch=False, **config)
        assert isinstance(columnar, DecisionVector)
        assert not isinstance(objects, DecisionVector)
        # Element-wise dataclass equality covers ids, verdicts and exact
        # probabilities — both comparison directions go through the vector.
        assert columnar == objects
        assert [d.probability for d in columnar] == [d.probability for d in objects]
        assert [d.is_match for d in columnar] == [d.is_match for d in objects]

    def test_threshold_matcher_decisions_identical(self, setup, config):
        companies, _, _, candidates = setup
        matcher = ThresholdNameMatcher(similarity_threshold=0.9)
        columnar = run_matching(companies, matcher, candidates,
                                columnar_dispatch=True, **config)
        objects = run_matching(companies, matcher, candidates,
                               columnar_dispatch=False, **config)
        assert columnar == objects

    def test_non_columnar_matcher_falls_back(self, setup, config):
        companies, _, _, candidates = setup
        matcher = IdOverlapMatcher()
        assert not matcher.columnar_capable
        on = run_matching(companies, matcher, candidates,
                          columnar_dispatch=True, **config)
        off = run_matching(companies, matcher, candidates,
                           columnar_dispatch=False, **config)
        assert not isinstance(on, DecisionVector)
        assert on == off

    def test_pre_cleanup_mask_fast_path_identical(self, setup, config):
        companies, matcher, _, candidates = setup
        pre_config = PreCleanupConfig(max_component_size=30)
        columnar = run_matching(companies, matcher, candidates,
                                columnar_dispatch=True, **config)
        objects = run_matching(companies, matcher, candidates,
                               columnar_dispatch=False, **config)
        assert (
            apply_pre_cleanup(columnar, candidates, pre_config)
            == apply_pre_cleanup(objects, candidates, pre_config)
        )


class TestEndToEndPipeline:
    @pytest.mark.parametrize("runtime_config", [
        pytest.param(RuntimeConfig(batch_size=64), id="serial"),
        pytest.param(
            RuntimeConfig(workers=2, batch_size=64, executor="process"),
            id="process",
        ),
        pytest.param(
            RuntimeConfig(workers=2, batch_size=64, executor="process",
                          warm_pool=False),
            id="process-cold",
        ),
    ])
    def test_groups_identical_with_columnar_on_and_off(self, setup, runtime_config):
        companies, matcher, blocking, _ = setup

        def run(runtime):
            pipeline = EntityGroupMatchingPipeline(
                matcher=matcher,
                blocking=blocking,
                cleanup_config=CleanupConfig.for_num_sources(4),
                pre_cleanup_config=PreCleanupConfig(max_component_size=30),
                runtime=runtime,
            )
            return pipeline.run(companies)

        from dataclasses import replace

        on = run(runtime_config)
        off = run(replace(runtime_config, columnar_dispatch=False))
        assert isinstance(on.decisions, DecisionVector)
        assert on.decisions == off.decisions
        assert on.positive_edges == off.positive_edges
        assert on.groups.groups == off.groups.groups
        assert on.pre_cleanup_groups.groups == off.pre_cleanup_groups.groups


class TestDecisionVector:
    def make(self):
        pairs = [("a", "b"), ("c", "d"), ("e", "f")]
        probabilities = np.array([0.9, 0.2, 0.5], dtype=np.float64)
        return DecisionVector(pairs, probabilities, threshold=0.5)

    def test_sequence_protocol(self):
        vector = self.make()
        assert len(vector) == 3
        assert vector[0].pair == ("a", "b")
        assert vector[0].probability == 0.9
        assert vector[0].is_match is True
        assert vector[1].is_match is False
        assert vector[2].is_match is True  # >= threshold, like decide()
        assert vector[-1] == vector[2]
        assert vector[1:] == [vector[1], vector[2]]
        assert [d.left_id for d in vector] == ["a", "c", "e"]

    def test_equality_against_lists_both_directions(self):
        vector = self.make()
        materialised = list(vector)
        assert vector == materialised
        assert materialised == vector
        assert vector != materialised[:2]
        assert vector != [*materialised[:2], vector[0]]

    def test_positive_pairs_matches_object_filter(self):
        vector = self.make()
        assert vector.positive_pairs() == [
            decision.pair for decision in vector if decision.is_match
        ]

    def test_explicit_mask_overrides_threshold(self):
        vector = DecisionVector(
            [("a", "b")], np.array([0.9]), is_match=np.array([False])
        )
        assert vector[0].is_match is False
        assert vector.positive_pairs() == []

    def test_misaligned_lengths_rejected(self):
        with pytest.raises(ValueError):
            DecisionVector([("a", "b")], np.zeros(2), threshold=0.5)
        with pytest.raises(ValueError):
            DecisionVector([("a", "b")], np.zeros(1))  # no threshold, no mask


class TestMechanics:
    def test_chunk_items_record_pair_counts(self, setup):
        companies, matcher, _, candidates = setup
        profiler = StageProfiler()
        with PipelineRuntime(RuntimeConfig(batch_size=32)) as runtime:
            runtime.run_matching(matcher, companies, candidates, profiler)
        items = profiler.chunk_items("pairwise_matching")
        assert sum(items) == len(candidates)
        assert all(count <= 32 for count in items)
        throughput = profiler.chunk_throughput("pairwise_matching")
        assert len(throughput) == len(items)
        assert all(t is None or t > 0 for t in throughput)
        assert profiler.stage_throughput("pairwise_matching") > 0

    def test_precomputed_id_pairs_short_circuit(self, setup):
        companies, matcher, _, candidates = setup
        id_pairs = [(c.left_id, c.right_id) for c in candidates]
        with PipelineRuntime(RuntimeConfig(batch_size=32)) as runtime:
            direct = runtime.run_matching(matcher, companies, candidates)
            precomputed = runtime.run_matching(
                matcher, companies, candidates, id_pairs=id_pairs
            )
        assert direct == precomputed

    def test_misaligned_id_pairs_rejected(self, setup):
        companies, matcher, _, candidates = setup
        with PipelineRuntime(RuntimeConfig(batch_size=32)) as runtime:
            with pytest.raises(ValueError):
                runtime.run_matching(
                    matcher, companies, candidates, id_pairs=[("a", "b")]
                )

    def test_config_rejects_non_bool_columnar_dispatch(self):
        with pytest.raises(ValueError):
            RuntimeConfig(columnar_dispatch="yes")

    def test_spec_roundtrip_keeps_columnar_dispatch(self):
        from repro.specs.pipeline import RuntimeSpec

        spec = RuntimeSpec(columnar_dispatch=False)
        assert spec.to_dict() == {"columnar_dispatch": False}
        parsed = RuntimeSpec.from_dict(spec.to_dict(), "pipeline.runtime")
        assert parsed.columnar_dispatch is False
        assert parsed.to_runtime_config().columnar_dispatch is False
        assert RuntimeSpec().to_dict() == {}  # default on stays implicit
