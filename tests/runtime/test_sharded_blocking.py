"""Golden regression for record-sharded candidate generation.

The determinism contract under test: at any shard count, on either
executor, at any worker count, ``PipelineRuntime.run_blocking`` must
produce candidate pairs *byte-identical* to the serial run — same pairs,
same order, same blocking tags, including the first-blocking-wins
de-duplication of :class:`~repro.blocking.combine.CombinedBlocking`.
Sharding must never change document frequencies or per-record top-n
selections, because the shared index is built globally and only the
scoring is partitioned.
"""

import pytest

from repro.blocking import (
    CombinedBlocking,
    IdOverlapBlocking,
    IssuerMatchBlocking,
    TokenOverlapBlocking,
)
from repro.blocking.base import Blocking, dedupe_pairs
from repro.datagen import GenerationConfig, generate_benchmark
from repro.matching import IdOverlapMatcher
from repro.core.pipeline import EntityGroupMatchingPipeline
from repro.runtime import PipelineRuntime, RuntimeConfig, split_evenly

SHARD_COUNTS = [1, 2, 7]
EXECUTORS = ["thread", "process"]


@pytest.fixture(scope="module")
def golden_data():
    return generate_benchmark(
        GenerationConfig(num_entities=50, num_sources=4, seed=42,
                         acquisition_rate=0.05, merger_rate=0.05)
    )


@pytest.fixture(scope="module")
def combined_blocking():
    return CombinedBlocking([IdOverlapBlocking(), TokenOverlapBlocking(top_n=3)])


@pytest.fixture(scope="module")
def serial_pairs(golden_data, combined_blocking):
    return combined_blocking.candidate_pairs(golden_data.companies)


class TestShardedByteIdentity:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_combined_blocking_matches_serial(
        self, golden_data, combined_blocking, serial_pairs, shards, executor
    ):
        runtime = PipelineRuntime(RuntimeConfig(
            workers=2, executor=executor, blocking_shards=shards
        ))
        sharded = runtime.run_blocking(combined_blocking, golden_data.companies)
        # Full CandidatePair equality: ids, order AND blocking tags — the
        # tags prove first-blocking-wins survived the sharded merge.
        assert sharded == serial_pairs

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_first_blocking_wins_tags(self, golden_data, combined_blocking, shards):
        companies = golden_data.companies
        runtime = PipelineRuntime(RuntimeConfig(
            workers=2, executor="thread", blocking_shards=shards
        ))
        sharded = runtime.run_blocking(combined_blocking, companies)
        id_keys = {p.key for p in IdOverlapBlocking().candidate_pairs(companies)}
        assert any(pair.key in id_keys for pair in sharded)
        for pair in sharded:
            if pair.key in id_keys:
                assert pair.blocking == "id_overlap"

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_issuer_match_matches_serial(self, golden_data, shards, executor):
        blocking = IssuerMatchBlocking.from_ground_truth(golden_data.companies)
        serial = blocking.candidate_pairs(golden_data.securities)
        runtime = PipelineRuntime(RuntimeConfig(
            workers=2, executor=executor, blocking_shards=shards
        ))
        assert runtime.run_blocking(blocking, golden_data.securities) == serial

    def test_serial_worker_with_shards_matches_serial(
        self, golden_data, combined_blocking, serial_pairs
    ):
        # Sharding is orthogonal to pooling: one worker + many shards runs
        # the chunk tasks in-process and must still merge identically.
        runtime = PipelineRuntime(RuntimeConfig(workers=1, blocking_shards=7))
        assert runtime.run_blocking(combined_blocking, golden_data.companies) == serial_pairs

    def test_more_shards_than_records(self, golden_data, combined_blocking, serial_pairs):
        runtime = PipelineRuntime(RuntimeConfig(
            workers=2, executor="thread",
            blocking_shards=len(golden_data.companies) + 100,
        ))
        assert runtime.run_blocking(combined_blocking, golden_data.companies) == serial_pairs


class TestShardableProtocol:
    @pytest.mark.parametrize("shards", [2, 3, 7])
    def test_chunk_concatenation_reproduces_serial(self, golden_data, shards):
        # The per-blocking contract the engine builds on, exercised without
        # the engine: concat over consecutive chunks + one dedupe == serial.
        companies, securities = golden_data.companies, golden_data.securities
        cases = [
            (IdOverlapBlocking(), companies),
            (TokenOverlapBlocking(top_n=3), companies),
            (IdOverlapBlocking(), securities),
            (IssuerMatchBlocking.from_ground_truth(companies), securities),
        ]
        for blocking, dataset in cases:
            assert blocking.shardable
            shared = blocking.prepare(dataset)
            merged = []
            for chunk in split_evenly(dataset.records, shards):
                merged.extend(blocking.candidates_for(shared, chunk))
            assert dedupe_pairs(merged) == blocking.candidate_pairs(dataset)

    def test_non_shardable_blocking_falls_back_to_one_task(self, golden_data):
        calls = {"candidate_pairs": 0, "prepare": 0}

        class OpaqueBlocking(Blocking):
            name = "opaque"

            def candidate_pairs(self, dataset):
                calls["candidate_pairs"] += 1
                return IdOverlapBlocking().candidate_pairs(dataset)

            def prepare(self, dataset):  # pragma: no cover - must not run  # repro-lint: disable=protocol-conformance -- deliberately unshardable; prepare() exists to prove the fallback never calls it
                calls["prepare"] += 1
                return super().prepare(dataset)

        serial = IdOverlapBlocking().candidate_pairs(golden_data.companies)
        runtime = PipelineRuntime(RuntimeConfig(
            workers=2, executor="thread", blocking_shards=4
        ))
        assert runtime.run_blocking(OpaqueBlocking(), golden_data.companies) == serial
        assert calls == {"candidate_pairs": 1, "prepare": 0}

    def test_base_class_rejects_sharded_calls(self, golden_data):
        class Opaque(Blocking):
            def candidate_pairs(self, dataset):
                return []

        blocking = Opaque()
        assert not blocking.shardable
        with pytest.raises(NotImplementedError, match="record-sharded"):
            blocking.prepare(golden_data.companies)
        with pytest.raises(NotImplementedError, match="record-sharded"):
            blocking.candidates_for(None, golden_data.companies.records)

    def test_combined_blocking_is_not_directly_shardable(self, combined_blocking):
        # Sharding a combined blocking as a whole would interleave members;
        # the engine shards its partition() parts instead.
        assert not combined_blocking.shardable


class TestShardedPipelineEndToEnd:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_pipeline_artefacts_identical_to_serial(
        self, golden_data, combined_blocking, shards
    ):
        def run(runtime):
            return EntityGroupMatchingPipeline(
                matcher=IdOverlapMatcher(),
                blocking=combined_blocking,
                runtime=runtime,
            ).run(golden_data.companies)

        serial = run(None)
        sharded = run(RuntimeConfig(
            workers=2, executor="thread", blocking_shards=shards
        ))
        assert sharded.candidates == serial.candidates
        assert sharded.decisions == serial.decisions
        assert sharded.groups.groups == serial.groups.groups

    def test_blocking_chunk_timings_are_recorded(self, golden_data, combined_blocking):
        result = EntityGroupMatchingPipeline(
            matcher=IdOverlapMatcher(),
            blocking=combined_blocking,
            runtime=RuntimeConfig(workers=2, executor="thread", blocking_shards=3),
        ).run(golden_data.companies)
        chunk_keys = [key for key in result.timings if key.startswith("blocking/chunk")]
        # Two shardable parts × 3 record shards = 6 blocking tasks.
        assert len(chunk_keys) == 6


class TestSplitEvenly:
    def test_concatenation_is_identity(self):
        items = list(range(23))
        chunks = split_evenly(items, 5)
        assert [len(c) for c in chunks] == [5, 5, 5, 4, 4]
        assert [v for chunk in chunks for v in chunk] == items

    def test_more_parts_than_items_skips_empties(self):
        assert split_evenly([1, 2, 3], 10) == [[1], [2], [3]]

    def test_empty_items(self):
        assert split_evenly([], 4) == []

    def test_single_part(self):
        assert split_evenly([1, 2, 3], 1) == [[1, 2, 3]]

    def test_rejects_non_positive_parts(self):
        with pytest.raises(ValueError, match="parts must be a positive integer"):
            split_evenly([1], 0)

    @pytest.mark.parametrize("count,parts", [(0, 3), (5, 1), (23, 5), (3, 10), (7, 7)])
    def test_spans_tile_the_record_range(self, count, parts):
        # even_spans is the index arithmetic split_evenly is built on; the
        # engine ships these spans instead of record copies, so they must
        # tile [0, count) exactly in order.
        from repro.runtime import even_spans

        spans = even_spans(count, parts)
        assert spans == [
            (chunk[0], chunk[-1] + 1)
            for chunk in split_evenly(list(range(count)), parts)
        ]


class TestConfigValidation:
    @pytest.mark.parametrize("shards", [0, -3])
    def test_rejects_non_positive_blocking_shards(self, shards):
        with pytest.raises(ValueError, match="blocking_shards must be a positive"):
            RuntimeConfig(blocking_shards=shards)
