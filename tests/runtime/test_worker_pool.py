"""The persistent worker pool and the shared-state epoch protocol.

Covers the three bugfix contracts of the warm-pool engine:

* **failure semantics** — a chunk task that raises mid-batch surfaces the
  *original* exception (first by submission order), cancels the remaining
  work, and leaves the pool disposed-but-usable — under thread and process
  executors, warm and cold,
* **sizing** — a warm pool is sized once from ``RuntimeConfig.workers`` and
  is never rebuilt because a call carries fewer (or more) chunks than there
  are slots,
* **staleness** — consecutive ``run_matching`` calls with *different*
  profile stores on the same warm pool must score from the new store
  (epoch bump), while an unchanged store is reused without re-shipping.
"""

import pytest

from repro.datagen import GenerationConfig, generate_benchmark
from repro.matching import LogisticRegressionMatcher
from repro.matching.pairs import as_record_pairs, build_labeled_pairs
from repro.runtime import (
    ChunkScheduler,
    PipelineRuntime,
    RuntimeConfig,
    WorkerPool,
    chunked,
)


class ChunkExploded(RuntimeError):
    """Raised by the exploding worker task (distinctive, picklable)."""


def explode_on_negative(chunk):
    """Module-level worker fn: fails loudly on any negative value."""
    if any(value < 0 for value in chunk):
        raise ChunkExploded(f"poisoned chunk: {chunk}")
    return [value * 2 for value in chunk]


def shared_explode_on_negative(shared, chunk):
    """Shared-payload variant, exercising the epoch/initializer path."""
    assert shared == "payload"
    return explode_on_negative(chunk)


@pytest.mark.parametrize("executor", ["thread", "process"])
@pytest.mark.parametrize("warm", [True, False], ids=["warm", "cold"])
class TestFailureSemantics:
    def config(self, executor, warm):
        return RuntimeConfig(workers=2, executor=executor, warm_pool=warm)

    def test_reraises_the_original_worker_exception(self, executor, warm):
        scheduler = ChunkScheduler(self.config(executor, warm))
        chunks = [[1, 2], [3, -4], [5, 6], [7, 8]]
        with pytest.raises(ChunkExploded, match=r"poisoned chunk: \[3, -4\]"):
            scheduler.map_chunks(explode_on_negative, chunks)
        scheduler.close()

    def test_reraises_with_a_shared_payload(self, executor, warm):
        scheduler = ChunkScheduler(self.config(executor, warm))
        chunks = [[1, 2], [-3], [5, 6]]
        with pytest.raises(ChunkExploded, match=r"poisoned chunk: \[-3\]"):
            scheduler.map_chunks(shared_explode_on_negative, chunks, shared="payload")
        scheduler.close()

    def test_first_failure_by_submission_order_wins(self, executor, warm):
        # Two poisoned chunks: whichever *finishes* first must not decide —
        # the earliest submitted failure is the one re-raised.
        scheduler = ChunkScheduler(self.config(executor, warm))
        chunks = [[1], [-2], [3], [-4]]
        with pytest.raises(ChunkExploded, match=r"poisoned chunk: \[-2\]"):
            scheduler.map_chunks(explode_on_negative, chunks)
        scheduler.close()

    def test_pool_is_usable_after_a_failure(self, executor, warm):
        scheduler = ChunkScheduler(self.config(executor, warm))
        with pytest.raises(ChunkExploded):
            scheduler.map_chunks(explode_on_negative, [[1], [-1], [2]])
        # The next call must succeed on a fresh (respawned) pool.
        chunks = chunked(list(range(20)), 5)
        results = scheduler.map_chunks(explode_on_negative, chunks)
        assert [v for chunk in results for v in chunk] == [v * 2 for v in range(20)]
        scheduler.close()

    def test_failure_disposes_the_warm_executor(self, executor, warm):
        if not warm:
            pytest.skip("cold pools are per-call by construction")
        scheduler = ChunkScheduler(self.config(executor, warm))
        with pytest.raises(ChunkExploded):
            scheduler.map_chunks(explode_on_negative, [[1], [-1]])
        pool = scheduler.pool
        assert pool is not None
        assert pool._executor is None  # disposed, not merely drained
        scheduler.map_chunks(explode_on_negative, [[1], [2]])
        assert pool.stats.spawns == 2  # respawned exactly once
        scheduler.close()


class TestWarmPoolSizing:
    def test_sized_from_config_not_task_count(self):
        scheduler = ChunkScheduler(RuntimeConfig(workers=4, executor="thread"))
        scheduler.map_chunks(explode_on_negative, [[1], [2]])
        pool = scheduler.pool
        assert pool is not None
        assert pool.workers == 4
        assert pool.executor._max_workers == 4
        scheduler.close()

    def test_chunk_count_changes_do_not_rebuild_the_pool(self):
        scheduler = ChunkScheduler(RuntimeConfig(workers=3, executor="thread"))
        executors = []
        for num_chunks in (2, 8, 3, 16):
            chunks = [[index] for index in range(num_chunks)]
            scheduler.map_chunks(explode_on_negative, chunks)
            executors.append(scheduler.pool.executor)
        assert all(executor is executors[0] for executor in executors)
        assert scheduler.pool.stats.spawns == 1
        scheduler.close()

    def test_single_chunk_runs_inline_without_spawning(self):
        scheduler = ChunkScheduler(RuntimeConfig(workers=4, executor="process"))
        assert scheduler.map_chunks(explode_on_negative, [[1, 2]]) == [[2, 4]]
        assert scheduler.pool is None
        scheduler.close()

    def test_close_is_idempotent_and_not_terminal(self):
        scheduler = ChunkScheduler(RuntimeConfig(workers=2, executor="thread"))
        scheduler.map_chunks(explode_on_negative, [[1], [2]])
        scheduler.close()
        scheduler.close()
        assert scheduler.pool is None
        results = scheduler.map_chunks(explode_on_negative, [[3], [4]])
        assert results == [[6], [8]]
        scheduler.close()


class TestEpochProtocol:
    def test_identical_anchors_and_version_reuse_the_epoch(self):
        with WorkerPool("process", 2) as pool:
            payload, anchor = {"k": "v"}, object()
            first = pool.publish("slot", payload, anchors=(anchor,), version=0)
            second = pool.publish("slot", payload, anchors=(anchor,), version=0)
            assert second.epoch == first.epoch
            assert pool.stats.publishes == 1
            assert pool.stats.publish_reuses == 1

    def test_new_anchor_object_bumps_the_epoch(self):
        with WorkerPool("process", 2) as pool:
            first = pool.publish("slot", {"k": 1}, anchors=(object(),), version=0)
            second = pool.publish("slot", {"k": 2}, anchors=(object(),), version=0)
            assert second.epoch > first.epoch
            assert pool.stats.publishes == 2

    def test_version_change_bumps_the_epoch(self):
        with WorkerPool("process", 2) as pool:
            anchor = object()
            first = pool.publish("slot", {"k": 1}, anchors=(anchor,), version=0)
            second = pool.publish("slot", {"k": 2}, anchors=(anchor,), version=1)
            assert second.epoch > first.epoch

    def test_no_anchors_means_always_republish(self):
        with WorkerPool("process", 2) as pool:
            first = pool.publish("slot", {"k": 1})
            second = pool.publish("slot", {"k": 1})
            assert second.epoch > first.epoch
            assert pool.stats.publish_reuses == 0

    def test_slots_are_independent(self):
        with WorkerPool("process", 2) as pool:
            anchor = object()
            pool.publish("a", {"k": 1}, anchors=(anchor,), version=0)
            pool.publish("b", {"k": 2}, anchors=(anchor,), version=0)
            assert pool.stats.publishes == 2
            pool.publish("a", {"k": 1}, anchors=(anchor,), version=0)
            assert pool.stats.publish_reuses == 1

    def test_thread_pools_never_spool_payloads(self):
        with WorkerPool("thread", 2) as pool:
            published = pool.publish("slot", {"k": 1}, anchors=(object(),))
            assert published.path is None
            assert pool._payload_dir is None

    def test_validates_kind_and_workers(self):
        with pytest.raises(ValueError, match="executor must be one of"):
            WorkerPool("coroutine", 2)
        with pytest.raises(ValueError, match="workers must be a positive integer"):
            WorkerPool("process", 0)


@pytest.fixture(scope="module")
def matching_setup():
    """Two same-shaped corpora (same record ids, different names) plus a
    matcher fitted on the first — the staleness scenario's raw material."""
    def corpus(seed):
        return generate_benchmark(
            GenerationConfig(num_entities=12, num_sources=3, seed=seed)
        ).companies

    dataset_a, dataset_b = corpus(1), corpus(2)
    pairs = build_labeled_pairs(dataset_a, negative_ratio=2, seed=0)
    record_pairs, labels = as_record_pairs(pairs)
    matcher = LogisticRegressionMatcher(num_iterations=40).fit(record_pairs, labels)
    records = dataset_a.records
    candidates_a = _all_pairs(dataset_a)
    candidates_b = _all_pairs(dataset_b)
    assert len(records) > 0
    return matcher, dataset_a, dataset_b, candidates_a, candidates_b


def _all_pairs(dataset):
    from repro.blocking.base import CandidatePair

    records = dataset.records
    return [
        CandidatePair(records[i].record_id, records[j].record_id, "all")
        for i in range(len(records))
        for j in range(i + 1, len(records))
    ]


class TestProfileStoreStaleness:
    def _serial_decisions(self, matcher, dataset, candidates):
        runtime = PipelineRuntime(RuntimeConfig(batch_size=16))
        return runtime.run_matching(matcher, dataset, candidates)

    def test_second_store_on_the_same_pool_is_used(self, matching_setup):
        matcher, dataset_a, dataset_b, candidates_a, candidates_b = matching_setup
        serial_a = self._serial_decisions(matcher, dataset_a, candidates_a)
        serial_b = self._serial_decisions(matcher, dataset_b, candidates_b)
        # Same record ids, different record content: scoring B with A's
        # profiles would silently reproduce A's decisions — the staleness
        # failure this test exists to catch.
        assert serial_a != serial_b

        runtime = PipelineRuntime(
            RuntimeConfig(workers=2, executor="process", batch_size=16)
        )
        store_a = matcher.prepare_profiles(dataset_a.records)
        store_b = matcher.prepare_profiles(dataset_b.records)
        try:
            warm_a = runtime.run_matching(
                matcher, dataset_a, candidates_a, profiles=store_a
            )
            warm_b = runtime.run_matching(
                matcher, dataset_b, candidates_b, profiles=store_b
            )
            assert warm_a == serial_a
            assert warm_b == serial_b
            stats = runtime.pool_stats()
            assert stats["publishes"] == 2  # one epoch per store
        finally:
            runtime.close()

    def test_unchanged_store_is_reused_not_reshipped(self, matching_setup):
        matcher, dataset_a, _, candidates_a, _ = matching_setup
        runtime = PipelineRuntime(
            RuntimeConfig(workers=2, executor="process", batch_size=16)
        )
        store = matcher.prepare_profiles(dataset_a.records)
        try:
            first = runtime.run_matching(
                matcher, dataset_a, candidates_a, profiles=store
            )
            second = runtime.run_matching(
                matcher, dataset_a, candidates_a, profiles=store
            )
            assert first == second
            stats = runtime.pool_stats()
            assert stats["spawns"] == 1
            assert stats["publishes"] == 1  # shipped once ...
            assert stats["publish_reuses"] == 1  # ... reused on call two
        finally:
            runtime.close()

    def test_grown_store_bumps_revision_and_reships(self, matching_setup):
        matcher, dataset_a, _, candidates_a, _ = matching_setup
        runtime = PipelineRuntime(
            RuntimeConfig(workers=2, executor="process", batch_size=16)
        )
        store = matcher.prepare_profiles(dataset_a.records)
        revision = store.revision
        # A larger corpus under the same id scheme: entities beyond the
        # first 12 carry record ids the store has never seen.
        bigger = generate_benchmark(
            GenerationConfig(num_entities=20, num_sources=3, seed=1)
        ).companies
        try:
            runtime.run_matching(matcher, dataset_a, candidates_a, profiles=store)
            # Grow the store in place (the incremental-ingest append path):
            # the revision bump must invalidate the shipped epoch.
            assert store.add_records(bigger.records) > 0
            assert store.revision == revision + 1
            runtime.run_matching(matcher, dataset_a, candidates_a, profiles=store)
            assert runtime.pool_stats()["publishes"] == 2
        finally:
            runtime.close()
