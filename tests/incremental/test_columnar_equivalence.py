"""Columnar dispatch is invisible to incremental ingestion.

The batch golden result is produced with the default runtime (columnar
dispatch on).  Ingesting any partition of the same records with
``columnar_dispatch=False`` — per-pair decision objects end to end — must
reproduce it byte for byte, and vice versa: the array-backed decision
cache never changes what a delta scores, reuses, or groups.
"""

import pytest

from repro.matching.decisions import DecisionCache, DecisionVector
from repro.runtime import RuntimeConfig

from tests.incremental.test_batch_equivalence import (
    assert_equals_batch,
    ingest_in_batches,
    partition_records,
)

COLUMNAR_SWEEP = [
    pytest.param(RuntimeConfig(batch_size=64, columnar_dispatch=columnar),
                 id=f"serial-{mode}")
    for columnar, mode in ((True, "columnar"), (False, "objects"))
] + [
    pytest.param(
        RuntimeConfig(workers=2, batch_size=64, executor=executor,
                      blocking_shards=4, columnar_dispatch=columnar),
        id=f"{executor}-{mode}",
    )
    for executor in ("thread", "process")
    for columnar, mode in ((True, "columnar"), (False, "objects"))
]


@pytest.mark.parametrize("runtime", COLUMNAR_SWEEP)
@pytest.mark.parametrize("num_batches", [1, 2, 7])
class TestColumnarPartitionInvariance:
    def test_dispatch_route_is_invisible_in_the_artefacts(
        self, golden_setup, pipeline_factory, batch_result, runtime, num_batches
    ):
        companies, _ = golden_setup
        batches = partition_records(companies.records, num_batches)
        matcher = ingest_in_batches(pipeline_factory, batches, runtime)
        try:
            assert_equals_batch(matcher, batch_result)
        finally:
            matcher.close()


class TestDecisionCacheMechanics:
    def test_cache_contents_identical_across_routes(
        self, golden_setup, pipeline_factory
    ):
        # Not just the served artefacts: the persistent cache rows themselves
        # (pairs, probabilities, verdicts) must match, so a state written by
        # one route reads back identically under the other.
        companies, _ = golden_setup
        batches = partition_records(companies.records, 2)
        on = ingest_in_batches(
            pipeline_factory, batches, RuntimeConfig(columnar_dispatch=True)
        )
        off = ingest_in_batches(
            pipeline_factory, batches, RuntimeConfig(columnar_dispatch=False)
        )
        assert isinstance(on.state.decisions, DecisionCache)
        assert on.state.decisions == off.state.decisions

    def test_decisions_are_served_as_a_vector(
        self, golden_setup, pipeline_factory, batch_result
    ):
        # The incremental API boundary stays lazy: decisions() gathers a
        # DecisionVector off the cache arrays regardless of dispatch route.
        companies, _ = golden_setup
        matcher = ingest_in_batches(
            pipeline_factory,
            [companies.records],
            RuntimeConfig(columnar_dispatch=False),
        )
        decisions = matcher.decisions()
        assert isinstance(decisions, DecisionVector)
        assert decisions == batch_result.decisions

    def test_delta_savings_survive_the_columnar_route(
        self, golden_setup, pipeline_factory, batch_result
    ):
        companies, _ = golden_setup
        halves = partition_records(companies.records, 2)
        matcher = ingest_in_batches(
            pipeline_factory, halves[:1], RuntimeConfig(columnar_dispatch=True)
        )
        report = matcher.ingest(halves[1])
        assert report.pairs_reused > 0
        assert report.pairs_scored < len(batch_result.candidates)
