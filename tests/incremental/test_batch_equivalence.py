"""The headline golden suite: ingestion order and partitioning are invisible.

Ingesting the golden dataset in any partition — one batch, two halves,
seven slices, or a record-at-a-time tail — must produce candidates,
decisions and final groups **byte-identical** to the one-shot batch
pipeline run, under the serial engine and both pool flavours.  A state
saved to disk mid-stream and reloaded must continue exactly where it left
off.
"""

import pytest

from repro.incremental import IncrementalMatcher
from repro.runtime import RuntimeConfig

RUNTIMES = [
    pytest.param(None, id="serial"),
    pytest.param(
        RuntimeConfig(workers=2, batch_size=64, executor="thread", blocking_shards=4),
        id="thread-sharded",
    ),
    pytest.param(
        RuntimeConfig(workers=2, batch_size=64, executor="process", blocking_shards=4),
        id="process-sharded",
    ),
]


def partition_records(records, num_batches):
    """Split records into ``num_batches`` consecutive batches."""
    size = (len(records) + num_batches - 1) // num_batches
    return [records[start:start + size] for start in range(0, len(records), size)]


def ingest_in_batches(pipeline_factory, batches, runtime=None):
    matcher = IncrementalMatcher.from_pipeline(
        pipeline_factory(runtime), name="golden"
    )
    for batch in batches:
        matcher.ingest(batch)
    return matcher


def assert_equals_batch(matcher, batch_result):
    """Full artefact equality, not just group-partition equality."""
    assert matcher.candidates() == batch_result.candidates
    assert matcher.decisions() == batch_result.decisions
    assert matcher.groups.groups == batch_result.groups.groups
    assert (
        matcher.state.pre_cleanup_groups.groups
        == batch_result.pre_cleanup_groups.groups
    )
    assert matcher.state.pre_cleanup_removed == batch_result.pre_cleanup_removed
    assert (
        matcher.state.cleanup_report.removed_edges
        == batch_result.cleanup_report.removed_edges
    )


@pytest.mark.parametrize("runtime", RUNTIMES)
@pytest.mark.parametrize("num_batches", [1, 2, 7])
class TestPartitionInvariance:
    def test_any_partition_matches_the_batch_run(
        self, golden_setup, pipeline_factory, batch_result, runtime, num_batches
    ):
        companies, _ = golden_setup
        batches = partition_records(companies.records, num_batches)
        matcher = ingest_in_batches(pipeline_factory, batches, runtime)
        assert matcher.state.num_ingests == len(batches)
        assert_equals_batch(matcher, batch_result)


#: The warm-pool sweep axes: executor flavour × pool mode.  ``serial`` never
#: spawns a pool, so warm/cold is a no-op there — included to pin exactly
#: that.
WARM_SWEEP = [
    pytest.param(RuntimeConfig(batch_size=64, warm_pool=warm), id=f"serial-{mode}")
    for warm, mode in ((True, "warm"), (False, "cold"))
] + [
    pytest.param(
        RuntimeConfig(
            workers=2, batch_size=64, executor=executor,
            blocking_shards=4, warm_pool=warm,
        ),
        id=f"{executor}-{mode}",
    )
    for executor in ("thread", "process")
    for warm, mode in ((True, "warm"), (False, "cold"))
]


@pytest.mark.parametrize("runtime", WARM_SWEEP)
@pytest.mark.parametrize("num_batches", [1, 2, 7])
class TestWarmPoolInvariance:
    def test_pool_mode_is_invisible_in_the_artefacts(
        self, golden_setup, pipeline_factory, batch_result, runtime, num_batches
    ):
        """Warm-pool {on,off} × executor × partition → byte-identical output.

        The persistent pool and the epoch protocol only change *where* work
        runs and *how* shared state travels — candidates, decisions and
        groups must match the one-shot batch run exactly in every mode.
        """
        companies, _ = golden_setup
        batches = partition_records(companies.records, num_batches)
        matcher = ingest_in_batches(pipeline_factory, batches, runtime)
        try:
            assert_equals_batch(matcher, batch_result)
        finally:
            matcher.close()


class TestWarmPoolAcrossBatches:
    def test_one_pool_and_one_store_ship_per_revision(
        self, golden_setup, pipeline_factory, batch_result
    ):
        """The warm pool's cost structure across a multi-batch ingest.

        The pool spawns once for the whole ingest sequence, and the
        persistent profile store is re-shipped only when a batch actually
        grows it (one revision per growing ingest) — never once per
        map_chunks call.
        """
        companies, _ = golden_setup
        runtime = RuntimeConfig(
            workers=2, batch_size=64, executor="process", blocking_shards=4
        )
        batches = partition_records(companies.records, 3)
        matcher = IncrementalMatcher.from_pipeline(
            pipeline_factory(runtime), name="golden"
        )
        try:
            spawns_seen = []
            for batch in batches:
                matcher.ingest(batch)
                spawns_seen.append(matcher.runtime.pool_stats()["spawns"])
            assert spawns_seen == [1, 1, 1]  # one pool for all batches
            # The profiled matching payload ships once per store revision:
            # batch 1 creates the store (revision 0), batches 2 and 3 each
            # grow it once.
            store = matcher.state.profiles
            assert store is not None and store.revision == 2
            assert_equals_batch(matcher, batch_result)
        finally:
            matcher.close()


class TestRecordAtATime:
    def test_single_record_tail_matches_the_batch_run(
        self, golden_setup, pipeline_factory, batch_result
    ):
        # A record-at-a-time sample: bulk-load most of the corpus, then
        # ingest the last records individually — the smallest possible
        # deltas, scored in 1-pair batch shapes.
        companies, _ = golden_setup
        records = companies.records
        matcher = ingest_in_batches(pipeline_factory, [records[:-8]])
        for record in records[-8:]:
            report = matcher.ingest([record])
            assert report.num_new_records == 1
        assert_equals_batch(matcher, batch_result)

    def test_uneven_partition_matches_the_batch_run(
        self, golden_setup, pipeline_factory, batch_result
    ):
        companies, _ = golden_setup
        records = companies.records
        batches = [records[:5], records[5:100], records[100:101], records[101:]]
        matcher = ingest_in_batches(pipeline_factory, batches)
        assert_equals_batch(matcher, batch_result)


class TestSaveReload:
    @pytest.mark.parametrize("runtime", RUNTIMES)
    def test_reload_then_ingest_equals_uninterrupted(
        self, golden_setup, pipeline_factory, batch_result, tmp_path, runtime
    ):
        companies, _ = golden_setup
        records = companies.records
        matcher = ingest_in_batches(pipeline_factory, [records[:90]], runtime)
        state_dir = matcher.save(tmp_path / "state")

        reloaded = IncrementalMatcher.load(state_dir, runtime=runtime)
        reloaded.ingest(records[90:])
        assert_equals_batch(reloaded, batch_result)

    def test_save_is_idempotent_and_reloadable_after_finish(
        self, golden_setup, pipeline_factory, batch_result, tmp_path
    ):
        companies, _ = golden_setup
        matcher = ingest_in_batches(
            pipeline_factory, partition_records(companies.records, 2)
        )
        state_dir = matcher.save(tmp_path / "state")
        matcher.save(state_dir)
        reloaded = IncrementalMatcher.load(state_dir)
        assert_equals_batch(reloaded, batch_result)
        # And the reloaded state still absorbs an (empty) delta cleanly.
        report = reloaded.ingest([])
        assert report.num_new_records == 0
        assert_equals_batch(reloaded, batch_result)


class TestIngestValidation:
    def test_duplicate_record_ids_are_rejected_atomically(
        self, golden_setup, pipeline_factory
    ):
        companies, _ = golden_setup
        records = companies.records
        matcher = ingest_in_batches(pipeline_factory, [records[:10]])
        with pytest.raises(ValueError, match="duplicate record ids"):
            matcher.ingest([records[3]])
        with pytest.raises(ValueError, match="duplicate record ids"):
            matcher.ingest([records[20], records[20]])
        # The failed ingests left no partial records behind.
        assert len(matcher.dataset) == 10

    def test_delta_savings_are_real(
        self, golden_setup, pipeline_factory, batch_result
    ):
        # Not just equivalence: the second half must reuse cached decisions
        # and skip untouched components.
        companies, _ = golden_setup
        halves = partition_records(companies.records, 2)
        matcher = ingest_in_batches(pipeline_factory, halves[:1])
        report = matcher.ingest(halves[1])
        assert report.pairs_reused > 0
        assert report.pairs_scored < len(batch_result.candidates)
        assert report.components_reused > 0
