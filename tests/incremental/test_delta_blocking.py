"""The blocking delta protocol, tested at the blocking level.

For every delta-capable blocking and a sweep of split points, the contract
of :meth:`Blocking.delta_update`:

1. the updated shared state equals ``prepare`` over the full dataset, and
2. records *not* reported dirty emit exactly the same candidates under the
   new state (dirtiness may be conservative, never optimistic) — so
   rescoring dirty + new records and splicing reproduces the full stream.
"""

import pytest

from repro.blocking import (
    IdOverlapBlocking,
    IssuerMatchBlocking,
    TokenOverlapBlocking,
)
from repro.blocking.base import dedupe_pairs
from repro.datagen import GenerationConfig, generate_benchmark
from repro.datagen.records import Dataset

SPLITS = [1, 7, 86, 100, 171]


@pytest.fixture(scope="module")
def golden_benchmark():
    return generate_benchmark(
        GenerationConfig(num_entities=50, num_sources=4, seed=42,
                         acquisition_rate=0.05, merger_rate=0.05)
    )


def blocking_cases(golden_benchmark):
    return [
        (TokenOverlapBlocking(top_n=3), golden_benchmark.companies),
        (IdOverlapBlocking(), golden_benchmark.companies),
        (IdOverlapBlocking(), golden_benchmark.securities),
        (
            IssuerMatchBlocking.from_ground_truth(golden_benchmark.companies),
            golden_benchmark.securities,
        ),
    ]


def run_delta(blocking, dataset, split):
    records = dataset.records
    old_dataset = Dataset(dataset.name, records[:split])
    full_dataset = Dataset(dataset.name, records)
    shared_old = blocking.prepare(old_dataset)
    delta = blocking.delta_update(shared_old, full_dataset, records[split:])
    return records, shared_old, delta


@pytest.mark.parametrize("split", SPLITS)
@pytest.mark.parametrize("case", range(4))
class TestDeltaContract:
    def test_updated_state_equals_full_prepare(self, golden_benchmark, case, split):
        blocking, dataset = blocking_cases(golden_benchmark)[case]
        _, _, delta = run_delta(blocking, dataset, split)
        assert delta.shared == blocking.prepare(dataset)

    def test_non_dirty_records_emit_unchanged(self, golden_benchmark, case, split):
        blocking, dataset = blocking_cases(golden_benchmark)[case]
        records, shared_old, delta = run_delta(blocking, dataset, split)
        assert not delta.dirty_record_ids & {
            record.record_id for record in records[split:]
        }, "new records must never be reported dirty"
        for record in records[:split]:
            if record.record_id in delta.dirty_record_ids:
                continue
            assert blocking.candidates_for(
                delta.shared, [record]
            ) == blocking.candidates_for(shared_old, [record])

    def test_splicing_reproduces_the_full_stream(self, golden_benchmark, case, split):
        blocking, dataset = blocking_cases(golden_benchmark)[case]
        records, shared_old, delta = run_delta(blocking, dataset, split)
        rescore = set(delta.dirty_record_ids) | {
            record.record_id for record in records[split:]
        }
        spliced = []
        for record in records:
            shared = delta.shared if record.record_id in rescore else shared_old
            spliced.extend(blocking.candidates_for(shared, [record]))
        assert dedupe_pairs(spliced) == blocking.candidate_pairs(dataset)


class TestDirtySelectivity:
    """The identifier- and issuer-based blockings stay truly local."""

    def test_id_overlap_dirties_only_value_owners(self, golden_benchmark):
        blocking = IdOverlapBlocking()
        dataset = golden_benchmark.companies
        _, _, delta = run_delta(blocking, dataset, len(dataset.records) - 5)
        # Far fewer dirty records than the corpus: only first carriers of
        # identifier values the last five records touch.
        assert len(delta.dirty_record_ids) < len(dataset.records) // 4

    def test_token_overlap_dirties_nothing_for_tokenless_records(self, golden_benchmark):
        from repro.datagen.records import CompanyRecord

        blocking = TokenOverlapBlocking(top_n=3)
        dataset = golden_benchmark.companies
        tokenless = CompanyRecord(
            record_id="SYN-EMPTY-S1", source="S1", entity_id="E-EMPTY", name=""
        )
        full = Dataset(dataset.name, [*dataset.records, tokenless])
        shared = blocking.prepare(dataset)
        delta = blocking.delta_update(shared, full, [tokenless])
        assert delta.dirty_record_ids == frozenset()
        assert delta.shared == blocking.prepare(full)

    def test_issuer_match_dirties_only_group_owners(self, golden_benchmark):
        blocking = IssuerMatchBlocking.from_ground_truth(golden_benchmark.companies)
        dataset = golden_benchmark.securities
        _, _, delta = run_delta(blocking, dataset, len(dataset.records) - 5)
        assert len(delta.dirty_record_ids) <= 5
