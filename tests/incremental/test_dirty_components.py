"""Dirty-component recleanup: untouched components provably skip clean-up.

The per-component memo must (a) invoke the clean-up strategy only for
components whose edge set changed — asserted by *counting the actual
clean-up calls* through a monkeypatched seam — and (b) still produce output
identical to re-cleaning the whole graph from scratch.
"""

import pytest

import repro.incremental.matcher as incremental_matcher
from repro.core.cleanup import gralmatch_cleanup
from repro.incremental import IncrementalMatcher


@pytest.fixture
def counting_cleanup(monkeypatch):
    """Route every per-component clean-up call through a counter."""
    calls = []
    original = incremental_matcher._component_cleanup

    def counted(cleanup_fn, edges, config):
        calls.append(list(edges))
        return original(cleanup_fn, edges, config)

    monkeypatch.setattr(incremental_matcher, "_component_cleanup", counted)
    return calls


def halves(records):
    half = len(records) // 2
    return records[:half], records[half:]


class TestCleanupCallCounting:
    def test_second_ingest_recleans_only_dirty_components(
        self, golden_setup, pipeline_factory, counting_cleanup
    ):
        companies, _ = golden_setup
        first, second = halves(companies.records)
        matcher = IncrementalMatcher.from_pipeline(pipeline_factory())

        matcher.ingest(first)
        first_report = matcher.last_report
        calls_first = len(counting_cleanup)
        assert calls_first == first_report.components_recleaned
        assert first_report.components_reused == 0

        counting_cleanup.clear()
        matcher.ingest(second)
        report = matcher.last_report
        # The proof: the strategy ran exactly once per dirty component and
        # not at all for spliced (memo-hit) components.
        assert len(counting_cleanup) == report.components_recleaned
        assert report.components_reused > 0
        assert (
            report.components_recleaned + report.components_reused
            == report.components_total
        )
        assert report.components_recleaned < report.components_total

    def test_empty_delta_recleans_nothing(
        self, golden_setup, pipeline_factory, counting_cleanup
    ):
        companies, _ = golden_setup
        matcher = IncrementalMatcher.from_pipeline(pipeline_factory())
        matcher.ingest(companies.records)
        counting_cleanup.clear()
        report = matcher.ingest([])
        assert len(counting_cleanup) == 0
        assert report.components_recleaned == 0
        assert report.components_reused == report.components_total

    def test_spliced_output_matches_full_recleanup(
        self, golden_setup, pipeline_factory, batch_result
    ):
        # The memoised, spliced clean-up must equal running the strategy on
        # the complete kept graph (which is what the batch pipeline does).
        companies, _ = golden_setup
        first, second = halves(companies.records)
        matcher = IncrementalMatcher.from_pipeline(pipeline_factory())
        matcher.ingest(first)
        matcher.ingest(second)

        kept = [
            edge
            for edge in (
                decision.pair
                for decision in matcher.decisions()
                if decision.is_match
            )
            if edge not in matcher.state.pre_cleanup_removed
        ]
        full_components, full_report = gralmatch_cleanup(
            kept, matcher.state.cleanup_config
        )
        incremental_groups = [
            group for group in matcher.groups.groups if len(group) > 1
        ]
        full_non_singletons = [
            frozenset(component)
            for component in full_components
            if len(component) > 1
        ]
        assert incremental_groups == full_non_singletons
        assert matcher.state.cleanup_report.removed_edges == full_report.removed_edges
        assert (
            matcher.state.cleanup_report.mincut_removals
            == full_report.mincut_removals
        )
        assert (
            matcher.state.cleanup_report.betweenness_removals
            == full_report.betweenness_removals
        )


class TestNonLocalStrategyFallback:
    def test_unmarked_strategy_recleans_the_whole_graph(
        self, golden_setup, pipeline_factory, monkeypatch
    ):
        # A strategy without the component_local marker gets no memo: every
        # ingest re-cleans everything (correct, just not delta-proportional)
        # and the result still matches the marked path.
        from repro.registry import CLEANUPS

        def unmarked(edges, config):
            return gralmatch_cleanup(edges, config)

        CLEANUPS.register("unmarked_gralmatch")(unmarked)
        try:
            pipeline = pipeline_factory()
            pipeline.cleanup_strategy = "unmarked_gralmatch"
            matcher = IncrementalMatcher.from_pipeline(pipeline)
            companies, _ = golden_setup
            first, second = halves(companies.records)
            matcher.ingest(first)
            matcher.ingest(second)
            report = matcher.last_report
            assert report.components_reused == 0
            assert report.components_recleaned == report.components_total

            reference = IncrementalMatcher.from_pipeline(pipeline_factory())
            reference.ingest(first)
            reference.ingest(second)
            assert matcher.groups.groups == reference.groups.groups
        finally:
            CLEANUPS.unregister("unmarked_gralmatch")
