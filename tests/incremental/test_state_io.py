"""On-disk state format: manifest versioning and payload round-trips.

Includes the satellite coverage for the :class:`ProfileStore` disk
round-trip: profiles must come back bitwise identical through the state
serialisation, with the transient similarity memos dropped and rewarmed
exactly like the existing pickling (worker-shipping) path.
"""

import json
import pickle

import pytest

from repro.incremental import (
    STATE_FORMAT_VERSION,
    IncrementalMatcher,
    MatchStateError,
    is_state_dir,
    read_manifest,
)
from repro.incremental.state import MANIFEST_FILE
from repro.matching.decisions import DecisionCache
from repro.matching.profiles import ProfileStore


def _columnar_payload_bytes(store: ProfileStore) -> bytes:
    """The store's pickled columnar payload, bytes-for-bytes."""
    return pickle.dumps(store.__getstate__())


@pytest.fixture
def saved_state(golden_setup, pipeline_factory, tmp_path):
    companies, _ = golden_setup
    matcher = IncrementalMatcher.from_pipeline(pipeline_factory(), name="golden")
    matcher.ingest(companies.records[:100])
    return matcher, matcher.save(tmp_path / "state")


class TestManifest:
    def test_round_trip_preserves_counters(self, saved_state):
        matcher, state_dir = saved_state
        assert is_state_dir(state_dir)
        manifest = read_manifest(state_dir)
        assert manifest["format_version"] == STATE_FORMAT_VERSION
        assert manifest["num_records"] == 100
        assert manifest["num_ingests"] == 1
        assert manifest["blocking_parts"] == ["id_overlap", "token_overlap"]
        assert manifest["matcher_type"] == "LogisticRegressionMatcher"

    def test_missing_manifest_is_a_clear_error(self, tmp_path):
        empty = tmp_path / "not-a-state"
        empty.mkdir()
        assert not is_state_dir(empty)
        with pytest.raises(MatchStateError, match="missing manifest.json"):
            read_manifest(empty)
        with pytest.raises(MatchStateError, match="missing manifest.json"):
            IncrementalMatcher.load(empty)

    def test_future_format_version_is_rejected(self, saved_state):
        _, state_dir = saved_state
        manifest_path = state_dir / MANIFEST_FILE
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = STATE_FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(MatchStateError, match="format version"):
            IncrementalMatcher.load(state_dir)

    def test_foreign_manifest_is_rejected(self, saved_state):
        _, state_dir = saved_state
        (state_dir / MANIFEST_FILE).write_text('{"format": "something-else"}')
        with pytest.raises(MatchStateError, match="not a repro-match-state"):
            IncrementalMatcher.load(state_dir)

    def test_corrupt_manifest_is_rejected(self, saved_state):
        _, state_dir = saved_state
        (state_dir / MANIFEST_FILE).write_text("{not json")
        with pytest.raises(MatchStateError, match="corrupt manifest"):
            IncrementalMatcher.load(state_dir)

    def test_missing_payload_is_a_clear_error(self, saved_state):
        _, state_dir = saved_state
        (state_dir / "rev1" / "matching_state.pkl").unlink()
        with pytest.raises(MatchStateError, match="missing matching_state.pkl"):
            IncrementalMatcher.load(state_dir)

    def test_missing_payload_dir_is_a_clear_error(self, saved_state):
        import shutil

        _, state_dir = saved_state
        shutil.rmtree(state_dir / "rev1")
        with pytest.raises(MatchStateError, match="missing payload directory"):
            IncrementalMatcher.load(state_dir)


class TestApiIngestPersistence:
    def test_ingest_without_state_dir_raises_instead_of_dropping_save(
        self, golden_setup, pipeline_factory
    ):
        from repro.api import ingest

        companies, _ = golden_setup
        matcher = IncrementalMatcher.from_pipeline(pipeline_factory())
        with pytest.raises(ValueError, match="save=False"):
            ingest(matcher, companies.records[:5])
        # Deliberate in-memory use works, and nothing was half-ingested.
        report = ingest(matcher, companies.records[:5], save=False)
        assert report.num_new_records == 5

    def test_save_leaves_no_temp_files(self, saved_state):
        _, state_dir = saved_state
        assert not list(state_dir.glob("*.tmp"))

    def test_repeated_saves_keep_exactly_one_payload_dir(
        self, golden_setup, saved_state
    ):
        companies, _ = golden_setup
        matcher, state_dir = saved_state
        matcher.ingest(companies.records[100:110])
        matcher.save(state_dir)
        rev_dirs = [p for p in state_dir.glob("rev*") if p.is_dir()]
        assert len(rev_dirs) == 1


class TestCrashResilience:
    def test_interrupted_save_leaves_previous_state_loadable(
        self, golden_setup, saved_state, monkeypatch
    ):
        # Simulate a crash *after* the new payload directory is fully
        # written but *before* the manifest commit: the manifest rename is
        # the transaction's commit point, so loading must yield the
        # previous state, intact.
        from pathlib import Path

        companies, _ = golden_setup
        matcher, state_dir = saved_state
        committed_manifest = (state_dir / "manifest.json").read_bytes()

        matcher.ingest(companies.records[100:120])

        def crash(self, target):
            raise OSError("simulated crash before manifest commit")

        monkeypatch.setattr(Path, "replace", crash)
        with pytest.raises(OSError, match="simulated crash"):
            matcher.save(state_dir)
        monkeypatch.undo()

        assert (state_dir / "manifest.json").read_bytes() == committed_manifest
        recovered = IncrementalMatcher.load(state_dir)
        assert len(recovered.state.records) == 100
        assert recovered.state.num_ingests == 1
        # The recovered state ingests onward normally (and sweeps the
        # uncommitted payload directory on its next save).
        recovered.ingest(companies.records[100:])
        recovered.save(state_dir)
        rev_dirs = [p for p in state_dir.glob("rev*") if p.is_dir()]
        assert len(rev_dirs) == 1
        assert len(IncrementalMatcher.load(state_dir).state.records) == len(
            companies.records
        )

    def test_failed_ingest_poisons_the_matcher(
        self, golden_setup, pipeline_factory, monkeypatch
    ):
        import repro.incremental.matcher as incremental_matcher

        companies, _ = golden_setup
        matcher = IncrementalMatcher.from_pipeline(pipeline_factory())
        matcher.ingest(companies.records[:50])

        def boom(*args, **kwargs):
            raise RuntimeError("worker pool died")

        monkeypatch.setattr(
            incremental_matcher.PipelineRuntime, "run_blocking_delta", boom
        )
        with pytest.raises(RuntimeError, match="worker pool died"):
            matcher.ingest(companies.records[50:60])
        monkeypatch.undo()

        # The half-mutated state refuses further use with a clear pointer.
        with pytest.raises(RuntimeError, match="reload the last saved state"):
            matcher.ingest(companies.records[60:70])
        with pytest.raises(RuntimeError, match="reload the last saved state"):
            matcher.save("/tmp/should-not-be-written")

    def test_validation_failure_does_not_poison(
        self, golden_setup, pipeline_factory
    ):
        companies, _ = golden_setup
        matcher = IncrementalMatcher.from_pipeline(pipeline_factory())
        matcher.ingest(companies.records[:50])
        with pytest.raises(ValueError, match="duplicate record ids"):
            matcher.ingest([companies.records[0]])
        report = matcher.ingest(companies.records[50:60])
        assert report.num_new_records == 10


class TestFormatMigration:
    def _downgrade_to_v1(self, state_dir):
        """Rewrite a saved v2 state as the v1 dict-of-decisions format."""
        manifest = json.loads((state_dir / MANIFEST_FILE).read_text())
        payload_path = (
            state_dir / manifest["payload_dir"] / "matching_state.pkl"
        )
        payload = pickle.loads(payload_path.read_bytes())
        assert isinstance(payload["decisions"], DecisionCache)
        payload["decisions"] = payload["decisions"].to_decisions()
        payload_path.write_bytes(
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        )
        manifest["format_version"] = 1
        (state_dir / MANIFEST_FILE).write_text(json.dumps(manifest, indent=2))

    def test_v1_dict_decisions_migrate_on_load(self, saved_state):
        matcher, state_dir = saved_state
        self._downgrade_to_v1(state_dir)

        assert read_manifest(state_dir)["format_version"] == 1
        reloaded = IncrementalMatcher.load(state_dir)
        # The migrated cache is row-for-row the one the v2 save held:
        # dict insertion order was scoring order, which is row order.
        assert isinstance(reloaded.state.decisions, DecisionCache)
        assert reloaded.state.decisions == matcher.state.decisions
        assert reloaded.decisions() == matcher.decisions()
        assert reloaded.groups.groups == matcher.groups.groups

    def test_migrated_state_saves_as_v2_and_ingests_onward(
        self, golden_setup, pipeline_factory, batch_result, saved_state
    ):
        from tests.incremental.test_batch_equivalence import assert_equals_batch

        companies, _ = golden_setup
        matcher, state_dir = saved_state
        self._downgrade_to_v1(state_dir)

        reloaded = IncrementalMatcher.load(state_dir)
        reloaded.ingest(companies.records[100:])
        assert_equals_batch(reloaded, batch_result)

        # The next save writes the current format — the migration is one-way.
        reloaded.save(state_dir)
        manifest = read_manifest(state_dir)
        assert manifest["format_version"] == STATE_FORMAT_VERSION
        payload = pickle.loads(
            (state_dir / manifest["payload_dir"] / "matching_state.pkl").read_bytes()
        )
        assert isinstance(payload["decisions"], DecisionCache)

    def test_cache_pickle_round_trip_rebuilds_the_index(self, saved_state):
        matcher, _ = saved_state
        cache = matcher.state.decisions
        repickled = pickle.loads(pickle.dumps(cache))
        assert repickled == cache
        assert len(repickled) == len(cache)
        keys = [c.key for c in matcher.candidates()]
        assert all(key in repickled for key in keys)
        assert repickled.vector(keys) == cache.vector(keys)


class TestProfileStoreRoundTrip:
    def test_profiles_survive_bitwise_and_memos_rewarm(self, saved_state):
        matcher, state_dir = saved_state
        store = matcher.state.profiles
        assert isinstance(store, ProfileStore)
        # Warm the in-memory similarity memos so the drop is observable.
        from repro.matching.features import PairFeatureExtractor

        extractor = PairFeatureExtractor()
        candidates = matcher.candidates()[:20]
        id_pairs = [(c.left_id, c.right_id) for c in candidates]
        direct = extractor.extract_batch_profiles(store, id_pairs)
        assert store.name_similarity_cache, "memo should be warm now"

        matcher.save(state_dir)
        reloaded = IncrementalMatcher.load(state_dir).state.profiles

        # Bitwise-identical columnar payload and identical materialised profiles.
        assert _columnar_payload_bytes(reloaded) == _columnar_payload_bytes(store)
        assert all(
            reloaded.get(record_id) == store.get(record_id)
            for record_id in store.record_ids
        )
        # Memos are dropped on serialisation (like the pickling path) ...
        assert reloaded.name_similarity_cache == {}
        assert reloaded.stripped_similarity_cache == {}
        # ... and rewarm to the same values, with identical feature output.
        # (The original cache is a superset: ingest itself warmed it.)
        rescored = extractor.extract_batch_profiles(reloaded, id_pairs)
        assert rescored.tobytes() == direct.tobytes()
        assert reloaded.name_similarity_cache
        assert reloaded.name_similarity_cache.items() <= store.name_similarity_cache.items()

    def test_state_serialisation_matches_plain_pickling(self, saved_state):
        # The state path must behave exactly like pickling the store (the
        # worker-shipping path): same profiles, dropped memos.
        matcher, _ = saved_state
        store = matcher.state.profiles
        repickled = pickle.loads(pickle.dumps(store))
        assert _columnar_payload_bytes(repickled) == _columnar_payload_bytes(store)
        assert repickled.name_similarity_cache == {}

    def test_store_grows_across_reload_and_further_ingest(
        self, golden_setup, saved_state
    ):
        companies, _ = golden_setup
        _, state_dir = saved_state
        reloaded = IncrementalMatcher.load(state_dir)
        before = len(reloaded.state.profiles)
        reloaded.ingest(companies.records[100:])
        assert len(reloaded.state.profiles) >= before
