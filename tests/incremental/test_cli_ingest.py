"""CLI surface of the incremental subsystem: ``repro ingest`` / ``repro
state show`` / ``--groups-out``.

The central assertion mirrors the CI smoke: splitting a dataset in two,
ingesting both halves into a fresh state, and exporting the groups must
produce a file byte-equal to a one-shot ``repro run --groups-out`` over the
full dataset.
"""

import json

import pytest

from repro.cli import main
from repro.datagen import GenerationConfig, generate_benchmark
from repro.datagen.io import write_dataset_csv
from repro.datagen.records import Dataset

CONFIG_TOML = """
[experiment]
dataset = "{dataset}"
kind = "companies"
model = "logistic"
epochs = 1
seed = 0
"""


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    root = tmp_path_factory.mktemp("ingest-cli")
    companies = generate_benchmark(
        GenerationConfig(num_entities=30, num_sources=3, seed=7)
    ).companies
    records = companies.records
    half = len(records) // 2
    paths = {
        "full": write_dataset_csv(companies, root / "companies.csv"),
        "batch1": write_dataset_csv(
            Dataset("companies", records[:half]), root / "batch1.csv"
        ),
        "batch2": write_dataset_csv(
            Dataset("companies", records[half:]), root / "batch2.csv"
        ),
    }
    config = root / "config.toml"
    config.write_text(CONFIG_TOML.format(dataset=paths["full"].as_posix()))
    return root, config, paths


class TestIngestMatchesRun:
    def test_split_ingest_equals_one_shot_run(self, workspace, capsys):
        root, config, paths = workspace
        state = root / "state"
        run_groups = root / "run_groups.json"
        ingest_groups = root / "ingest_groups.json"

        assert main(["run", str(config), "--groups-out", str(run_groups)]) == 0
        assert main([
            "ingest", str(paths["batch1"]),
            "--state", str(state), "--config", str(config),
            "--train-dataset", str(paths["full"]),
        ]) == 0
        out = capsys.readouterr().out
        assert "initialised match state" in out
        assert main([
            "ingest", str(paths["batch2"]),
            "--state", str(state), "--groups-out", str(ingest_groups),
        ]) == 0
        assert run_groups.read_bytes() == ingest_groups.read_bytes()
        groups = json.loads(run_groups.read_text())["groups"]
        assert groups == sorted(sorted(group) for group in groups)

    def test_state_show_prints_manifest_and_exports_groups(
        self, workspace, capsys
    ):
        root, _, _ = workspace
        state = root / "state"
        shown_groups = root / "shown_groups.json"
        assert main([
            "state", "show", str(state), "--groups-out", str(shown_groups)
        ]) == 0
        out = capsys.readouterr().out
        assert "format: repro-match-state" in out
        assert "matcher_type: LogisticRegressionMatcher" in out
        assert shown_groups.read_bytes() == (root / "ingest_groups.json").read_bytes()


class TestExistingStateRuntime:
    def test_config_runtime_applies_to_existing_state(
        self, workspace, capsys, tmp_path
    ):
        # Re-ingesting against an existing state with --config must honour
        # the spec's [pipeline.runtime] (results are engine-invariant, so
        # groups stay byte-identical to the serial path).
        root, _, paths = workspace
        state = tmp_path / "rt-state"
        config = tmp_path / "config.toml"
        config.write_text(
            CONFIG_TOML.format(dataset=paths["full"].as_posix())
            + "\n[pipeline.runtime]\nworkers = 2\nexecutor = \"thread\"\n"
        )
        assert main([
            "ingest", str(paths["batch1"]),
            "--state", str(state), "--config", str(config),
            "--train-dataset", str(paths["full"]),
        ]) == 0
        out_groups = tmp_path / "groups.json"
        assert main([
            "ingest", str(paths["batch2"]),
            "--state", str(state), "--config", str(config),
            "--groups-out", str(out_groups),
        ]) == 0
        assert out_groups.read_bytes() == (root / "ingest_groups.json").read_bytes()


class TestIngestErrors:
    def test_fresh_state_without_config_fails_clearly(self, workspace, capsys):
        root, _, paths = workspace
        assert main([
            "ingest", str(paths["batch1"]), "--state", str(root / "nowhere"),
        ]) == 2
        assert "not an initialised match state" in capsys.readouterr().err

    def test_missing_batch_file_fails_clearly(self, workspace, capsys):
        root, config, _ = workspace
        assert main([
            "ingest", str(root / "ghost.csv"),
            "--state", str(root / "state2"), "--config", str(config),
        ]) == 2
        assert "dataset file not found" in capsys.readouterr().err

    def test_missing_state_flag_and_spec_dir_fails_clearly(
        self, workspace, capsys
    ):
        _, config, paths = workspace
        assert main(["ingest", str(paths["batch1"]), "--config", str(config)]) == 2
        assert "no state directory" in capsys.readouterr().err

    def test_state_show_on_non_state_fails_clearly(self, tmp_path, capsys):
        assert main(["state", "show", str(tmp_path)]) == 2
        assert "missing manifest.json" in capsys.readouterr().err

    def test_duplicate_ingest_fails_clearly(self, workspace, capsys):
        root, _, paths = workspace
        assert main([
            "ingest", str(paths["batch1"]), "--state", str(root / "state"),
        ]) == 2
        assert "duplicate record ids" in capsys.readouterr().err

    def test_train_dataset_on_existing_state_fails_clearly(
        self, workspace, capsys
    ):
        root, config, paths = workspace
        assert main([
            "ingest", str(paths["batch2"]), "--state", str(root / "state"),
            "--config", str(config), "--train-dataset", str(paths["full"]),
        ]) == 2
        assert "--train-dataset only applies" in capsys.readouterr().err


class TestStateSpecDir:
    def test_spec_state_dir_is_the_default(self, workspace, capsys, tmp_path):
        root, _, paths = workspace
        state_dir = tmp_path / "spec-state"
        config = tmp_path / "config.toml"
        config.write_text(
            CONFIG_TOML.format(dataset=paths["full"].as_posix())
            + f'\n[pipeline.state]\ndir = "{state_dir.as_posix()}"\n'
        )
        assert main([
            "ingest", str(paths["batch1"]), "--config", str(config),
        ]) == 0
        assert (state_dir / "manifest.json").exists()
