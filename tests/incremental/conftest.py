"""Shared fixtures of the incremental-ingestion golden suite.

The golden setup mirrors ``tests/runtime/test_golden_regression.py`` (seed
42, 50 entities, 4 sources, logistic matcher) so the batch pipeline being
compared against is exactly the one the runtime suite pins.
"""

import pytest

from repro.blocking import CombinedBlocking, IdOverlapBlocking, TokenOverlapBlocking
from repro.core.cleanup import CleanupConfig
from repro.core.pipeline import EntityGroupMatchingPipeline
from repro.core.precleanup import PreCleanupConfig
from repro.datagen import GenerationConfig, generate_benchmark
from repro.matching import LogisticRegressionMatcher
from repro.matching.pairs import as_record_pairs, build_labeled_pairs


@pytest.fixture(scope="package")
def golden_setup():
    benchmark = generate_benchmark(
        GenerationConfig(num_entities=50, num_sources=4, seed=42,
                         acquisition_rate=0.05, merger_rate=0.05)
    )
    companies = benchmark.companies
    pairs = build_labeled_pairs(companies, negative_ratio=3, seed=0)
    record_pairs, labels = as_record_pairs(pairs)
    matcher = LogisticRegressionMatcher(num_iterations=120).fit(record_pairs, labels)
    return companies, matcher


@pytest.fixture(scope="package")
def pipeline_factory(golden_setup):
    """Factory for the golden batch pipeline (runtime config optional)."""
    _, matcher = golden_setup

    def make(runtime=None):
        return EntityGroupMatchingPipeline(
            matcher=matcher,
            blocking=CombinedBlocking(
                [IdOverlapBlocking(), TokenOverlapBlocking(top_n=3)]
            ),
            cleanup_config=CleanupConfig.for_num_sources(4),
            pre_cleanup_config=PreCleanupConfig(max_component_size=30),
            runtime=runtime,
        )

    return make


@pytest.fixture(scope="package")
def batch_result(golden_setup, pipeline_factory):
    """The one-shot batch run every incremental schedule must reproduce."""
    return pipeline_factory().run(golden_setup[0])
