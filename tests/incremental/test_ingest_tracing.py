"""Ingest observability: run spans per batch and pinned delta metrics.

The counter values are pinned exactly for the golden fixture (seed 42, 50
entities, two half batches) — the same determinism contract the golden
regression suite relies on makes cache-hit counts stable, so a drift here
means the decision cache or cleanup memo changed behaviour, not noise.
"""

import pytest

from repro.incremental import IncrementalMatcher
from repro.obs import TraceRecorder
from repro.runtime import PipelineRuntime, RuntimeConfig


@pytest.fixture()
def traced_two_batch_ingest(golden_setup, pipeline_factory):
    companies, _ = golden_setup
    recorder = TraceRecorder()
    runtime = PipelineRuntime(RuntimeConfig(), recorder=recorder)
    matcher = IncrementalMatcher.from_pipeline(
        pipeline_factory(runtime), name="golden-traced"
    )
    records = companies.records
    half = len(records) // 2
    reports = [matcher.ingest(records[:half]), matcher.ingest(records[half:])]
    matcher.close()
    return recorder, reports


class TestIngestSpans:
    def test_one_run_span_per_batch_with_delta_attributes(
        self, traced_two_batch_ingest
    ):
        recorder, reports = traced_two_batch_ingest
        spans = recorder.trace().find("ingest", kind="run")
        assert len(spans) == 2
        for span, report in zip(spans, reports):
            assert span.attributes == {
                "new_records": report.num_new_records,
                "records_rescored": report.records_rescored,
                "pairs_scored": report.pairs_scored,
                "pairs_reused": report.pairs_reused,
                "components_recleaned": report.components_recleaned,
                "components_reused": report.components_reused,
            }

    def test_stage_spans_nest_under_each_ingest(self, traced_two_batch_ingest):
        recorder, _ = traced_two_batch_ingest
        for span in recorder.trace().find("ingest", kind="run"):
            stages = [c.name for c in span.children if c.kind == "stage"]
            assert "pairwise_matching" in stages
            assert "graph_cleanup" in stages


class TestIngestMetrics:
    def test_counters_accumulate_the_per_batch_reports(
        self, traced_two_batch_ingest
    ):
        recorder, reports = traced_two_batch_ingest
        counters = recorder.metrics.counters()
        assert counters["decision_cache.hits"] == sum(
            r.pairs_reused for r in reports
        )
        assert counters["decision_cache.misses"] == sum(
            r.pairs_scored for r in reports
        )
        assert counters["cleanup_memo.hits"] == sum(
            r.components_reused for r in reports
        )
        assert counters["cleanup_memo.misses"] == sum(
            r.components_recleaned for r in reports
        )
        assert counters["ingest.new_records"] == sum(
            r.num_new_records for r in reports
        )

    def test_pinned_golden_two_batch_values(self, traced_two_batch_ingest):
        """Exact cache-hit counts of the golden two-batch ingest.

        Batch 1 scores every candidate cold (135 misses, 0 hits); batch 2
        reuses 122 cached pair decisions and re-scores 150, and the cleanup
        memo skips 22 of 45 components.
        """
        recorder, _ = traced_two_batch_ingest
        counters = recorder.metrics.counters()
        assert counters["decision_cache.hits"] == 122
        assert counters["decision_cache.misses"] == 135 + 150
        assert counters["cleanup_memo.hits"] == 22
        assert counters["cleanup_memo.misses"] == 23 + 23
        assert counters["ingest.new_records"] == 172
        assert counters["ingest.records_rescored"] == 432

    def test_gauges_hold_the_final_corpus_shape(self, traced_two_batch_ingest):
        recorder, reports = traced_two_batch_ingest
        gauges = recorder.metrics.gauges()
        assert gauges["ingest.num_records"] == reports[-1].num_records == 172
        assert gauges["ingest.num_candidates"] == reports[-1].num_candidates == 272

    def test_sim_memo_delta_is_counted_in_process(self, traced_two_batch_ingest):
        # The persistent profile store's similarity memo: parent-side delta
        # accounting sees in-process gathers (serial engine here).
        recorder, _ = traced_two_batch_ingest
        counters = recorder.metrics.counters()
        assert counters["profile_store.sim_memo.misses"] > 0

    def test_untraced_ingest_records_nothing(self, golden_setup, pipeline_factory):
        companies, _ = golden_setup
        matcher = IncrementalMatcher.from_pipeline(
            pipeline_factory(None), name="golden-untraced"
        )
        report = matcher.ingest(companies.records)
        recorder = matcher.runtime.recorder
        assert not recorder.enabled
        assert recorder.trace().counters == {}
        matcher.close()
        assert report.num_records == len(companies.records)
