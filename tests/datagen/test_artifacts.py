"""Tests for data artifacts."""

import random


from repro.datagen.artifacts import (
    AcronymName,
    CorruptIdentifier,
    CreateCorporateAcquisition,
    CreateCorporateMerger,
    DropAttributes,
    InsertCorporateTerm,
    MultipleIDs,
    MultipleSecurities,
    NoIdOverlaps,
    ParaphraseAttribute,
    ReorderNameTokens,
    TypoName,
)
from repro.datagen.drafts import CompanyGroupDraft, SecurityDraft
from repro.datagen.identifiers import SECURITY_ID_FIELDS, make_security_identifiers
from repro.datagen.seed import SeedCompany


def make_draft(entity="E1", name="Crowdstrike Holdings", sources=("S1", "S2", "S3")):
    seed = SeedCompany(
        entity_id=entity,
        name=name,
        city="Austin",
        region="Texas",
        country_code="USA",
        description="Crowdstrike provides cloud software for large enterprises.",
        industry="Information Technology",
    )
    draft = CompanyGroupDraft(seed=seed, entity_id=entity)
    for source in sources:
        draft.company_records[source] = {
            "name": name,
            "city": seed.city,
            "region": seed.region,
            "country_code": seed.country_code,
            "description": seed.description,
            "industry": seed.industry,
        }
    identifiers = make_security_identifiers(random.Random(hash(entity) % 1000))
    security = SecurityDraft(
        entity_id=f"{entity}-SEC0",
        name=f"{name} common stock",
        security_type="common stock",
        identifiers=identifiers,
        ticker="CRWD",
    )
    for source in sources:
        security.records[source] = {
            "name": security.name,
            "security_type": "common stock",
            "issuer_name": name,
            "ticker": "CRWD",
            **identifiers,
        }
    draft.securities.append(security)
    return draft


class TestCompanyArtifacts:
    def test_acronym_name_changes_some_sources(self):
        draft = make_draft()
        AcronymName().apply(draft, random.Random(0))
        names = {record["name"] for record in draft.company_records.values()}
        assert "CH" in names or "C" in {n[:1] for n in names if n.isupper()}
        assert any(name == "Crowdstrike Holdings" for name in names)
        assert "AcronymName" in draft.applied_artifacts

    def test_acronym_skips_short_names(self):
        draft = make_draft(name="Acme")
        AcronymName().apply(draft, random.Random(0))
        assert all(
            record["name"] == "Acme" for record in draft.company_records.values()
        )

    def test_insert_corporate_term_appends_term(self):
        draft = make_draft(name="Acme Analytics")
        InsertCorporateTerm().apply(draft, random.Random(1))
        changed = [
            record["name"]
            for record in draft.company_records.values()
            if record["name"] != "Acme Analytics"
        ]
        assert changed
        assert all(name.startswith("Acme Analytics ") for name in changed)

    def test_reorder_name_tokens(self):
        draft = make_draft(name="Crowdstrike Holdings")
        ReorderNameTokens().apply(draft, random.Random(2))
        names = {record["name"] for record in draft.company_records.values()}
        assert "Holdings Crowdstrike" in names

    def test_typo_name_changes_exactly_one_source(self):
        draft = make_draft()
        TypoName().apply(draft, random.Random(3))
        changed = [
            record["name"]
            for record in draft.company_records.values()
            if record["name"] != "Crowdstrike Holdings"
        ]
        assert len(changed) == 1

    def test_paraphrase_changes_description(self):
        draft = make_draft()
        ParaphraseAttribute().apply(draft, random.Random(4))
        descriptions = {
            record["description"] for record in draft.company_records.values()
        }
        assert len(descriptions) > 1

    def test_paraphrase_static_method_substitutes_synonyms(self):
        text = "Acme provides cloud software for large enterprises"
        paraphrased = ParaphraseAttribute.paraphrase(text, random.Random(0))
        assert paraphrased != text

    def test_drop_attributes_blanks_values(self):
        draft = make_draft()
        DropAttributes().apply(draft, random.Random(5))
        dropped = [
            attribute
            for record in draft.company_records.values()
            for attribute, value in record.items()
            if value is None
        ]
        assert dropped
        assert all(record["name"] for record in draft.company_records.values())


class TestCrossGroupEvents:
    def test_acquisition_merges_entities(self):
        acquirer = make_draft(entity="E-ACQ", name="Hearst Communications")
        acquiree = make_draft(entity="E-TGT", name="Herotel")
        CreateCorporateAcquisition().apply_pair(acquirer, acquiree, random.Random(0))
        assert acquiree.entity_id == "E-ACQ"
        assert acquiree.acquired_by == "E-ACQ"
        # Some acquiree records carry the acquirer's name, some keep the old one
        # only when not every source recorded the event.
        names = [record["name"] for record in acquiree.company_records.values()]
        assert "Hearst Communications" in names

    def test_acquisition_rewrites_security_group(self):
        acquirer = make_draft(entity="E-ACQ", name="Hearst Communications")
        acquiree = make_draft(entity="E-TGT", name="Herotel")
        CreateCorporateAcquisition().apply_pair(acquirer, acquiree, random.Random(1))
        acquirer_security_ids = {s.entity_id for s in acquirer.securities}
        assert all(s.entity_id in acquirer_security_ids for s in acquiree.securities)

    def test_merger_keeps_entities_separate(self):
        first = make_draft(entity="E-A", name="lastminute.com")
        second = make_draft(entity="E-B", name="Travix International")
        CreateCorporateMerger().apply_pair(first, second, random.Random(0))
        assert first.entity_id == "E-A"
        assert second.entity_id == "E-B"
        assert first.merged_with == "E-B"
        assert second.merged_with == "E-A"

    def test_merger_contaminates_identifiers(self):
        first = make_draft(entity="E-A", name="lastminute.com")
        second = make_draft(entity="E-B", name="Travix International")
        CreateCorporateMerger().apply_pair(first, second, random.Random(0))
        donor_ids = set(first.securities[0].identifiers.values())
        receiver_values = {
            value
            for record in second.securities[0].records.values()
            for key, value in record.items()
            if key in SECURITY_ID_FIELDS
        }
        assert donor_ids & receiver_values


class TestSecurityArtifacts:
    def test_multiple_ids_splits_identifier_overlap(self):
        draft = make_draft()
        MultipleIDs().apply(draft, random.Random(0))
        security = draft.securities[0]
        isins = {record["isin"] for record in security.records.values()}
        assert len(isins) >= 1  # may or may not switch isin specifically
        all_values = [
            tuple(record[field] for field in SECURITY_ID_FIELDS)
            for record in security.records.values()
        ]
        assert len(set(all_values)) > 1

    def test_no_id_overlaps_wipes_shared_identifiers(self):
        draft = make_draft()
        NoIdOverlaps().apply(draft, random.Random(1))
        security = draft.securities[0]
        bundles = [
            tuple(record[field] for field in SECURITY_ID_FIELDS)
            for record in security.records.values()
        ]
        assert len(set(bundles)) == len(bundles)

    def test_multiple_securities_adds_security(self):
        draft = make_draft()
        before = len(draft.securities)
        MultipleSecurities().apply(draft, random.Random(2))
        assert len(draft.securities) == before + 1
        new_security = draft.securities[-1]
        assert new_security.security_type != "common stock"
        assert new_security.records

    def test_corrupt_identifier_changes_one_value(self):
        draft = make_draft()
        original = {
            source: dict(record)
            for source, record in draft.securities[0].records.items()
        }
        CorruptIdentifier().apply(draft, random.Random(3))
        differences = 0
        for source, record in draft.securities[0].records.items():
            for field in SECURITY_ID_FIELDS:
                if record[field] != original[source][field]:
                    differences += 1
        assert differences == 1

    def test_artifacts_are_noops_without_securities(self):
        draft = make_draft()
        draft.securities = []
        for artifact in (MultipleIDs(), NoIdOverlaps(), CorruptIdentifier()):
            artifact.apply(draft, random.Random(0))
        assert draft.applied_artifacts == []
