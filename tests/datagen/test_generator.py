"""Tests for the synthetic benchmark generator."""

import pytest

from repro.datagen import GenerationConfig, RealLikeConfig, SyntheticConfig, generate_benchmark
from repro.datagen.generator import SyntheticDatasetGenerator
from repro.datagen.identifiers import is_valid_isin
from repro.datagen.records import CompanyRecord, SecurityRecord


def small_config(**overrides):
    defaults = dict(num_entities=60, num_sources=5, seed=11)
    defaults.update(overrides)
    return GenerationConfig(**defaults)


class TestConfigValidation:
    def test_invalid_sources(self):
        with pytest.raises(ValueError):
            GenerationConfig(num_sources=0)

    def test_invalid_source_range(self):
        with pytest.raises(ValueError):
            GenerationConfig(min_sources_per_entity=4, max_sources_per_entity=2)

    def test_max_sources_exceeding_total(self):
        with pytest.raises(ValueError):
            GenerationConfig(num_sources=3, max_sources_per_entity=5)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            GenerationConfig(acquisition_rate=1.5)

    def test_source_names(self):
        assert GenerationConfig(num_sources=3).source_names == ["S1", "S2", "S3"]

    def test_preset_configs_valid(self):
        assert SyntheticConfig().num_sources == 5
        assert RealLikeConfig().num_sources == 8


class TestGeneration:
    def test_entity_counts(self):
        benchmark = generate_benchmark(small_config())
        company_entities = set(benchmark.companies.entity_groups())
        # Acquisitions merge groups, so there can be slightly fewer entities
        # than seeds but never more.
        assert 50 <= len(company_entities) <= 60

    def test_records_reference_known_sources(self):
        benchmark = generate_benchmark(small_config())
        sources = set(benchmark.config.source_names)
        assert set(benchmark.companies.sources) <= sources
        assert set(benchmark.securities.sources) <= sources

    def test_each_company_entity_has_at_most_one_record_per_source(self):
        benchmark = generate_benchmark(small_config(acquisition_rate=0.0))
        for record_ids in benchmark.companies.entity_groups().values():
            records = [benchmark.companies.record(rid) for rid in record_ids]
            sources = [record.source for record in records]
            assert len(sources) == len(set(sources))

    def test_company_records_are_company_type(self):
        benchmark = generate_benchmark(small_config())
        assert all(isinstance(r, CompanyRecord) for r in benchmark.companies)
        assert all(isinstance(r, SecurityRecord) for r in benchmark.securities)

    def test_security_issuers_point_to_companies(self):
        benchmark = generate_benchmark(small_config())
        company_entity_ids = {r.entity_id for r in benchmark.companies}
        for security in benchmark.securities:
            assert security.issuer_entity_id in company_entity_ids
            if security.issuer_record_id is not None:
                issuer = benchmark.companies.record(security.issuer_record_id)
                assert issuer.source == security.source

    def test_identifiers_are_mostly_valid(self):
        benchmark = generate_benchmark(small_config())
        isins = [r.isin for r in benchmark.securities if r.isin]
        valid = sum(1 for isin in isins if is_valid_isin(isin))
        # CorruptIdentifier may invalidate a few, but the bulk must validate.
        assert valid / len(isins) > 0.9

    def test_determinism(self):
        first = generate_benchmark(small_config())
        second = generate_benchmark(small_config())
        assert [r.to_dict() for r in first.companies] == [
            r.to_dict() for r in second.companies
        ]
        assert [r.to_dict() for r in first.securities] == [
            r.to_dict() for r in second.securities
        ]

    def test_different_seed_changes_data(self):
        first = generate_benchmark(small_config(seed=1))
        second = generate_benchmark(small_config(seed=2))
        assert [r.to_dict() for r in first.companies] != [
            r.to_dict() for r in second.companies
        ]

    def test_acquisitions_create_multi_seed_groups(self):
        config = small_config(num_entities=200, acquisition_rate=0.2, merger_rate=0.0)
        benchmark = generate_benchmark(config)
        acquired = [d for d in benchmark.drafts if d.acquired_by]
        assert acquired
        # Acquiree company records carry the acquirer's entity id.
        for draft in acquired:
            group = benchmark.companies.entity_groups()[draft.entity_id]
            # merged groups can now exceed one record per source
            assert len(group) >= len(draft.company_records)

    def test_mergers_do_not_merge_groups(self):
        config = small_config(num_entities=200, acquisition_rate=0.0, merger_rate=0.2)
        benchmark = generate_benchmark(config)
        merged = [d for d in benchmark.drafts if d.merged_with]
        assert merged
        for draft in merged:
            assert draft.entity_id.endswith(draft.seed.entity_id)

    def test_description_share_respected(self):
        config = small_config(num_entities=300, description_probability=0.3)
        benchmark = generate_benchmark(config)
        with_description = sum(1 for r in benchmark.companies if r.description)
        share = with_description / len(benchmark.companies)
        assert 0.15 <= share <= 0.45

    def test_zero_entities(self):
        benchmark = generate_benchmark(small_config(num_entities=0))
        assert len(benchmark.companies) == 0
        assert len(benchmark.securities) == 0

    def test_generator_reusable(self):
        generator = SyntheticDatasetGenerator(small_config())
        first = generator.generate()
        second = generator.generate()
        assert len(first.companies) == len(second.companies)
