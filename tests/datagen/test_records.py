"""Tests for the record / dataset model."""

import pytest

from repro.datagen.records import (
    CompanyRecord,
    Dataset,
    ProductRecord,
    SecurityRecord,
    pair_key,
)


def make_company(record_id, source, entity, name="Acme"):
    return CompanyRecord(
        record_id=record_id, source=source, entity_id=entity, name=name
    )


class TestRecords:
    def test_company_attributes(self):
        record = CompanyRecord(
            record_id="r1", source="S1", entity_id="e1",
            name="Acme", city="Zurich", country_code="CHE",
        )
        attrs = record.attributes()
        assert attrs["name"] == "Acme"
        assert attrs["city"] == "Zurich"
        assert "record_id" not in attrs

    def test_security_identifier_values(self):
        record = SecurityRecord(
            record_id="s1", source="S1", entity_id="e1",
            name="Acme stock", isin="US1", cusip=None, sedol="SED", valor=None,
        )
        ids = record.identifier_values()
        assert ids == {"isin": "US1", "cusip": None, "sedol": "SED", "valor": None}

    def test_product_attributes(self):
        record = ProductRecord(
            record_id="p1", source="shop1", entity_id="e1", title="USB Drive 64GB",
        )
        assert record.attributes()["title"] == "USB Drive 64GB"

    def test_copy_with(self):
        record = make_company("r1", "S1", "e1")
        clone = record.copy_with(name="Acme Corp")
        assert clone.name == "Acme Corp"
        assert record.name == "Acme"
        assert clone.record_id == record.record_id

    def test_to_dict_round_trip_fields(self):
        record = make_company("r1", "S1", "e1")
        data = record.to_dict()
        assert data["record_id"] == "r1"
        assert data["source"] == "S1"
        assert "name" in data

    def test_pair_key_is_canonical(self):
        a = make_company("r1", "S1", "e1")
        b = make_company("r2", "S2", "e1")
        assert pair_key(a, b) == pair_key(b, a)
        assert pair_key("r2", "r1") == ("r1", "r2")


class TestDataset:
    def build(self):
        return Dataset("test", [
            make_company("r1", "S1", "e1"),
            make_company("r2", "S2", "e1"),
            make_company("r3", "S1", "e2"),
            make_company("r4", "S3", "e1"),
        ])

    def test_len_and_iteration(self):
        dataset = self.build()
        assert len(dataset) == 4
        assert {record.record_id for record in dataset} == {"r1", "r2", "r3", "r4"}

    def test_duplicate_record_id_rejected(self):
        with pytest.raises(ValueError):
            Dataset("dup", [make_company("r1", "S1", "e1"), make_company("r1", "S2", "e1")])

    def test_add_record_rejects_duplicates(self):
        dataset = self.build()
        with pytest.raises(ValueError):
            dataset.add_record(make_company("r1", "S4", "e9"))

    def test_record_lookup(self):
        dataset = self.build()
        assert dataset.record("r3").entity_id == "e2"
        assert "r3" in dataset
        assert "missing" not in dataset

    def test_sources(self):
        assert self.build().sources == ["S1", "S2", "S3"]

    def test_records_by_source(self):
        by_source = self.build().records_by_source()
        assert {r.record_id for r in by_source["S1"]} == {"r1", "r3"}

    def test_entity_groups(self):
        groups = self.build().entity_groups()
        assert groups["e1"] == ["r1", "r2", "r4"]
        assert groups["e2"] == ["r3"]

    def test_true_matches(self):
        matches = self.build().true_matches()
        assert matches == {("r1", "r2"), ("r1", "r4"), ("r2", "r4")}

    def test_is_true_match(self):
        dataset = self.build()
        assert dataset.is_true_match("r1", "r2")
        assert not dataset.is_true_match("r1", "r3")

    def test_entity_of(self):
        assert self.build().entity_of("r4") == "e1"

    def test_subset_by_entities(self):
        subset = self.build().subset_by_entities(["e2"])
        assert len(subset) == 1
        assert subset.record("r3").entity_id == "e2"

    def test_subset_by_records(self):
        subset = self.build().subset_by_records(["r1", "r2"], name="small")
        assert subset.name == "small"
        assert len(subset) == 2
        assert subset.true_matches() == {("r1", "r2")}
