"""Tests for dataset statistics, CSV persistence, the WDC generator and the
Figure 2 example dataset."""

import pytest

from repro.datagen import (
    dataset_statistics,
    figure2_dataset,
    generate_benchmark,
    generate_wdc_products,
)
from repro.datagen.config import GenerationConfig
from repro.datagen.io import read_dataset_csv, write_dataset_csv
from repro.datagen.records import Dataset
from repro.datagen.wdc import WdcConfig, WdcProductsGenerator


@pytest.fixture(scope="module")
def small_benchmark():
    return generate_benchmark(GenerationConfig(num_entities=40, seed=3))


class TestStatistics:
    def test_companies_statistics(self, small_benchmark):
        stats = dataset_statistics(small_benchmark.companies)
        assert stats.num_records == len(small_benchmark.companies)
        assert stats.num_entities == len(small_benchmark.companies.entity_groups())
        assert stats.num_matches == len(small_benchmark.companies.true_matches())
        assert stats.pct_records_with_description is not None
        assert 0 <= stats.pct_records_with_description <= 100

    def test_avg_matches_consistent(self, small_benchmark):
        stats = dataset_statistics(small_benchmark.companies)
        assert stats.avg_matches_per_entity == pytest.approx(
            stats.num_matches / stats.num_entities
        )

    def test_securities_have_no_description_share(self, small_benchmark):
        stats = dataset_statistics(small_benchmark.securities)
        assert stats.pct_records_with_description is None

    def test_as_row_keys(self, small_benchmark):
        row = dataset_statistics(small_benchmark.companies).as_row()
        assert "# of Records" in row
        assert "# of Matches" in row


class TestCsvRoundTrip:
    def test_companies_round_trip(self, small_benchmark, tmp_path):
        path = write_dataset_csv(small_benchmark.companies, tmp_path / "companies.csv")
        loaded = read_dataset_csv(path)
        assert len(loaded) == len(small_benchmark.companies)
        original = small_benchmark.companies.records[0]
        restored = loaded.record(original.record_id)
        assert restored.name == original.name
        assert restored.entity_id == original.entity_id
        assert restored.security_isins == original.security_isins

    def test_securities_round_trip(self, small_benchmark, tmp_path):
        path = write_dataset_csv(small_benchmark.securities, tmp_path / "securities.csv")
        loaded = read_dataset_csv(path, name="sec")
        assert loaded.name == "sec"
        assert loaded.true_matches() == small_benchmark.securities.true_matches()

    def test_empty_dataset_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_dataset_csv(Dataset("empty", []), tmp_path / "empty.csv")


class TestWdcGenerator:
    def test_generation_counts(self):
        dataset = generate_wdc_products(WdcConfig(num_entities=50, seed=1))
        # corner cases add 80% more entities
        assert len(dataset.entity_groups()) <= 90
        assert len(dataset) >= 50

    def test_heterogeneous_group_sizes(self):
        dataset = generate_wdc_products(WdcConfig(num_entities=100, seed=2))
        sizes = {len(ids) for ids in dataset.entity_groups().values()}
        assert len(sizes) > 1

    def test_corner_cases_share_tokens(self):
        dataset = generate_wdc_products(WdcConfig(num_entities=80, corner_case_rate=1.0, seed=3))
        titles = [record.title for record in dataset]
        # With 100% corner cases many titles repeat most of their tokens.
        token_sets = [frozenset(title.lower().split()) for title in titles]
        overlapping = 0
        for i, tokens in enumerate(token_sets[:100]):
            for other in token_sets[i + 1:100]:
                union = tokens | other
                if union and len(tokens & other) / len(union) > 0.6:
                    overlapping += 1
                    break
        assert overlapping > 0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            WdcConfig(num_entities=0)
        with pytest.raises(ValueError):
            WdcConfig(corner_case_rate=2.0)

    def test_deterministic(self):
        first = WdcProductsGenerator(WdcConfig(num_entities=30, seed=9)).generate()
        second = WdcProductsGenerator(WdcConfig(num_entities=30, seed=9)).generate()
        assert [r.to_dict() for r in first] == [r.to_dict() for r in second]


class TestFigure2Example:
    def test_structure(self):
        companies, securities = figure2_dataset()
        assert len(companies) == 15
        assert len(securities) == 13
        assert "crowdstrike" in companies.entity_groups()
        assert "crowdstreet" in companies.entity_groups()

    def test_crowdstrike_group(self):
        companies, _ = figure2_dataset()
        assert set(companies.entity_groups()["crowdstrike"]) == {"#12", "#22", "#31", "#40"}

    def test_acquisition_is_match_merger_is_not(self):
        companies, _ = figure2_dataset()
        # Herotel + Hearst records form one group (acquisition).
        assert companies.is_true_match("#11", "#33")
        # lastminute.com and Travix are not matches (merger).
        assert not companies.is_true_match("#30", "#42")

    def test_security_identifier_contamination_present(self):
        _, securities = figure2_dataset()
        herotel_security = securities.record("#S21")
        hearst_security = securities.record("#S33")
        assert herotel_security.isin == hearst_security.isin
        assert herotel_security.entity_id == hearst_security.entity_id
        lastminute_security = securities.record("#S30")
        travix_security = securities.record("#S42")
        assert lastminute_security.isin == travix_security.isin
        assert lastminute_security.entity_id != travix_security.entity_id
