"""Tests for the procedural seed-company corpus."""

import pytest

from repro.datagen.seed import generate_seed_companies, iter_seed_companies


class TestSeedGeneration:
    def test_count(self):
        assert len(generate_seed_companies(50, seed=1)) == 50

    def test_zero(self):
        assert generate_seed_companies(0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            generate_seed_companies(-1)

    def test_invalid_description_probability(self):
        with pytest.raises(ValueError):
            generate_seed_companies(1, description_probability=1.5)

    def test_deterministic(self):
        first = generate_seed_companies(30, seed=7)
        second = generate_seed_companies(30, seed=7)
        assert first == second

    def test_different_seeds_differ(self):
        assert generate_seed_companies(30, seed=1) != generate_seed_companies(30, seed=2)

    def test_names_are_unique(self):
        companies = generate_seed_companies(500, seed=3)
        names = [company.name.lower() for company in companies]
        assert len(names) == len(set(names))

    def test_entity_ids_are_unique_and_ordered(self):
        companies = generate_seed_companies(10, seed=0)
        assert [c.entity_id for c in companies] == [f"E{i:06d}" for i in range(10)]

    def test_attributes_populated(self):
        company = generate_seed_companies(1, seed=5)[0]
        assert company.name
        assert company.city
        assert company.region
        assert len(company.country_code) == 3
        assert company.industry

    def test_description_probability_controls_share(self):
        all_descriptions = generate_seed_companies(200, seed=1, description_probability=1.0)
        none_descriptions = generate_seed_companies(200, seed=1, description_probability=0.0)
        assert all(company.description for company in all_descriptions)
        assert not any(company.description for company in none_descriptions)

    def test_description_share_roughly_matches_probability(self):
        companies = generate_seed_companies(1000, seed=2, description_probability=0.32)
        share = sum(1 for c in companies if c.description) / len(companies)
        assert 0.22 <= share <= 0.42

    def test_iterator_is_lazy(self):
        iterator = iter_seed_companies(1_000_000, seed=0)
        first = next(iterator)
        assert first.entity_id == "E000000"

    def test_as_attributes(self):
        company = generate_seed_companies(1, seed=5)[0]
        attrs = company.as_attributes()
        assert attrs["name"] == company.name
        assert set(attrs) == {
            "name", "city", "region", "country_code", "description", "industry",
        }
