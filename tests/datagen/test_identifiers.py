"""Tests for financial identifier generation and validation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.identifiers import (
    SECURITY_ID_FIELDS,
    corrupt_identifier,
    identifier_overlap,
    is_valid_cusip,
    is_valid_isin,
    is_valid_lei,
    is_valid_sedol,
    is_valid_valor,
    isin_check_digit,
    make_cusip,
    make_isin,
    make_lei,
    make_security_identifiers,
    make_sedol,
    make_ticker,
    make_valor,
    validate_identifier,
)

seeds = st.integers(min_value=0, max_value=10_000)


class TestIsin:
    def test_known_real_isins_validate(self):
        # Real ISINs: Apple, Microsoft, Nestlé.
        assert is_valid_isin("US0378331005")
        assert is_valid_isin("US5949181045")
        assert is_valid_isin("CH0038863350")

    def test_corrupted_real_isin_fails(self):
        assert not is_valid_isin("US0378331006")

    def test_wrong_length(self):
        assert not is_valid_isin("US037833100")
        assert not is_valid_isin(None)
        assert not is_valid_isin("")

    def test_lowercase_country_rejected(self):
        assert not is_valid_isin("us0378331005")

    def test_check_digit_requires_11_chars(self):
        with pytest.raises(ValueError):
            isin_check_digit("US03783310")

    @given(seeds)
    @settings(max_examples=50, deadline=None)
    def test_generated_isins_are_valid(self, seed):
        assert is_valid_isin(make_isin(random.Random(seed)))

    def test_country_override(self):
        isin = make_isin(random.Random(0), country="CH")
        assert isin.startswith("CH")
        assert is_valid_isin(isin)


class TestCusip:
    def test_known_real_cusips_validate(self):
        # Apple and Cisco CUSIPs.
        assert is_valid_cusip("037833100")
        assert is_valid_cusip("17275R102")

    def test_corrupted_fails(self):
        assert not is_valid_cusip("037833101")

    @given(seeds)
    @settings(max_examples=50, deadline=None)
    def test_generated_cusips_are_valid(self, seed):
        assert is_valid_cusip(make_cusip(random.Random(seed)))

    def test_wrong_length(self):
        assert not is_valid_cusip("03783310")
        assert not is_valid_cusip(None)


class TestSedol:
    def test_known_real_sedol_validates(self):
        assert is_valid_sedol("0263494")  # BAE Systems

    def test_corrupted_fails(self):
        assert not is_valid_sedol("0263495")

    @given(seeds)
    @settings(max_examples=50, deadline=None)
    def test_generated_sedols_are_valid(self, seed):
        assert is_valid_sedol(make_sedol(random.Random(seed)))

    def test_vowels_rejected(self):
        assert not is_valid_sedol("A263494")


class TestValorAndLei:
    @given(seeds)
    @settings(max_examples=50, deadline=None)
    def test_generated_valors_are_valid(self, seed):
        assert is_valid_valor(make_valor(random.Random(seed)))

    def test_valor_rejects_non_numeric(self):
        assert not is_valid_valor("ABC123")
        assert not is_valid_valor("12")

    def test_known_real_lei_validates(self):
        # Apple Inc.'s LEI.
        assert is_valid_lei("HWUPKR0MPOU8FGXBT394")

    def test_corrupted_lei_fails(self):
        assert not is_valid_lei("HWUPKR0MPOU8FGXBT395")

    @given(seeds)
    @settings(max_examples=50, deadline=None)
    def test_generated_leis_are_valid(self, seed):
        assert is_valid_lei(make_lei(random.Random(seed)))


class TestTicker:
    def test_derived_from_name(self):
        ticker = make_ticker(random.Random(0), "Crowdstrike")
        assert ticker.isupper()
        assert 3 <= len(ticker) <= 4
        assert ticker.startswith("CRO")

    def test_without_name(self):
        ticker = make_ticker(random.Random(0))
        assert ticker.isalpha()
        assert 3 <= len(ticker) <= 4


class TestBundlesAndHelpers:
    def test_bundle_has_all_fields(self):
        bundle = make_security_identifiers(random.Random(1))
        assert set(bundle) == set(SECURITY_ID_FIELDS)
        assert is_valid_isin(bundle["isin"])
        assert is_valid_cusip(bundle["cusip"])
        assert is_valid_sedol(bundle["sedol"])
        assert is_valid_valor(bundle["valor"])

    def test_validate_identifier_dispatch(self):
        assert validate_identifier("isin", "US0378331005")
        assert not validate_identifier("cusip", "bad")
        with pytest.raises(ValueError):
            validate_identifier("figi", "X")

    @given(seeds)
    @settings(max_examples=50, deadline=None)
    def test_corrupt_identifier_changes_value(self, seed):
        rng = random.Random(seed)
        original = make_isin(rng)
        corrupted = corrupt_identifier(rng, original)
        assert corrupted != original
        assert len(corrupted) == len(original)

    def test_corrupt_empty_identifier_is_noop(self):
        assert corrupt_identifier(random.Random(0), "") == ""

    def test_identifier_overlap(self):
        left = {"isin": "A", "cusip": "B", "sedol": None, "valor": "9"}
        right = {"isin": "A", "cusip": "C", "sedol": None, "valor": ""}
        assert identifier_overlap(left, right) == {"isin"}

    def test_identifier_overlap_ignores_empty(self):
        left = {"isin": None, "cusip": "", "sedol": "X", "valor": "1"}
        right = {"isin": None, "cusip": "", "sedol": "Y", "valor": "2"}
        assert identifier_overlap(left, right) == set()

    def test_generation_is_deterministic(self):
        assert make_isin(random.Random(42)) == make_isin(random.Random(42))
