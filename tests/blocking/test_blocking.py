"""Tests for the blocking strategies."""

import pytest

from repro.blocking import (
    CombinedBlocking,
    IdOverlapBlocking,
    IssuerMatchBlocking,
    TokenOverlapBlocking,
)
from repro.blocking.base import dedupe_pairs, recall_of_blocking
from repro.datagen import GenerationConfig, figure2_dataset, generate_benchmark


@pytest.fixture(scope="module")
def blocking_benchmark():
    return generate_benchmark(
        GenerationConfig(num_entities=60, num_sources=4, seed=41,
                         acquisition_rate=0.04, merger_rate=0.04)
    )


class TestIdOverlapBlocking:
    def test_figure2_securities(self):
        _, securities = figure2_dataset()
        pairs = IdOverlapBlocking().candidate_pairs(securities)
        keys = {pair.key for pair in pairs}
        # Records with the same ISIN must be candidates (Crowdstrike listings).
        assert ("#S12", "#S31") in keys
        assert ("#S22", "#S40") in keys
        # The merger contamination creates a *false* candidate.
        assert ("#S30", "#S42") in keys
        # Different ISINs, no candidate from this blocking.
        assert ("#S12", "#S22") not in keys

    def test_figure2_companies_via_security_isins(self):
        companies, _ = figure2_dataset()
        pairs = IdOverlapBlocking().candidate_pairs(companies)
        keys = {pair.key for pair in pairs}
        assert ("#12", "#31") in keys
        assert ("#13", "#23") in keys

    def test_cross_source_only_flag(self):
        _, securities = figure2_dataset()
        unrestricted = IdOverlapBlocking(cross_source_only=False).candidate_pairs(securities)
        restricted = IdOverlapBlocking(cross_source_only=True).candidate_pairs(securities)
        assert len(unrestricted) >= len(restricted)

    def test_pairs_are_tagged(self):
        _, securities = figure2_dataset()
        pairs = IdOverlapBlocking().candidate_pairs(securities)
        assert all(pair.blocking == "id_overlap" for pair in pairs)

    def test_recall_on_generated_securities(self, blocking_benchmark):
        securities = blocking_benchmark.securities
        pairs = IdOverlapBlocking().candidate_pairs(securities)
        recall = recall_of_blocking(pairs, securities)
        # Most securities keep overlapping identifiers; NoIdOverlaps and
        # acquisitions remove some, so recall is high but not 1.
        assert recall > 0.6


class TestTokenOverlapBlocking:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenOverlapBlocking(top_n=0)
        with pytest.raises(ValueError):
            TokenOverlapBlocking(max_token_frequency=0.0)

    def test_finds_crowdstrike_name_variants(self):
        companies, _ = figure2_dataset()
        pairs = TokenOverlapBlocking(top_n=5).candidate_pairs(companies)
        keys = {pair.key for pair in pairs}
        assert ("#12", "#31") in keys or ("#31", "#40") in keys

    def test_cross_source_only(self):
        companies, _ = figure2_dataset()
        pairs = TokenOverlapBlocking(top_n=5).candidate_pairs(companies)
        for pair in pairs:
            left = companies.record(pair.left_id)
            right = companies.record(pair.right_id)
            assert left.source != right.source

    def test_top_n_bounds_candidates(self, blocking_benchmark):
        companies = blocking_benchmark.companies
        small = TokenOverlapBlocking(top_n=1).candidate_pairs(companies)
        large = TokenOverlapBlocking(top_n=5).candidate_pairs(companies)
        assert len(small) <= len(large)
        assert len(large) <= len(companies) * 5

    def test_tokenless_records_do_not_dilute_the_idf(self):
        # Records without a single token can never become candidates, so
        # they must not count in the IDF denominator or the frequency
        # cutoff: padding a dataset with empty-name records must leave the
        # candidates untouched.  (Counting them raises the cutoff, which
        # can re-admit quadratic-blowup tokens like "inc".)
        from repro.datagen.records import CompanyRecord, Dataset

        names = [
            "Crowdstrike Holdings", "Crowdstreet Holdings",
            "Nimbus Holdings Analytics", "Quantum Forge Labs",
        ]
        records = [
            CompanyRecord(record_id=f"#{i}", source=f"S{i % 2}",
                          entity_id=f"E{i}", name=name)
            for i, name in enumerate(names)
        ]
        blocking = TokenOverlapBlocking(top_n=2, max_token_frequency=0.5)
        baseline = blocking.candidate_pairs(Dataset("base", records))

        padded_records = records + [
            CompanyRecord(record_id=f"#pad{i}", source="S0",
                          entity_id=f"Epad{i}", name="")
            for i in range(4)
        ]
        padded = blocking.candidate_pairs(Dataset("padded", padded_records))
        assert padded == baseline
        # "holdings" appears in 3 of the 4 tokenised records — above the
        # 0.5 cutoff, so it stays excluded.  Counting the four token-less
        # pad records would lift the cutoff to 4 and re-admit it, creating
        # a spurious Crowdstrike–Crowdstreet candidate.
        shared = blocking.prepare(Dataset("padded", padded_records))
        assert shared.num_tokenised == 4
        assert "holdings" not in shared.token_index

    def test_improves_recall_over_id_blocking(self, blocking_benchmark):
        companies = blocking_benchmark.companies
        id_recall = recall_of_blocking(
            IdOverlapBlocking().candidate_pairs(companies), companies
        )
        combined_recall = recall_of_blocking(
            CombinedBlocking(
                [IdOverlapBlocking(), TokenOverlapBlocking(top_n=5)]
            ).candidate_pairs(companies),
            companies,
        )
        assert combined_recall >= id_recall


class TestIssuerMatchBlocking:
    def test_requires_groups(self):
        with pytest.raises(ValueError):
            IssuerMatchBlocking()

    def test_from_ground_truth_issuers(self):
        companies, securities = figure2_dataset()
        blocking = IssuerMatchBlocking.from_ground_truth(companies)
        pairs = blocking.candidate_pairs(securities)
        keys = {pair.key for pair in pairs}
        # The two Crowdstrike listings with different ISINs become candidates
        # through their matched issuers — the whole point of this blocking.
        assert ("#S12", "#S22") in keys or ("#S12", "#S40") in keys

    def test_from_company_groups(self):
        companies, securities = figure2_dataset()
        groups = list(companies.entity_groups().values())
        blocking = IssuerMatchBlocking.from_company_groups(groups)
        assert blocking.candidate_pairs(securities)

    def test_unknown_issuers_ignored(self):
        _, securities = figure2_dataset()
        blocking = IssuerMatchBlocking(issuer_groups=[["unknown-company"]])
        assert blocking.candidate_pairs(securities) == []


class TestCombinedBlocking:
    def test_requires_blockings(self):
        with pytest.raises(ValueError):
            CombinedBlocking([])

    def test_union_deduplicates(self):
        companies, _ = figure2_dataset()
        combined = CombinedBlocking([IdOverlapBlocking(), IdOverlapBlocking()])
        single = IdOverlapBlocking().candidate_pairs(companies)
        assert len(combined.candidate_pairs(companies)) == len(single)

    def test_first_blocking_wins_tag(self):
        companies, _ = figure2_dataset()
        combined = CombinedBlocking([IdOverlapBlocking(), TokenOverlapBlocking(top_n=5)])
        pairs = combined.candidate_pairs(companies)
        id_keys = {p.key for p in IdOverlapBlocking().candidate_pairs(companies)}
        for pair in pairs:
            if pair.key in id_keys:
                assert pair.blocking == "id_overlap"

    def test_pairs_by_blocking_counts(self, blocking_benchmark):
        companies = blocking_benchmark.companies
        combined = CombinedBlocking([IdOverlapBlocking(), TokenOverlapBlocking(top_n=3)])
        counts = combined.pairs_by_blocking(companies)
        assert set(counts) <= {"id_overlap", "token_overlap"}
        assert sum(counts.values()) == len(combined.candidate_pairs(companies))

    def test_pairs_by_blocking_accepts_precomputed_pairs(self, blocking_benchmark):
        # Counting from already-computed candidates must not re-run the
        # member blockings — stats reporting should not double blocking cost.
        companies = blocking_benchmark.companies
        calls = {"count": 0}

        class CountingIdOverlap(IdOverlapBlocking):
            def candidate_pairs(self, dataset):
                calls["count"] += 1
                return super().candidate_pairs(dataset)

        combined = CombinedBlocking([CountingIdOverlap(), TokenOverlapBlocking(top_n=3)])
        pairs = combined.candidate_pairs(companies)
        assert calls["count"] == 1
        counts = combined.pairs_by_blocking(pairs=pairs)
        assert calls["count"] == 1
        assert counts == combined.pairs_by_blocking(companies)

    def test_pairs_by_blocking_requires_dataset_or_pairs(self):
        combined = CombinedBlocking([IdOverlapBlocking()])
        with pytest.raises(ValueError, match="dataset or pairs"):
            combined.pairs_by_blocking()


class TestHelpers:
    def test_dedupe_pairs(self):
        from repro.blocking.base import CandidatePair

        pairs = [
            CandidatePair("a", "b", "x"),
            CandidatePair("a", "b", "y"),
            CandidatePair("b", "c", "x"),
        ]
        unique = dedupe_pairs(pairs)
        assert len(unique) == 2
        assert unique[0].blocking == "x"

    def test_recall_of_blocking_empty_truth(self):
        from repro.datagen.records import CompanyRecord, Dataset

        dataset = Dataset("one", [CompanyRecord(record_id="r", source="S1", entity_id="e", name="A")])
        assert recall_of_blocking([], dataset) == 1.0
