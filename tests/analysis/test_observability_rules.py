"""Fixture suite for the clock-discipline rule (``obs-clock-discipline``).

Timing must flow through :func:`repro.obs.clock.now` so every measured
interval can land on the trace timeline; raw ``time.perf_counter()`` /
``time.monotonic()`` calls are findings everywhere except the clock seam
itself (``repro.obs``) and the legacy timings view
(``repro.runtime.profiler``).
"""

from repro.analysis import resolve_rules, run_source

RULES = resolve_rules(select=["obs-clock-discipline"])

MATCHING = "repro.matching.fixture"


def rules_of(source, module=MATCHING):
    return [f.rule for f in run_source(source, module=module, rules=RULES)]


class TestRawClockCallsAreFindings:
    def test_perf_counter_in_library_code_is_caught(self):
        source = (
            "import time\n"
            "def train():\n"
            "    start = time.perf_counter()\n"
            "    return time.perf_counter() - start\n"
        )
        assert rules_of(source) == ["obs-clock-discipline"] * 2

    def test_monotonic_is_caught(self):
        source = "import time\ndef f():\n    return time.monotonic()\n"
        assert rules_of(source) == ["obs-clock-discipline"]

    def test_nanosecond_variants_are_caught(self):
        source = (
            "import time\n"
            "def f():\n"
            "    return time.perf_counter_ns(), time.monotonic_ns()\n"
        )
        assert rules_of(source) == ["obs-clock-discipline"] * 2

    def test_tests_and_benchmarks_are_in_scope(self):
        # packages=None: the rule runs on every module, not just repro.*.
        source = "import time\ndef f():\n    return time.perf_counter()\n"
        assert rules_of(source, module="benchmarks.bench_fixture") == [
            "obs-clock-discipline"
        ]
        assert rules_of(source, module="tests.fixture") == [
            "obs-clock-discipline"
        ]


class TestCleanCode:
    def test_clock_now_is_the_blessed_spelling(self):
        source = (
            "from repro.obs import clock\n"
            "def f():\n"
            "    start = clock.now()\n"
            "    return clock.now() - start\n"
        )
        assert rules_of(source) == []

    def test_other_time_functions_are_not_findings(self):
        # Wall-clock reads and sleeps are not *measurements*; they are out
        # of this rule's scope.
        source = (
            "import time\n"
            "def f():\n"
            "    time.sleep(0.1)\n"
            "    return time.time(), time.strftime('%Y')\n"
        )
        assert rules_of(source) == []

    def test_unrelated_perf_counter_attribute_is_not_a_finding(self):
        # Only the dotted `time.*` names match, not same-named methods on
        # other objects.
        source = "def f(metrics):\n    return metrics.perf_counter()\n"
        assert rules_of(source) == []


class TestExemptModules:
    def test_the_clock_seam_itself_is_exempt(self):
        source = "import time\ndef now():\n    return time.perf_counter()\n"
        assert rules_of(source, module="repro.obs.clock") == []
        assert rules_of(source, module="repro.obs.trace") == []

    def test_the_profiler_is_exempt(self):
        source = "import time\ndef f():\n    return time.perf_counter()\n"
        assert rules_of(source, module="repro.runtime.profiler") == []

    def test_other_runtime_modules_are_not_exempt(self):
        source = "import time\ndef f():\n    return time.perf_counter()\n"
        assert rules_of(source, module="repro.runtime.scheduler") == [
            "obs-clock-discipline"
        ]


class TestSuppression:
    def test_justified_suppression_silences_the_line(self):
        source = (
            "import time\n"
            "def bench():\n"
            "    return time.perf_counter()  "
            "# repro-lint: disable=obs-clock-discipline -- wall clock is the artefact\n"
        )
        assert rules_of(source) == []
