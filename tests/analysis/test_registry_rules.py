"""Fixture suite for registry-consistency and the hygiene rule."""

import json

from repro.analysis import resolve_rules, run_paths, run_source

REGISTRY = resolve_rules(select=["registry-consistency"])
HYGIENE = resolve_rules(select=["print-in-library"])


def rules_of(source, rules, module="repro.specs.fixture"):
    return [f.rule for f in run_source(source, module=module, rules=rules)]


class TestRegistryConsistencyPython:
    def test_unknown_name_in_blocking_recipes_is_caught(self):
        source = (
            "BLOCKING_RECIPES = {\n"
            "    'companies': (ComponentSpec('no_such_blocking'),),\n"
            "}\n"
        )
        findings = run_source(source, module="repro.specs.fixture", rules=REGISTRY)
        assert [f.rule for f in findings] == ["registry-consistency"]
        assert "no_such_blocking" in findings[0].message

    def test_registered_names_in_blocking_recipes_are_clean(self):
        source = (
            "BLOCKING_RECIPES = {\n"
            "    'companies': (ComponentSpec('id_overlap'),\n"
            "                  ComponentSpec(name='token_overlap')),\n"
            "}\n"
        )
        assert rules_of(source, REGISTRY) == []

    def test_unknown_literal_in_registry_create_is_caught(self):
        source = "b = BLOCKINGS.create('no_such_blocking')\n"
        findings = run_source(source, module="repro.specs.fixture", rules=REGISTRY)
        assert len(findings) == 1
        assert "cannot resolve" in findings[0].message

    def test_known_literal_and_dynamic_names_are_clean(self):
        source = (
            "a = BLOCKINGS.create('id_overlap')\n"
            "b = BLOCKINGS.create(some_variable)\n"
        )
        assert rules_of(source, REGISTRY) == []

    def test_suppression_silences(self):
        source = (
            "b = BLOCKINGS.create('future_blocking')  # repro-lint: disable=registry-consistency -- registered by a plugin\n"
        )
        assert rules_of(source, REGISTRY) == []


class TestRegistryConsistencyData:
    def _lint_file(self, path):
        return run_paths([path], select=["registry-consistency"]).findings

    def test_spec_with_unknown_blocking_is_caught(self, tmp_path):
        spec = tmp_path / "spec.toml"
        spec.write_text(
            "[pipeline]\n"
            "[[pipeline.blocking]]\n"
            'name = "no_such_blocking"\n',
            encoding="utf-8",
        )
        findings = self._lint_file(spec)
        assert [f.rule for f in findings] == ["registry-consistency"]

    def test_spec_with_unknown_cleanup_strategy_is_caught(self, tmp_path):
        spec = tmp_path / "spec.toml"
        spec.write_text(
            "[pipeline.cleanup]\n"
            'strategy = "no_such_cleanup"\n',
            encoding="utf-8",
        )
        assert len(self._lint_file(spec)) == 1

    def test_spec_with_unknown_experiment_kind_is_caught(self, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text(
            json.dumps({"experiment": {"kind": "no_such_kind"}}), encoding="utf-8"
        )
        findings = self._lint_file(spec)
        assert len(findings) == 1
        assert "no_such_kind" in findings[0].message

    def test_shipped_example_specs_are_clean(self):
        from pathlib import Path

        result = run_paths(
            [Path("examples/configs")], select=["registry-consistency"]
        )
        assert result.findings == []
        assert result.files_checked > 0

    def test_non_spec_json_is_skipped_silently(self, tmp_path):
        blob = tmp_path / "results.json"
        blob.write_text(
            json.dumps({"runs": [{"seconds": 1.5}]}), encoding="utf-8"
        )
        assert self._lint_file(blob) == []

    def test_malformed_data_file_is_a_lint_error(self, tmp_path):
        blob = tmp_path / "broken.json"
        blob.write_text("{not json", encoding="utf-8")
        findings = run_paths([blob]).findings
        assert [f.rule for f in findings] == ["lint-error"]


class TestPrintInLibrary:
    def test_print_in_library_code_is_caught(self):
        source = "def stage(x):\n    print(x)\n    return x\n"
        assert rules_of(source, HYGIENE, module="repro.core.fixture") == [
            "print-in-library"
        ]

    def test_breakpoint_is_caught(self):
        source = "def stage(x):\n    breakpoint()\n    return x\n"
        assert rules_of(source, HYGIENE, module="repro.core.fixture") == [
            "print-in-library"
        ]

    def test_cli_module_is_out_of_scope(self):
        source = "def show(x):\n    print(x)\n"
        assert rules_of(source, HYGIENE, module="repro.cli") == []

    def test_suppression_silences(self):
        source = (
            "def stage(x):\n"
            "    print(x)  # repro-lint: disable=print-in-library -- debug helper\n"
        )
        assert rules_of(source, HYGIENE, module="repro.core.fixture") == []
