"""Fixture suite for the protocol-conformance rule.

The first test is the acceptance fixture: ``shardable = True`` without
``candidates_for`` must be caught by name.
"""

from repro.analysis import resolve_rules, run_source

MODULE = "repro.blocking.fixture"
PROTOCOL = resolve_rules(select=["protocol-conformance"])


def findings_of(source, module=MODULE):
    return run_source(source, module=module, rules=PROTOCOL)


class TestFlagWithoutMethods:
    def test_shardable_without_candidates_for_is_caught(self):
        # The acceptance fixture: the flag promises the two-phase protocol,
        # the body ships only half of it.
        source = (
            "class HalfSharded:\n"
            "    shardable = True\n"
            "\n"
            "    def prepare(self, dataset):\n"
            "        return {}\n"
        )
        findings = findings_of(source)
        assert [f.rule for f in findings] == ["protocol-conformance"]
        assert "candidates_for" in findings[0].message
        assert findings[0].line == 2  # reported at the flag assignment

    def test_delta_capable_without_delta_update_is_caught(self):
        source = "class D:\n    delta_capable = True\n"
        findings = findings_of(source)
        assert len(findings) == 1
        assert "delta_update" in findings[0].message

    def test_profile_capable_without_methods_is_caught(self):
        source = "class M:\n    profile_capable = True\n"
        findings = findings_of(source, module="repro.matching.fixture")
        assert len(findings) == 1
        assert "prepare_profiles" in findings[0].message

    def test_columnar_capable_without_score_profiled_is_caught(self):
        source = (
            "class M:\n"
            "    profile_capable = True\n"
            "    columnar_capable = True\n"
            "\n"
            "    def prepare_profiles(self, records):\n"
            "        return {}\n"
            "\n"
            "    def decide_profiled(self, profiles, id_pairs):\n"
            "        return []\n"
        )
        findings = findings_of(source, module="repro.matching.fixture")
        assert len(findings) == 1
        assert "score_profiled" in findings[0].message

    def test_columnar_without_profile_capable_is_caught(self):
        # The dependency check: columnar scoring consumes the profile store,
        # so the flag presupposes the profiled protocol — even with
        # score_profiled fully implemented.
        source = (
            "class M:\n"
            "    columnar_capable = True\n"
            "\n"
            "    def score_profiled(self, profiles, id_pairs):\n"
            "        return profiles.score(id_pairs)\n"
        )
        findings = findings_of(source, module="repro.matching.fixture")
        assert len(findings) == 1
        assert "profile_capable" in findings[0].message
        assert findings[0].line == 2  # reported at the columnar flag

    def test_columnar_with_profile_capable_false_is_caught(self):
        source = (
            "class M:\n"
            "    profile_capable = False\n"
            "    columnar_capable = True\n"
            "\n"
            "    def score_profiled(self, profiles, id_pairs):\n"
            "        return profiles.score(id_pairs)\n"
        )
        findings = findings_of(source, module="repro.matching.fixture")
        assert any("profile_capable = True" in f.message for f in findings)

    def test_columnar_dependency_suppression_silences(self):
        source = (
            "class M:\n"
            "    columnar_capable = True  # repro-lint: disable=protocol-conformance -- inherited profiled protocol\n"
            "\n"
            "    def score_profiled(self, profiles, id_pairs):\n"
            "        return profiles.score(id_pairs)\n"
        )
        assert findings_of(source, module="repro.matching.fixture") == []

    def test_columnar_protocol_complete_is_clean(self):
        source = (
            "class M:\n"
            "    profile_capable = True\n"
            "    columnar_capable = True\n"
            "\n"
            "    def prepare_profiles(self, records):\n"
            "        return {}\n"
            "\n"
            "    def decide_profiled(self, profiles, id_pairs):\n"
            "        return []\n"
            "\n"
            "    def score_profiled(self, profiles, id_pairs):\n"
            "        return profiles.score(id_pairs)\n"
        )
        assert findings_of(source, module="repro.matching.fixture") == []

    def test_score_profiled_without_flag_on_a_matcher_base_warns(self):
        source = (
            "class M(PairwiseMatcher):\n"
            "    def score_profiled(self, profiles, id_pairs):\n"
            "        return profiles.score(id_pairs)\n"
        )
        findings = findings_of(source, module="repro.matching.fixture")
        assert len(findings) == 1
        assert "columnar_capable" in findings[0].message

    def test_complete_protocol_is_clean(self):
        source = (
            "class Sharded:\n"
            "    shardable = True\n"
            "\n"
            "    def prepare(self, dataset):\n"
            "        return {}\n"
            "\n"
            "    def candidates_for(self, shared, records):\n"
            "        return []\n"
        )
        assert findings_of(source) == []

    def test_flag_false_without_methods_is_clean(self):
        source = "class Plain:\n    shardable = False\n"
        assert findings_of(source) == []

    def test_suppression_silences(self):
        source = (
            "class Inherits:\n"
            "    shardable = True  # repro-lint: disable=protocol-conformance -- methods inherited\n"
        )
        assert findings_of(source) == []


class TestMethodsWithoutFlag:
    def test_method_with_flag_false_is_contradictory(self):
        source = (
            "class Contradiction:\n"
            "    delta_capable = False\n"
            "\n"
            "    def delta_update(self, shared, dataset, new_records):\n"
            "        return shared\n"
        )
        findings = findings_of(source)
        assert len(findings) == 1
        assert "never call it" in findings[0].message

    def test_method_without_flag_on_a_blocking_base_warns(self):
        source = (
            "class MyBlocking(Blocking):\n"
            "    def delta_update(self, shared, dataset, new_records):\n"
            "        return shared\n"
        )
        findings = findings_of(source)
        assert len(findings) == 1
        assert "restate the flag" in findings[0].message

    def test_method_without_protocol_base_is_clean(self):
        # `prepare` is a common name; without a protocol-family base the
        # inverse check must not fire (e.g. a ProfileStore.prepare).
        source = (
            "class Store:\n"
            "    def prepare(self, dataset):\n"
            "        return {}\n"
        )
        assert findings_of(source) == []

    def test_stub_definitions_do_not_count_as_implementations(self):
        source = (
            "class Blocking:\n"
            "    shardable = False\n"
            "\n"
            "    def prepare(self, dataset):\n"
            '        """Protocol stub."""\n'
            "        raise NotImplementedError\n"
            "\n"
            "    def candidates_for(self, shared, records):\n"
            "        raise NotImplementedError\n"
        )
        assert findings_of(source) == []

    def test_default_implementation_on_the_defining_base_is_exempt(self):
        # Mirrors PairwiseMatcher: the required methods are stubs, the
        # optional batch method carries a real default body.
        source = (
            "class Matcher:\n"
            "    profile_capable = False\n"
            "\n"
            "    def prepare_profiles(self, records):\n"
            "        raise NotImplementedError\n"
            "\n"
            "    def decide_profiled(self, left, right):\n"
            "        raise NotImplementedError\n"
            "\n"
            "    def decide_profiled_batches(self, pairs):\n"
            "        return [self.decide_profiled(a, b) for a, b in pairs]\n"
        )
        assert findings_of(source, module="repro.matching.fixture") == []
