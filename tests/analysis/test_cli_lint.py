"""CLI behaviour of ``repro lint`` and the shipped-tree self-run."""

import json
from pathlib import Path

from repro.cli import main

BAD_GRAPHS_SOURCE = (
    "def f(s):\n"
    "    for x in s | {1}:\n"
    "        pass\n"
)


def write_bad_tree(tmp_path):
    pkg = tmp_path / "src" / "repro" / "graphs"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(BAD_GRAPHS_SOURCE, encoding="utf-8")
    return tmp_path


class TestLintCli:
    def test_findings_exit_1_and_print_positions(self, tmp_path, capsys):
        root = write_bad_tree(tmp_path)
        assert main(["lint", str(root)]) == 1
        out = capsys.readouterr().out
        assert "[unordered-iteration]" in out
        assert "bad.py:2:" in out

    def test_clean_tree_exits_0(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("X = 1\n", encoding="utf-8")
        assert main(["lint", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_select_limits_the_rules(self, tmp_path):
        root = write_bad_tree(tmp_path)
        assert main(["lint", str(root), "--select", "lock-coverage"]) == 0

    def test_ignore_drops_the_rule(self, tmp_path):
        root = write_bad_tree(tmp_path)
        assert main(["lint", str(root), "--ignore", "unordered-iteration"]) == 0

    def test_unknown_rule_exits_2_listing_registered(self, tmp_path, capsys):
        root = write_bad_tree(tmp_path)
        assert main(["lint", str(root), "--select", "no-such-rule"]) == 2
        err = capsys.readouterr().err
        assert "no-such-rule" in err
        assert "unordered-iteration" in err

    def test_missing_path_exits_2(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "absent")]) == 2
        assert "error" in capsys.readouterr().err

    def test_json_format_is_machine_readable(self, tmp_path, capsys):
        root = write_bad_tree(tmp_path)
        assert main(["lint", str(root), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == len(payload["findings"]) == 1
        finding = payload["findings"][0]
        assert finding["rule"] == "unordered-iteration"
        assert finding["line"] == 2

    def test_list_rules_names_every_rule(self, capsys):
        from repro.analysis import rule_names

        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in rule_names():
            assert name in out

    def test_baseline_workflow_adopts_then_filters(self, tmp_path, capsys):
        root = write_bad_tree(tmp_path)
        baseline = tmp_path / "lint-baseline.json"
        assert main(
            ["lint", str(root), "--write-baseline", str(baseline)]
        ) == 0
        capsys.readouterr()
        assert main(["lint", str(root), "--baseline", str(baseline)]) == 0

    def test_malformed_baseline_exits_2(self, tmp_path, capsys):
        root = write_bad_tree(tmp_path)
        baseline = tmp_path / "broken.json"
        baseline.write_text("[]", encoding="utf-8")
        assert main(["lint", str(root), "--baseline", str(baseline)]) == 2


class TestShippedTreeIsClean:
    def test_src_lints_clean(self, capsys):
        # The acceptance criterion: `repro lint src` exits 0 on the shipped
        # tree.  Run from the repo root (how pytest is invoked here).
        assert Path("src/repro").is_dir()
        assert main(["lint", "src"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_tests_and_benchmarks_lint_clean(self, capsys):
        paths = [p for p in ("tests", "benchmarks") if Path(p).is_dir()]
        assert paths
        assert main(["lint", *paths]) == 0
