"""Registry ↔ lint cross-check.

The protocol-conformance rule reasons about class bodies statically; the
execution engine reads the same flags at runtime.  This suite closes the
loop: for every *registered* component (auto-discovered, so new components
are covered the day they register), the AST-level declaration the linter
sees must agree with the runtime flag the engine dispatches on — the rule
is checking the real contract, not a parallel fiction.
"""

import ast
import inspect

from repro.analysis.rules.protocol import PROTOCOL_METHODS, analyze_class
from repro.registry import BLOCKINGS, CLEANUPS, MATCHERS


def info_for(cls):
    """The linter's view of ``cls``: analyze its real class-body AST."""
    tree = ast.parse(inspect.getsource(inspect.getmodule(cls)))
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == cls.__name__:
            return analyze_class(node)
    raise AssertionError(f"class {cls.__name__} not found in its module source")


def matcher_classes():
    """Every concrete matcher class reachable from the registered factories."""
    for name in MATCHERS.names():
        MATCHERS.get(name)  # force the factory's module (and classes) to load
    from repro.matching.base import PairwiseMatcher

    found = []
    stack = list(PairwiseMatcher.__subclasses__())
    while stack:
        cls = stack.pop()
        found.append(cls)
        stack.extend(cls.__subclasses__())
    return sorted(found, key=lambda cls: cls.__qualname__)


class TestBlockingFlags:
    def test_every_registered_blocking_restates_its_flags(self):
        assert BLOCKINGS.names()  # auto-discovery must find something
        for name in BLOCKINGS.names():
            cls = BLOCKINGS.get(name)
            info = info_for(cls)
            for flag in ("shardable", "delta_capable"):
                runtime = bool(getattr(cls, flag, False))
                declared = info.flags.get(flag)
                # Mirror the lint rule exactly: a capability in force must
                # be restated in the body (the linter cannot see inherited
                # flags); an inherited False default may stay implicit.  Any
                # restatement must be the truth.
                if runtime:
                    assert declared is True, (
                        f"{name}: {flag} is True at runtime but not "
                        "declared in the class body the linter checks"
                    )
                elif declared is not None:
                    assert declared == runtime, (
                        f"{name}: body declares {flag}={declared}, "
                        f"runtime says {runtime}"
                    )

    def test_true_flags_come_with_the_methods_the_engine_calls(self):
        for name in BLOCKINGS.names():
            cls = BLOCKINGS.get(name)
            info = info_for(cls)
            for flag, methods in (
                ("shardable", PROTOCOL_METHODS["shardable"]),
                ("delta_capable", PROTOCOL_METHODS["delta_capable"]),
            ):
                if not getattr(cls, flag, False):
                    continue
                for method in methods:
                    assert callable(getattr(cls, method, None)), (
                        f"{name}: {flag}=True but {method}() missing at runtime"
                    )
                    assert method in info.implemented, (
                        f"{name}: {flag}=True but {method}() is not "
                        "implemented in the class body the linter checks"
                    )


class TestMatcherFlags:
    def test_profile_capable_matchers_override_the_profile_methods(self):
        from repro.matching.base import PairwiseMatcher

        classes = matcher_classes()
        assert classes  # discovery through the registry must find matchers
        for cls in classes:
            if inspect.isabstract(cls):
                continue
            runtime = bool(getattr(cls, "profile_capable", False))
            if runtime:
                for method in PROTOCOL_METHODS["profile_capable"]:
                    assert getattr(cls, method) is not getattr(
                        PairwiseMatcher, method
                    ), (
                        f"{cls.__name__}: profile_capable=True but {method}() "
                        "is the base-class stub"
                    )

    def test_declared_matcher_flags_match_runtime(self):
        for cls in matcher_classes():
            declared = info_for(cls).flags.get("profile_capable")
            if declared is not None:
                assert declared == bool(getattr(cls, "profile_capable", False)), (
                    f"{cls.__name__}: body declares profile_capable={declared} "
                    "but the runtime flag disagrees"
                )

    def test_profile_capable_is_restated_where_true(self):
        # The linter demands restatement; verify every capable class complies.
        capable = [
            cls
            for cls in matcher_classes()
            if bool(getattr(cls, "profile_capable", False))
        ]
        assert capable  # the repo ships profiled matchers
        for cls in capable:
            assert info_for(cls).flags.get("profile_capable") is True, (
                f"{cls.__name__} relies on an inherited profile_capable flag "
                "the linter cannot see"
            )


class TestColumnarFlags:
    def test_columnar_matchers_override_score_profiled(self):
        from repro.matching.base import PairwiseMatcher

        columnar = [
            cls
            for cls in matcher_classes()
            if bool(getattr(cls, "columnar_capable", False))
        ]
        assert columnar  # the repo ships columnar matchers
        for cls in columnar:
            for method in PROTOCOL_METHODS["columnar_capable"]:
                assert getattr(cls, method) is not getattr(PairwiseMatcher, method), (
                    f"{cls.__name__}: columnar_capable=True but {method}() "
                    "is the base-class stub"
                )
            assert info_for(cls).flags.get("columnar_capable") is True, (
                f"{cls.__name__} relies on an inherited columnar_capable flag "
                "the linter cannot see"
            )

    def test_columnar_implies_profiled(self):
        # score_profiled consumes the profile store prepare_profiles builds,
        # so the columnar protocol only makes sense inside the profiled one.
        for cls in matcher_classes():
            if bool(getattr(cls, "columnar_capable", False)):
                assert bool(getattr(cls, "profile_capable", False)), (
                    f"{cls.__name__}: columnar_capable=True requires "
                    "profile_capable=True"
                )

    def test_declared_columnar_flags_match_runtime(self):
        for cls in matcher_classes():
            declared = info_for(cls).flags.get("columnar_capable")
            if declared is not None:
                assert declared == bool(getattr(cls, "columnar_capable", False)), (
                    f"{cls.__name__}: body declares columnar_capable={declared} "
                    "but the runtime flag disagrees"
                )


class TestCleanupsResolve:
    def test_every_registered_cleanup_resolves(self):
        # Clean-ups carry no protocol flags; the cross-check is that every
        # name the registry-consistency rule would accept actually resolves.
        assert CLEANUPS.names()
        for name in CLEANUPS.names():
            assert callable(CLEANUPS.get(name))

    def test_blocking_recipes_resolve_against_the_registry(self):
        from repro.specs.pipeline import BLOCKING_RECIPES

        for kind, specs in BLOCKING_RECIPES.items():
            for spec in specs:
                assert spec.name in BLOCKINGS, (
                    f"recipe {kind!r} references unregistered {spec.name!r}"
                )
