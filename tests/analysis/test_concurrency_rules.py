"""Fixture suite for the worker-pool safety rules.

The first picklability test is the acceptance fixture: a lambda published
to the pool must be caught by name.
"""

from repro.analysis import resolve_rules, run_source

MODULE = "repro.runtime.fixture"
PICKLE = resolve_rules(select=["pool-payload-picklability"])
LOCKS = resolve_rules(select=["lock-coverage"])


def rules_of(source, rules, module=MODULE):
    return [f.rule for f in run_source(source, module=module, rules=rules)]


class TestPoolPayloadPicklability:
    def test_lambda_published_to_pool_is_caught(self):
        # The acceptance fixture: a lambda handed to WorkerPool.publish.
        source = (
            "def ship(pool, store):\n"
            "    pool.publish('profiles', lambda: store)\n"
        )
        assert rules_of(source, PICKLE) == ["pool-payload-picklability"]

    def test_lambda_keyword_argument_is_caught(self):
        source = (
            "def ship(pool):\n"
            "    pool.publish('slot', payload=lambda: 1)\n"
        )
        assert rules_of(source, PICKLE) == ["pool-payload-picklability"]

    def test_nested_function_submitted_is_caught(self):
        source = (
            "def run(executor, chunk):\n"
            "    def work():\n"
            "        return chunk\n"
            "    return executor.submit(work)\n"
        )
        assert rules_of(source, PICKLE) == ["pool-payload-picklability"]

    def test_lambda_assignment_submitted_is_caught(self):
        source = (
            "def run(executor):\n"
            "    work = lambda: 1\n"
            "    return executor.submit(work)\n"
        )
        assert rules_of(source, PICKLE) == ["pool-payload-picklability"]

    def test_partial_over_a_nested_function_is_caught(self):
        source = (
            "from functools import partial\n"
            "\n"
            "def run(executor, chunk):\n"
            "    def work(c):\n"
            "        return c\n"
            "    return executor.submit(partial(work, chunk))\n"
        )
        assert rules_of(source, PICKLE) == ["pool-payload-picklability"]

    def test_module_level_function_is_clean(self):
        source = (
            "def work(chunk):\n"
            "    return chunk\n"
            "\n"
            "def run(executor, chunk):\n"
            "    return executor.submit(work, chunk)\n"
        )
        assert rules_of(source, PICKLE) == []

    def test_partial_over_a_module_level_function_is_clean(self):
        source = (
            "from functools import partial\n"
            "\n"
            "def work(c):\n"
            "    return c\n"
            "\n"
            "def run(executor, chunk):\n"
            "    return executor.submit(partial(work, chunk))\n"
        )
        assert rules_of(source, PICKLE) == []

    def test_methods_of_module_level_classes_are_clean(self):
        source = (
            "class Stage:\n"
            "    def work(self, chunk):\n"
            "        return chunk\n"
            "\n"
            "    def run(self, executor, chunk):\n"
            "        return executor.submit(self.work, chunk)\n"
        )
        assert rules_of(source, PICKLE) == []

    def test_suppression_silences(self):
        source = (
            "def run(executor):\n"
            "    return executor.submit(lambda: 1)  # repro-lint: disable=pool-payload-picklability -- thread pool only\n"
        )
        assert rules_of(source, PICKLE) == []


LOCKED_CLASS = (
    "import threading\n"
    "\n"
    "class Counter:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self._count = 0\n"
    "\n"
    "    def bump(self):\n"
    "        with self._lock:\n"
    "            self._count += 1\n"
    "\n"
)


class TestLockCoverage:
    def test_unlocked_mutation_of_a_locked_attribute_is_caught(self):
        source = LOCKED_CLASS + (
            "    def reset(self):\n"
            "        self._count = 0\n"
        )
        findings = run_source(source, module=MODULE, rules=LOCKS)
        assert [f.rule for f in findings] == ["lock-coverage"]
        assert "_count" in findings[0].message
        assert "reset" in findings[0].message

    def test_unlocked_mutating_method_call_is_caught(self):
        source = (
            "import threading\n"
            "\n"
            "class Registry:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._items = {}\n"
            "\n"
            "    def put(self, key, value):\n"
            "        with self._lock:\n"
            "            self._items[key] = value\n"
            "\n"
            "    def drop(self, key):\n"
            "        self._items.pop(key, None)\n"
        )
        findings = run_source(source, module=MODULE, rules=LOCKS)
        assert [f.rule for f in findings] == ["lock-coverage"]

    def test_fully_locked_class_is_clean(self):
        source = LOCKED_CLASS + (
            "    def reset(self):\n"
            "        with self._lock:\n"
            "            self._count = 0\n"
        )
        assert rules_of(source, LOCKS) == []

    def test_init_is_exempt(self):
        # LOCKED_CLASS itself assigns self._count in __init__ without the
        # lock; construction is single-threaded by definition.
        assert rules_of(LOCKED_CLASS, LOCKS) == []

    def test_class_without_a_lock_is_out_of_scope(self):
        source = (
            "class Plain:\n"
            "    def __init__(self):\n"
            "        self._count = 0\n"
            "\n"
            "    def bump(self):\n"
            "        self._count += 1\n"
        )
        assert rules_of(source, LOCKS) == []

    def test_attributes_never_locked_are_not_flagged(self):
        source = LOCKED_CLASS + (
            "    def note(self, message):\n"
            "        self._last_message = message\n"
        )
        assert rules_of(source, LOCKS) == []

    def test_suppression_silences(self):
        source = LOCKED_CLASS + (
            "    def reset(self):\n"
            "        self._count = 0  # repro-lint: disable=lock-coverage -- caller holds the lock\n"
        )
        assert rules_of(source, LOCKS) == []

    def test_shipped_worker_pool_is_fully_locked(self):
        # The real WorkerPool grounds this rule: every mutation of its
        # epoch/executor/stats state outside __init__ holds self._lock.
        from pathlib import Path

        source = Path("src/repro/runtime/pool.py").read_text(encoding="utf-8")
        findings = run_source(
            source, module="repro.runtime.pool", rules=LOCKS
        )
        assert findings == []
