"""Engine-level behaviour: suppressions, scoping, baselines, file discovery.

Rule-specific positives/negatives live in the per-rule fixture files; this
file covers everything rule-agnostic — the machinery every rule relies on.
"""

import json

import pytest

from repro.analysis import (
    ENGINE_RULE,
    Finding,
    LintRule,
    RegistryError,
    iter_lintable_files,
    load_baseline,
    module_name_for,
    resolve_rules,
    rule_names,
    run_paths,
    run_source,
    write_baseline,
)
from repro.analysis.engine import _prefix_match


GRAPHS_MODULE = "repro.graphs.fixture"

UNSORTED_SET_LOOP = (
    "def f(s):\n"
    "    for x in s | {1}:\n"
    "        print(x)\n"
)


def findings_for(source, module=GRAPHS_MODULE, select=None):
    rules = resolve_rules(select=select) if select else None
    return run_source(source, module=module, rules=rules)


class TestSuppressions:
    def test_inline_disable_silences_the_rule_on_that_line(self):
        source = (
            "def f(s):\n"
            "    for x in s | {1}:  # repro-lint: disable=unordered-iteration -- test\n"
            "        pass\n"
        )
        assert findings_for(source, select=["unordered-iteration"]) == []

    def test_disable_all_silences_every_rule(self):
        source = (
            "def f(s):\n"
            "    for x in s | {1}:  # repro-lint: disable=all\n"
            "        pass\n"
        )
        assert findings_for(source) == []

    def test_disable_of_another_rule_does_not_silence(self):
        source = (
            "def f(s):\n"
            "    for x in s | {1}:  # repro-lint: disable=lock-coverage\n"
            "        pass\n"
        )
        rules = [f.rule for f in findings_for(source)]
        assert "unordered-iteration" in rules

    def test_marker_inside_string_literal_is_not_a_suppression(self):
        source = (
            "MARKER = '# repro-lint: disable=all'\n"
            "def f(s):\n"
            "    for x in s | {1}:\n"
            "        pass\n"
        )
        rules = [f.rule for f in findings_for(source)]
        assert "unordered-iteration" in rules

    def test_unknown_rule_in_suppression_is_reported(self):
        source = "X = 1  # repro-lint: disable=no-such-rule\n"
        findings = findings_for(source, module="plain.module")
        assert len(findings) == 1
        assert findings[0].rule == ENGINE_RULE
        assert "no-such-rule" in findings[0].message
        # ... and the message lists the real rules, registry-style.
        assert "unordered-iteration" in findings[0].message

    def test_engine_findings_cannot_be_suppressed(self):
        source = "X = 1  # repro-lint: disable=typo-rule, all\n"
        findings = findings_for(source, module="plain.module")
        assert [f.rule for f in findings] == [ENGINE_RULE]


class TestScoping:
    def test_package_scoped_rule_skips_other_modules(self):
        assert findings_for(UNSORTED_SET_LOOP, module="repro.cli") == []

    def test_package_scoped_rule_fires_inside_its_packages(self):
        rules = [f.rule for f in findings_for(UNSORTED_SET_LOOP)]
        assert "unordered-iteration" in rules

    def test_prefix_match_is_component_wise(self):
        assert _prefix_match("repro.graphs.graph", "repro.graphs")
        assert not _prefix_match("repro.graphstuff", "repro.graphs")


class TestResolveRules:
    def test_select_unknown_rule_raises_listing_registered(self):
        with pytest.raises(RegistryError) as excinfo:
            resolve_rules(select=["nope"])
        assert "nope" in str(excinfo.value)
        assert "unordered-iteration" in str(excinfo.value)

    def test_ignore_unknown_rule_raises(self):
        with pytest.raises(RegistryError):
            resolve_rules(ignore=["nope"])

    def test_ignore_removes_the_rule(self):
        names = [cls.name for cls in resolve_rules(ignore=["lock-coverage"])]
        assert "lock-coverage" not in names
        assert "unordered-iteration" in names

    def test_default_is_every_registered_rule(self):
        assert sorted(cls.name for cls in resolve_rules()) == rule_names()


class TestModuleNames:
    def test_src_files_are_named_from_the_package_root(self, tmp_path):
        path = tmp_path / "src" / "repro" / "graphs" / "graph.py"
        assert module_name_for(path) == "repro.graphs.graph"

    def test_init_maps_to_the_package(self, tmp_path):
        path = tmp_path / "src" / "repro" / "graphs" / "__init__.py"
        assert module_name_for(path) == "repro.graphs"


class TestSyntaxErrors:
    def test_unparseable_source_is_a_lint_error_finding(self):
        findings = run_source("def broken(:\n", module="plain.module")
        assert [f.rule for f in findings] == [ENGINE_RULE]
        assert "syntax error" in findings[0].message


class TestRunPaths:
    def _write_bad_module(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "graphs"
        pkg.mkdir(parents=True)
        bad = pkg / "bad.py"
        bad.write_text(UNSORTED_SET_LOOP, encoding="utf-8")
        return bad

    def test_directory_walk_finds_the_finding(self, tmp_path):
        self._write_bad_module(tmp_path)
        result = run_paths([tmp_path], select=["unordered-iteration"])
        assert [f.rule for f in result.findings] == ["unordered-iteration"]
        assert result.files_checked == 1

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            run_paths([tmp_path / "absent"])

    def test_pycache_is_skipped(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "junk.py").write_text("def broken(:\n", encoding="utf-8")
        assert iter_lintable_files([tmp_path]) == []

    def test_suppressed_count_is_reported(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "graphs"
        pkg.mkdir(parents=True)
        (pkg / "ok.py").write_text(
            "def f(s):\n"
            "    for x in s | {1}:  # repro-lint: disable=unordered-iteration -- test\n"
            "        pass\n",
            encoding="utf-8",
        )
        result = run_paths([tmp_path], select=["unordered-iteration"])
        assert result.findings == []
        assert result.suppressed == 1


class TestBaselines:
    def test_baseline_roundtrip_filters_known_findings(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "graphs"
        bad.mkdir(parents=True)
        (bad / "bad.py").write_text(UNSORTED_SET_LOOP, encoding="utf-8")
        first = run_paths([tmp_path], select=["unordered-iteration"])
        assert first.findings
        baseline = write_baseline(first.findings, tmp_path / "baseline.json")
        second = run_paths(
            [tmp_path], select=["unordered-iteration"], baseline=baseline
        )
        assert second.findings == []

    def test_baseline_key_ignores_position(self):
        a = Finding("p.py", 1, 1, "r", "m")
        b = Finding("p.py", 99, 7, "r", "m")
        assert a.baseline_key() == b.baseline_key()

    def test_malformed_baseline_raises_value_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps([1, 2, 3]), encoding="utf-8")
        with pytest.raises(ValueError):
            load_baseline(path)


class TestCustomRules:
    def test_third_party_rule_registers_and_runs(self):
        from repro.analysis import RULES, register_rule

        @register_rule("no-sleep-test-rule")
        class NoSleepRule(LintRule):
            name = "no-sleep-test-rule"
            description = "test rule"

            def visit_Call(self, node):
                import ast

                if isinstance(node.func, ast.Name) and node.func.id == "sleep":
                    self.report(node, "no sleeping")

        try:
            findings = run_source(
                "sleep(1)\n", module="plain.module", rules=[NoSleepRule]
            )
            assert [f.rule for f in findings] == ["no-sleep-test-rule"]
            with pytest.raises(RegistryError):
                register_rule("no-sleep-test-rule")(NoSleepRule)
        finally:
            RULES.unregister("no-sleep-test-rule")
