"""Fixture suite for the determinism rules.

Each rule gets positive snippets (must fire), negative snippets (must stay
silent) and a suppression case.  The first test is the acceptance fixture:
an unsorted dict iteration presented as living in ``repro.graphs``.
"""

from repro.analysis import resolve_rules, run_source

GRAPHS = "repro.graphs.fixture"
MATCHING = "repro.matching.fixture"

UNORDERED = resolve_rules(select=["unordered-iteration"])
SOURCES = resolve_rules(select=["nondeterminism-sources"])


def rules_of(source, module, rules):
    return [f.rule for f in run_source(source, module=module, rules=rules)]


class TestUnorderedIteration:
    def test_unsorted_dict_iteration_in_repro_graphs_is_caught(self):
        # The acceptance fixture: a deliberately-broken unsorted dict-view
        # iteration in a repro.graphs module must be caught by name.
        source = (
            "def neighbours(adj):\n"
            "    out = []\n"
            "    for node, edges in adj.items():\n"
            "        out.append((node, len(edges)))\n"
            "    return out\n"
        )
        assert rules_of(source, GRAPHS, UNORDERED) == ["unordered-iteration"]

    def test_set_literal_union_iteration_is_caught(self):
        source = "def f(s):\n    return [x for x in s | {1}]\n"
        assert rules_of(source, GRAPHS, UNORDERED) == ["unordered-iteration"]

    def test_set_call_iteration_is_caught(self):
        source = "def f(xs):\n    for x in set(xs):\n        pass\n"
        assert rules_of(source, GRAPHS, UNORDERED) == ["unordered-iteration"]

    def test_set_comprehension_iteration_is_caught(self):
        source = "def f(xs):\n    for x in {y for y in xs}:\n        pass\n"
        assert "unordered-iteration" in rules_of(source, GRAPHS, UNORDERED)

    def test_set_method_result_iteration_is_caught(self):
        source = "def f(a, b):\n    for x in a.union(b):\n        pass\n"
        assert rules_of(source, GRAPHS, UNORDERED) == ["unordered-iteration"]

    def test_list_materialising_a_values_view_is_caught(self):
        source = "def f(d):\n    return list(d.values())\n"
        assert rules_of(source, GRAPHS, UNORDERED) == ["unordered-iteration"]

    def test_sum_over_a_values_view_is_caught(self):
        source = "def f(d):\n    return sum(d.values())\n"
        assert rules_of(source, GRAPHS, UNORDERED) == ["unordered-iteration"]

    def test_sorted_iteration_is_clean(self):
        source = "def f(d):\n    for k in sorted(d.keys()):\n        pass\n"
        assert rules_of(source, GRAPHS, UNORDERED) == []

    def test_order_free_sinks_are_clean(self):
        source = (
            "def f(s, d):\n"
            "    a = any(x > 0 for x in s)\n"
            "    b = max(v for v in d.values())\n"
            "    c = sorted(x for x in s)\n"
            "    return a, b, c\n"
        )
        assert rules_of(source, GRAPHS, UNORDERED) == []

    def test_integer_binop_is_not_a_set_operation(self):
        source = "def f(xs, n):\n    for x in range(n | 1):\n        pass\n"
        assert rules_of(source, GRAPHS, UNORDERED) == []

    def test_outside_critical_packages_is_clean(self):
        source = "def f(s):\n    for x in s | {1}:\n        pass\n"
        assert rules_of(source, "repro.cli", UNORDERED) == []

    def test_suppression_with_justification_silences(self):
        source = (
            "def f(d):\n"
            "    for k, v in d.items():  # repro-lint: disable=unordered-iteration -- insertion-ordered\n"
            "        pass\n"
        )
        assert rules_of(source, GRAPHS, UNORDERED) == []


class TestNondeterminismSources:
    def test_wall_clock_time_is_caught(self):
        source = "import time\n\ndef stamp():\n    return time.time()\n"
        assert rules_of(source, MATCHING, SOURCES) == ["nondeterminism-sources"]

    def test_os_urandom_is_caught(self):
        source = "import os\n\ndef salt():\n    return os.urandom(8)\n"
        assert rules_of(source, MATCHING, SOURCES) == ["nondeterminism-sources"]

    def test_global_random_function_is_caught(self):
        source = "import random\n\ndef pick(xs):\n    return random.choice(xs)\n"
        assert rules_of(source, MATCHING, SOURCES) == ["nondeterminism-sources"]

    def test_unseeded_default_rng_is_caught(self):
        source = "import numpy as np\n\nrng = np.random.default_rng()\n"
        assert rules_of(source, MATCHING, SOURCES) == ["nondeterminism-sources"]

    def test_hash_builtin_is_caught(self):
        source = "def key(s):\n    return hash(s)\n"
        assert rules_of(source, MATCHING, SOURCES) == ["nondeterminism-sources"]

    def test_id_as_mapping_key_is_caught(self):
        source = "def put(cache, obj, value):\n    cache[id(obj)] = value\n"
        assert rules_of(source, MATCHING, SOURCES) == ["nondeterminism-sources"]

    def test_id_as_dict_literal_key_is_caught(self):
        source = "def one(obj):\n    return {id(obj): obj}\n"
        assert rules_of(source, MATCHING, SOURCES) == ["nondeterminism-sources"]

    def test_seeded_generators_are_clean(self):
        source = (
            "import random\n"
            "import numpy as np\n"
            "\n"
            "def make(seed):\n"
            "    return random.Random(seed), np.random.default_rng(seed)\n"
        )
        assert rules_of(source, MATCHING, SOURCES) == []

    def test_plain_id_call_outside_keys_is_clean(self):
        source = "def same(a, b):\n    return id(a) == id(b)\n"
        assert rules_of(source, MATCHING, SOURCES) == []

    def test_datagen_is_out_of_scope(self):
        source = "import random\n\nx = random.random()\n"
        assert rules_of(source, "repro.datagen.companies", SOURCES) == []

    def test_suppression_silences(self):
        source = (
            "import time\n"
            "\n"
            "def stamp():\n"
            "    return time.time()  # repro-lint: disable=nondeterminism-sources -- diagnostics only\n"
        )
        assert rules_of(source, MATCHING, SOURCES) == []
