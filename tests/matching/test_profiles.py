"""Per-record feature profiles: equivalence with direct pairwise extraction.

The profile subsystem's contract is that scoring a pair from two
:class:`~repro.matching.profiles.RecordProfile` objects is **byte identical**
to re-deriving everything from the records, for every record shape the
extractor supports.  The reference implementation below is the historical
pairwise-recompute extractor, kept verbatim as the oracle; hypothesis
drives randomised company / security / product records (including missing
attributes, token-less names and mixed-kind pairs) against it.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.identifiers import SECURITY_ID_FIELDS
from repro.datagen.records import CompanyRecord, ProductRecord, Record, SecurityRecord
from repro.matching.features import PairFeatureExtractor
from repro.matching.profiles import (
    KIND_COMPANY,
    KIND_OTHER,
    KIND_SECURITY,
    ProfileStore,
    build_profile,
)
from repro.text.normalize import normalize_identifier, normalize_text, strip_corporate_terms
from repro.text.similarity import (
    jaccard_similarity,
    jaro_winkler_similarity,
    levenshtein_similarity,
    longest_common_substring_similarity,
    overlap_coefficient,
)
from repro.text.tokenize import word_tokenize


# -- the oracle: the historical pairwise-recompute extractor -----------------


def _name(record: Record) -> str:
    for attribute in ("name", "title"):
        value = getattr(record, attribute, None)
        if value:
            return str(value)
    return ""


def _attribute(record: Record, attribute: str) -> str:
    value = getattr(record, attribute, None)
    return str(value) if value else ""


def _equality_feature(left: Record, right: Record, attribute: str) -> float:
    left_value = normalize_text(_attribute(left, attribute))
    right_value = normalize_text(_attribute(right, attribute))
    if not left_value or not right_value:
        return 0.5
    return 1.0 if left_value == right_value else 0.0


def _identifier_features(left: Record, right: Record) -> tuple[int, int, float]:
    overlaps = 0
    conflicts = 0
    isin_overlap = 0.0
    if isinstance(left, SecurityRecord) and isinstance(right, SecurityRecord):
        for field in SECURITY_ID_FIELDS:
            left_value = normalize_identifier(getattr(left, field))
            right_value = normalize_identifier(getattr(right, field))
            if not left_value or not right_value:
                continue
            if left_value == right_value:
                overlaps += 1
            else:
                conflicts += 1
        isin_overlap = 1.0 if overlaps else 0.0
    if isinstance(left, CompanyRecord) and isinstance(right, CompanyRecord):
        left_isins = {normalize_identifier(value) for value in left.security_isins}
        right_isins = {normalize_identifier(value) for value in right.security_isins}
        left_isins.discard("")
        right_isins.discard("")
        shared = left_isins & right_isins
        overlaps = len(shared)
        if left_isins and right_isins and not shared:
            conflicts = 1
        isin_overlap = 1.0 if shared else 0.0
    return overlaps, conflicts, isin_overlap


def reference_extract(left: Record, right: Record) -> np.ndarray:
    """The pre-profile extractor, re-deriving everything per pair."""
    left_name_norm = normalize_text(_name(left))
    right_name_norm = normalize_text(_name(right))
    left_tokens = left_name_norm.split()
    right_tokens = right_name_norm.split()
    left_stripped = strip_corporate_terms(_name(left))
    right_stripped = strip_corporate_terms(_name(right))
    left_description = _attribute(left, "description")
    right_description = _attribute(right, "description")
    description_tokens_left = word_tokenize(left_description)
    description_tokens_right = word_tokenize(right_description)
    identifier_overlaps, identifier_conflicts, isin_overlap = _identifier_features(
        left, right
    )
    values = (
        jaro_winkler_similarity(left_name_norm, right_name_norm),
        levenshtein_similarity(left_name_norm, right_name_norm),
        jaccard_similarity(left_tokens, right_tokens),
        overlap_coefficient(left_tokens, right_tokens),
        longest_common_substring_similarity(left_name_norm, right_name_norm),
        jaro_winkler_similarity(left_stripped, right_stripped),
        jaccard_similarity(left_stripped.split(), right_stripped.split()),
        jaccard_similarity(description_tokens_left, description_tokens_right)
        if description_tokens_left and description_tokens_right
        else 0.0,
        1.0 if left_description and right_description else 0.0,
        _equality_feature(left, right, "city"),
        _equality_feature(left, right, "region"),
        _equality_feature(left, right, "country_code"),
        _equality_feature(left, right, "industry"),
        _equality_feature(left, right, "security_type"),
        float(identifier_overlaps),
        float(identifier_conflicts),
        isin_overlap,
        _equality_feature(left, right, "ticker"),
        1.0 if left.source == right.source else 0.0,
    )
    return np.asarray(values, dtype=np.float64)


# -- record strategies --------------------------------------------------------

# Deliberately nasty text: unicode accents, punctuation-only names that
# normalise to "", corporate-term-only names, whitespace runs.
text_value = st.text(
    alphabet="abcXYZ üé.&-!'  corpinc",
    max_size=24,
)
optional_text = st.one_of(st.none(), st.just(""), text_value)
identifier_value = st.one_of(
    st.none(), st.just(""), st.sampled_from(["US0378331005", "ch-0038863350", "a b1"])
)

_counter = iter(range(10**9))


def _next_id() -> str:
    return f"r{next(_counter)}"


company_records = st.builds(
    lambda source, name, city, region, country, description, industry, isins: CompanyRecord(
        record_id=_next_id(),
        source=source,
        entity_id="e",
        name=name,
        city=city,
        region=region,
        country_code=country,
        description=description,
        industry=industry,
        security_isins=tuple(isins),
    ),
    st.sampled_from(["S1", "S2"]),
    text_value,
    optional_text,
    optional_text,
    optional_text,
    optional_text,
    optional_text,
    st.lists(identifier_value.filter(lambda v: v is not None), max_size=3),
)

security_records = st.builds(
    lambda source, name, sec_type, isin, cusip, sedol, valor, ticker: SecurityRecord(
        record_id=_next_id(),
        source=source,
        entity_id="e",
        name=name,
        security_type=sec_type or "",
        isin=isin,
        cusip=cusip,
        sedol=sedol,
        valor=valor,
        ticker=ticker,
    ),
    st.sampled_from(["S1", "S2"]),
    text_value,
    optional_text,
    identifier_value,
    identifier_value,
    identifier_value,
    identifier_value,
    optional_text,
)

product_records = st.builds(
    lambda source, title, brand, description: ProductRecord(
        record_id=_next_id(),
        source=source,
        entity_id="e",
        title=title,
        brand=brand,
        description=description,
    ),
    st.sampled_from(["S1", "S2"]),
    text_value,
    optional_text,
    optional_text,
)

any_record = st.one_of(company_records, security_records, product_records)


# -- the equivalence property -------------------------------------------------


class TestProfileEquivalence:
    extractor = PairFeatureExtractor()

    @given(any_record, any_record)
    @settings(max_examples=300, deadline=None)
    def test_profiled_extraction_equals_reference(self, left, right):
        expected = reference_extract(left, right)
        via_extract = self.extractor.extract(left, right)
        via_profiles = self.extractor.extract_profiled(
            build_profile(left), build_profile(right)
        )
        store = ProfileStore.prepare([left, right])
        via_store = self.extractor.extract_batch_profiles(
            store, [(left.record_id, right.record_id)]
        )[0]
        # Bitwise equality, not approx: profiles precompute, they never
        # change a single float.
        assert np.array_equal(expected, via_extract)
        assert np.array_equal(expected, via_profiles)
        assert np.array_equal(expected, via_store)

    @given(st.lists(st.tuples(any_record, any_record), max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_extract_batch_equals_per_pair_reference(self, pairs):
        batch = self.extractor.extract_batch(pairs)
        assert batch.shape == (len(pairs), self.extractor.num_features)
        assert batch.dtype == np.float64
        for row, (left, right) in zip(batch, pairs):
            assert np.array_equal(row, reference_extract(left, right))


class TestColumnarBatchEquivalence:
    """The vectorised store path against the per-pair row oracle.

    ``extract_batch_profiles`` must be byte-for-byte the matrix
    ``extract_batch_profiles_rows`` produces — over randomized record
    mixes, duplicated pairs (the memo/dedup path), repeated extraction
    (warm caches), and a pickled clone of the store (the worker-shipping
    path, which drops the memos).
    """

    extractor = PairFeatureExtractor()

    @given(st.lists(any_record, min_size=1, max_size=10), st.data())
    @settings(max_examples=80, deadline=None)
    def test_columnar_equals_rows_warm_and_pickled(self, records, data):
        import pickle

        store = ProfileStore.prepare(records)
        ids = [record.record_id for record in records]
        index_pairs = data.draw(
            st.lists(
                st.tuples(
                    st.integers(0, len(ids) - 1), st.integers(0, len(ids) - 1)
                ),
                max_size=12,
            )
        )
        id_pairs = [(ids[i], ids[j]) for i, j in index_pairs]
        id_pairs += id_pairs[:3]  # duplicates exercise the dedup/memo path

        reference = self.extractor.extract_batch_profiles_rows(store, id_pairs)
        cold = self.extractor.extract_batch_profiles(store, id_pairs)
        warm = self.extractor.extract_batch_profiles(store, id_pairs)
        assert cold.tobytes() == reference.tobytes()
        assert warm.tobytes() == reference.tobytes()

        clone = pickle.loads(pickle.dumps(store))
        assert clone.name_similarity_cache == {}  # memos are transient
        rescored = self.extractor.extract_batch_profiles(clone, id_pairs)
        assert rescored.tobytes() == reference.tobytes()

    def test_empty_pair_list(self):
        store = ProfileStore.prepare(
            [CompanyRecord(record_id="a", source="S1", entity_id="e", name="Acme")]
        )
        matrix = self.extractor.extract_batch_profiles(store, [])
        assert matrix.shape == (0, self.extractor.num_features)
        assert matrix.dtype == np.float64
        rows = self.extractor.extract_batch_profiles_rows(store, [])
        assert rows.shape == matrix.shape

    def test_empty_store_roundtrip(self):
        import pickle

        store = ProfileStore.prepare([])
        clone = pickle.loads(pickle.dumps(store))
        assert len(clone) == 0
        assert self.extractor.extract_batch_profiles(clone, []).shape == (
            0,
            self.extractor.num_features,
        )


class TestProfileEdgeCases:
    extractor = PairFeatureExtractor()

    def test_token_less_name_profiles_cleanly(self):
        record = CompanyRecord(record_id="a", source="S1", entity_id="e", name="!!! ...")
        profile = build_profile(record)
        assert profile.name_norm == ""
        assert profile.name_tokens == ()
        assert profile.stripped_name == ""
        assert profile.name_token_set == frozenset()

    def test_corporate_terms_only_name_keeps_normalised_form(self):
        record = CompanyRecord(record_id="a", source="S1", entity_id="e", name="Holdings Inc")
        profile = build_profile(record)
        # strip_corporate_terms falls back to the full normalised name.
        assert profile.stripped_name == "holdings inc"

    def test_kinds(self):
        company = CompanyRecord(record_id="c", source="S1", entity_id="e", name="Acme")
        security = SecurityRecord(record_id="s", source="S1", entity_id="e", name="Acme stock")
        product = ProductRecord(record_id="p", source="S1", entity_id="e", title="Acme gadget")
        assert build_profile(company).kind == KIND_COMPANY
        assert build_profile(security).kind == KIND_SECURITY
        assert build_profile(product).kind == KIND_OTHER

    def test_mixed_kind_pair_has_neutral_identifier_features(self):
        company = CompanyRecord(
            record_id="c", source="S1", entity_id="e", name="Acme",
            security_isins=("US0378331005",),
        )
        security = SecurityRecord(
            record_id="s", source="S2", entity_id="e", name="Acme stock",
            isin="US0378331005",
        )
        vector = self.extractor.extract(company, security)
        names = self.extractor.feature_names()
        assert vector[names.index("identifier_overlap_count")] == 0.0
        assert vector[names.index("identifier_conflict_count")] == 0.0
        assert vector[names.index("isin_overlap")] == 0.0
        assert np.array_equal(vector, reference_extract(company, security))

    def test_security_identifiers_follow_field_order(self):
        record = SecurityRecord(
            record_id="s", source="S1", entity_id="e", name="Acme stock",
            isin="us-037", cusip=None, sedol="b1 23", valor="",
        )
        profile = build_profile(record)
        expected = tuple(
            normalize_identifier(getattr(record, field)) for field in SECURITY_ID_FIELDS
        )
        assert profile.security_identifiers == expected

    def test_product_records_use_title(self):
        record = ProductRecord(record_id="p", source="S1", entity_id="e",
                               title="Wireless Mouse 2000")
        profile = build_profile(record)
        assert profile.name_norm == "wireless mouse 2000"


class TestProfileStore:
    def test_prepare_profiles_every_record_once(self):
        records = [
            CompanyRecord(record_id=f"r{i}", source="S1", entity_id="e", name=f"Acme {i}")
            for i in range(5)
        ]
        store = ProfileStore.prepare(records)
        assert len(store) == 5
        assert all(record.record_id in store for record in records)
        assert store.get("r3").name_norm == "acme 3"

    def test_missing_record_raises(self):
        store = ProfileStore.prepare([])
        with pytest.raises(KeyError):
            store.get("nope")

    def test_store_is_picklable(self):
        import pickle

        records = [
            SecurityRecord(record_id="s1", source="S1", entity_id="e",
                           name="Acme stock", isin="US0378331005"),
            CompanyRecord(record_id="c1", source="S2", entity_id="e",
                          name="Acme Corp", security_isins=("US0378331005",)),
        ]
        store = ProfileStore.prepare(records)
        clone = pickle.loads(pickle.dumps(store))
        assert len(clone) == len(store)
        assert clone.get("s1") == store.get("s1")
        assert clone.get("c1") == store.get("c1")
