"""Tests for the Transformer-style pair classifier."""

import numpy as np
import pytest

from repro.matching.attention import TransformerPairClassifier
from repro.matching.pairs import as_record_pairs, build_labeled_pairs
from repro.text.serialize import DittoSerializer, PlainSerializer


def small_model(**overrides):
    defaults = dict(
        attributes=["name", "city", "country_code", "description"],
        max_tokens=48,
        embedding_dim=16,
        hidden_dim=32,
        num_blocks=1,
        num_epochs=3,
        batch_size=16,
        vocab_size=2000,
        seed=0,
    )
    defaults.update(overrides)
    return TransformerPairClassifier(**defaults)


class TestConstruction:
    def test_requires_serializer_or_attributes(self):
        with pytest.raises(ValueError):
            TransformerPairClassifier()

    def test_invalid_epochs(self):
        with pytest.raises(ValueError):
            small_model(num_epochs=0)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            small_model(batch_size=0)

    def test_serializer_overrides_attributes(self):
        serializer = DittoSerializer(["name"], max_tokens=64)
        model = TransformerPairClassifier(serializer=serializer)
        assert model.max_tokens == 64
        assert isinstance(model.serializer, DittoSerializer)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            small_model().predict_proba([])


class TestTraining:
    def test_fit_requires_data(self):
        with pytest.raises(ValueError):
            small_model().fit([], [])

    def test_fit_rejects_length_mismatch(self, companies):
        pairs = build_labeled_pairs(companies, negative_ratio=1, seed=0)[:10]
        record_pairs, labels = as_record_pairs(pairs)
        with pytest.raises(ValueError):
            small_model().fit(record_pairs, labels[:-1])

    def test_learns_company_matching(self, companies):
        pairs = build_labeled_pairs(companies, negative_ratio=2, seed=0)
        record_pairs, labels = as_record_pairs(pairs)
        split = int(len(record_pairs) * 0.8)
        model = small_model(num_epochs=4)
        model.fit(record_pairs[:split], labels[:split])
        predictions = model.predict(record_pairs[split:])
        accuracy = np.mean(
            [pred == bool(label) for pred, label in zip(predictions, labels[split:])]
        )
        # A tiny transformer on limited data: it must clearly beat the
        # majority-class baseline (2:1 negatives -> 0.67).
        assert accuracy > 0.8

    def test_history_and_best_epoch(self, companies):
        pairs = build_labeled_pairs(companies, negative_ratio=1, seed=1)[:200]
        record_pairs, labels = as_record_pairs(pairs)
        split = int(len(record_pairs) * 0.8)
        model = small_model(num_epochs=3)
        model.fit(
            record_pairs[:split], labels[:split],
            validation_pairs=record_pairs[split:], validation_labels=labels[split:],
        )
        assert len(model.history.train_loss) == 3
        assert len(model.history.validation_loss) == 3
        assert 0 <= model.history.best_epoch < 3
        assert model.history.training_seconds > 0

    def test_training_loss_decreases(self, companies):
        pairs = build_labeled_pairs(companies, negative_ratio=2, seed=2)[:300]
        record_pairs, labels = as_record_pairs(pairs)
        model = small_model(num_epochs=4)
        model.fit(record_pairs, labels)
        assert model.history.train_loss[-1] < model.history.train_loss[0]

    def test_probabilities_in_unit_interval(self, companies):
        pairs = build_labeled_pairs(companies, negative_ratio=1, seed=3)[:150]
        record_pairs, labels = as_record_pairs(pairs)
        model = small_model(num_epochs=2)
        model.fit(record_pairs, labels)
        probabilities = model.predict_proba(record_pairs[:30])
        assert all(0.0 <= p <= 1.0 for p in probabilities)

    def test_deterministic_given_seed(self, companies):
        pairs = build_labeled_pairs(companies, negative_ratio=1, seed=4)[:120]
        record_pairs, labels = as_record_pairs(pairs)
        first = small_model(num_epochs=2).fit(record_pairs, labels)
        second = small_model(num_epochs=2).fit(record_pairs, labels)
        assert np.allclose(
            first.predict_proba(record_pairs[:20]),
            second.predict_proba(record_pairs[:20]),
        )

    def test_empty_prediction_after_fit(self, companies):
        pairs = build_labeled_pairs(companies, negative_ratio=1, seed=5)[:60]
        record_pairs, labels = as_record_pairs(pairs)
        model = small_model(num_epochs=1).fit(record_pairs, labels)
        assert model.predict_proba([]) == []

    def test_num_parameters_positive_after_fit(self, companies):
        pairs = build_labeled_pairs(companies, negative_ratio=1, seed=6)[:60]
        record_pairs, labels = as_record_pairs(pairs)
        model = small_model(num_epochs=1)
        assert model.num_parameters() == 0
        model.fit(record_pairs, labels)
        assert model.num_parameters() > 1000


class TestSerializationVariants:
    def test_ditto_and_plain_models_differ(self, companies):
        pairs = build_labeled_pairs(companies, negative_ratio=1, seed=7)[:100]
        record_pairs, labels = as_record_pairs(pairs)
        attributes = ["name", "city", "country_code", "description"]
        plain = TransformerPairClassifier(
            serializer=PlainSerializer(attributes, max_tokens=48),
            embedding_dim=16, hidden_dim=32, num_epochs=1, vocab_size=2000, seed=0,
        ).fit(record_pairs, labels)
        ditto = TransformerPairClassifier(
            serializer=DittoSerializer(attributes, max_tokens=48),
            embedding_dim=16, hidden_dim=32, num_epochs=1, vocab_size=2000, seed=0,
        ).fit(record_pairs, labels)
        assert plain.predict_proba(record_pairs[:10]) != ditto.predict_proba(record_pairs[:10])
