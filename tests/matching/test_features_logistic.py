"""Tests for the feature extractor and the logistic-regression matcher."""

import numpy as np
import pytest

from repro.datagen.records import CompanyRecord, SecurityRecord
from repro.matching.features import PairFeatureExtractor
from repro.matching.logistic import LogisticRegressionMatcher
from repro.matching.pairs import as_record_pairs, build_labeled_pairs


def company(record_id, name, source="S1", entity="e", **kwargs):
    return CompanyRecord(
        record_id=record_id, source=source, entity_id=entity, name=name, **kwargs
    )


class TestFeatureExtractor:
    extractor = PairFeatureExtractor()

    def test_vector_length_matches_names(self):
        vector = self.extractor.extract(company("a", "Acme"), company("b", "Acme"))
        assert vector.shape == (self.extractor.num_features,)
        assert len(self.extractor.feature_names()) == self.extractor.num_features

    def test_identical_names_score_high(self):
        same = self.extractor.extract(company("a", "Acme Corp"), company("b", "Acme Corp"))
        different = self.extractor.extract(company("a", "Acme Corp"), company("b", "Zenith Bank"))
        names = self.extractor.feature_names()
        jw = names.index("name_jaro_winkler")
        assert same[jw] > different[jw]

    def test_identifier_overlap_feature_for_securities(self):
        left = SecurityRecord(record_id="s1", source="S1", entity_id="e",
                              name="Acme stock", isin="US0378331005")
        right = SecurityRecord(record_id="s2", source="S2", entity_id="e",
                               name="Acme shares", isin="US0378331005")
        other = SecurityRecord(record_id="s3", source="S3", entity_id="f",
                               name="Zen stock", isin="CH0038863350")
        names = self.extractor.feature_names()
        overlap_index = names.index("identifier_overlap_count")
        assert self.extractor.extract(left, right)[overlap_index] == 1.0
        assert self.extractor.extract(left, other)[overlap_index] == 0.0

    def test_company_isin_overlap_feature(self):
        left = company("a", "Acme", security_isins=("US0378331005",))
        right = company("b", "Acme Inc", security_isins=("US0378331005", "CH0038863350"))
        names = self.extractor.feature_names()
        isin_index = names.index("isin_overlap")
        assert self.extractor.extract(left, right)[isin_index] == 1.0

    def test_missing_attributes_are_neutral(self):
        left = company("a", "Acme", city=None)
        right = company("b", "Acme", city="Zurich")
        names = self.extractor.feature_names()
        city_index = names.index("city_match")
        assert self.extractor.extract(left, right)[city_index] == 0.5

    def test_batch_shape(self):
        pairs = [(company("a", "Acme"), company("b", "Acme"))] * 3
        matrix = self.extractor.extract_batch(pairs)
        assert matrix.shape == (3, self.extractor.num_features)

    def test_empty_batch(self):
        assert self.extractor.extract_batch([]).shape == (0, self.extractor.num_features)

    def test_values_are_finite(self, companies):
        pairs = build_labeled_pairs(companies, negative_ratio=1, seed=0)[:50]
        record_pairs, _ = as_record_pairs(pairs)
        matrix = self.extractor.extract_batch(record_pairs)
        assert np.isfinite(matrix).all()


class TestLogisticRegressionMatcher:
    def test_validation_of_hyperparameters(self):
        with pytest.raises(ValueError):
            LogisticRegressionMatcher(learning_rate=0)
        with pytest.raises(ValueError):
            LogisticRegressionMatcher(num_iterations=0)
        with pytest.raises(ValueError):
            LogisticRegressionMatcher(l2=-1)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LogisticRegressionMatcher().predict_proba([])
        with pytest.raises(RuntimeError):
            LogisticRegressionMatcher().feature_importances()

    def test_fit_requires_data(self):
        with pytest.raises(ValueError):
            LogisticRegressionMatcher().fit([], [])

    def test_fit_rejects_bad_labels(self, companies):
        pairs = build_labeled_pairs(companies, negative_ratio=1, seed=0)[:10]
        record_pairs, _ = as_record_pairs(pairs)
        with pytest.raises(ValueError):
            LogisticRegressionMatcher().fit(record_pairs, [2] * 10)

    def test_learns_company_matching(self, companies):
        pairs = build_labeled_pairs(companies, negative_ratio=3, seed=0)
        record_pairs, labels = as_record_pairs(pairs)
        split = int(len(record_pairs) * 0.8)
        matcher = LogisticRegressionMatcher(num_iterations=200).fit(
            record_pairs[:split], labels[:split]
        )
        predictions = matcher.predict(record_pairs[split:])
        accuracy = np.mean(
            [pred == bool(label) for pred, label in zip(predictions, labels[split:])]
        )
        assert accuracy > 0.85

    def test_probabilities_in_unit_interval(self, companies):
        pairs = build_labeled_pairs(companies, negative_ratio=2, seed=1)
        record_pairs, labels = as_record_pairs(pairs)
        matcher = LogisticRegressionMatcher(num_iterations=100).fit(record_pairs, labels)
        probabilities = matcher.predict_proba(record_pairs[:40])
        assert all(0.0 <= p <= 1.0 for p in probabilities)

    def test_history_recorded_with_validation(self, companies):
        pairs = build_labeled_pairs(companies, negative_ratio=2, seed=2)
        record_pairs, labels = as_record_pairs(pairs)
        split = int(len(record_pairs) * 0.8)
        matcher = LogisticRegressionMatcher(num_iterations=50)
        matcher.fit(
            record_pairs[:split], labels[:split],
            validation_pairs=record_pairs[split:], validation_labels=labels[split:],
        )
        assert len(matcher.history.train_loss) == 50
        assert len(matcher.history.validation_loss) == 50
        assert matcher.history.train_loss[-1] < matcher.history.train_loss[0]

    def test_feature_importances_named(self, companies):
        pairs = build_labeled_pairs(companies, negative_ratio=1, seed=3)
        record_pairs, labels = as_record_pairs(pairs)
        matcher = LogisticRegressionMatcher(num_iterations=50).fit(record_pairs, labels)
        importances = matcher.feature_importances()
        assert set(importances) == set(PairFeatureExtractor().feature_names())

    def test_decide_and_score_pairs_interface(self, companies):
        pairs = build_labeled_pairs(companies, negative_ratio=1, seed=4)
        record_pairs, labels = as_record_pairs(pairs)
        matcher = LogisticRegressionMatcher(num_iterations=50).fit(record_pairs, labels)
        decisions = matcher.decide(record_pairs[:5])
        scored = matcher.score_pairs(record_pairs[:5])
        assert len(decisions) == len(scored) == 5
        for decision, score in zip(decisions, scored):
            assert decision.pair == score.pair
            assert decision.is_match == (decision.probability >= matcher.threshold)

    def test_empty_prediction(self, companies):
        pairs = build_labeled_pairs(companies, negative_ratio=1, seed=5)
        record_pairs, labels = as_record_pairs(pairs)
        matcher = LogisticRegressionMatcher(num_iterations=20).fit(record_pairs, labels)
        assert matcher.predict_proba([]) == []
