"""Tests for heuristic matchers, the model zoo and the fine-tuning harness."""

import pytest

from repro.datagen.records import CompanyRecord, SecurityRecord
from repro.matching import (
    IdOverlapMatcher,
    LogisticRegressionMatcher,
    ThresholdNameMatcher,
    TransformerPairClassifier,
    build_matcher,
)
from repro.matching.models import MODEL_SPECS, ModelSpec
from repro.matching.training import FineTuner
from repro.text.serialize import DittoSerializer


class TestIdOverlapMatcher:
    def test_securities_with_shared_isin_match(self):
        left = SecurityRecord(record_id="a", source="S1", entity_id="e",
                              name="Acme stock", isin="US0378331005")
        right = SecurityRecord(record_id="b", source="S2", entity_id="e",
                               name="Acme shares", isin="US0378331005")
        assert IdOverlapMatcher().predict([(left, right)]) == [True]

    def test_securities_without_overlap_do_not_match(self):
        left = SecurityRecord(record_id="a", source="S1", entity_id="e",
                              name="Acme stock", isin="US0378331005")
        right = SecurityRecord(record_id="b", source="S2", entity_id="e",
                               name="Acme shares", isin="CH0038863350")
        assert IdOverlapMatcher().predict([(left, right)]) == [False]

    def test_companies_match_via_security_isins(self):
        left = CompanyRecord(record_id="a", source="S1", entity_id="e", name="Acme",
                             security_isins=("US0378331005",))
        right = CompanyRecord(record_id="b", source="S2", entity_id="e", name="Acme Inc",
                              security_isins=("US0378331005",))
        assert IdOverlapMatcher().predict([(left, right)]) == [True]

    def test_mixed_record_types_never_match(self):
        company = CompanyRecord(record_id="a", source="S1", entity_id="e", name="Acme")
        security = SecurityRecord(record_id="b", source="S1", entity_id="e", name="Acme stock")
        assert IdOverlapMatcher().predict([(company, security)]) == [False]


class TestThresholdNameMatcher:
    def test_identical_names_match(self):
        left = CompanyRecord(record_id="a", source="S1", entity_id="e", name="Acme Corp")
        right = CompanyRecord(record_id="b", source="S2", entity_id="e", name="Acme Inc")
        assert ThresholdNameMatcher(0.9).predict([(left, right)]) == [True]

    def test_unrelated_names_do_not_match(self):
        left = CompanyRecord(record_id="a", source="S1", entity_id="e", name="Acme Corp")
        right = CompanyRecord(record_id="b", source="S2", entity_id="f", name="Zenith Bank")
        assert ThresholdNameMatcher(0.9).predict([(left, right)]) == [False]

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            ThresholdNameMatcher(1.5)


class TestModelZoo:
    def test_all_expected_specs_present(self):
        assert {"distilbert-128-all", "distilbert-128-15k", "ditto-128",
                "ditto-256", "logistic", "id-overlap"} <= set(MODEL_SPECS)

    def test_build_transformer_by_name(self):
        matcher = build_matcher("distilbert-128-all", ["name", "city"])
        assert isinstance(matcher, TransformerPairClassifier)
        assert matcher.max_tokens == 128

    def test_build_ditto_uses_ditto_serializer(self):
        matcher = build_matcher("ditto-256", ["name", "city"])
        assert isinstance(matcher, TransformerPairClassifier)
        assert isinstance(matcher.serializer, DittoSerializer)
        assert matcher.max_tokens == 256

    def test_build_logistic_and_heuristic(self):
        assert isinstance(build_matcher("logistic", ["name"]), LogisticRegressionMatcher)
        assert isinstance(build_matcher("id-overlap", ["name"]), IdOverlapMatcher)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            build_matcher("bert-large", ["name"])

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            build_matcher(ModelSpec(name="x", kind="quantum"), ["name"])

    def test_reduced_training_flag(self):
        assert MODEL_SPECS["distilbert-128-15k"].reduced_training
        assert not MODEL_SPECS["distilbert-128-all"].reduced_training


class TestFineTuner:
    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            FineTuner(negative_ratio=-1)
        with pytest.raises(ValueError):
            FineTuner(reduced_pair_budget=0)

    def test_fine_tune_logistic(self, companies):
        entities = sorted(companies.entity_groups())
        train = entities[: int(len(entities) * 0.6)]
        validation = entities[int(len(entities) * 0.6): int(len(entities) * 0.8)]
        tuner = FineTuner(negative_ratio=2, num_epochs=1, seed=0)
        result = tuner.fine_tune("logistic", companies, train, validation)
        assert result.num_training_pairs > 0
        assert result.training_seconds >= 0
        assert isinstance(result.matcher, LogisticRegressionMatcher)
        probabilities = result.matcher.predict_proba(
            [(companies.records[0], companies.records[1])]
        )
        assert 0.0 <= probabilities[0] <= 1.0

    def test_fine_tune_heuristic_needs_no_training(self, securities):
        entities = sorted(securities.entity_groups())
        tuner = FineTuner(negative_ratio=1, num_epochs=1)
        result = tuner.fine_tune("id-overlap", securities, entities[:10], entities[10:15])
        assert isinstance(result.matcher, IdOverlapMatcher)

    def test_reduced_training_uses_fewer_pairs(self, securities):
        entities = sorted(securities.entity_groups())
        train = entities[: int(len(entities) * 0.6)]
        tuner = FineTuner(negative_ratio=2, seed=0)
        all_pairs = tuner.build_pairs(securities, train, MODEL_SPECS["distilbert-128-all"])
        reduced_pairs = tuner.build_pairs(securities, train, MODEL_SPECS["distilbert-128-15k"])
        assert len(reduced_pairs) <= len(all_pairs)
        reduced_positives = sum(1 for p in reduced_pairs if p.label == 1)
        all_positives = sum(1 for p in all_pairs if p.label == 1)
        assert reduced_positives < all_positives

    def test_max_training_pairs_cap(self, companies):
        entities = sorted(companies.entity_groups())
        spec = ModelSpec(name="capped", kind="logistic", max_training_pairs=25)
        tuner = FineTuner(negative_ratio=2, seed=0)
        pairs = tuner.build_pairs(companies, entities, spec)
        assert len(pairs) == 25

    def test_infer_attributes_from_empty_dataset_raises(self, companies):
        from repro.datagen.records import Dataset

        tuner = FineTuner()
        with pytest.raises(ValueError):
            tuner.fine_tune("logistic", Dataset("empty", []), [], [])
