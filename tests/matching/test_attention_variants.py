"""Additional coverage for the cross-encoder's configuration variants."""

import numpy as np
import pytest

from repro.matching.attention import TransformerPairClassifier
from repro.matching.calibration import calibrate_threshold
from repro.matching.logistic import LogisticRegressionMatcher
from repro.matching.nn import cross_entropy
from repro.matching.pairs import as_record_pairs, build_labeled_pairs


ATTRIBUTES = ["name", "city", "country_code", "description"]


def tiny_model(**overrides):
    defaults = dict(
        attributes=ATTRIBUTES,
        max_tokens=32,
        embedding_dim=12,
        hidden_dim=24,
        num_blocks=1,
        num_epochs=2,
        batch_size=16,
        vocab_size=1500,
        seed=0,
    )
    defaults.update(overrides)
    return TransformerPairClassifier(**defaults)


class TestPureTokenVariant:
    def test_trains_without_similarity_features(self, companies):
        pairs = build_labeled_pairs(companies, negative_ratio=1, seed=11)[:120]
        record_pairs, labels = as_record_pairs(pairs)
        model = tiny_model(use_similarity_features=False)
        model.fit(record_pairs, labels)
        probabilities = model.predict_proba(record_pairs[:20])
        assert len(probabilities) == 20
        assert all(0.0 <= p <= 1.0 for p in probabilities)
        # The aux-feature head is absent: classifier input is exactly 3 * dim.
        assert model.network.classifier.weight.value.shape[0] == 3 * model.embedding_dim

    def test_hybrid_head_has_wider_classifier(self, companies):
        pairs = build_labeled_pairs(companies, negative_ratio=1, seed=12)[:80]
        record_pairs, labels = as_record_pairs(pairs)
        hybrid = tiny_model(use_similarity_features=True)
        hybrid.fit(record_pairs, labels)
        expected = 3 * hybrid.embedding_dim + hybrid._feature_extractor.num_features
        assert hybrid.network.classifier.weight.value.shape[0] == expected

    def test_class_weighting_can_be_disabled(self, companies):
        pairs = build_labeled_pairs(companies, negative_ratio=2, seed=13)[:90]
        record_pairs, labels = as_record_pairs(pairs)
        model = tiny_model(class_weighted=False)
        weights = model._class_weights(np.asarray(labels))
        assert np.allclose(weights, 1.0)

    def test_single_class_training_set_gets_uniform_weights(self):
        model = tiny_model()
        assert np.allclose(model._class_weights(np.zeros(5, dtype=int)), 1.0)


class TestWeightedCrossEntropy:
    def test_weights_rescale_loss(self):
        logits = np.array([[0.0, 1.0], [1.0, 0.0]])
        labels = np.array([1, 0])
        base_loss, _ = cross_entropy(logits, labels)
        doubled_loss, _ = cross_entropy(logits, labels, np.array([2.0, 2.0]))
        assert doubled_loss == pytest.approx(2 * base_loss)

    def test_bad_weight_shape_rejected(self):
        with pytest.raises(ValueError):
            cross_entropy(np.zeros((2, 2)), np.array([0, 1]), np.ones(3))

    def test_weighted_gradient_scales_per_sample(self):
        logits = np.array([[0.2, -0.1], [0.4, 0.3]])
        labels = np.array([0, 1])
        _, base_grad = cross_entropy(logits, labels)
        _, weighted_grad = cross_entropy(logits, labels, np.array([1.0, 3.0]))
        assert np.allclose(weighted_grad[0], base_grad[0])
        assert np.allclose(weighted_grad[1], 3 * base_grad[1])


class TestCalibrationWithTrainedMatcher:
    def test_precision_objective_never_lowers_precision(self, companies):
        pairs = build_labeled_pairs(companies, negative_ratio=3, seed=14)
        record_pairs, labels = as_record_pairs(pairs)
        split = int(len(record_pairs) * 0.7)
        matcher = LogisticRegressionMatcher(num_iterations=120).fit(
            record_pairs[:split], labels[:split]
        )

        validation_pairs = record_pairs[split:]
        validation_labels = labels[split:]
        probabilities = matcher.predict_proba(validation_pairs)
        default_predictions = [p >= 0.5 for p in probabilities]
        default_tp = sum(1 for p, y in zip(default_predictions, validation_labels) if p and y)
        default_fp = sum(1 for p, y in zip(default_predictions, validation_labels) if p and not y)
        default_precision = default_tp / max(default_tp + default_fp, 1)

        best = calibrate_threshold(
            matcher, validation_pairs, validation_labels, objective="precision"
        )
        assert best.precision >= default_precision - 1e-9
        assert matcher.threshold == best.threshold
