"""Shared fixtures for matcher tests: a small generated benchmark."""

import pytest

from repro.datagen import GenerationConfig, generate_benchmark


@pytest.fixture(scope="package")
def matching_benchmark():
    """A small but non-trivial synthetic benchmark shared across matcher tests.

    Named to avoid colliding with pytest-benchmark's ``benchmark`` fixture.
    """
    return generate_benchmark(
        GenerationConfig(num_entities=80, num_sources=4, seed=21,
                         acquisition_rate=0.05, merger_rate=0.05)
    )


@pytest.fixture(scope="package")
def companies(matching_benchmark):
    return matching_benchmark.companies


@pytest.fixture(scope="package")
def securities(matching_benchmark):
    return matching_benchmark.securities
