"""Tests for labelled pair construction and negative sampling."""

import pytest

from repro.matching.pairs import (
    PairSampler,
    as_record_pairs,
    build_labeled_pairs,
    filter_easy_pairs,
)


class TestPositivePairs:
    def test_all_positive_pairs_are_true_matches(self, companies):
        positives = PairSampler().positive_pairs(companies)
        assert positives
        assert all(pair.label == 1 for pair in positives)
        assert all(
            companies.is_true_match(pair.left.record_id, pair.right.record_id)
            for pair in positives
        )

    def test_positive_count_matches_ground_truth(self, companies):
        positives = PairSampler().positive_pairs(companies)
        assert len(positives) == len(companies.true_matches())

    def test_entity_restriction(self, companies):
        entity = next(iter(companies.entity_groups()))
        positives = PairSampler().positive_pairs(companies, entity_ids=[entity])
        assert all(pair.left.entity_id == entity for pair in positives)


class TestNegativePairs:
    def test_negatives_are_non_matches(self, companies):
        negatives = PairSampler(seed=1).negative_pairs(companies, 50)
        assert len(negatives) == 50
        assert all(pair.label == 0 for pair in negatives)
        assert all(
            not companies.is_true_match(pair.left.record_id, pair.right.record_id)
            for pair in negatives
        )

    def test_negatives_are_unique(self, companies):
        negatives = PairSampler(seed=2).negative_pairs(companies, 80)
        keys = [pair.key for pair in negatives]
        assert len(keys) == len(set(keys))

    def test_negative_sampling_deterministic(self, companies):
        first = PairSampler(seed=3).negative_pairs(companies, 30)
        second = PairSampler(seed=3).negative_pairs(companies, 30)
        assert [p.key for p in first] == [p.key for p in second]

    def test_tiny_dataset_returns_empty(self, companies):
        subset = companies.subset_by_records(companies.records[0].record_id)
        assert PairSampler().negative_pairs(subset, 10) == []


class TestBuild:
    def test_ratio_respected(self, companies):
        sampler = PairSampler(negative_ratio=5, seed=0)
        pairs = sampler.build(companies)
        positives = sum(1 for pair in pairs if pair.label == 1)
        negatives = sum(1 for pair in pairs if pair.label == 0)
        assert negatives == pytest.approx(5 * positives, rel=0.05)

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            PairSampler(negative_ratio=-1)

    def test_build_labeled_pairs_wrapper(self, companies):
        pairs = build_labeled_pairs(companies, negative_ratio=2, seed=5)
        assert pairs
        assert {pair.label for pair in pairs} == {0, 1}

    def test_as_record_pairs(self, companies):
        pairs = build_labeled_pairs(companies, negative_ratio=1, seed=5)[:10]
        record_pairs, labels = as_record_pairs(pairs)
        assert len(record_pairs) == len(labels) == 10
        assert record_pairs[0][0].record_id == pairs[0].left.record_id


class TestFilterEasyPairs:
    def test_keeps_identifier_matchable_positives(self, securities):
        pairs = build_labeled_pairs(securities, negative_ratio=1, seed=0)
        filtered = filter_easy_pairs(pairs)
        positives = [pair for pair in filtered if pair.label == 1]
        assert positives
        for pair in positives:
            left_ids = set(filter(None, pair.left.identifier_values().values()))
            right_ids = set(filter(None, pair.right.identifier_values().values()))
            assert left_ids & right_ids

    def test_keeps_all_negatives(self, securities):
        pairs = build_labeled_pairs(securities, negative_ratio=1, seed=0)
        filtered = filter_easy_pairs(pairs)
        assert sum(1 for p in filtered if p.label == 0) == sum(
            1 for p in pairs if p.label == 0
        )

    def test_budget_enforced(self, securities):
        pairs = build_labeled_pairs(securities, negative_ratio=1, seed=0)
        filtered = filter_easy_pairs(pairs, max_pairs=20)
        assert len(filtered) <= 20

    def test_budget_breaks_early_on_negatives(self, securities, monkeypatch):
        # Regression: the label == 0 branch used to `continue` past the
        # max_pairs early-exit, so a negatives-heavy stream scanned (and
        # identifier-checked) every remaining pair and relied on a final
        # truncation.  The budget check must now run for every append.
        import repro.matching.pairs as pairs_module

        pairs = build_labeled_pairs(securities, negative_ratio=1, seed=0)
        negatives = [p for p in pairs if p.label == 0]
        positives = [p for p in pairs if p.label == 1]
        assert len(negatives) >= 20 and positives
        stream = negatives + positives

        calls = []
        real_check = pairs_module._pair_matchable_via_identifiers
        monkeypatch.setattr(
            pairs_module,
            "_pair_matchable_via_identifiers",
            lambda left, right: calls.append(1) or real_check(left, right),
        )
        filtered = filter_easy_pairs(stream, max_pairs=20)
        assert filtered == negatives[:20]
        assert not calls, "filled the budget on negatives; positives must not be scanned"

    def test_budget_exact_when_boundary_lands_on_negative(self, securities):
        pairs = build_labeled_pairs(securities, negative_ratio=1, seed=0)
        negatives = [p for p in pairs if p.label == 0]
        filtered = filter_easy_pairs(negatives, max_pairs=7)
        assert filtered == negatives[:7]

    def test_companies_use_security_isins(self, companies):
        pairs = build_labeled_pairs(companies, negative_ratio=0, seed=0)
        filtered = filter_easy_pairs(pairs)
        # Some positives remain (most groups share security ISINs) but the
        # hard text-only positives are removed.
        assert 0 < len(filtered) <= len(pairs)
