"""Gradient checks and unit tests for the numpy neural-network layers."""

import numpy as np
import pytest

from repro.matching.nn import (
    Adam,
    Embedding,
    FeedForward,
    LayerNorm,
    Linear,
    MaskedMeanPool,
    Parameter,
    PositionalEmbedding,
    ReLU,
    SelfAttention,
    TransformerBlock,
    cross_entropy,
    softmax,
)

RNG = np.random.default_rng(0)


def numerical_gradient(func, array, epsilon=1e-6):
    """Central-difference numerical gradient of a scalar function."""
    gradient = np.zeros_like(array)
    iterator = np.nditer(array, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        original = array[index]
        array[index] = original + epsilon
        plus = func()
        array[index] = original - epsilon
        minus = func()
        array[index] = original
        gradient[index] = (plus - minus) / (2 * epsilon)
        iterator.iternext()
    return gradient


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 3, RNG)
        out = layer.forward(np.ones((2, 5, 4)))
        assert out.shape == (2, 5, 3)

    def test_gradient_check(self):
        rng = np.random.default_rng(1)
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3))
        target_weights = rng.normal(size=(4, 2))

        def loss():
            return float((layer.forward(x) * target_weights).sum())

        loss()  # populate cache
        layer.zero_grad()
        grad_x = layer.backward(target_weights)

        assert np.allclose(grad_x, numerical_gradient(loss, x), atol=1e-5)
        assert np.allclose(
            layer.weight.grad, numerical_gradient(loss, layer.weight.value), atol=1e-5
        )
        assert np.allclose(
            layer.bias.grad, numerical_gradient(loss, layer.bias.value), atol=1e-5
        )


class TestLayerNorm:
    def test_output_is_normalised(self):
        layer = LayerNorm(8)
        out = layer.forward(np.random.default_rng(2).normal(size=(3, 8)) * 5 + 2)
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_gradient_check(self):
        rng = np.random.default_rng(3)
        layer = LayerNorm(5)
        x = rng.normal(size=(2, 5))
        weights = rng.normal(size=(2, 5))

        def loss():
            return float((layer.forward(x) * weights).sum())

        loss()
        layer.zero_grad()
        grad_x = layer.backward(weights)
        assert np.allclose(grad_x, numerical_gradient(loss, x), atol=1e-5)
        assert np.allclose(
            layer.gamma.grad, numerical_gradient(loss, layer.gamma.value), atol=1e-5
        )
        assert np.allclose(
            layer.beta.grad, numerical_gradient(loss, layer.beta.value), atol=1e-5
        )


class TestEmbeddingAndPositional:
    def test_embedding_lookup(self):
        rng = np.random.default_rng(4)
        layer = Embedding(10, 4, rng)
        ids = np.array([[1, 2], [3, 1]])
        out = layer.forward(ids)
        assert out.shape == (2, 2, 4)
        assert np.allclose(out[0, 0], layer.weight.value[1])

    def test_embedding_gradient_accumulates_repeats(self):
        rng = np.random.default_rng(5)
        layer = Embedding(6, 3, rng)
        ids = np.array([[1, 1, 2]])
        layer.forward(ids)
        layer.zero_grad()
        grad = np.ones((1, 3, 3))
        layer.backward(grad)
        assert np.allclose(layer.weight.grad[1], 2.0)
        assert np.allclose(layer.weight.grad[2], 1.0)
        assert np.allclose(layer.weight.grad[0], 0.0)

    def test_positional_embedding_gradcheck(self):
        rng = np.random.default_rng(6)
        layer = PositionalEmbedding(8, 3, rng)
        x = rng.normal(size=(2, 4, 3))
        weights = rng.normal(size=(2, 4, 3))

        def loss():
            return float((layer.forward(x) * weights).sum())

        loss()
        layer.zero_grad()
        layer.backward(weights)
        assert np.allclose(
            layer.weight.grad,
            numerical_gradient(loss, layer.weight.value),
            atol=1e-5,
        )

    def test_positional_rejects_long_sequences(self):
        layer = PositionalEmbedding(4, 3, RNG)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((1, 5, 3)))


class TestAttentionAndBlock:
    def test_attention_respects_mask(self):
        rng = np.random.default_rng(7)
        layer = SelfAttention(4, rng)
        x = rng.normal(size=(1, 3, 4))
        mask_full = np.ones((1, 3))
        mask_short = np.array([[1.0, 1.0, 0.0]])
        out_full = layer.forward(x, mask_full)
        out_short = layer.forward(x, mask_short)
        # Masking the third token must change the attended output of token 0.
        assert not np.allclose(out_full[0, 0], out_short[0, 0])

    def test_attention_gradient_check(self):
        rng = np.random.default_rng(8)
        layer = SelfAttention(3, rng)
        x = rng.normal(size=(2, 4, 3))
        mask = np.array([[1.0, 1.0, 1.0, 0.0], [1.0, 1.0, 0.0, 0.0]])
        weights = rng.normal(size=(2, 4, 3))

        def loss():
            return float((layer.forward(x, mask) * weights).sum())

        loss()
        layer.zero_grad()
        grad_x = layer.backward(weights)
        assert np.allclose(grad_x, numerical_gradient(loss, x), atol=1e-5)
        assert np.allclose(
            layer.query.weight.grad,
            numerical_gradient(loss, layer.query.weight.value),
            atol=1e-5,
        )

    def test_feedforward_gradient_check(self):
        rng = np.random.default_rng(9)
        layer = FeedForward(3, 5, rng)
        x = rng.normal(size=(2, 3))
        weights = rng.normal(size=(2, 3))

        def loss():
            return float((layer.forward(x) * weights).sum())

        loss()
        layer.zero_grad()
        grad_x = layer.backward(weights)
        assert np.allclose(grad_x, numerical_gradient(loss, x), atol=1e-4)

    def test_transformer_block_gradient_check(self):
        rng = np.random.default_rng(10)
        block = TransformerBlock(3, 6, rng)
        x = rng.normal(size=(2, 4, 3))
        mask = np.ones((2, 4))
        weights = rng.normal(size=(2, 4, 3))

        def loss():
            return float((block.forward(x, mask) * weights).sum())

        loss()
        block.zero_grad()
        grad_x = block.backward(weights)
        assert np.allclose(grad_x, numerical_gradient(loss, x), atol=1e-4)

    def test_block_parameters_discovered(self):
        block = TransformerBlock(4, 8, RNG)
        names = {p.name for p in block.parameters()}
        assert any("attention.query" in name for name in names)
        assert any("ffn" in name for name in names)


class TestPoolingLossOptimizer:
    def test_masked_mean_pool(self):
        pool = MaskedMeanPool()
        x = np.array([[[1.0, 2.0], [3.0, 4.0], [100.0, 100.0]]])
        mask = np.array([[1.0, 1.0, 0.0]])
        pooled = pool.forward(x, mask)
        assert np.allclose(pooled, [[2.0, 3.0]])

    def test_masked_mean_pool_gradcheck(self):
        rng = np.random.default_rng(11)
        pool = MaskedMeanPool()
        x = rng.normal(size=(2, 3, 4))
        mask = np.array([[1.0, 1.0, 0.0], [1.0, 1.0, 1.0]])
        weights = rng.normal(size=(2, 4))

        def loss():
            return float((pool.forward(x, mask) * weights).sum())

        loss()
        grad_x = pool.backward(weights)
        assert np.allclose(grad_x, numerical_gradient(loss, x), atol=1e-6)

    def test_softmax_rows_sum_to_one(self):
        probabilities = softmax(np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]]))
        assert np.allclose(probabilities.sum(axis=-1), 1.0)

    def test_cross_entropy_matches_manual(self):
        logits = np.array([[2.0, 0.0]])
        labels = np.array([0])
        loss, grad = cross_entropy(logits, labels)
        expected = -np.log(np.exp(2.0) / (np.exp(2.0) + 1.0))
        assert loss == pytest.approx(expected)
        assert grad.shape == logits.shape

    def test_cross_entropy_gradient_check(self):
        rng = np.random.default_rng(12)
        logits = rng.normal(size=(3, 2))
        labels = np.array([0, 1, 1])

        def loss():
            return cross_entropy(logits, labels)[0]

        _, grad = cross_entropy(logits, labels)
        assert np.allclose(grad, numerical_gradient(loss, logits), atol=1e-6)

    def test_cross_entropy_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            cross_entropy(np.zeros(3), np.zeros(3, dtype=int))

    def test_adam_reduces_quadratic_loss(self):
        parameter = Parameter(np.array([5.0, -3.0]))
        optimizer = Adam([parameter], learning_rate=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            parameter.grad[...] = 2 * parameter.value
            optimizer.step()
        assert np.allclose(parameter.value, 0.0, atol=1e-2)

    def test_adam_requires_parameters(self):
        with pytest.raises(ValueError):
            Adam([])

    def test_relu(self):
        relu = ReLU()
        out = relu.forward(np.array([-1.0, 2.0]))
        assert np.allclose(out, [0.0, 2.0])
        assert np.allclose(relu.backward(np.array([1.0, 1.0])), [0.0, 1.0])
