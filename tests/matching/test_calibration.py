"""Tests for decision-threshold calibration."""

import pytest

from repro.matching.base import PairwiseMatcher
from repro.matching.calibration import calibrate_threshold, sweep_thresholds
from repro.datagen.records import CompanyRecord


class FixedProbabilityMatcher(PairwiseMatcher):
    """Test double: returns a pre-set probability per pair."""

    def __init__(self, probabilities):
        self.probabilities = list(probabilities)
        self.threshold = 0.5

    def predict_proba(self, pairs):
        return self.probabilities[: len(pairs)]


def dummy_pairs(count):
    record = CompanyRecord(record_id="r", source="S1", entity_id="e", name="Acme")
    other = CompanyRecord(record_id="q", source="S2", entity_id="e", name="Acme")
    return [(record, other)] * count


class TestSweepThresholds:
    def test_length_and_monotone_recall(self):
        probabilities = [0.1, 0.4, 0.6, 0.9]
        labels = [0, 0, 1, 1]
        candidates = sweep_thresholds(probabilities, labels, num_steps=9)
        assert len(candidates) == 9
        recalls = [c.recall for c in candidates]
        assert recalls == sorted(recalls, reverse=True)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            sweep_thresholds([0.5], [1, 0])

    def test_invalid_steps(self):
        with pytest.raises(ValueError):
            sweep_thresholds([0.5], [1], num_steps=0)


class TestCalibrateThreshold:
    def test_f1_objective_finds_separating_threshold(self):
        # Perfectly separable at 0.5: positives above, negatives below.
        probabilities = [0.1, 0.2, 0.3, 0.7, 0.8, 0.9]
        labels = [0, 0, 0, 1, 1, 1]
        matcher = FixedProbabilityMatcher(probabilities)
        best = calibrate_threshold(matcher, dummy_pairs(6), labels, objective="f1")
        assert best.f1 == pytest.approx(1.0)
        assert 0.3 < matcher.threshold <= 0.7

    def test_precision_objective_trades_recall(self):
        # One noisy positive at 0.4 among negatives up to 0.45: maximising
        # precision pushes the threshold above the noise, losing that positive.
        probabilities = [0.45, 0.4, 0.42, 0.9, 0.85, 0.3]
        labels = [0, 1, 0, 1, 1, 0]
        matcher = FixedProbabilityMatcher(probabilities)
        best = calibrate_threshold(matcher, dummy_pairs(6), labels, objective="precision")
        assert best.precision == pytest.approx(1.0)
        assert best.recall < 1.0
        assert matcher.threshold > 0.45

    def test_min_precision_constraint(self):
        probabilities = [0.55, 0.6, 0.65, 0.9]
        labels = [0, 1, 0, 1]
        matcher = FixedProbabilityMatcher(probabilities)
        best = calibrate_threshold(
            matcher, dummy_pairs(4), labels, objective="f1", min_precision=1.0
        )
        assert best.precision == pytest.approx(1.0)

    def test_invalid_objective(self):
        matcher = FixedProbabilityMatcher([0.5])
        with pytest.raises(ValueError):
            calibrate_threshold(matcher, dummy_pairs(1), [1], objective="accuracy")

    def test_requires_validation_pairs(self):
        matcher = FixedProbabilityMatcher([])
        with pytest.raises(ValueError):
            calibrate_threshold(matcher, [], [])

    def test_threshold_changes_predictions(self):
        probabilities = [0.55, 0.6]
        matcher = FixedProbabilityMatcher(probabilities)
        before = matcher.predict(dummy_pairs(2))
        calibrate_threshold(matcher, dummy_pairs(2), [0, 1], objective="precision")
        after = matcher.predict(dummy_pairs(2))
        assert before == [True, True]
        assert after == [False, True]
