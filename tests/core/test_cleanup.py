"""Tests for the GraLMatch Graph Cleanup (Algorithm 1) and the pre-cleanup."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cleanup import CleanupConfig, gralmatch_cleanup
from repro.core.precleanup import PreCleanupConfig, pre_cleanup
from repro.graphs.graph import canonical_edge


def clique_edges(nodes):
    nodes = list(nodes)
    return [
        (nodes[i], nodes[j])
        for i in range(len(nodes))
        for j in range(i + 1, len(nodes))
    ]


class TestCleanupConfig:
    def test_defaults(self):
        config = CleanupConfig()
        assert config.gamma == 25
        assert config.mu == 5

    def test_invalid_mu(self):
        with pytest.raises(ValueError):
            CleanupConfig(mu=0)

    def test_gamma_below_mu_rejected(self):
        with pytest.raises(ValueError):
            CleanupConfig(gamma=3, mu=5)

    def test_for_num_sources(self):
        config = CleanupConfig.for_num_sources(8)
        assert config.mu == 8
        assert config.gamma == 40

    def test_sensitivity_variants(self):
        base = CleanupConfig(gamma=25, mu=5)
        assert base.mec_only() == CleanupConfig(gamma=5, mu=5)
        assert base.bc_only() == CleanupConfig(gamma=None, mu=5)
        assert base.half_gamma() == CleanupConfig(gamma=12, mu=5)
        assert base.bc_only().half_gamma() == CleanupConfig(gamma=None, mu=5)

    def test_half_gamma_floors_at_mu(self):
        assert CleanupConfig(gamma=6, mu=5).half_gamma().gamma == 5


class TestGralmatchCleanup:
    def test_false_positive_bridge_removed(self):
        # Two 4-cliques (two true entity groups) joined by one false edge —
        # the Figure 4 situation.
        left = clique_edges(["a1", "a2", "a3", "a4"])
        right = clique_edges(["b1", "b2", "b3", "b4"])
        bridge = [("a4", "b1")]
        groups, report = gralmatch_cleanup(
            left + right + bridge, CleanupConfig(gamma=10, mu=4)
        )
        group_sets = {frozenset(g) for g in groups}
        assert frozenset({"a1", "a2", "a3", "a4"}) in group_sets
        assert frozenset({"b1", "b2", "b3", "b4"}) in group_sets
        assert canonical_edge("a4", "b1") in report.removed_edges

    def test_small_components_untouched(self):
        edges = clique_edges(["a", "b", "c"])
        groups, report = gralmatch_cleanup(edges, CleanupConfig(gamma=25, mu=5))
        assert {frozenset(g) for g in groups} == {frozenset({"a", "b", "c"})}
        assert report.num_removed == 0

    def test_empty_input(self):
        groups, report = gralmatch_cleanup([], CleanupConfig())
        assert groups == []
        assert report.initial_largest_component == 0
        assert report.final_largest_component == 0

    def test_all_final_components_within_mu(self):
        # A long chain of records must be broken into <= mu sized groups.
        chain = [(f"r{i}", f"r{i+1}") for i in range(30)]
        mu = 4
        groups, _ = gralmatch_cleanup(chain, CleanupConfig(gamma=10, mu=mu))
        assert all(len(group) <= mu for group in groups)

    def test_mincut_phase_reported(self):
        # 3 cliques of 6 chained by single bridges, gamma low enough to force
        # minimum-cut splits.
        cliques = []
        for prefix in ("a", "b", "c"):
            cliques.extend(clique_edges([f"{prefix}{i}" for i in range(6)]))
        bridges = [("a5", "b0"), ("b5", "c0")]
        groups, report = gralmatch_cleanup(
            cliques + bridges, CleanupConfig(gamma=8, mu=6)
        )
        assert report.mincut_removals > 0
        assert all(len(group) <= 6 for group in groups)

    def test_bc_only_variant_skips_mincut(self):
        cliques = clique_edges([f"a{i}" for i in range(6)]) + clique_edges(
            [f"b{i}" for i in range(6)]
        )
        bridges = [("a5", "b0")]
        _, report = gralmatch_cleanup(
            cliques + bridges, CleanupConfig(gamma=None, mu=6)
        )
        assert report.mincut_removals == 0
        assert report.betweenness_removals > 0

    def test_mec_only_variant_skips_betweenness(self):
        cliques = clique_edges([f"a{i}" for i in range(6)]) + clique_edges(
            [f"b{i}" for i in range(6)]
        )
        bridges = [("a5", "b0")]
        _, report = gralmatch_cleanup(
            cliques + bridges, CleanupConfig(gamma=6, mu=6)
        )
        assert report.betweenness_removals == 0
        assert report.mincut_removals > 0

    def test_report_component_sizes(self):
        edges = clique_edges([f"n{i}" for i in range(8)])
        _, report = gralmatch_cleanup(edges, CleanupConfig(gamma=25, mu=4))
        assert report.initial_largest_component == 8
        assert report.final_largest_component <= 4

    @given(st.lists(
        st.tuples(st.integers(0, 20), st.integers(0, 20)).filter(lambda e: e[0] != e[1]),
        max_size=60,
    ))
    @settings(max_examples=30, deadline=None)
    def test_final_components_never_exceed_mu(self, raw_edges):
        edges = [(f"r{u}", f"r{v}") for u, v in raw_edges]
        mu = 4
        groups, report = gralmatch_cleanup(edges, CleanupConfig(gamma=8, mu=mu))
        assert all(len(group) <= mu for group in groups)
        # Removed edges must be a subset of the input edges.
        input_edges = {canonical_edge(u, v) for u, v in edges}
        assert report.removed_edges <= input_edges


class TestPreCleanup:
    def test_disabled_keeps_everything(self):
        edges = [("a", "b"), ("b", "c")]
        kept, removed = pre_cleanup(edges, {}, PreCleanupConfig(enabled=False))
        assert len(kept) == 2
        assert removed == set()

    def test_small_components_untouched(self):
        edges = clique_edges(["a", "b", "c"])
        blockings = {edge: "token_overlap" for edge in edges}
        kept, removed = pre_cleanup(edges, blockings, PreCleanupConfig(max_component_size=50))
        assert removed == set()
        assert len(kept) == len(edges)

    def test_token_overlap_edges_removed_in_large_components(self):
        # A 12-node chain exceeds the threshold of 10; half its edges come
        # from the token-overlap blocking and must be dropped.
        chain = [(f"r{i}", f"r{i+1}") for i in range(12)]
        blockings = {
            canonical_edge(*edge): ("token_overlap" if i % 2 == 0 else "id_overlap")
            for i, edge in enumerate(chain)
        }
        kept, removed = pre_cleanup(
            chain, blockings, PreCleanupConfig(max_component_size=10)
        )
        assert removed
        assert all(blockings[edge] == "token_overlap" for edge in removed)
        assert all(blockings[canonical_edge(*edge)] == "id_overlap" for edge in kept)

    def test_unknown_blocking_edges_kept(self):
        chain = [(f"r{i}", f"r{i+1}") for i in range(12)]
        kept, removed = pre_cleanup(chain, {}, PreCleanupConfig(max_component_size=5))
        assert removed == set()
        assert len(kept) == len(chain)
