"""Tests for the alternative clean-up strategies."""

import pytest

from repro.core.cleanup import CleanupConfig
from repro.core.cleanup_variants import adaptive_cleanup, bridge_removal_cleanup
from repro.graphs.graph import canonical_edge


def clique_edges(nodes):
    nodes = list(nodes)
    return [
        (nodes[i], nodes[j])
        for i in range(len(nodes))
        for j in range(i + 1, len(nodes))
    ]


def two_cliques_with_bridge(size=6):
    left = [f"a{i}" for i in range(size)]
    right = [f"b{i}" for i in range(size)]
    return (
        clique_edges(left) + clique_edges(right) + [(left[-1], right[0])],
        left,
        right,
    )


class TestBridgeRemovalCleanup:
    def test_removes_the_false_positive_bridge(self):
        edges, left, right = two_cliques_with_bridge()
        components, report = bridge_removal_cleanup(edges, CleanupConfig(gamma=25, mu=6))
        assert {frozenset(c) for c in components} == {frozenset(left), frozenset(right)}
        assert canonical_edge(left[-1], right[0]) in report.removed_edges

    def test_small_components_untouched(self):
        edges = clique_edges(["x", "y", "z"])
        components, report = bridge_removal_cleanup(edges, CleanupConfig(gamma=25, mu=5))
        assert {frozenset(c) for c in components} == {frozenset({"x", "y", "z"})}
        assert report.num_removed == 0

    def test_falls_back_to_algorithm1_for_non_bridge_false_positives(self):
        # Two cliques joined by TWO parallel false positives: not bridges, so
        # the fallback (Algorithm 1) must still split the component.
        edges, left, right = two_cliques_with_bridge()
        edges.append((left[0], right[1]))
        components, report = bridge_removal_cleanup(edges, CleanupConfig(gamma=8, mu=6))
        assert all(len(c) <= 6 for c in components)
        assert report.num_removed >= 2

    def test_empty_input(self):
        components, report = bridge_removal_cleanup([], CleanupConfig())
        assert components == []
        assert report.num_removed == 0


class TestAdaptiveCleanup:
    def test_dense_large_group_survives(self):
        # A dense 12-record group must survive, unlike under Algorithm 1 with
        # mu=5 — the heterogeneous-group-size scenario of WDC Products.
        edges = clique_edges([f"p{i}" for i in range(12)])
        components, report = adaptive_cleanup(edges, min_density=0.6)
        assert {len(c) for c in components} == {12}
        assert report.num_removed == 0

    def test_sparse_bridge_is_removed(self):
        edges, left, right = two_cliques_with_bridge()
        components, report = adaptive_cleanup(edges, min_density=0.6)
        assert {frozenset(c) for c in components} == {frozenset(left), frozenset(right)}
        assert report.betweenness_removals >= 1

    def test_invalid_density(self):
        with pytest.raises(ValueError):
            adaptive_cleanup([("a", "b")], min_density=0.0)
        with pytest.raises(ValueError):
            adaptive_cleanup([("a", "b")], min_density=1.5)

    def test_pairs_always_kept(self):
        components, report = adaptive_cleanup([("a", "b")], min_density=0.9)
        assert components == [{"a", "b"}]
        assert report.num_removed == 0
