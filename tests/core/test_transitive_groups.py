"""Tests for transitive matches and entity groups."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.groups import EntityGroups
from repro.core.transitive import (
    groups_from_edges,
    transitive_closure_edges,
    transitive_matches,
)
from repro.datagen import figure2_dataset


class TestTransitiveClosure:
    def test_path_implies_all_pairs(self):
        # The Figure 3 example: #11-#21, #21-#33, #33-#41 imply three more.
        edges = [("#11", "#21"), ("#21", "#33"), ("#33", "#41")]
        closure = transitive_closure_edges(edges)
        assert len(closure) == 6
        implied = transitive_matches(edges)
        assert implied == {("#11", "#33"), ("#11", "#41"), ("#21", "#41")}

    def test_no_edges(self):
        assert transitive_closure_edges([]) == set()
        assert transitive_matches([]) == set()

    def test_complete_component_has_no_implied_matches(self):
        edges = [("a", "b"), ("b", "c"), ("a", "c")]
        assert transitive_matches(edges) == set()

    def test_two_components_stay_separate(self):
        edges = [("a", "b"), ("c", "d")]
        closure = transitive_closure_edges(edges)
        assert ("a", "c") not in closure
        assert ("a", "b") in closure

    @given(st.lists(
        st.tuples(st.integers(0, 12), st.integers(0, 12)).filter(lambda e: e[0] != e[1]),
        max_size=25,
    ))
    @settings(max_examples=50, deadline=None)
    def test_closure_is_idempotent_and_superset(self, edges):
        edges = [(f"r{u}", f"r{v}") for u, v in edges]
        closure = transitive_closure_edges(edges)
        assert {tuple(sorted(e)) for e in edges} <= closure
        assert transitive_closure_edges(closure) == closure


class TestGroupsFromEdges:
    def test_groups_partition(self):
        groups = groups_from_edges([("a", "b"), ("b", "c"), ("x", "y")])
        assert {frozenset(g) for g in groups} == {frozenset("abc"), frozenset("xy")}

    def test_singletons_appended(self):
        groups = groups_from_edges([("a", "b")], all_records=["a", "b", "z"])
        assert {frozenset(g) for g in groups} == {frozenset("ab"), frozenset("z")}


class TestEntityGroups:
    def test_basic_accessors(self):
        groups = EntityGroups([["a", "b"], ["c"]])
        assert len(groups) == 2
        assert groups.num_records == 3
        assert groups.same_group("a", "b")
        assert not groups.same_group("a", "c")
        assert not groups.same_group("a", "zz")
        assert groups.group_of("c") == frozenset({"c"})
        assert "a" in groups and "zz" not in groups

    def test_duplicate_record_rejected(self):
        with pytest.raises(ValueError):
            EntityGroups([["a", "b"], ["b", "c"]])

    def test_empty_groups_skipped(self):
        groups = EntityGroups([[], ["a"]])
        assert len(groups) == 1

    def test_match_edges_complete_graphs(self):
        groups = EntityGroups([["a", "b", "c"], ["x", "y"]])
        assert groups.match_edges() == {
            ("a", "b"), ("a", "c"), ("b", "c"), ("x", "y"),
        }

    def test_group_sizes_and_largest(self):
        groups = EntityGroups([["a"], ["b", "c", "d"], ["e", "f"]])
        assert groups.group_sizes() == [3, 2, 1]
        assert groups.largest_group() == frozenset({"b", "c", "d"})
        assert len(groups.non_singleton_groups()) == 2

    def test_from_edges_with_all_records(self):
        groups = EntityGroups.from_edges([("a", "b")], all_records=["a", "b", "c"])
        assert groups.num_records == 3

    def test_from_ground_truth(self):
        companies, _ = figure2_dataset()
        groups = EntityGroups.from_ground_truth(companies)
        assert groups.same_group("#12", "#40")
        assert not groups.same_group("#12", "#13")

    def test_empty(self):
        groups = EntityGroups([])
        assert len(groups) == 0
        assert groups.largest_group() == frozenset()
        assert groups.match_edges() == set()
