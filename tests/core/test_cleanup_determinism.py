"""Hash-seed independence of the GraLMatch clean-up tie-breaking.

``gralmatch_cleanup`` repeatedly picks *one* minimum cut / one maximum-
betweenness edge out of several equally good candidates.  Those tie-breaks
used to follow ``set`` iteration order, so the removed edges — and with them
the final groups — varied with ``PYTHONHASHSEED`` (ROADMAP open item,
observed as post F1 97.40 vs 96.28 on the same 212-record input).  The
graphs layer now iterates adjacency in sorted order; these tests pin that
behaviour with a tie-heavy graph run under several explicit hash seeds in
subprocesses.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from repro.core.cleanup import CleanupConfig, gralmatch_cleanup
from repro.graphs.graph import Graph

SRC = str(Path(__file__).resolve().parents[2] / "src")


def tie_heavy_edges() -> list[tuple[str, str]]:
    """Two 5-cliques joined by two symmetric bridges (tied min cuts),
    plus a 6-cycle component (every edge has equal betweenness)."""
    edges: list[tuple[str, str]] = []
    left = [f"a{i}" for i in range(5)]
    right = [f"b{i}" for i in range(5)]
    for clique in (left, right):
        for i, u in enumerate(clique):
            for v in clique[i + 1:]:
                edges.append((u, v))
    edges += [("a0", "b0"), ("a4", "b4")]
    cycle = [f"c{i}" for i in range(6)]
    edges += list(zip(cycle, cycle[1:] + cycle[:1]))
    return edges


_WORKER = """
import json, sys
sys.path.insert(0, {src!r})
from repro.core.cleanup import CleanupConfig, gralmatch_cleanup
edges = [tuple(edge) for edge in json.loads(sys.argv[1])]
components, report = gralmatch_cleanup(edges, CleanupConfig(gamma=6, mu=5))
print(json.dumps({{
    "removed": sorted(map(list, report.removed_edges)),
    "components": sorted(sorted(component) for component in components),
}}))
"""


def _run_under_hash_seed(seed: int) -> dict:
    payload = json.dumps(tie_heavy_edges())
    result = subprocess.run(
        [sys.executable, "-c", _WORKER.format(src=SRC), payload],
        capture_output=True,
        text=True,
        check=True,
        env={"PYTHONHASHSEED": str(seed), "PATH": "/usr/bin:/bin"},
    )
    return json.loads(result.stdout)


def test_cleanup_identical_across_hash_seeds():
    outcomes = [_run_under_hash_seed(seed) for seed in (0, 1, 42)]
    assert outcomes[0] == outcomes[1] == outcomes[2]
    # The clean-up must actually have made tie-broken removals for the
    # assertion above to mean anything.
    assert outcomes[0]["removed"]


def test_cleanup_in_process_matches_subprocess_runs():
    components, report = gralmatch_cleanup(
        tie_heavy_edges(), CleanupConfig(gamma=6, mu=5)
    )
    observed = {
        "removed": sorted(map(list, report.removed_edges)),
        "components": sorted(sorted(component) for component in components),
    }
    assert observed == _run_under_hash_seed(7)


def test_graph_iteration_is_sorted():
    graph = Graph([("b", "a"), ("c", "a"), ("b", "c"), ("d", "b")])
    assert graph.edges() == sorted(graph.edges())
    assert graph.sorted_neighbors("b") == ["a", "c", "d"]
    sub = graph.subgraph({"d", "c", "b"})
    assert sub.nodes() == ["b", "c", "d"]
