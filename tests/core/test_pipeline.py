"""End-to-end tests of the entity group matching pipeline on the Figure 2
example and on a small generated benchmark."""

import pytest

from repro.blocking import CombinedBlocking, IdOverlapBlocking, TokenOverlapBlocking
from repro.core.cleanup import CleanupConfig
from repro.core.metrics import group_matching_scores, pairwise_scores
from repro.core.pipeline import EntityGroupMatchingPipeline
from repro.core.precleanup import PreCleanupConfig
from repro.datagen import GenerationConfig, figure2_dataset, generate_benchmark
from repro.matching import IdOverlapMatcher, LogisticRegressionMatcher, ThresholdNameMatcher
from repro.matching.pairs import as_record_pairs, build_labeled_pairs


@pytest.fixture(scope="module")
def pipeline_benchmark():
    return generate_benchmark(
        GenerationConfig(num_entities=60, num_sources=4, seed=31,
                         acquisition_rate=0.05, merger_rate=0.05)
    )


def default_blocking():
    return CombinedBlocking([IdOverlapBlocking(), TokenOverlapBlocking(top_n=3)])


class TestPipelineOnFigure2:
    def test_id_overlap_matcher_with_cleanup(self):
        companies, _ = figure2_dataset()
        pipeline = EntityGroupMatchingPipeline(
            matcher=IdOverlapMatcher(),
            blocking=default_blocking(),
            cleanup_config=CleanupConfig(gamma=8, mu=4),
        )
        result = pipeline.run(companies)
        assert result.num_candidates > 0
        assert result.groups.num_records == len(companies)
        # Crowdstrike group can only be fully matched via text, and the
        # id-overlap matcher cannot cross the two different ISIN listings —
        # but it must never place Crowdstrike and Crowdstreet together.
        assert not result.groups.same_group("#12", "#13")

    def test_name_matcher_merges_crowdstrike_variants(self):
        companies, _ = figure2_dataset()
        pipeline = EntityGroupMatchingPipeline(
            matcher=ThresholdNameMatcher(similarity_threshold=0.85),
            blocking=default_blocking(),
            cleanup_config=CleanupConfig(gamma=8, mu=4),
        )
        result = pipeline.run(companies)
        assert result.groups.same_group("#12", "#31")

    def test_result_bookkeeping(self):
        companies, _ = figure2_dataset()
        pipeline = EntityGroupMatchingPipeline(
            matcher=IdOverlapMatcher(), blocking=default_blocking()
        )
        result = pipeline.run(companies)
        assert result.num_positive == len(result.positive_edges)
        # One timing per named stage, plus the aggregate "graph_cleanup" key
        # kept for consumers of the pre-stage pipeline layout.
        stage_keys = {
            "blocking",
            "pairwise_matching",
            "pre_cleanup",
            "gralmatch_cleanup",
            "grouping",
            "graph_cleanup",
        }
        assert stage_keys <= set(result.timings)
        # Beyond the stage totals, the runtime records only per-chunk detail.
        assert all(
            key.split("/chunk")[0] in stage_keys for key in result.timings
        )
        graph_stage_sum = (
            result.timings["pre_cleanup"]
            + result.timings["gralmatch_cleanup"]
            + result.timings["grouping"]
        )
        assert result.timings["graph_cleanup"] == pytest.approx(graph_stage_sum)
        assert result.graph_seconds == pytest.approx(graph_stage_sum)
        assert result.inference_seconds >= 0
        assert len(result.decisions) == result.num_candidates


class TestPipelineOnGeneratedData:
    def test_trained_logistic_pipeline_beats_precleanup_stage(self, pipeline_benchmark):
        companies = pipeline_benchmark.companies
        pairs = build_labeled_pairs(companies, negative_ratio=3, seed=0)
        record_pairs, labels = as_record_pairs(pairs)
        matcher = LogisticRegressionMatcher(num_iterations=150).fit(record_pairs, labels)

        pipeline = EntityGroupMatchingPipeline(
            matcher=matcher,
            blocking=default_blocking(),
            cleanup_config=CleanupConfig.for_num_sources(4),
            pre_cleanup_config=PreCleanupConfig(max_component_size=50),
        )
        result = pipeline.run(companies)
        truth = companies.true_matches()

        pairwise = pairwise_scores(result.positive_edges, truth)
        pre = group_matching_scores(result.pre_cleanup_groups, truth)
        post = group_matching_scores(result.groups, truth)

        assert pairwise.recall > 0.3
        # The post-clean-up precision must not be worse than the implied
        # pre-clean-up group precision (the central claim of the paper).
        assert post.precision >= pre.precision - 1e-9
        assert post.cluster_purity >= pre.cluster_purity - 1e-9
        # Final groups respect the group-size cap mu.
        assert all(len(g) <= 4 for g in result.groups.non_singleton_groups())

    def test_groups_partition_every_record(self, pipeline_benchmark):
        companies = pipeline_benchmark.companies
        pipeline = EntityGroupMatchingPipeline(
            matcher=IdOverlapMatcher(), blocking=IdOverlapBlocking(),
            cleanup_config=CleanupConfig.for_num_sources(4),
        )
        result = pipeline.run(companies)
        assert result.groups.num_records == len(companies)
        assert result.pre_cleanup_groups.num_records == len(companies)

    def test_securities_pipeline_with_id_blocking(self, pipeline_benchmark):
        securities = pipeline_benchmark.securities
        pipeline = EntityGroupMatchingPipeline(
            matcher=IdOverlapMatcher(), blocking=IdOverlapBlocking(),
            cleanup_config=CleanupConfig.for_num_sources(4),
            pre_cleanup_config=PreCleanupConfig(enabled=False),
        )
        result = pipeline.run(securities)
        truth = securities.true_matches()
        post = group_matching_scores(result.groups, truth)
        # Identifier matching on securities is the easy benchmark heuristic:
        # precision must be high (only drift-contaminated ids are wrong).
        assert post.precision > 0.9
