"""Tests for pairwise / group scores and the Cluster Purity Score."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.groups import EntityGroups
from repro.core.metrics import (
    cluster_purity,
    group_matching_scores,
    pairwise_scores,
)


class TestPairwiseScores:
    def test_perfect_prediction(self):
        truth = [("a", "b"), ("c", "d")]
        scores = pairwise_scores(truth, truth)
        assert scores.precision == 1.0
        assert scores.recall == 1.0
        assert scores.f1 == 1.0

    def test_orientation_is_ignored(self):
        scores = pairwise_scores([("b", "a")], [("a", "b")])
        assert scores.f1 == 1.0

    def test_partial_prediction(self):
        truth = [("a", "b"), ("c", "d"), ("e", "f")]
        predicted = [("a", "b"), ("x", "y")]
        scores = pairwise_scores(predicted, truth)
        assert scores.precision == pytest.approx(0.5)
        assert scores.recall == pytest.approx(1 / 3)
        assert scores.true_positives == 1
        assert scores.false_positives == 1
        assert scores.false_negatives == 2

    def test_empty_prediction(self):
        scores = pairwise_scores([], [("a", "b")])
        assert scores.precision == 0.0
        assert scores.recall == 0.0
        assert scores.f1 == 0.0

    def test_empty_truth_and_prediction(self):
        scores = pairwise_scores([], [])
        assert scores.precision == 1.0
        assert scores.recall == 1.0

    def test_as_row_percentages(self):
        row = pairwise_scores([("a", "b")], [("a", "b")]).as_row()
        assert row == {"precision": 100.0, "recall": 100.0, "f1": 100.0}

    @given(
        st.sets(st.tuples(st.integers(0, 8), st.integers(0, 8)).filter(lambda e: e[0] != e[1]), max_size=15),
        st.sets(st.tuples(st.integers(0, 8), st.integers(0, 8)).filter(lambda e: e[0] != e[1]), max_size=15),
    )
    @settings(max_examples=60, deadline=None)
    def test_scores_bounded(self, predicted, truth):
        scores = pairwise_scores(predicted, truth)
        assert 0.0 <= scores.precision <= 1.0
        assert 0.0 <= scores.recall <= 1.0
        assert 0.0 <= scores.f1 <= 1.0
        assert min(scores.precision, scores.recall) <= scores.f1 <= max(
            scores.precision, scores.recall
        ) + 1e-9


class TestClusterPurity:
    def test_pure_groups(self):
        groups = EntityGroups([["a", "b"], ["c", "d"]])
        truth = [("a", "b"), ("c", "d")]
        assert cluster_purity(groups, truth) == pytest.approx(1.0)

    def test_singletons_count_as_pure(self):
        groups = EntityGroups([["a"], ["b"]])
        assert cluster_purity(groups, []) == pytest.approx(1.0)

    def test_mixed_group_penalised(self):
        # One group wrongly merging two entities of two records each:
        # 6 pairs, 2 true -> purity 1/3, weighted by all 4 records.
        groups = EntityGroups([["a1", "a2", "b1", "b2"]])
        truth = [("a1", "a2"), ("b1", "b2")]
        assert cluster_purity(groups, truth) == pytest.approx(1 / 3)

    def test_weighting_by_group_size(self):
        groups = EntityGroups([["a1", "a2"], ["b1", "b2", "c1", "c2"]])
        truth = [("a1", "a2"), ("b1", "b2"), ("c1", "c2")]
        # group 1: purity 1 weight 2; group 2: purity 2/6 weight 4.
        expected = (2 * 1.0 + 4 * (2 / 6)) / 6
        assert cluster_purity(groups, truth) == pytest.approx(expected)

    def test_empty_groups(self):
        assert cluster_purity(EntityGroups([]), []) == 1.0


class TestGroupMatchingScores:
    def test_perfect_grouping(self):
        groups = EntityGroups([["a", "b", "c"]])
        truth = [("a", "b"), ("a", "c"), ("b", "c")]
        scores = group_matching_scores(groups, truth)
        assert scores.f1 == 1.0
        assert scores.cluster_purity == 1.0
        assert scores.num_groups == 1
        assert scores.largest_group == 3

    def test_false_merge_hurts_precision_not_recall(self):
        groups = EntityGroups([["a", "b", "x", "y"]])
        truth = [("a", "b"), ("x", "y")]
        scores = group_matching_scores(groups, truth)
        assert scores.recall == 1.0
        assert scores.precision == pytest.approx(2 / 6)

    def test_split_group_hurts_recall_not_precision(self):
        groups = EntityGroups([["a", "b"], ["c"]])
        truth = [("a", "b"), ("a", "c"), ("b", "c")]
        scores = group_matching_scores(groups, truth)
        assert scores.precision == 1.0
        assert scores.recall == pytest.approx(1 / 3)

    def test_as_row_contains_purity(self):
        groups = EntityGroups([["a", "b"]])
        row = group_matching_scores(groups, [("a", "b")]).as_row()
        assert row["cluster_purity"] == 1.0
