"""Degenerate pipeline inputs must yield singleton groups, not exceptions —
in the serial engine and in both parallel engines."""

import pytest

from repro.blocking import IdOverlapBlocking, TokenOverlapBlocking
from repro.blocking.base import Blocking
from repro.core.cleanup import CleanupConfig
from repro.core.pipeline import EntityGroupMatchingPipeline
from repro.datagen import figure2_dataset
from repro.datagen.records import CompanyRecord, Dataset
from repro.matching import IdOverlapMatcher
from repro.matching.base import PairwiseMatcher
from repro.runtime import RuntimeConfig

RUNTIMES = [
    pytest.param(None, id="serial"),
    pytest.param(RuntimeConfig(workers=2, batch_size=8, executor="thread"), id="thread"),
    pytest.param(RuntimeConfig(workers=2, batch_size=8, executor="process"), id="process"),
]


class EmptyBlocking(Blocking):
    """Emits no candidate pairs at all."""

    name = "empty"

    def candidate_pairs(self, dataset):
        return []


class AllNegativeMatcher(PairwiseMatcher):
    """Predicts NoMatch for every pair (module-level: picklable)."""

    def predict_proba(self, pairs):
        return [0.0 for _ in pairs]


def run_pipeline(dataset, blocking, matcher, runtime):
    pipeline = EntityGroupMatchingPipeline(
        matcher=matcher,
        blocking=blocking,
        cleanup_config=CleanupConfig(gamma=8, mu=4),
        runtime=runtime,
    )
    return pipeline.run(dataset)


@pytest.mark.parametrize("runtime", RUNTIMES)
class TestDegenerateInputs:
    def test_empty_dataset(self, runtime):
        result = run_pipeline(
            Dataset("empty", []), IdOverlapBlocking(), IdOverlapMatcher(), runtime
        )
        assert result.num_candidates == 0
        assert result.num_positive == 0
        assert len(result.groups) == 0
        assert len(result.pre_cleanup_groups) == 0

    def test_zero_candidate_pairs(self, runtime):
        companies, _ = figure2_dataset()
        result = run_pipeline(companies, EmptyBlocking(), IdOverlapMatcher(), runtime)
        assert result.num_candidates == 0
        # Every record must come out as its own singleton group.
        assert len(result.groups) == len(companies)
        assert all(len(group) == 1 for group in result.groups)
        assert result.groups.num_records == len(companies)

    def test_all_negative_predictions(self, runtime):
        companies, _ = figure2_dataset()
        result = run_pipeline(
            companies, TokenOverlapBlocking(top_n=3), AllNegativeMatcher(), runtime
        )
        assert result.num_candidates > 0
        assert result.num_positive == 0
        assert len(result.groups) == len(companies)
        assert all(len(group) == 1 for group in result.groups)

    def test_records_without_identifiers(self, runtime):
        """Identifier-free records survive the id-based stack end to end."""
        records = [
            CompanyRecord(record_id=f"#{i}", source=f"S{i % 2}",
                          entity_id=f"E{i}", name=f"Company {i}")
            for i in range(6)
        ]
        result = run_pipeline(
            Dataset("bare", records), IdOverlapBlocking(), IdOverlapMatcher(), runtime
        )
        assert len(result.groups) == 6
        assert all(len(group) == 1 for group in result.groups)
