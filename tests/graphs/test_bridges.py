"""Tests for bridge / articulation-point detection (cross-checked vs networkx)."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Graph
from repro.graphs.bridges import articulation_points, bridges
from repro.graphs.graph import canonical_edge


class TestBridges:
    def test_single_edge_is_a_bridge(self):
        assert bridges(Graph([(1, 2)])) == {(1, 2)}

    def test_cycle_has_no_bridges(self):
        assert bridges(Graph([(1, 2), (2, 3), (3, 1)])) == set()

    def test_two_cliques_with_bridge(self):
        left = [(1, 2), (2, 3), (1, 3)]
        right = [(4, 5), (5, 6), (4, 6)]
        g = Graph(left + right + [(3, 4)])
        assert bridges(g) == {(3, 4)}

    def test_path_all_edges_are_bridges(self):
        edges = [(i, i + 1) for i in range(6)]
        assert bridges(Graph(edges)) == {canonical_edge(u, v) for u, v in edges}

    def test_empty_graph(self):
        assert bridges(Graph()) == set()

    def test_disconnected_components_handled(self):
        g = Graph([(1, 2), (3, 4), (4, 5), (3, 5)])
        assert bridges(g) == {(1, 2)}


class TestArticulationPoints:
    def test_path_interior_nodes(self):
        g = Graph([(1, 2), (2, 3), (3, 4)])
        assert articulation_points(g) == {2, 3}

    def test_cycle_has_none(self):
        assert articulation_points(Graph([(1, 2), (2, 3), (3, 1)])) == set()

    def test_bridge_endpoint_between_cliques(self):
        left = [(1, 2), (2, 3), (1, 3)]
        right = [(4, 5), (5, 6), (4, 6)]
        g = Graph(left + right + [(3, 4)])
        assert articulation_points(g) == {3, 4}

    def test_star_center(self):
        g = Graph([(0, 1), (0, 2), (0, 3)])
        assert articulation_points(g) == {0}


@st.composite
def random_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=15))
    edges = set()
    num_edges = draw(st.integers(min_value=1, max_value=25))
    for _ in range(num_edges):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            edges.add(canonical_edge(u, v))
    return sorted(edges)


class TestAgainstNetworkx:
    @given(random_graphs())
    @settings(max_examples=50, deadline=None)
    def test_bridges_match_networkx(self, edges):
        ours = bridges(Graph(edges))
        theirs = {canonical_edge(u, v) for u, v in nx.bridges(nx.Graph(edges))}
        assert ours == theirs

    @given(random_graphs())
    @settings(max_examples=50, deadline=None)
    def test_articulation_points_match_networkx(self, edges):
        ours = articulation_points(Graph(edges))
        theirs = set(nx.articulation_points(nx.Graph(edges)))
        assert ours == theirs

    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_removing_a_bridge_disconnects_its_component(self, edges):
        from repro.graphs import connected_components

        graph = Graph(edges)
        before = len(connected_components(graph))
        for bridge in bridges(Graph(edges)):
            mutated = Graph(edges)
            mutated.remove_edge(*bridge)
            assert len(connected_components(mutated)) == before + 1
