"""Union-find correctness: unit behaviour plus property-based equivalence
with the BFS reference implementation of connected components."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    DisjointSet,
    Graph,
    bfs_connected_components,
    connected_components,
    union_find_components,
)

nodes = st.integers(min_value=0, max_value=30).map(lambda i: f"n{i:02d}")
edges = st.lists(
    st.tuples(nodes, nodes).filter(lambda edge: edge[0] != edge[1]),
    max_size=120,
)


class TestDisjointSet:
    def test_singletons_after_add(self):
        dsu = DisjointSet(["a", "b"])
        assert dsu.find("a") == "a"
        assert not dsu.connected("a", "b")
        assert dsu.component_size("a") == 1

    def test_union_merges_and_tracks_size(self):
        dsu = DisjointSet()
        dsu.union("a", "b")
        dsu.union("b", "c")
        assert dsu.connected("a", "c")
        assert dsu.component_size("a") == 3
        assert len(dsu) == 3

    def test_self_union_is_a_noop(self):
        dsu = DisjointSet()
        dsu.union("a", "a")
        assert dsu.component_size("a") == 1

    def test_find_unknown_node_raises(self):
        with pytest.raises(KeyError):
            DisjointSet().find("ghost")

    def test_connected_with_unknown_node_is_false(self):
        dsu = DisjointSet(["a"])
        assert not dsu.connected("a", "ghost")

    def test_path_compression_flattens_the_forest(self):
        dsu = DisjointSet()
        for i in range(100):
            dsu.union(f"n{i}", f"n{i + 1}")
        root = dsu.find("n0")
        assert all(dsu._parent[dsu._parent[f"n{i}"]] == root for i in range(101))

    def test_components_ordering_by_size_then_repr(self):
        dsu = DisjointSet(["z"])
        dsu.union("b", "c")
        dsu.union("d", "e")
        dsu.union("e", "f")
        assert dsu.components() == [{"d", "e", "f"}, {"b", "c"}, {"z"}]


class TestUnionFindEqualsBfs:
    """The satellite property: on random edge sets, union-find must equal
    the BFS reference exactly — same partition, same deterministic order."""

    @given(edges=edges)
    @settings(max_examples=200, deadline=None)
    def test_same_components_same_order(self, edges):
        graph = Graph(edges)
        assert union_find_components(graph.edges(), graph.nodes()) == (
            bfs_connected_components(graph)
        )

    @given(edges=edges, isolated=st.sets(nodes, max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_isolated_nodes_become_singletons(self, edges, isolated):
        graph = Graph(edges)
        for node in isolated:
            graph.add_node(node)
        assert union_find_components(graph.edges(), graph.nodes()) == (
            bfs_connected_components(graph)
        )

    def test_connected_components_uses_union_find_result(self):
        rng = random.Random(5)
        graph = Graph()
        for _ in range(300):
            u, v = rng.sample(range(80), 2)
            graph.add_edge(f"r{u}", f"r{v}")
        assert connected_components(graph) == bfs_connected_components(graph)

    def test_mixed_node_types_fall_back_to_repr_ordering(self):
        graph = Graph([(1, "a"), ("b", 2.5)])
        assert connected_components(graph) == bfs_connected_components(graph)


class TestIncrementalGrowthEqualsRebuild:
    """The dynamic-extend contract the incremental subsystem leans on: a
    forest grown edge by edge (in any batch split) is indistinguishable
    from one rebuilt from scratch over the full edge set."""

    @given(edges=edges, split=st.integers(min_value=0, max_value=120))
    @settings(max_examples=200, deadline=None)
    def test_growing_in_two_batches_equals_one_rebuild(self, edges, split):
        split = min(split, len(edges))
        grown = DisjointSet()
        for u, v in edges[:split]:
            grown.union(u, v)
        # ... time passes, more edges arrive ...
        for u, v in edges[split:]:
            grown.union(u, v)

        rebuilt = DisjointSet()
        for u, v in edges:
            rebuilt.union(u, v)
        assert grown.components() == rebuilt.components()

    @given(
        edges=edges,
        late_nodes=st.sets(nodes, max_size=10),
        split=st.integers(min_value=0, max_value=120),
    )
    @settings(max_examples=100, deadline=None)
    def test_late_added_nodes_equal_construction_time_nodes(
        self, edges, late_nodes, split
    ):
        split = min(split, len(edges))
        grown = DisjointSet()
        for u, v in edges[:split]:
            grown.union(u, v)
        for node in sorted(late_nodes):
            grown.add(node)
        for u, v in edges[split:]:
            grown.union(u, v)

        rebuilt = DisjointSet(sorted(late_nodes))
        for u, v in edges:
            rebuilt.union(u, v)
        assert grown.components() == rebuilt.components()
        for node in late_nodes:
            assert grown.component_size(node) == rebuilt.component_size(node)

    @given(edges=edges)
    @settings(max_examples=100, deadline=None)
    def test_add_is_idempotent_under_growth(self, edges):
        dsu = DisjointSet()
        for u, v in edges:
            dsu.union(u, v)
            dsu.add(u)  # re-adding an existing node must change nothing
        assert dsu.components() == union_find_components(edges)
