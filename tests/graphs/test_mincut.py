"""Tests for max-flow, minimum s-t cuts and global minimum edge cuts."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    Graph,
    connected_components,
    max_flow,
    minimum_edge_cut,
    minimum_st_edge_cut,
    stoer_wagner_min_cut,
)
from repro.graphs.graph import canonical_edge


def two_cliques_with_bridge():
    left = [(1, 2), (2, 3), (1, 3)]
    right = [(4, 5), (5, 6), (4, 6)]
    return Graph(left + right + [(3, 4)])


class TestMaxFlow:
    def test_single_edge(self):
        g = Graph([(1, 2)])
        assert max_flow(g, 1, 2) == 1

    def test_parallel_paths(self):
        g = Graph([(1, 2), (2, 4), (1, 3), (3, 4)])
        assert max_flow(g, 1, 4) == 2

    def test_complete_graph(self):
        g = Graph.complete(range(5))
        assert max_flow(g, 0, 4) == 4

    def test_disconnected_nodes_have_zero_flow(self):
        g = Graph([(1, 2), (3, 4)])
        assert max_flow(g, 1, 3) == 0

    def test_same_source_sink_raises(self):
        g = Graph([(1, 2)])
        with pytest.raises(ValueError):
            max_flow(g, 1, 1)

    def test_missing_node_raises(self):
        g = Graph([(1, 2)])
        with pytest.raises(KeyError):
            max_flow(g, 1, 99)


class TestMinimumSTCut:
    def test_bridge_is_the_cut(self):
        g = two_cliques_with_bridge()
        cut = minimum_st_edge_cut(g, 1, 6)
        assert cut == {(3, 4)}

    def test_cut_disconnects(self):
        g = two_cliques_with_bridge()
        cut = minimum_st_edge_cut(g, 2, 5)
        g.remove_edges(cut)
        comps = connected_components(g)
        comp_of_2 = next(c for c in comps if 2 in c)
        assert 5 not in comp_of_2

    def test_cut_size_equals_max_flow(self):
        g = Graph.complete(range(6))
        assert len(minimum_st_edge_cut(g, 0, 5)) == max_flow(g, 0, 5)


class TestGlobalMinimumEdgeCut:
    def test_bridge_graph(self):
        g = two_cliques_with_bridge()
        cut = minimum_edge_cut(g)
        assert cut == {(3, 4)}

    def test_two_node_graph(self):
        g = Graph([(1, 2)])
        assert minimum_edge_cut(g) == {(1, 2)}

    def test_single_node_raises(self):
        g = Graph()
        g.add_node(1)
        with pytest.raises(ValueError):
            minimum_edge_cut(g)

    def test_cycle_graph_cut_size_two(self):
        g = Graph([(1, 2), (2, 3), (3, 4), (4, 1)])
        cut = minimum_edge_cut(g)
        assert len(cut) == 2
        g.remove_edges(cut)
        assert len(connected_components(g)) == 2

    def test_removal_disconnects_complete_graph(self):
        g = Graph.complete(range(5))
        cut = minimum_edge_cut(g)
        assert len(cut) == 4
        g.remove_edges(cut)
        assert len(connected_components(g)) == 2

    def test_disconnected_graph_returns_empty_cut(self):
        g = Graph([(1, 2), (3, 4)])
        assert minimum_edge_cut(g) == set()


class TestStoerWagner:
    def test_bridge_graph_value(self):
        assert stoer_wagner_min_cut(two_cliques_with_bridge()) == 1

    def test_cycle_value(self):
        g = Graph([(1, 2), (2, 3), (3, 4), (4, 1)])
        assert stoer_wagner_min_cut(g) == 2

    def test_requires_two_nodes(self):
        g = Graph()
        g.add_node("only")
        with pytest.raises(ValueError):
            stoer_wagner_min_cut(g)


@st.composite
def connected_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    edges = set()
    for node in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=node - 1))
        edges.add(canonical_edge(parent, node))
    extra = draw(st.integers(min_value=0, max_value=12))
    for _ in range(extra):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            edges.add(canonical_edge(u, v))
    return sorted(edges)


class TestMinCutProperties:
    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_cut_value_matches_networkx(self, edges):
        g = Graph(edges)
        nxg = nx.Graph(edges)
        ours = len(minimum_edge_cut(g))
        theirs = len(nx.minimum_edge_cut(nxg))
        assert ours == theirs

    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_cut_value_matches_stoer_wagner(self, edges):
        g = Graph(edges)
        assert len(minimum_edge_cut(g)) == stoer_wagner_min_cut(g)

    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_removing_cut_disconnects(self, edges):
        g = Graph(edges)
        cut = minimum_edge_cut(g)
        assert cut
        g.remove_edges(cut)
        assert len(connected_components(g)) >= 2
