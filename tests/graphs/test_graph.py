"""Unit tests for the Graph data structure."""

import pytest

from repro.graphs import Graph
from repro.graphs.graph import canonical_edge


class TestCanonicalEdge:
    def test_orders_comparable_nodes(self):
        assert canonical_edge(2, 1) == (1, 2)
        assert canonical_edge(1, 2) == (1, 2)

    def test_orders_strings(self):
        assert canonical_edge("b", "a") == ("a", "b")

    def test_mixed_types_fall_back_to_repr(self):
        edge = canonical_edge("a", 1)
        assert set(edge) == {"a", 1}
        assert edge == canonical_edge(1, "a")


class TestGraphBasics:
    def test_empty_graph(self):
        g = Graph()
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert g.nodes() == []
        assert g.edges() == []

    def test_add_edge_creates_nodes(self):
        g = Graph()
        g.add_edge("a", "b")
        assert g.has_node("a")
        assert g.has_node("b")
        assert g.has_edge("a", "b")
        assert g.has_edge("b", "a")
        assert g.num_edges == 1

    def test_add_duplicate_edge_is_idempotent(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge("x", "x")

    def test_construct_from_edges(self):
        g = Graph([(1, 2), (2, 3)])
        assert g.num_nodes == 3
        assert g.num_edges == 2

    def test_remove_edge(self):
        g = Graph([(1, 2), (2, 3)])
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.has_node(1)
        assert g.num_edges == 1

    def test_remove_missing_edge_raises(self):
        g = Graph([(1, 2)])
        with pytest.raises(KeyError):
            g.remove_edge(1, 3)

    def test_remove_edges_ignores_missing(self):
        g = Graph([(1, 2), (2, 3)])
        g.remove_edges([(1, 2), (5, 6)])
        assert g.num_edges == 1

    def test_remove_node_removes_incident_edges(self):
        g = Graph([(1, 2), (2, 3), (1, 3)])
        g.remove_node(2)
        assert not g.has_node(2)
        assert g.num_edges == 1
        assert g.has_edge(1, 3)

    def test_remove_missing_node_raises(self):
        g = Graph()
        with pytest.raises(KeyError):
            g.remove_node("ghost")

    def test_degree_and_neighbors(self):
        g = Graph([(1, 2), (1, 3), (1, 4)])
        assert g.degree(1) == 3
        assert g.neighbors(1) == {2, 3, 4}
        assert g.degree(2) == 1

    def test_degree_of_missing_node_raises(self):
        g = Graph()
        with pytest.raises(KeyError):
            g.degree(1)

    def test_contains_iter_len(self):
        g = Graph([(1, 2)])
        assert 1 in g
        assert 3 not in g
        assert set(iter(g)) == {1, 2}
        assert len(g) == 2


class TestGraphAttributes:
    def test_node_attrs_round_trip(self):
        g = Graph()
        g.add_node("r1", source="S1")
        assert g.node_attrs("r1")["source"] == "S1"

    def test_edge_attrs_round_trip(self):
        g = Graph()
        g.add_edge("a", "b", blocking="token_overlap", score=0.91)
        attrs = g.edge_attrs("b", "a")
        assert attrs["blocking"] == "token_overlap"
        assert attrs["score"] == pytest.approx(0.91)

    def test_edge_attrs_missing_edge_raises(self):
        g = Graph([(1, 2)])
        with pytest.raises(KeyError):
            g.edge_attrs(1, 3)

    def test_attrs_removed_with_edge(self):
        g = Graph()
        g.add_edge(1, 2, score=0.5)
        g.remove_edge(1, 2)
        g.add_edge(1, 2)
        assert g.edge_attrs(1, 2) == {}


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        g = Graph([(1, 2), (2, 3)])
        h = g.copy()
        h.remove_edge(1, 2)
        assert g.has_edge(1, 2)
        assert not h.has_edge(1, 2)

    def test_copy_preserves_attrs(self):
        g = Graph()
        g.add_edge(1, 2, kind="id_overlap")
        g.add_node(3, source="S2")
        h = g.copy()
        assert h.edge_attrs(1, 2)["kind"] == "id_overlap"
        assert h.node_attrs(3)["source"] == "S2"

    def test_subgraph_induces_edges(self):
        g = Graph([(1, 2), (2, 3), (3, 4), (4, 1)])
        sub = g.subgraph([1, 2, 3])
        assert sub.num_nodes == 3
        assert sub.has_edge(1, 2)
        assert sub.has_edge(2, 3)
        assert not sub.has_edge(3, 4)

    def test_subgraph_with_unknown_nodes(self):
        g = Graph([(1, 2)])
        sub = g.subgraph([1, 99])
        assert sub.num_nodes == 1
        assert sub.num_edges == 0

    def test_complete_graph(self):
        g = Graph.complete(["a", "b", "c", "d"])
        assert g.num_nodes == 4
        assert g.num_edges == 6

    def test_complete_graph_single_node(self):
        g = Graph.complete(["only"])
        assert g.num_nodes == 1
        assert g.num_edges == 0
