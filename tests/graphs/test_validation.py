"""Tests for structural predicates."""

import pytest

from repro.graphs import Graph, density, is_complete, is_connected


class TestIsConnected:
    def test_empty_graph_is_connected(self):
        assert is_connected(Graph())

    def test_single_node_is_connected(self):
        g = Graph()
        g.add_node(1)
        assert is_connected(g)

    def test_path_is_connected(self):
        assert is_connected(Graph([(1, 2), (2, 3)]))

    def test_two_components_not_connected(self):
        assert not is_connected(Graph([(1, 2), (3, 4)]))


class TestIsComplete:
    def test_triangle_is_complete(self):
        assert is_complete(Graph([(1, 2), (2, 3), (1, 3)]))

    def test_path_is_not_complete(self):
        assert not is_complete(Graph([(1, 2), (2, 3)]))

    def test_single_node_is_complete(self):
        g = Graph()
        g.add_node(1)
        assert is_complete(g)

    def test_complete_constructor_is_complete(self):
        assert is_complete(Graph.complete(range(7)))


class TestDensity:
    def test_empty_graph(self):
        assert density(Graph()) == 0.0

    def test_complete_graph_density_one(self):
        assert density(Graph.complete(range(5))) == pytest.approx(1.0)

    def test_path_density(self):
        g = Graph([(1, 2), (2, 3), (3, 4)])
        assert density(g) == pytest.approx(3 / 6)
