"""Tests for connected component discovery."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Graph, component_of, connected_components, largest_component
from repro.graphs.components import components_from_edges


class TestConnectedComponents:
    def test_empty_graph(self):
        assert connected_components(Graph()) == []

    def test_single_component(self):
        g = Graph([(1, 2), (2, 3), (3, 1)])
        comps = connected_components(g)
        assert comps == [{1, 2, 3}]

    def test_two_components_sorted_by_size(self):
        g = Graph([(1, 2), (3, 4), (4, 5)])
        comps = connected_components(g)
        assert comps[0] == {3, 4, 5}
        assert comps[1] == {1, 2}

    def test_isolated_nodes_are_singletons(self):
        g = Graph([(1, 2)])
        g.add_node(99)
        comps = connected_components(g)
        assert {99} in comps
        assert len(comps) == 2

    def test_long_path_does_not_recurse(self):
        # 10_000-node path: would blow the recursion limit with recursive DFS.
        edges = [(i, i + 1) for i in range(10_000)]
        comps = connected_components(Graph(edges))
        assert len(comps) == 1
        assert len(comps[0]) == 10_001

    def test_components_from_edges_helper(self):
        comps = components_from_edges([("a", "b"), ("c", "d")])
        assert len(comps) == 2


class TestComponentOf:
    def test_returns_containing_component(self):
        g = Graph([(1, 2), (2, 3), (10, 11)])
        assert component_of(g, 1) == {1, 2, 3}
        assert component_of(g, 11) == {10, 11}

    def test_missing_node_raises(self):
        with pytest.raises(KeyError):
            component_of(Graph(), "nope")


class TestLargestComponent:
    def test_empty(self):
        assert largest_component(Graph()) == set()

    def test_picks_biggest(self):
        g = Graph([(1, 2), (3, 4), (4, 5), (5, 6)])
        assert largest_component(g) == {3, 4, 5, 6}


@st.composite
def random_edge_lists(draw):
    n = draw(st.integers(min_value=2, max_value=30))
    num_edges = draw(st.integers(min_value=0, max_value=60))
    edges = []
    for _ in range(num_edges):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            edges.append((u, v))
    return edges


class TestComponentsAgainstNetworkx:
    @given(random_edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_matches_networkx(self, edges):
        g = Graph(edges)
        ours = {frozenset(c) for c in connected_components(g)}
        nxg = nx.Graph(edges)
        theirs = {frozenset(c) for c in nx.connected_components(nxg)}
        assert ours == theirs

    @given(random_edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_components_partition_nodes(self, edges):
        g = Graph(edges)
        comps = connected_components(g)
        all_nodes = [node for comp in comps for node in comp]
        assert len(all_nodes) == len(set(all_nodes))
        assert set(all_nodes) == set(g.nodes())
