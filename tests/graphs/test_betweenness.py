"""Tests for edge betweenness centrality (cross-checked against networkx)."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Graph, edge_betweenness_centrality
from repro.graphs.betweenness import max_betweenness_edge
from repro.graphs.graph import canonical_edge


class TestEdgeBetweenness:
    def test_single_edge(self):
        g = Graph([(1, 2)])
        scores = edge_betweenness_centrality(g, normalized=False)
        assert scores[(1, 2)] == pytest.approx(1.0)

    def test_path_graph_middle_edge_is_highest(self):
        g = Graph([(1, 2), (2, 3), (3, 4)])
        scores = edge_betweenness_centrality(g, normalized=False)
        assert scores[(2, 3)] > scores[(1, 2)]
        assert scores[(2, 3)] == pytest.approx(4.0)

    def test_bridge_between_two_cliques_dominates(self):
        # Two triangles joined by a single bridge edge — the classic
        # false-positive-match structure from the paper's Figure 4.
        left = [(1, 2), (2, 3), (1, 3)]
        right = [(4, 5), (5, 6), (4, 6)]
        bridge = [(3, 4)]
        g = Graph(left + right + bridge)
        scores = edge_betweenness_centrality(g, normalized=False)
        assert max(scores, key=scores.get) == (3, 4)

    def test_max_betweenness_edge_matches_scores(self):
        g = Graph([(1, 2), (2, 3), (1, 3), (3, 4), (4, 5), (5, 6), (4, 6)])
        edge, score = max_betweenness_edge(g)
        scores = edge_betweenness_centrality(g, normalized=False)
        assert edge == (3, 4)
        assert score == pytest.approx(max(scores.values()))

    def test_max_betweenness_edge_empty_graph_raises(self):
        with pytest.raises(ValueError):
            max_betweenness_edge(Graph())

    def test_normalization(self):
        g = Graph([(1, 2), (2, 3), (3, 4)])
        raw = edge_betweenness_centrality(g, normalized=False)
        norm = edge_betweenness_centrality(g, normalized=True)
        n = 4
        scale = n * (n - 1) / 2
        for edge in raw:
            assert norm[edge] == pytest.approx(raw[edge] / scale)


@st.composite
def connected_graphs(draw):
    """Random small connected graphs (a random tree plus extra edges)."""
    n = draw(st.integers(min_value=2, max_value=12))
    edges = set()
    for node in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=node - 1))
        edges.add(canonical_edge(parent, node))
    extra = draw(st.integers(min_value=0, max_value=10))
    for _ in range(extra):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            edges.add(canonical_edge(u, v))
    return sorted(edges)


class TestBetweennessAgainstNetworkx:
    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_matches_networkx(self, edges):
        g = Graph(edges)
        ours = edge_betweenness_centrality(g, normalized=True)
        nxg = nx.Graph(edges)
        theirs = nx.edge_betweenness_centrality(nxg, normalized=True)
        assert set(ours) == {canonical_edge(u, v) for u, v in theirs}
        for (u, v), score in theirs.items():
            assert ours[canonical_edge(u, v)] == pytest.approx(score, abs=1e-9)

    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_scores_are_nonnegative(self, edges):
        g = Graph(edges)
        scores = edge_betweenness_centrality(g, normalized=False)
        assert all(score >= 0 for score in scores.values())
        # Every edge lies on at least the shortest path between its endpoints.
        assert all(score >= 1.0 for score in scores.values())
