"""Counter/gauge registry semantics and the disabled twin."""

from repro.obs import NULL_METRICS, Metrics, NullMetrics


class TestMetrics:
    def test_counters_create_at_zero_and_accumulate(self):
        metrics = Metrics()
        assert metrics.counter("cache.hits") == 0
        metrics.add("cache.hits")
        metrics.add("cache.hits", 4)
        assert metrics.counter("cache.hits") == 5

    def test_gauges_keep_the_last_value(self):
        metrics = Metrics()
        metrics.gauge("pool.width", 2)
        metrics.gauge("pool.width", 8)
        assert metrics.gauges() == {"pool.width": 8.0}

    def test_reads_are_name_sorted_copies(self):
        metrics = Metrics()
        metrics.add("z.last", 1)
        metrics.add("a.first", 1)
        counters = metrics.counters()
        assert list(counters) == ["a.first", "z.last"]
        counters["a.first"] = 99  # mutating the copy must not write back
        assert metrics.counter("a.first") == 1

    def test_snapshot_bundles_both_families(self):
        metrics = Metrics()
        metrics.add("n", 3)
        metrics.gauge("g", 1.5)
        assert metrics.snapshot() == {
            "counters": {"n": 3},
            "gauges": {"g": 1.5},
        }

    def test_integer_coercion(self):
        metrics = Metrics()
        metrics.add("n", True)  # bools are ints; stays an int counter
        assert metrics.counter("n") == 1


class TestNullMetrics:
    def test_records_nothing(self):
        metrics = NullMetrics()
        metrics.add("n", 100)
        metrics.gauge("g", 1.0)
        assert metrics.counter("n") == 0
        assert metrics.counters() == {}
        assert metrics.gauges() == {}
        assert metrics.snapshot() == {"counters": {}, "gauges": {}}

    def test_enabled_flags(self):
        assert Metrics().enabled
        assert not NULL_METRICS.enabled
