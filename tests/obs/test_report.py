"""The terminal trace report: span tree, chunk rollups, hit rates."""

from repro.obs import Span, Trace, TraceRecorder, render_trace_report


def sample_trace():
    recorder = TraceRecorder()
    with recorder.span("run", kind="run", records=12):
        with recorder.span("blocking", kind="stage"):
            recorder.event("pool.spawn", executor="process", workers=2)
            recorder.add_span("blocking", start=0.0, end=0.5,
                              attributes={"index": 0, "items": 100})
            recorder.add_span("blocking", start=0.5, end=1.0,
                              attributes={"index": 1, "items": 100})
    recorder.metrics.add("decision_cache.hits", 30)
    recorder.metrics.add("decision_cache.misses", 70)
    recorder.metrics.add("pool.spawns", 1)
    recorder.metrics.gauge("ingest.num_records", 12)
    return recorder.trace()


class TestRenderTraceReport:
    def test_renders_the_span_tree_with_kinds_and_attrs(self):
        report = render_trace_report(sample_trace())
        assert "run [run]" in report
        assert "[records=12]" in report
        lines = report.splitlines()
        run_line = next(i for i, line in enumerate(lines) if "run [run]" in line)
        stage_line = next(i for i, line in enumerate(lines)
                          if "blocking [stage]" in line)
        assert stage_line > run_line
        assert lines[stage_line].startswith("  ")  # nested under the run

    def test_chunks_collapse_into_a_throughput_line(self):
        report = render_trace_report(sample_trace())
        assert "2 chunks, 200 items, 200 items/s" in report
        assert "1.00s worker time" in report

    def test_events_render_inline(self):
        report = render_trace_report(sample_trace())
        assert "· pool.spawn  [executor=process, workers=2]" in report

    def test_hit_rates_derive_from_counter_pairs(self):
        report = render_trace_report(sample_trace())
        assert "Cache hit rates" in report
        assert "decision_cache: 30/100 hits (30.0%)" in report

    def test_counters_and_gauges_sections(self):
        report = render_trace_report(sample_trace())
        assert "pool.spawns: 1" in report
        assert "ingest.num_records: 12" in report

    def test_unpaired_counters_get_no_rate_line(self):
        trace = Trace(counters={"pool.spawns": 1, "lonely.hits": 3})
        report = render_trace_report(trace)
        assert "Cache hit rates" not in report

    def test_zero_total_pair_renders_without_dividing(self):
        trace = Trace(counters={"c.hits": 0, "c.misses": 0})
        assert "c: 0/0 hits (0.0%)" in render_trace_report(trace)

    def test_empty_trace(self):
        assert render_trace_report(Trace()) == "Trace contains no spans."

    def test_durations_format_by_magnitude(self):
        trace = Trace(spans=[
            Span("slow", kind="stage", start=0.0, end=2.5),
            Span("fast", kind="stage", start=0.0, end=0.0421),
        ])
        report = render_trace_report(trace)
        assert "slow [stage] 2.50s" in report
        assert "fast [stage] 42.1ms" in report
