"""Chrome ``trace_event`` export: structure, rebasing, ordering."""

import json

from repro.obs import Span, Trace, TraceRecorder, chrome_trace, write_chrome_trace


def sample_trace():
    recorder = TraceRecorder()
    with recorder.span("run", kind="run", records=4):
        with recorder.span("blocking", kind="stage"):
            recorder.event("pool.spawn", workers=2)
            recorder.add_span("blocking", start=100.0, end=100.25,
                              attributes={"index": 0, "items": 10})
    recorder.metrics.add("cache.hits", 2)
    recorder.metrics.gauge("width", 3)
    return recorder.trace()


class TestChromeTrace:
    def test_structure_and_metadata(self):
        payload = chrome_trace(sample_trace())
        assert set(payload) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"] == {
            "counters": {"cache.hits": 2},
            "gauges": {"width": 3.0},
        }

    def test_spans_become_complete_events_and_instants(self):
        events = chrome_trace(sample_trace())["traceEvents"]
        by_name = {e["name"]: e for e in events}
        assert by_name["run"]["ph"] == "X"
        assert by_name["run"]["dur"] > 0
        assert by_name["pool.spawn"]["ph"] == "i"
        assert by_name["pool.spawn"]["s"] == "t"
        assert "dur" not in by_name["pool.spawn"]
        assert by_name["blocking"]["cat"] == "stage"

    def test_timestamps_are_rebased_microseconds(self):
        events = chrome_trace(sample_trace())["traceEvents"]
        assert all(e["ts"] >= 0 for e in events)
        assert min(e["ts"] for e in events) == 0.0

    def test_events_are_time_ordered_with_parents_first(self):
        trace = Trace(spans=[
            Span("parent", start=1.0, end=3.0,
                 children=[Span("child", kind="chunk", start=1.0, end=2.0)]),
        ])
        events = chrome_trace(trace)["traceEvents"]
        assert [e["name"] for e in events] == ["parent", "child"]

    def test_attributes_ride_in_args(self):
        events = chrome_trace(sample_trace())["traceEvents"]
        run = next(e for e in events if e["name"] == "run")
        assert run["args"] == {"records": 4}

    def test_single_thread_track(self):
        events = chrome_trace(sample_trace())["traceEvents"]
        assert {(e["pid"], e["tid"]) for e in events} == {(0, 0)}

    def test_empty_trace_exports_cleanly(self):
        payload = chrome_trace(Trace())
        assert payload["traceEvents"] == []


class TestWriteChromeTrace:
    def test_writes_valid_json(self, tmp_path):
        path = tmp_path / "out" / "trace.json"
        write_chrome_trace(sample_trace(), path)
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert len(payload["traceEvents"]) == 4
