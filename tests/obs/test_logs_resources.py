"""Logging seam and process probes."""

import logging
import sys

from repro.obs import configure_cli_logging, effective_cpu_count, get_logger, peak_rss_bytes
from repro.obs.logs import LIBRARY_LOGGER_NAME
from repro.obs import clock


class TestGetLogger:
    def test_root_library_logger(self):
        assert get_logger().name == LIBRARY_LOGGER_NAME == "repro"

    def test_dotted_children(self):
        assert get_logger("obs.sinks").name == "repro.obs.sinks"

    def test_import_attaches_a_null_handler(self):
        # repro/__init__ wires the NullHandler so un-configured embedders
        # see neither output nor "no handlers" warnings.
        import repro  # noqa: F401

        assert any(
            isinstance(h, logging.NullHandler)
            for h in logging.getLogger("repro").handlers
        )


class TestConfigureCliLogging:
    def teardown_method(self):
        logger = logging.getLogger("repro")
        for handler in list(logger.handlers):
            if getattr(handler, "_repro_cli_handler", False):
                logger.removeHandler(handler)
        logger.setLevel(logging.NOTSET)

    def cli_handlers(self):
        return [
            h for h in logging.getLogger("repro").handlers
            if getattr(h, "_repro_cli_handler", False)
        ]

    def test_verbosity_levels(self):
        configure_cli_logging(0)
        assert logging.getLogger("repro").level == logging.WARNING
        configure_cli_logging(1)
        assert logging.getLogger("repro").level == logging.INFO
        configure_cli_logging(2)
        assert logging.getLogger("repro").level == logging.DEBUG

    def test_reconfiguring_replaces_the_handler(self):
        configure_cli_logging(1)
        configure_cli_logging(2)
        assert len(self.cli_handlers()) == 1

    def test_records_flow_to_the_given_stream(self, capsys):
        configure_cli_logging(1, stream=sys.stderr)
        get_logger("obs.test").info("hello from the library")
        assert "INFO repro.obs.test: hello from the library" in capsys.readouterr().err


class TestClock:
    def test_now_is_monotonic_seconds(self):
        first = clock.now()
        second = clock.now()
        assert isinstance(first, float)
        assert second >= first


class TestResources:
    def test_effective_cpu_count_is_positive(self):
        assert effective_cpu_count() >= 1

    def test_peak_rss_bytes_is_plausible_on_posix(self):
        peak = peak_rss_bytes()
        if peak is None:  # pragma: no cover - non-POSIX platforms
            return
        # A running CPython interpreter needs at least a few MB.
        assert peak > 1_000_000

    def test_peak_rss_never_decreases(self):
        before = peak_rss_bytes()
        ballast = [0] * 100_000
        after = peak_rss_bytes()
        del ballast
        if before is not None:
            assert after >= before
