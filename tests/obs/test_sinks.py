"""JSONL sink behaviour and the trace round-trip contract.

The load-bearing property: a trace streamed to JSONL and read back equals
the recorder's in-memory tree — children stream before their parents (spans
emit on completion), and the reader reconstructs every ``children`` list in
attachment order anyway.
"""

import json
import logging

import pytest

from repro.obs import (
    TRACE_FORMAT_VERSION,
    JsonlSink,
    MemorySink,
    TraceFormatError,
    TraceRecorder,
    read_trace_jsonl,
)


def record_sample_run(recorder):
    """A small but structurally rich run: nesting, chunks, events, metrics."""
    with recorder.span("run", kind="run", records=12):
        with recorder.span("blocking", kind="stage"):
            recorder.event("pool.spawn", executor="process", workers=2)
            recorder.add_span("blocking", start=10.0, end=10.5,
                              attributes={"index": 0, "items": 6})
            recorder.add_span("blocking", start=10.5, end=11.0,
                              attributes={"index": 1, "items": 6})
        with recorder.span("pairwise_matching", kind="stage"):
            recorder.add_span("pairwise_matching", start=11.0, end=12.0,
                              attributes={"index": 0, "items": 30})
    recorder.metrics.add("decision_cache.hits", 5)
    recorder.metrics.add("decision_cache.misses", 25)
    recorder.metrics.gauge("ingest.num_records", 12)


class TestJsonlSink:
    def test_writes_header_then_records_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.write({"type": "span", "id": 1, "parent": None, "name": "s",
                    "kind": "span", "start": 0.0, "end": 1.0})
        sink.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0] == {"type": "trace", "version": TRACE_FORMAT_VERSION}
        assert lines[1]["name"] == "s"

    def test_opens_lazily(self, tmp_path):
        path = tmp_path / "never.jsonl"
        sink = JsonlSink(path)
        sink.close()
        assert not path.exists()

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "trace.jsonl"
        sink = JsonlSink(path)
        sink.write({"type": "metrics", "counters": {}, "gauges": {}})
        sink.close()
        assert path.exists()

    def test_unwritable_path_degrades_with_one_warning(self, tmp_path, caplog):
        target = tmp_path / "not-a-dir"
        target.write_text("a file, not a directory")
        sink = JsonlSink(target / "trace.jsonl")
        with caplog.at_level(logging.WARNING, logger="repro"):
            sink.write({"type": "metrics", "counters": {}, "gauges": {}})
            sink.write({"type": "metrics", "counters": {}, "gauges": {}})
        warnings = [r for r in caplog.records if "trace sink disabled" in r.message]
        assert len(warnings) == 1
        sink.close()  # still safe


class TestRoundTrip:
    def test_jsonl_round_trip_equals_in_memory_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        recorder = TraceRecorder(sink=JsonlSink(path))
        record_sample_run(recorder)
        recorder.finish()
        assert read_trace_jsonl(path) == recorder.trace()

    def test_round_trip_preserves_sibling_order(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        recorder = TraceRecorder(sink=JsonlSink(path))
        with recorder.span("run"):
            for name in ("first", "second", "third"):
                with recorder.span(name):
                    pass
        recorder.finish()
        (run,) = read_trace_jsonl(path).spans
        assert [s.name for s in run.children] == ["first", "second", "third"]

    def test_round_trip_of_memory_sink_stream(self, tmp_path):
        # The MemorySink stream and the file hold the same records.
        memory = MemorySink()
        recorder = TraceRecorder(sink=memory)
        record_sample_run(recorder)
        recorder.finish()
        path = tmp_path / "replayed.jsonl"
        replay = JsonlSink(path)
        for record in memory.records:
            replay.write(record)
        replay.close()
        assert read_trace_jsonl(path) == recorder.trace()

    def test_crashed_run_prefix_is_still_readable(self, tmp_path):
        # Per-line flushing means a file cut mid-run still parses: every
        # already-completed top-level span survives (the batch that died
        # never emitted, so it is simply absent).
        path = tmp_path / "trace.jsonl"
        recorder = TraceRecorder(sink=JsonlSink(path))
        for batch in ("batch-1", "batch-2", "batch-3"):
            with recorder.span(batch, kind="run"):
                pass
        recorder.finish()
        lines = path.read_text().splitlines()
        truncated = tmp_path / "truncated.jsonl"
        truncated.write_text("\n".join(lines[:3]) + "\n")  # header + 2 runs
        trace = read_trace_jsonl(truncated)
        assert trace.counters == {}
        assert [s.name for s in trace.spans] == ["batch-1", "batch-2"]


class TestReadValidation:
    def write(self, tmp_path, lines):
        path = tmp_path / "trace.jsonl"
        path.write_text("\n".join(json.dumps(line) for line in lines) + "\n")
        return path

    def header(self):
        return {"type": "trace", "version": TRACE_FORMAT_VERSION}

    def test_requires_header_first(self, tmp_path):
        path = self.write(tmp_path, [{"type": "metrics", "counters": {},
                                      "gauges": {}}])
        with pytest.raises(TraceFormatError, match="header"):
            read_trace_jsonl(path)

    def test_rejects_unsupported_version(self, tmp_path):
        path = self.write(tmp_path, [{"type": "trace", "version": 999}])
        with pytest.raises(TraceFormatError, match="unsupported trace version"):
            read_trace_jsonl(path)

    def test_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type": "trace", "version": 1}\nnot json\n')
        with pytest.raises(TraceFormatError, match="line 2: not valid JSON"):
            read_trace_jsonl(path)

    def test_rejects_unknown_record_type(self, tmp_path):
        path = self.write(tmp_path, [self.header(), {"type": "mystery"}])
        with pytest.raises(TraceFormatError, match="unknown record type"):
            read_trace_jsonl(path)

    def test_rejects_duplicate_header(self, tmp_path):
        path = self.write(tmp_path, [self.header(), self.header()])
        with pytest.raises(TraceFormatError, match="duplicate trace header"):
            read_trace_jsonl(path)

    def test_rejects_span_without_id(self, tmp_path):
        path = self.write(tmp_path, [self.header(), {
            "type": "span", "parent": None, "name": "s", "kind": "span",
            "start": 0.0, "end": 1.0,
        }])
        with pytest.raises(TraceFormatError, match="unique integer id"):
            read_trace_jsonl(path)

    def test_rejects_unresolved_parent_link(self, tmp_path):
        path = self.write(tmp_path, [self.header(), {
            "type": "span", "id": 1, "parent": 99, "name": "s",
            "kind": "span", "start": 0.0, "end": 1.0,
        }])
        with pytest.raises(TraceFormatError, match="does not name a span"):
            read_trace_jsonl(path)

    def test_rejects_non_numeric_times(self, tmp_path):
        path = self.write(tmp_path, [self.header(), {
            "type": "span", "id": 1, "parent": None, "name": "s",
            "kind": "span", "start": "soon", "end": 1.0,
        }])
        with pytest.raises(TraceFormatError, match="numeric start/end"):
            read_trace_jsonl(path)

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            json.dumps(self.header()) + "\n\n"
            + json.dumps({"type": "metrics", "counters": {"n": 1},
                          "gauges": {}}) + "\n"
        )
        assert read_trace_jsonl(path).counters == {"n": 1}
