"""Recorder semantics: span nesting, events, attached spans, the no-op twin."""

import pytest

from repro.obs import (
    NULL_RECORDER,
    MemorySink,
    Metrics,
    NullRecorder,
    Span,
    Trace,
    TraceRecorder,
)


class TestSpan:
    def test_duration_is_zero_while_open(self):
        span = Span("open", start=5.0)
        assert span.end is None
        assert span.duration == 0.0

    def test_duration_is_end_minus_start(self):
        assert Span("s", start=1.0, end=3.5).duration == 2.5

    def test_walk_is_depth_first_in_child_order(self):
        root = Span("root", children=[
            Span("a", children=[Span("a1")]),
            Span("b"),
        ])
        assert [s.name for s in root.walk()] == ["root", "a", "a1", "b"]

    def test_equality_is_structural(self):
        make = lambda: Span("s", start=1.0, end=2.0, attributes={"k": 1},  # noqa: E731
                            children=[Span("c", start=1.1, end=1.9)])
        assert make() == make()
        other = make()
        other.children[0].attributes["extra"] = True
        assert make() != other


class TestTraceRecorder:
    def test_spans_nest_under_the_open_span(self):
        recorder = TraceRecorder()
        with recorder.span("run", kind="run"):
            with recorder.span("blocking", kind="stage"):
                pass
            with recorder.span("matching", kind="stage"):
                pass
        (run,) = recorder.spans
        assert run.name == "run" and run.kind == "run"
        assert [s.name for s in run.children] == ["blocking", "matching"]
        assert all(s.kind == "stage" for s in run.children)

    def test_span_records_monotonic_interval(self):
        recorder = TraceRecorder()
        with recorder.span("timed"):
            pass
        (span,) = recorder.spans
        assert span.end is not None
        assert span.end >= span.start

    def test_attributes_from_kwargs_and_while_open(self):
        recorder = TraceRecorder()
        with recorder.span("run", records=10) as span:
            span.attributes["groups"] = 3
        (run,) = recorder.spans
        assert run.attributes == {"records": 10, "groups": 3}

    def test_event_is_a_zero_length_child(self):
        recorder = TraceRecorder()
        with recorder.span("stage"):
            recorder.event("pool.spawn", workers=2)
        (stage,) = recorder.spans
        (event,) = stage.children
        assert event.kind == "event"
        assert event.start == event.end
        assert event.attributes == {"workers": 2}

    def test_add_span_attaches_foreign_interval(self):
        recorder = TraceRecorder()
        with recorder.span("stage"):
            recorder.add_span("stage", start=1.0, end=2.0,
                              attributes={"index": 0, "items": 7})
        (stage,) = recorder.spans
        (chunk,) = stage.children
        assert chunk.kind == "chunk"
        assert (chunk.start, chunk.end) == (1.0, 2.0)
        assert chunk.attributes == {"index": 0, "items": 7}

    def test_top_level_spans_become_roots(self):
        recorder = TraceRecorder()
        with recorder.span("first"):
            pass
        with recorder.span("second"):
            pass
        assert [s.name for s in recorder.spans] == ["first", "second"]

    def test_span_closes_on_exception(self):
        recorder = TraceRecorder()
        with pytest.raises(RuntimeError):
            with recorder.span("boom"):
                raise RuntimeError("inside")
        (span,) = recorder.spans
        assert span.end is not None
        # The stack unwound: the next span is a sibling, not a child.
        with recorder.span("after"):
            pass
        assert [s.name for s in recorder.spans] == ["boom", "after"]

    def test_trace_includes_metric_snapshot(self):
        recorder = TraceRecorder()
        recorder.metrics.add("cache.hits", 3)
        recorder.metrics.gauge("pool.width", 4)
        trace = recorder.trace()
        assert isinstance(trace, Trace)
        assert trace.counters == {"cache.hits": 3}
        assert trace.gauges == {"pool.width": 4.0}

    def test_accepts_an_external_metrics_registry(self):
        metrics = Metrics()
        recorder = TraceRecorder(metrics=metrics)
        assert recorder.metrics is metrics

    def test_finish_emits_metrics_record_and_closes_sink_once(self):
        sink = MemorySink()
        recorder = TraceRecorder(sink=sink)
        recorder.metrics.add("n", 2)
        recorder.finish()
        recorder.finish()  # idempotent
        assert sink.closed
        metrics_records = [r for r in sink.records if r["type"] == "metrics"]
        assert metrics_records == [{"type": "metrics", "counters": {"n": 2},
                                    "gauges": {}}]

    def test_sink_receives_children_before_parents(self):
        sink = MemorySink()
        recorder = TraceRecorder(sink=sink)
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        names = [r["name"] for r in sink.records if r["type"] == "span"]
        assert names == ["inner", "outer"]
        inner, outer = (r for r in sink.records if r["type"] == "span")
        assert inner["parent"] == outer["id"]
        assert outer["parent"] is None


class TestTraceQueries:
    def test_find_filters_by_name_and_kind(self):
        recorder = TraceRecorder()
        with recorder.span("run", kind="run"):
            with recorder.span("blocking", kind="stage"):
                recorder.add_span("blocking", start=0.0, end=1.0)
        trace = recorder.trace()
        assert len(trace.find("blocking")) == 2
        assert len(trace.find("blocking", kind="chunk")) == 1
        assert trace.find("missing") == []


class TestNullRecorder:
    def test_is_disabled_and_records_nothing(self):
        recorder = NullRecorder()
        assert not recorder.enabled
        with recorder.span("ignored", key="value") as span:
            assert span is None
        assert recorder.event("ignored") is None
        assert recorder.add_span("ignored", start=0.0, end=1.0) is None
        assert recorder.spans == []
        assert recorder.trace() == Trace()
        recorder.finish()  # no-op

    def test_shared_instance_has_disabled_metrics(self):
        NULL_RECORDER.metrics.add("anything", 10)
        assert NULL_RECORDER.metrics.counter("anything") == 0

    def test_span_context_is_allocation_free(self):
        # One shared context object: the disabled hot path must not build
        # a new context manager per span.
        first = NULL_RECORDER.span("a")
        second = NULL_RECORDER.span("b")
        assert first is second
