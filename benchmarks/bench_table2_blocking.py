"""Table 2 — blockings, record counts, candidate pairs and thresholds.

Regenerates Table 2: for every dataset the blockings applied, the number of
records, the number of candidate pairs they produce and the clean-up
thresholds gamma / mu.  The benchmark measures candidate-pair generation.
"""

from repro.blocking import (
    CombinedBlocking,
    IdOverlapBlocking,
    IssuerMatchBlocking,
    TokenOverlapBlocking,
)
from repro.blocking.base import recall_of_blocking
from repro.core.cleanup import CleanupConfig
from repro.evaluation import format_table


def _blocking_for(name, dataset):
    if name.endswith("companies"):
        return "ID Overlap + Token Overlap", CombinedBlocking(
            [IdOverlapBlocking(), TokenOverlapBlocking(top_n=5)]
        )
    if name.endswith("securities"):
        return "ID Overlap + Issuer Match", CombinedBlocking(
            [IdOverlapBlocking(), IssuerMatchBlocking.from_ground_truth(dataset)]
        )
    return "Token Overlap", TokenOverlapBlocking(top_n=5)


def test_table2_blocking_statistics(benchmark, dataset_registry, save_table):
    """Candidate-pair counts and thresholds per dataset."""

    def compute_rows():
        rows = []
        for name in (
            "real-companies",
            "synthetic-companies",
            "real-securities",
            "synthetic-securities",
            "wdc-products",
        ):
            dataset = dataset_registry[name]
            blocking_label, blocking = _blocking_for(name, dataset)
            candidates = blocking.candidate_pairs(dataset)
            cleanup = CleanupConfig.for_num_sources(len(dataset.sources))
            rows.append({
                "Dataset": name,
                "Blockings": blocking_label,
                "# of Records": len(dataset),
                "# of Candidate Pairs": len(candidates),
                "Blocking Recall": round(100 * recall_of_blocking(candidates, dataset), 1),
                "gamma": cleanup.gamma,
                "mu": cleanup.mu,
            })
        return rows

    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    table = format_table(rows, title="Table 2 — blockings and candidate pairs (benchmark scale)")
    save_table("table2_blocking", table)

    by_name = {row["Dataset"]: row for row in rows}
    # Shape checks mirroring Table 2: candidate pairs are a small multiple of
    # the record count (not quadratic), mu equals the number of sources, and
    # the securities recipes use the Issuer Match blocking.
    for row in by_name.values():
        assert row["# of Candidate Pairs"] < row["# of Records"] ** 2 / 4
    assert by_name["synthetic-companies"]["mu"] == 5
    assert by_name["real-companies"]["mu"] == 8
    assert "Issuer Match" in by_name["synthetic-securities"]["Blockings"]
    assert by_name["synthetic-companies"]["Blocking Recall"] > 60
