"""Figure 3 — transitive matches implied by pairwise predictions.

Figure 3 shows how three pairwise matches over the Herotel/Hearst
acquisition imply three additional transitive matches.  The benchmark
reproduces the example exactly and additionally measures transitive-closure
expansion on a generated prediction graph (the operation behind the
Pre Graph Cleanup stage scores).
"""

from repro.core.transitive import transitive_closure_edges, transitive_matches
from repro.datagen import figure2_dataset
from repro.evaluation import format_table


def test_figure3_acquisition_example(benchmark, save_table):
    """The exact Figure 3 example: 3 predicted edges imply 3 more."""
    predicted = [("#11", "#21"), ("#21", "#33"), ("#33", "#41")]

    implied = benchmark(lambda: transitive_matches(predicted))

    assert implied == {("#11", "#33"), ("#11", "#41"), ("#21", "#41")}
    companies, _ = figure2_dataset()
    # Every implied pair is a true match: the acquisition makes all four
    # records one group, discoverable only transitively via record #21.
    assert all(companies.is_true_match(left, right) for left, right in implied)

    rows = [
        {"Kind": "predicted pairwise matches", "Pairs": ", ".join(f"{a}-{b}" for a, b in predicted)},
        {"Kind": "implied transitive matches", "Pairs": ", ".join(f"{a}-{b}" for a, b in sorted(implied))},
    ]
    save_table("figure3_transitive", format_table(rows, title="Figure 3 — transitive matches"))


def test_figure3_closure_scales_with_component_size(benchmark):
    """Closure of a chained prediction graph produces quadratic match counts.

    This is the quantitative phenomenon behind the paper's warning: a single
    chain of predictions across n records implies n·(n-1)/2 matches.
    """
    chain = [(f"r{i}", f"r{i + 1}") for i in range(200)]

    closure = benchmark(lambda: transitive_closure_edges(chain))

    n = 201
    assert len(closure) == n * (n - 1) // 2
