"""Table 4 (sensitivity rows) — γ / μ threshold variants of Algorithm 1.

Reproduces the DistilBERT (128)-ALL-MEC, (½γ) and -BC rows of Table 4: the
same pairwise predictions on the synthetic companies dataset are cleaned up
with the default thresholds, with Minimum Edge Cuts only (γ = μ), with γ
halved and with Betweenness Centrality only (γ = ∞).  The paper finds all
variants land close together, with MEC-only slightly worse on recall and
BC-only slightly slower.
"""

import pytest

from repro.core.cleanup import CleanupConfig, gralmatch_cleanup
from repro.core.groups import EntityGroups
from repro.core.metrics import group_matching_scores
from repro.core.pipeline import EntityGroupMatchingPipeline
from repro.evaluation import format_table
from repro.evaluation.experiment import EntityGroupMatchingExperiment, ExperimentConfig

_rows: list[dict] = []


@pytest.fixture(scope="module")
def company_predictions(dataset_registry, finetune_cache):
    """Positive edges of DistilBERT (128)-ALL on the synthetic companies."""
    dataset = dataset_registry["synthetic-companies"]
    fine_tuned, _, _ = finetune_cache("synthetic-companies", "distilbert-128-all")
    experiment = EntityGroupMatchingExperiment(
        dataset, ExperimentConfig(model="distilbert-128-all", dataset_kind="companies")
    )
    pipeline = EntityGroupMatchingPipeline(
        matcher=fine_tuned.matcher,
        blocking=experiment.build_blocking(),
        cleanup_config=experiment.build_cleanup_config(),
    )
    result = pipeline.run(dataset)
    return dataset, result.positive_edges


VARIANTS = ["default", "mec-only", "half-gamma", "bc-only"]


@pytest.mark.parametrize("variant", VARIANTS)
def test_table4_sensitivity_variant(benchmark, company_predictions, variant):
    """Clean up the same predictions under one threshold variant."""
    dataset, edges = company_predictions
    base = CleanupConfig.for_num_sources(len(dataset.sources))
    config = {
        "default": base,
        "mec-only": base.mec_only(),
        "half-gamma": base.half_gamma(),
        "bc-only": base.bc_only(),
    }[variant]

    def run():
        return gralmatch_cleanup(edges, config)

    components, report = benchmark.pedantic(run, rounds=1, iterations=1)

    all_records = [record.record_id for record in dataset]
    covered = {record for component in components for record in component}
    groups = EntityGroups(list(components) + [{r} for r in all_records if r not in covered])
    scores = group_matching_scores(groups, dataset.true_matches())
    _rows.append({
        "Variant": variant,
        "gamma": "inf" if config.gamma is None else config.gamma,
        "mu": config.mu,
        **scores.as_row(),
        "Removed edges": report.num_removed,
        "MEC removals": report.mincut_removals,
        "BC removals": report.betweenness_removals,
    })
    assert all(len(component) <= config.mu for component in components)


def test_table4_sensitivity_report(benchmark, save_table):
    """All threshold variants land close together (the paper's conclusion)."""
    rows = benchmark(lambda: list(_rows))
    table = format_table(rows, title="Table 4 — GraLMatch threshold sensitivity")
    save_table("table4_sensitivity", table)
    assert len(rows) == len(VARIANTS)
    f1_values = [row["f1"] for row in rows]
    assert max(f1_values) - min(f1_values) < 15.0
