"""Table 1 — general statistics of the benchmark datasets.

Regenerates the rows of Table 1 (number of data sources, entities, records
and matches, average matches per entity, share of records with text
descriptions) for the synthetic and real-like companies / securities
datasets.  The benchmark measures the dataset generation itself, which the
paper describes as linear in the number of record groups.
"""

from repro.datagen import generate_benchmark
from repro.datagen.stats import dataset_statistics
from repro.evaluation import format_table

from bench_config import SYNTHETIC_CONFIG


def test_table1_dataset_statistics(benchmark, dataset_registry, save_table):
    """Compute the Table 1 rows for every dataset (and time the statistics)."""

    def compute_rows():
        return [
            {**dataset_statistics(dataset_registry[name]).as_row(), "dataset": name}
            for name in (
                "real-companies",
                "synthetic-companies",
                "real-securities",
                "synthetic-securities",
                "wdc-products",
            )
        ]

    rows = benchmark(compute_rows)
    table = format_table(rows, title="Table 1 — dataset statistics (benchmark scale)")
    save_table("table1_dataset_stats", table)

    by_name = {row["dataset"]: row for row in rows}
    synthetic_companies = by_name["synthetic-companies"]
    # Shape checks against the paper's Table 1: 5 sources, several matches
    # per entity, roughly a third of company records with descriptions.
    assert synthetic_companies["# of Data Sources"] == 5
    assert synthetic_companies["Avg. # of Matches per Entity"] > 2
    assert 15 <= synthetic_companies["% of Records with Text Descriptions"] <= 50
    assert by_name["real-companies"]["# of Data Sources"] == 8
    assert by_name["synthetic-securities"]["% of Records with Text Descriptions"] is None


def test_table1_generation_scales_linearly(benchmark):
    """The generation cost per record group stays flat (Section 3.2 claim)."""

    def generate():
        return generate_benchmark(SYNTHETIC_CONFIG)

    result = benchmark.pedantic(generate, rounds=1, iterations=1)
    assert len(result.companies) > 0
    assert len(result.securities) > 0
