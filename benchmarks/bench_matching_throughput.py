"""Pairwise-matching throughput: the profile-cache hot path.

Measures the matching layer's prepare-once/score-many optimisation on the
synthetic companies benchmark, in two sections:

* **feature extraction** (single process) — pairs/second of the logistic
  matcher's feature extraction through three implementations:

  - ``seed``: the historical extractor, re-deriving every normalisation per
    pair with the untrimmed Levenshtein DP (replicated here verbatim as the
    frozen "before" baseline),
  - ``per_pair``: the current extractor without a profile store (what
    ``--no-profile-cache`` pays per pair),
  - ``store rows``: the profile store scored row at a time
    (``extract_batch_profiles_rows``, the per-pair oracle the columnar
    path is asserted bitwise-equal against),
  - ``profile_store``: the columnar hot path — profiles prepared once per
    record, features as array expressions over the packed columns (what
    ``--profile-cache`` pays) — preparation time is included.

* **run_matching** — end-to-end ``PipelineRuntime.run_matching`` throughput
  with the trained logistic matcher, profile-cache on/off × columnar
  dispatch on/off × warm-pool on/off × workers × executor (columnar rows
  only exist under the profile cache — the array route scores the store).
  Every row's decisions are asserted **bitwise identical** to the serial
  profile-cache-on columnar reference (same probabilities, same verdicts):
  the cache, the dispatch route and the pool mode trade work for speed,
  never output.  Each row records the effective ``cpu_count`` it ran
  under, and parallel speedup assertions are skipped (and recorded as
  skipped) when the box has fewer cores than workers — a 2-worker row on a
  1-core runner measures engine overhead, not parallelism.

The candidate set is the real blocking output (token-overlap + id-overlap),
topped up with sliding-window pairs until pairs/records >= 10 — the
pairs >> records regime the profile subsystem targets.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_matching_throughput.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/bench_matching_throughput.py           # full numbers

Full runs assert the >= 3x extraction speedup and write
``benchmarks/results/BENCH_matching.json``.  Quick runs skip the timing
assertion (CI boxes are too noisy to gate on wall-clock ratios) and write
``BENCH_matching_quick.json`` instead, so the committed full-run reference
numbers are never overwritten by a smoke run.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from collections.abc import Sequence

import numpy as np

from repro.blocking import CombinedBlocking, IdOverlapBlocking, TokenOverlapBlocking
from repro.blocking.base import CandidatePair
from repro.cli import positive_int
from repro.datagen import GenerationConfig, generate_benchmark
from repro.datagen.identifiers import SECURITY_ID_FIELDS
from repro.datagen.records import CompanyRecord, Dataset, SecurityRecord
from repro.evaluation import format_table
from repro.matching import LogisticRegressionMatcher
from repro.matching.features import PairFeatureExtractor
from repro.matching.decisions import DecisionVector
from repro.matching.pairs import as_record_pairs, build_labeled_pairs
from repro.matching.profiles import ProfileStore
from repro.obs.resources import effective_cpu_count, peak_rss_bytes
from repro.runtime import PipelineRuntime, RuntimeConfig
from repro.text.normalize import normalize_identifier, normalize_text, strip_corporate_terms
from repro.text.similarity import (
    jaccard_similarity,
    jaro_winkler_similarity,
    longest_common_substring,
    overlap_coefficient,
)
from repro.text.tokenize import word_tokenize

RESULTS_DIR = Path(__file__).parent / "results"

#: The serial run_matching throughput of the pre-profile-subsystem build
#: (the first recorded BENCH_matching.json) — full runs pin the columnar
#: route at >= 3x this floor.
_SEED_SERIAL_PAIRS_PER_S = 35_000.0


# -- the frozen "before" baseline -------------------------------------------


def _seed_levenshtein(a: str, b: str) -> int:
    """The pre-optimisation edit distance: full DP, no affix trimming."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(b) > len(a):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            )
        previous = current
    return previous[-1]


def _seed_levenshtein_similarity(a: str, b: str) -> float:
    if not a and not b:
        return 1.0
    return 1.0 - _seed_levenshtein(a, b) / max(len(a), len(b))


def _seed_lcs_similarity(a: str, b: str) -> float:
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    return longest_common_substring(a, b) / min(len(a), len(b))


class SeedPairFeatureExtractor(PairFeatureExtractor):
    """The extractor as it stood before the profile subsystem landed.

    Re-derives every record-local value for both sides of every pair and
    uses the unoptimised similarity kernels — the honest "before" of the
    BENCH_matching.json trajectory.
    """

    def extract(self, left, right) -> np.ndarray:
        left_name = self._record_name(left)
        right_name = self._record_name(right)
        left_name_norm = normalize_text(left_name)
        right_name_norm = normalize_text(right_name)
        left_tokens = left_name_norm.split()
        right_tokens = right_name_norm.split()
        left_stripped = strip_corporate_terms(left_name)
        right_stripped = strip_corporate_terms(right_name)
        left_description = self._record_attribute(left, "description")
        right_description = self._record_attribute(right, "description")
        description_tokens_left = word_tokenize(left_description)
        description_tokens_right = word_tokenize(right_description)
        overlaps, conflicts, isin_overlap = self._record_identifier_features(left, right)
        values = (
            jaro_winkler_similarity(left_name_norm, right_name_norm),
            _seed_levenshtein_similarity(left_name_norm, right_name_norm),
            jaccard_similarity(left_tokens, right_tokens),
            overlap_coefficient(left_tokens, right_tokens),
            _seed_lcs_similarity(left_name_norm, right_name_norm),
            jaro_winkler_similarity(left_stripped, right_stripped),
            jaccard_similarity(left_stripped.split(), right_stripped.split()),
            jaccard_similarity(description_tokens_left, description_tokens_right)
            if description_tokens_left and description_tokens_right
            else 0.0,
            1.0 if left_description and right_description else 0.0,
            self._record_equality(left, right, "city"),
            self._record_equality(left, right, "region"),
            self._record_equality(left, right, "country_code"),
            self._record_equality(left, right, "industry"),
            self._record_equality(left, right, "security_type"),
            float(overlaps),
            float(conflicts),
            isin_overlap,
            self._record_equality(left, right, "ticker"),
            1.0 if left.source == right.source else 0.0,
        )
        return np.asarray(values, dtype=np.float64)

    @staticmethod
    def _record_name(record) -> str:
        for attribute in ("name", "title"):
            value = getattr(record, attribute, None)
            if value:
                return str(value)
        return ""

    @staticmethod
    def _record_attribute(record, attribute: str) -> str:
        value = getattr(record, attribute, None)
        return str(value) if value else ""

    def _record_equality(self, left, right, attribute: str) -> float:
        left_value = normalize_text(self._record_attribute(left, attribute))
        right_value = normalize_text(self._record_attribute(right, attribute))
        if not left_value or not right_value:
            return 0.5
        return 1.0 if left_value == right_value else 0.0

    @staticmethod
    def _record_identifier_features(left, right) -> tuple[int, int, float]:
        overlaps = 0
        conflicts = 0
        isin_overlap = 0.0
        if isinstance(left, SecurityRecord) and isinstance(right, SecurityRecord):
            for field in SECURITY_ID_FIELDS:
                left_value = normalize_identifier(getattr(left, field))
                right_value = normalize_identifier(getattr(right, field))
                if not left_value or not right_value:
                    continue
                if left_value == right_value:
                    overlaps += 1
                else:
                    conflicts += 1
            isin_overlap = 1.0 if overlaps else 0.0
        if isinstance(left, CompanyRecord) and isinstance(right, CompanyRecord):
            left_isins = {normalize_identifier(value) for value in left.security_isins}
            right_isins = {normalize_identifier(value) for value in right.security_isins}
            left_isins.discard("")
            right_isins.discard("")
            shared = left_isins & right_isins
            overlaps = len(shared)
            if left_isins and right_isins and not shared:
                conflicts = 1
            isin_overlap = 1.0 if shared else 0.0
        return overlaps, conflicts, isin_overlap


# -- workload ----------------------------------------------------------------


def build_dataset(num_entities: int, seed: int) -> Dataset:
    benchmark = generate_benchmark(
        GenerationConfig(num_entities=num_entities, num_sources=4, seed=seed,
                         acquisition_rate=0.05, merger_rate=0.05)
    )
    return benchmark.companies


def build_candidates(dataset: Dataset, min_ratio: float) -> list[CandidatePair]:
    """Blocking candidates, topped up to ``pairs / records >= min_ratio``.

    The blocking output is the realistic similarity distribution; the
    deterministic sliding-window top-up only widens the set so the bench
    sits in the pairs >> records regime the profile cache targets.
    """
    blocking = CombinedBlocking([IdOverlapBlocking(), TokenOverlapBlocking(top_n=30)])
    candidates = blocking.candidate_pairs(dataset)
    seen = {candidate.key for candidate in candidates}
    records = dataset.records
    target = int(min_ratio * len(records))
    offset = 1
    while len(candidates) < target and offset < len(records):
        for index in range(len(records) - offset):
            left = records[index]
            right = records[index + offset]
            pair = CandidatePair(left.record_id, right.record_id, "window")
            if pair.key in seen:
                continue
            seen.add(pair.key)
            candidates.append(pair)
            if len(candidates) >= target:
                break
        offset += 1
    return candidates


def train_matcher(dataset: Dataset) -> LogisticRegressionMatcher:
    pairs = build_labeled_pairs(dataset, negative_ratio=3, seed=0)
    record_pairs, labels = as_record_pairs(pairs)
    return LogisticRegressionMatcher(num_iterations=120).fit(record_pairs, labels)


# -- measurements ------------------------------------------------------------


def measure_extraction(
    dataset: Dataset, candidates: Sequence[CandidatePair], repeats: int
) -> tuple[list[dict[str, object]], dict[str, float]]:
    """Pairs/second of the three extraction implementations, plus speedups."""
    record_pairs = [
        (dataset.record(c.left_id), dataset.record(c.right_id)) for c in candidates
    ]
    id_pairs = [(c.left_id, c.right_id) for c in candidates]
    current = PairFeatureExtractor()
    seed_extractor = SeedPairFeatureExtractor()

    def best_of(run) -> tuple[float, np.ndarray]:
        best, matrix = float("inf"), None
        for _ in range(repeats):
            start = time.perf_counter()  # repro-lint: disable=obs-clock-discipline -- wall clock is this benchmark's artefact
            matrix = run()
            best = min(best, time.perf_counter() - start)  # repro-lint: disable=obs-clock-discipline -- wall clock is this benchmark's artefact
        return best, matrix

    seed_seconds, seed_matrix = best_of(
        lambda: np.stack([seed_extractor.extract(left, right) for left, right in record_pairs])
    )
    per_pair_seconds, per_pair_matrix = best_of(
        lambda: current.extract_batch(record_pairs)
    )

    def profiled_rows() -> np.ndarray:
        # The row-at-a-time store oracle: same profile store, per-pair
        # Python scoring — the "before" of the columnar refactor.
        store = ProfileStore.prepare(dataset.records)
        return current.extract_batch_profiles_rows(store, id_pairs)

    def profiled() -> np.ndarray:
        # Preparation is part of the measured cost: the speedup must hold
        # end to end, not just on warm caches.
        store = ProfileStore.prepare(dataset.records)
        return current.extract_batch_profiles(store, id_pairs)

    rows_seconds, rows_matrix = best_of(profiled_rows)
    profile_seconds, profile_matrix = best_of(profiled)

    # All implementations must agree bitwise before any timing counts.
    assert np.array_equal(seed_matrix, per_pair_matrix), "per-pair features drifted from seed"
    assert np.array_equal(seed_matrix, rows_matrix), "store row path drifted from seed"
    assert np.array_equal(rows_matrix, profile_matrix), (
        "columnar extraction drifted from the per-pair store oracle"
    )

    num_pairs = len(candidates)
    rows = [
        {
            "Extraction": label,
            "Pairs": num_pairs,
            "Seconds": round(seconds, 3),
            "Pairs / s": round(num_pairs / seconds, 1),
            "Speedup vs seed": round(seed_seconds / seconds, 2),
            "cpu_count": effective_cpu_count(),
            "peak_rss_bytes": peak_rss_bytes(),
        }
        for label, seconds in (
            ("seed (per-pair recompute)", seed_seconds),
            ("current --no-profile-cache", per_pair_seconds),
            ("store rows (per-pair oracle)", rows_seconds),
            ("profile store (columnar, incl. prepare)", profile_seconds),
        )
    ]
    speedups = {
        "profile_store_vs_seed": seed_seconds / profile_seconds,
        "profile_store_vs_per_pair": per_pair_seconds / profile_seconds,
        "per_pair_vs_seed": seed_seconds / per_pair_seconds,
        "columnar_vs_store_rows": rows_seconds / profile_seconds,
    }
    return rows, speedups


def measure_run_matching(
    dataset: Dataset,
    candidates: Sequence[CandidatePair],
    matcher: LogisticRegressionMatcher,
    worker_counts: Sequence[int],
    executors: Sequence[str],
    batch_size: int,
    repeats: int,
) -> list[dict[str, object]]:
    """Throughput rows: profile-cache on/off × columnar dispatch on/off ×
    warm-pool on/off × workers × executor.

    Asserts, for every configuration, that its decisions are bitwise
    identical to the serial profile-cache-on columnar reference —
    probabilities compared exactly, not approximately — and that the
    columnar rows actually took the array route (a
    :class:`~repro.matching.decisions.DecisionVector` came back).  Each row
    records the effective ``cpu_count`` it ran under: a parallel row
    measured with fewer cores than workers documents overhead, not speedup,
    and the reference-number assertions skip it (``speedup_meaningful``).
    """
    rows: list[dict[str, object]] = []
    baseline = None
    reference = None
    cpus = effective_cpu_count()
    for workers in worker_counts:
        for executor in executors:
            if workers == 1 and executor != executors[0]:
                continue  # serial runs don't touch a pool; one row is enough
            for warm_pool in (True, False):
                if workers == 1 and not warm_pool:
                    continue  # no pool either way; one serial row is enough
                for profile_cache in (True, False):
                    # Columnar dispatch only exists inside the profiled
                    # route (the array chunks score the profile store), so
                    # cache-off rows carry a single, moot setting.
                    columnar_modes = (True, False) if profile_cache else (False,)
                    for columnar in columnar_modes:
                        config = RuntimeConfig(
                            workers=workers, batch_size=batch_size,
                            executor=executor, profile_cache=profile_cache,
                            columnar_dispatch=columnar, warm_pool=warm_pool,
                        )
                        runtime = PipelineRuntime(config)
                        try:
                            best = float("inf")
                            decisions = None
                            for _ in range(repeats):
                                start = time.perf_counter()  # repro-lint: disable=obs-clock-discipline -- wall clock is this benchmark's artefact
                                decisions = runtime.run_matching(
                                    matcher, dataset, candidates
                                )
                                best = min(best, time.perf_counter() - start)  # repro-lint: disable=obs-clock-discipline -- wall clock is this benchmark's artefact
                        finally:
                            runtime.close()
                        assert isinstance(decisions, DecisionVector) == (
                            profile_cache and columnar
                        ), "dispatch route does not match the configuration"
                        if reference is None:
                            reference = decisions
                        assert decisions == reference, (
                            f"decisions drifted at workers={workers}, "
                            f"executor={executor}, warm_pool={warm_pool}, "
                            f"profile_cache={profile_cache}, "
                            f"columnar_dispatch={columnar}"
                        )
                        assert [d.probability for d in decisions] == [
                            d.probability for d in reference
                        ], "probabilities drifted from the serial reference"
                        throughput = len(candidates) / best
                        if baseline is None:
                            baseline = throughput
                        rows.append({
                            "Workers": workers,
                            "Executor": executor if workers > 1 else "serial",
                            "Warm pool": "on" if warm_pool else "off",
                            "Profile cache": "on" if profile_cache else "off",
                            "Columnar": ("on" if columnar else "off")
                            if profile_cache else "n/a",
                            "Pairs / s": round(throughput, 1),
                            "Speedup": round(throughput / baseline, 2),
                            "cpu_count": cpus,
                            "peak_rss_bytes": peak_rss_bytes(),
                            # A 2-worker row on a 1-core box measures
                            # overhead, not parallel speedup — consumers
                            # must not gate on it.
                            "speedup_meaningful": workers <= cpus,
                        })
    return rows


# -- entry point -------------------------------------------------------------


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--entities", type=positive_int, default=150,
                        help="company record groups in the synthetic dataset")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--workers", default="1,2",
                        help="comma-separated worker counts (first is serial)")
    parser.add_argument("--executors", default="process,thread",
                        help="comma-separated subset of {process,thread}")
    parser.add_argument("--batch-size", type=positive_int, default=1024)
    parser.add_argument("--repeats", type=positive_int, default=2,
                        help="best-of repeats per point")
    parser.add_argument("--min-ratio", type=float, default=10.0,
                        help="minimum candidate pairs per record")
    parser.add_argument("--quick", action="store_true",
                        help="tiny workload, single repeat, no timing "
                             "assertion (the CI smoke run)")
    args = parser.parse_args(argv)

    if args.quick:
        args.entities, args.repeats, args.workers = 40, 1, "1,2"

    worker_counts = [int(w) for w in args.workers.split(",")]
    executors = args.executors.split(",")
    dataset = build_dataset(args.entities, args.seed)
    candidates = build_candidates(dataset, args.min_ratio)
    ratio = len(candidates) / len(dataset)
    print(f"workload: {len(dataset)} records, {len(candidates)} candidate pairs "
          f"(pairs/records = {ratio:.1f}), {effective_cpu_count()} cpu core(s)")

    matcher = train_matcher(dataset)
    extraction_rows, speedups = measure_extraction(dataset, candidates, args.repeats)
    matching_rows = measure_run_matching(
        dataset, candidates, matcher, worker_counts, executors,
        args.batch_size, args.repeats,
    )

    print(format_table(extraction_rows, title="Feature extraction — single process"))
    print(format_table(matching_rows, title="run_matching — warm pool / profile cache"))
    print(f"profile store speedup: {speedups['profile_store_vs_seed']:.2f}x vs seed, "
          f"{speedups['profile_store_vs_per_pair']:.2f}x vs --no-profile-cache")
    print("determinism: every configuration == serial reference, bitwise — OK")

    # Parallel speedup is only a meaningful claim when the box actually has
    # the cores: on cpu_count < workers the same rows measure pure engine
    # overhead and the assertion is recorded as skipped instead of failed.
    speedup_checks: list[dict[str, object]] = []
    for row in matching_rows:
        if row["Workers"] == 1 or row["Warm pool"] != "on" or row["Profile cache"] != "on":
            continue
        if row["Columnar"] != "on":
            continue  # one parallel check per workers × executor point
        check = {
            "workers": row["Workers"],
            "executor": row["Executor"],
            "speedup": row["Speedup"],
            "cpu_count": row["cpu_count"],
        }
        if not row["speedup_meaningful"]:
            check["status"] = "skipped (cpu_count < workers)"
            print(f"speedup assertion skipped: {row['Workers']} {row['Executor']} "
                  f"workers on {row['cpu_count']} core(s)")
        elif args.quick:
            check["status"] = "skipped (quick run)"
        else:
            assert row["Speedup"] >= 1.0, (
                f"warm-pool parallel matching lost to serial: "
                f"{row['Speedup']}x at workers={row['Workers']}, "
                f"executor={row['Executor']} on {row['cpu_count']} core(s)"
            )
            check["status"] = "asserted >= 1.0x"
        speedup_checks.append(check)

    def serial_row(columnar: str) -> dict[str, object]:
        return next(
            row for row in matching_rows
            if row["Workers"] == 1 and row["Profile cache"] == "on"
            and row["Columnar"] == columnar
        )

    route_speedup = (
        serial_row("on")["Pairs / s"] / serial_row("off")["Pairs / s"]
    )
    print(f"columnar dispatch: {route_speedup:.2f}x vs the serial object route "
          f"({serial_row('on')['Pairs / s']:.0f} vs "
          f"{serial_row('off')['Pairs / s']:.0f} pairs/s)")

    if not args.quick:
        assert ratio >= 10.0, f"candidate set too thin: pairs/records = {ratio:.1f}"
        assert speedups["profile_store_vs_seed"] >= 3.0, (
            "profile-store extraction fell below the pinned 3x speedup: "
            f"{speedups['profile_store_vs_seed']:.2f}x"
        )
        # The columnar-dispatch tentpole's floor: serial end-to-end
        # run_matching at >= 3x the pre-profile-subsystem 35.0k pairs/s
        # baseline (the first recorded BENCH_matching.json serial row).
        serial_throughput = serial_row("on")["Pairs / s"]
        assert serial_throughput >= 3.0 * _SEED_SERIAL_PAIRS_PER_S, (
            "serial columnar run_matching fell below 3x the seed baseline: "
            f"{serial_throughput:.0f} pairs/s vs "
            f"{3.0 * _SEED_SERIAL_PAIRS_PER_S:.0f} required"
        )

    report = {
        "benchmark": "matching_throughput",
        "quick": args.quick,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "workload": {
            "entities": args.entities,
            "seed": args.seed,
            "records": len(dataset),
            "candidate_pairs": len(candidates),
            "pairs_per_record": round(ratio, 2),
            "batch_size": args.batch_size,
            "repeats": args.repeats,
            "cpu_count": effective_cpu_count(),
            "peak_rss_bytes": peak_rss_bytes(),
        },
        "extraction": {
            "rows": extraction_rows,
            "speedups": {key: round(value, 3) for key, value in speedups.items()},
        },
        "run_matching": {
            "rows": matching_rows,
            "parallel_speedup_checks": speedup_checks,
            "columnar_vs_object_serial": round(route_speedup, 3),
            "seed_serial_pairs_per_s": _SEED_SERIAL_PAIRS_PER_S,
        },
        "determinism": {"all_configs_equal_serial_bitwise": True},
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    filename = "BENCH_matching_quick.json" if args.quick else "BENCH_matching.json"
    path = RESULTS_DIR / filename
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"[saved to {path}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
