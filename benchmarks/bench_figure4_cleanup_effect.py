"""Figure 4 — the effect of one false positive and the GraLMatch cleanup.

Figure 4 shows (1) pairwise predictions with one false positive between the
Crowdstrike and Crowdstreet groups, (2) the pre-cleanup state where the
false positive floods both groups with false transitive matches and (3) the
post-cleanup state where the bridge edge is removed and the two groups are
recovered.  The benchmark reproduces the figure on the Figure 2 records and
on a larger synthetic two-clique structure.
"""

from repro.core.cleanup import CleanupConfig, gralmatch_cleanup
from repro.core.groups import EntityGroups
from repro.core.metrics import group_matching_scores
from repro.datagen import figure2_dataset
from repro.evaluation import format_table
from repro.graphs.graph import canonical_edge


CROWDSTRIKE_EDGES = [("#12", "#31"), ("#22", "#40"), ("#12", "#22"), ("#31", "#40")]
CROWDSTREET_EDGES = [("#13", "#23"), ("#23", "#32"), ("#13", "#32")]
FALSE_POSITIVE = ("#40", "#13")


def test_figure4_cleanup_recovers_groups(benchmark, save_table):
    """Pre vs post cleanup scores around the Crowdstrike/Crowdstreet bridge."""
    companies, _ = figure2_dataset()
    truth = companies.true_matches()
    edges = CROWDSTRIKE_EDGES + CROWDSTREET_EDGES + [FALSE_POSITIVE]

    def run():
        return gralmatch_cleanup(edges, CleanupConfig(gamma=8, mu=4))

    components, report = benchmark.pedantic(run, rounds=1, iterations=1)

    pre_groups = EntityGroups.from_edges(edges)
    post_groups = EntityGroups(components)
    pre = group_matching_scores(pre_groups, truth)
    post = group_matching_scores(post_groups, truth)

    rows = [
        {"Stage": "(2) Pre Graph Cleanup", "Groups": len(pre_groups), **pre.as_row()},
        {"Stage": "(3) Post Graph Cleanup", "Groups": len(post_groups), **post.as_row()},
    ]
    save_table("figure4_cleanup_effect", format_table(rows, title="Figure 4 — cleanup effect"))

    # The false positive is exactly what gets removed, and the two true
    # groups are recovered — the figure's panel (3).
    assert canonical_edge(*FALSE_POSITIVE) in report.removed_edges
    assert {frozenset(c) for c in components} == {
        frozenset({"#12", "#22", "#31", "#40"}),
        frozenset({"#13", "#23", "#32"}),
    }
    assert post.precision == 1.0
    assert pre.precision < 0.5


def test_figure4_large_bridged_cliques(benchmark):
    """The same effect at scale: two 20-record groups joined by one edge."""
    left = [f"a{i}" for i in range(20)]
    right = [f"b{i}" for i in range(20)]
    edges = (
        [(left[i], left[j]) for i in range(20) for j in range(i + 1, 20)]
        + [(right[i], right[j]) for i in range(20) for j in range(i + 1, 20)]
        + [(left[-1], right[0])]
    )

    def run():
        return gralmatch_cleanup(edges, CleanupConfig(gamma=25, mu=20))

    components, report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert {frozenset(c) for c in components} == {frozenset(left), frozenset(right)}
    assert report.removed_edges == {canonical_edge(left[-1], right[0])}
