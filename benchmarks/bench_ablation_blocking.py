"""Ablation — blocking composition (design choice called out in DESIGN.md).

Table 2 fixes one blocking recipe per dataset; this ablation quantifies what
each ingredient buys: candidate-pair counts and ground-truth recall for
ID Overlap alone, Token Overlap alone and their union on the synthetic
companies dataset, and ID Overlap vs ID Overlap + Issuer Match on the
synthetic securities dataset.
"""

import pytest

from repro.blocking import (
    CombinedBlocking,
    IdOverlapBlocking,
    IssuerMatchBlocking,
    TokenOverlapBlocking,
)
from repro.blocking.base import recall_of_blocking
from repro.evaluation import format_table

_rows: list[dict] = []


def _company_variants():
    return {
        "id-overlap": IdOverlapBlocking(),
        "token-overlap": TokenOverlapBlocking(top_n=5),
        "id + token (paper)": CombinedBlocking(
            [IdOverlapBlocking(), TokenOverlapBlocking(top_n=5)]
        ),
    }


@pytest.mark.parametrize("variant", ["id-overlap", "token-overlap", "id + token (paper)"])
def test_blocking_ablation_companies(benchmark, dataset_registry, variant):
    companies = dataset_registry["synthetic-companies"]
    blocking = _company_variants()[variant]

    candidates = benchmark.pedantic(
        lambda: blocking.candidate_pairs(companies), rounds=1, iterations=1
    )
    recall = recall_of_blocking(candidates, companies)
    _rows.append({
        "Dataset": "synthetic-companies",
        "Blocking": variant,
        "# Candidates": len(candidates),
        "Blocking Recall": round(100 * recall, 1),
    })
    assert candidates


@pytest.mark.parametrize("variant", ["id-overlap", "id + issuer (paper)"])
def test_blocking_ablation_securities(benchmark, dataset_registry, variant):
    securities = dataset_registry["synthetic-securities"]
    if variant == "id-overlap":
        blocking = IdOverlapBlocking()
    else:
        blocking = CombinedBlocking(
            [IdOverlapBlocking(), IssuerMatchBlocking.from_ground_truth(securities)]
        )

    candidates = benchmark.pedantic(
        lambda: blocking.candidate_pairs(securities), rounds=1, iterations=1
    )
    recall = recall_of_blocking(candidates, securities)
    _rows.append({
        "Dataset": "synthetic-securities",
        "Blocking": variant,
        "# Candidates": len(candidates),
        "Blocking Recall": round(100 * recall, 1),
    })
    assert candidates


def test_blocking_ablation_report(benchmark, save_table):
    rows = benchmark(lambda: list(_rows))
    save_table("ablation_blocking", format_table(rows, title="Ablation — blocking composition"))
    assert rows

    by_key = {(row["Dataset"], row["Blocking"]): row for row in rows}
    # The paper's combined recipes dominate their single-blocking ingredients.
    assert (
        by_key[("synthetic-companies", "id + token (paper)")]["Blocking Recall"]
        >= by_key[("synthetic-companies", "id-overlap")]["Blocking Recall"]
    )
    assert (
        by_key[("synthetic-securities", "id + issuer (paper)")]["Blocking Recall"]
        >= by_key[("synthetic-securities", "id-overlap")]["Blocking Recall"]
    )
