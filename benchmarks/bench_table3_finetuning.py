"""Table 3 — fine-tuning scores of the pairwise matchers on test pairs.

For every (dataset, model) combination the matcher is fine-tuned on the
train split, the best epoch is selected on the validation split and
Match / NoMatch classification is scored on the test-split pairs, exactly as
in Table 3 (precision / recall / F1 plus training time).

The expected shape (not absolute values) from the paper:

* all models reach high scores on the companies datasets,
* the reduced-training "15K" variant trades a little recall for precision,
* DITTO (256) trains noticeably longer than the 128-token setups.
"""

import pytest

from repro.core.metrics import pairwise_scores
from repro.evaluation import format_table
from repro.evaluation.finetune import FineTuneEvaluation
from repro.matching.models import MODEL_SPECS
from repro.matching.pairs import as_record_pairs

#: (dataset, models) pairs evaluated for Table 3 at benchmark scale.
TABLE3_SETUPS = {
    "synthetic-companies": (
        "ditto-128", "ditto-256", "distilbert-128-15k", "distilbert-128-all",
    ),
    "synthetic-securities": ("ditto-128", "distilbert-128-all"),
    "real-companies": ("distilbert-128-all",),
    "wdc-products": ("distilbert-128-all",),
}

_rows: list[dict] = []


@pytest.mark.parametrize(
    "dataset_name,model_name",
    [(d, m) for d, models in TABLE3_SETUPS.items() for m in models],
)
def test_table3_fine_tuning(benchmark, dataset_registry, finetune_cache,
                            dataset_name, model_name):
    """Fine-tune one model on one dataset and score the test pairs."""
    dataset = dataset_registry[dataset_name]

    def run():
        result, splits, tuner = finetune_cache(dataset_name, model_name)
        # Score on the test-split pairs (identical sampling for every model).
        test_pairs = tuner.build_pairs(
            dataset, splits.test_entities, MODEL_SPECS["distilbert-128-all"]
        )
        record_pairs, labels = as_record_pairs(test_pairs)
        predictions = result.matcher.predict(record_pairs)
        predicted = [
            (left.record_id, right.record_id)
            for (left, right), is_match in zip(record_pairs, predictions)
            if is_match
        ]
        truth = [
            (left.record_id, right.record_id)
            for (left, right), label in zip(record_pairs, labels)
            if label == 1
        ]
        return FineTuneEvaluation(
            dataset=dataset_name,
            model=model_name,
            scores=pairwise_scores(predicted, truth),
            training_seconds=result.training_seconds,
            num_training_pairs=result.num_training_pairs,
            num_test_pairs=len(test_pairs),
        )

    evaluation = benchmark.pedantic(run, rounds=1, iterations=1)
    _rows.append(evaluation.as_row())

    assert evaluation.scores.f1 > 0.3
    if dataset_name == "synthetic-companies":
        # Companies are the easy fine-tuning task in the paper (F1 ~97-99).
        assert evaluation.scores.f1 > 0.8


def test_table3_report(benchmark, save_table):
    """Render the collected Table 3 rows (runs last by file order)."""
    rows = benchmark(lambda: sorted(_rows, key=lambda r: (r["Dataset"], r["Model"])))
    table = format_table(rows, title="Table 3 — fine-tuning scores (benchmark scale)")
    save_table("table3_finetuning", table)
    assert rows, "parameterised fine-tuning benches must run before the report"
