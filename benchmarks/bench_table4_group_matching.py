"""Table 4 — end-to-end entity group matching with blocking and GraLMatch.

For each (dataset, model) combination the fine-tuned matcher is run through
the full pipeline (blocking → pairwise matching → pre-cleanup → GraLMatch)
and all three evaluation stages of Section 5.3.2 are scored: pairwise
matching on the blocking candidates, Pre Graph Cleanup (with transitive
matches) and Post Graph Cleanup, plus the Cluster Purity Score and the
inference time.

Expected shape from the paper (not absolute values):

* the Pre Graph Cleanup precision collapses on the large companies dataset
  because a few false positives connect many groups transitively,
* the Post Graph Cleanup precision recovers to a high value, paying with
  some recall,
* the identifier-heavy securities datasets degrade far less before cleanup,
* the model with the highest pairwise precision wins the post-cleanup F1.
"""

import pytest

from repro.core.metrics import group_matching_scores, pairwise_scores
from repro.core.pipeline import EntityGroupMatchingPipeline
from repro.core.precleanup import PreCleanupConfig
from repro.evaluation import format_table
from repro.evaluation.experiment import EntityGroupMatchingExperiment, ExperimentConfig

#: (dataset, models) combinations of the Table 4 reproduction.
TABLE4_SETUPS = {
    "synthetic-companies": ("ditto-128", "distilbert-128-15k", "distilbert-128-all"),
    "synthetic-securities": ("distilbert-128-all", "id-overlap"),
    "real-companies": ("distilbert-128-all",),
    "real-securities": ("id-overlap",),
    "wdc-products": ("distilbert-128-all",),
}

_rows: list[dict] = []
_results: dict[tuple[str, str], object] = {}


def _dataset_kind(dataset_name: str) -> str:
    if dataset_name.endswith("companies"):
        return "companies"
    if dataset_name.endswith("securities"):
        return "securities"
    return "products"


@pytest.mark.parametrize(
    "dataset_name,model_name",
    [(d, m) for d, models in TABLE4_SETUPS.items() for m in models],
)
def test_table4_entity_group_matching(benchmark, dataset_registry, finetune_cache,
                                      dataset_name, model_name):
    """Run the end-to-end pipeline for one (dataset, model) combination."""
    dataset = dataset_registry[dataset_name]
    kind = _dataset_kind(dataset_name)
    experiment = EntityGroupMatchingExperiment(
        dataset, ExperimentConfig(model=model_name, dataset_kind=kind, seed=0)
    )
    fine_tuned, _, _ = finetune_cache(dataset_name, model_name)

    def run():
        pipeline = EntityGroupMatchingPipeline(
            matcher=fine_tuned.matcher,
            blocking=experiment.build_blocking(),
            cleanup_config=experiment.build_cleanup_config(),
            pre_cleanup_config=PreCleanupConfig(enabled=kind == "companies"),
        )
        return pipeline.run(dataset)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    truth = dataset.true_matches()
    pairwise = pairwise_scores(result.positive_edges, truth)
    pre = group_matching_scores(result.pre_cleanup_groups, truth)
    post = group_matching_scores(result.groups, truth)

    _results[(dataset_name, model_name)] = (pairwise, pre, post)
    _rows.append({
        "Dataset": dataset_name,
        "Model": model_name,
        "# Candidates": result.num_candidates,
        "Pairwise P": round(100 * pairwise.precision, 2),
        "Pairwise R": round(100 * pairwise.recall, 2),
        "Pairwise F1": round(100 * pairwise.f1, 2),
        "Pre P": round(100 * pre.precision, 2),
        "Pre R": round(100 * pre.recall, 2),
        "Pre F1": round(100 * pre.f1, 2),
        "Pre ClPur": round(pre.cluster_purity, 2),
        "Post P": round(100 * post.precision, 2),
        "Post R": round(100 * post.recall, 2),
        "Post F1": round(100 * post.f1, 2),
        "Post ClPur": round(post.cluster_purity, 2),
        "Inference (s)": round(result.inference_seconds, 2),
    })

    # Core paper claims, per run: clean-up never hurts precision or purity.
    assert post.precision >= pre.precision - 1e-9
    assert post.cluster_purity >= pre.cluster_purity - 1e-9


def test_table4_report(benchmark, save_table):
    """Render the Table 4 rows and check the cross-run shape claims."""
    rows = benchmark(lambda: sorted(_rows, key=lambda r: (r["Dataset"], r["Model"])))
    table = format_table(rows, title="Table 4 — entity group matching (benchmark scale)")
    save_table("table4_group_matching", table)
    assert rows, "parameterised Table 4 benches must run before the report"

    by_key = {(row["Dataset"], row["Model"]): row for row in rows}
    companies_all = by_key[("synthetic-companies", "distilbert-128-all")]
    securities_all = by_key[("synthetic-securities", "distilbert-128-all")]
    # Companies suffer a larger pre-cleanup precision drop than securities
    # (token-overlap false positives vs identifier-backed candidates).
    companies_drop = companies_all["Pairwise P"] - companies_all["Pre P"]
    securities_drop = securities_all["Pairwise P"] - securities_all["Pre P"]
    assert companies_drop >= securities_drop - 5.0
    # Post-cleanup precision is high across the board.
    assert all(row["Post P"] >= row["Pre P"] - 1e-6 for row in rows)
