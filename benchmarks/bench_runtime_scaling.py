"""Serial vs. parallel pairwise-inference throughput of the runtime engine.

Measures ``PipelineRuntime.run_matching`` — the pipeline's dominant cost at
paper scale (the "Inference Time" column of Table 4) — on the synthetic
companies benchmark under increasing worker counts, in two regimes:

* ``cpu`` — a pure-Python compute-bound matcher (Jaro–Winkler name
  similarity) on a process pool.  Throughput scales with *physical cores*;
  on a single-core machine the table honestly shows pool overhead instead
  of speedup.
* ``latency`` — a matcher with per-request latency and a max batch size per
  request (the remote / LLM-API matching regime of Section 5.2) on a thread
  pool.  Throughput scales with the *worker count* regardless of core
  count, because workers overlap request latency that a single connection
  pays sequentially.

Run as a script (the CI smoke invocation)::

    PYTHONPATH=src python benchmarks/bench_runtime_scaling.py --smoke

or at full scale::

    PYTHONPATH=src python benchmarks/bench_runtime_scaling.py --entities 300 --workers 1,2,4
"""

from __future__ import annotations

import argparse
import os
import time
from pathlib import Path
from collections.abc import Sequence

from repro.blocking import CombinedBlocking, IdOverlapBlocking, TokenOverlapBlocking
from repro.datagen import GenerationConfig, generate_benchmark
from repro.datagen.records import Dataset
from repro.evaluation import format_table
from repro.matching.base import PairwiseMatcher, RecordPair
from repro.matching.heuristic import ThresholdNameMatcher
from repro.runtime import PipelineRuntime, RuntimeConfig

RESULTS_DIR = Path(__file__).parent / "results"


class SimulatedLatencyMatcher(PairwiseMatcher):
    """A matcher that pays request latency like a remote inference API.

    Stand-in for remote inference (an LLM API, a model server): requests
    carry at most ``max_pairs_per_request`` pairs and each request costs
    ``seconds_per_request`` of latency, so one call over N pairs sleeps
    ``ceil(N / cap)`` request latencies *sequentially* — exactly what a
    single connection would pay — while concurrent runtime workers overlap
    their requests.  Decisions are delegated to an inner matcher, so results
    stay deterministic across worker counts.
    """

    def __init__(
        self,
        inner: PairwiseMatcher,
        seconds_per_request: float,
        max_pairs_per_request: int = 128,
    ) -> None:
        self.inner = inner
        self.seconds_per_request = seconds_per_request
        self.max_pairs_per_request = max_pairs_per_request
        self.threshold = inner.threshold

    def predict_proba(self, pairs: Sequence[RecordPair]) -> list[float]:
        num_requests = -(-len(pairs) // self.max_pairs_per_request) if pairs else 0
        time.sleep(num_requests * self.seconds_per_request)
        return self.inner.predict_proba(pairs)


def build_workload(num_entities: int, seed: int) -> tuple[Dataset, list]:
    """The synthetic companies dataset and its blocking candidates."""
    benchmark = generate_benchmark(
        GenerationConfig(num_entities=num_entities, num_sources=4, seed=seed,
                         acquisition_rate=0.05, merger_rate=0.05)
    )
    dataset = benchmark.companies
    blocking = CombinedBlocking([IdOverlapBlocking(), TokenOverlapBlocking(top_n=5)])
    return dataset, blocking.candidate_pairs(dataset)


def measure_throughput(
    matcher: PairwiseMatcher,
    dataset: Dataset,
    candidates: list,
    config: RuntimeConfig,
    repeats: int,
) -> tuple[float, list]:
    """Best-of-``repeats`` pairs/second for one runtime configuration."""
    runtime = PipelineRuntime(config)
    best_seconds = float("inf")
    decisions = None
    for _ in range(repeats):
        start = time.perf_counter()
        decisions = runtime.run_matching(matcher, dataset, candidates)
        best_seconds = min(best_seconds, time.perf_counter() - start)
    return len(candidates) / best_seconds, decisions


def run_scaling(
    mode: str,
    dataset: Dataset,
    candidates: list,
    worker_counts: Sequence[int],
    batch_size: int,
    repeats: int,
    latency: float,
) -> list[dict[str, object]]:
    """One table row per worker count, with speedup relative to serial."""
    if mode == "cpu":
        matcher: PairwiseMatcher = ThresholdNameMatcher(similarity_threshold=0.88)
        executor = "process"
    else:
        matcher = SimulatedLatencyMatcher(
            ThresholdNameMatcher(similarity_threshold=0.88),
            seconds_per_request=latency,
            max_pairs_per_request=batch_size,
        )
        executor = "thread"

    rows: list[dict[str, object]] = []
    serial_throughput = None
    serial_decisions = None
    for workers in worker_counts:
        config = RuntimeConfig(workers=workers, batch_size=batch_size, executor=executor)
        throughput, decisions = measure_throughput(
            matcher, dataset, candidates, config, repeats
        )
        if serial_throughput is None:
            serial_throughput, serial_decisions = throughput, decisions
        assert decisions == serial_decisions, (
            f"parallel decisions diverged from serial at workers={workers}"
        )
        rows.append({
            "Mode": mode,
            "Executor": executor if workers > 1 else "serial",
            "Workers": workers,
            "Batch size": batch_size,
            "Pairs": len(candidates),
            "Pairs / s": round(throughput, 1),
            "Speedup": round(throughput / serial_throughput, 2),
        })
    return rows


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--entities", type=int, default=200,
                        help="company record groups in the synthetic dataset")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--workers", default="1,2,4",
                        help="comma-separated worker counts (first is the serial baseline)")
    parser.add_argument("--batch-size", type=int, default=512)
    parser.add_argument("--repeats", type=int, default=2, help="best-of repeats per point")
    parser.add_argument("--latency", type=float, default=0.05,
                        help="per-call seconds of the simulated remote matcher")
    parser.add_argument("--modes", default="cpu,latency",
                        help="comma-separated subset of {cpu,latency}")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload + single repeat (the CI smoke run)")
    args = parser.parse_args(argv)

    if args.smoke:
        args.entities, args.repeats, args.workers = 40, 1, "1,2"

    worker_counts = [int(w) for w in args.workers.split(",")]
    dataset, candidates = build_workload(args.entities, args.seed)
    print(f"workload: {len(dataset)} records, {len(candidates)} candidate pairs, "
          f"{os.cpu_count()} cpu core(s)")

    rows: list[dict[str, object]] = []
    for mode in args.modes.split(","):
        rows.extend(run_scaling(mode, dataset, candidates, worker_counts,
                                args.batch_size, args.repeats, args.latency))

    table = format_table(rows, title="Runtime scaling — pairwise inference throughput")
    print(table)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / "runtime_scaling.txt"
    path.write_text(table + "\n", encoding="utf-8")
    print(f"[saved to {path}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
