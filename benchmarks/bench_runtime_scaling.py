"""Serial vs. parallel stage throughput of the runtime engine.

Measures the two data-parallel pipeline stages on the synthetic companies
benchmark under increasing worker counts, in three regimes:

* ``cpu`` — ``PipelineRuntime.run_matching`` (the "Inference Time" column
  of Table 4) with a pure-Python compute-bound matcher (Jaro–Winkler name
  similarity) on a process pool.  Throughput scales with *physical cores*;
  on a single-core machine the table honestly shows pool overhead instead
  of speedup.
* ``latency`` — the same stage with a matcher paying per-request latency
  and a max batch size per request (the remote / LLM-API matching regime of
  Section 5.2) on a thread pool.  Throughput scales with the *worker count*
  regardless of core count, because workers overlap request latency that a
  single connection pays sequentially.
* ``blocking`` — ``PipelineRuntime.run_blocking`` with record-sharded
  candidate generation (``blocking_shards = workers``) on a process pool:
  the token inverted index is built once, the per-record-chunk scoring fans
  out.  Like ``cpu``, this is compute-bound and scales with physical cores;
  every row asserts the sharded candidates are byte-identical to serial.

Run as a script (the CI smoke invocation)::

    PYTHONPATH=src python benchmarks/bench_runtime_scaling.py --smoke

or at full scale::

    PYTHONPATH=src python benchmarks/bench_runtime_scaling.py --entities 300 --workers 1,2,4
"""

from __future__ import annotations

import argparse
import os
import time
from pathlib import Path
from collections.abc import Sequence

from repro.blocking import CombinedBlocking, IdOverlapBlocking, TokenOverlapBlocking
from repro.cli import positive_int
from repro.datagen import GenerationConfig, generate_benchmark
from repro.datagen.records import Dataset
from repro.evaluation import format_table
from repro.matching.base import PairwiseMatcher, RecordPair
from repro.matching.heuristic import ThresholdNameMatcher
from repro.runtime import PipelineRuntime, RuntimeConfig

RESULTS_DIR = Path(__file__).parent / "results"


class SimulatedLatencyMatcher(PairwiseMatcher):
    """A matcher that pays request latency like a remote inference API.

    Stand-in for remote inference (an LLM API, a model server): requests
    carry at most ``max_pairs_per_request`` pairs and each request costs
    ``seconds_per_request`` of latency, so one call over N pairs sleeps
    ``ceil(N / cap)`` request latencies *sequentially* — exactly what a
    single connection would pay — while concurrent runtime workers overlap
    their requests.  Decisions are delegated to an inner matcher, so results
    stay deterministic across worker counts.
    """

    def __init__(
        self,
        inner: PairwiseMatcher,
        seconds_per_request: float,
        max_pairs_per_request: int = 128,
    ) -> None:
        self.inner = inner
        self.seconds_per_request = seconds_per_request
        self.max_pairs_per_request = max_pairs_per_request
        self.threshold = inner.threshold

    def predict_proba(self, pairs: Sequence[RecordPair]) -> list[float]:
        num_requests = -(-len(pairs) // self.max_pairs_per_request) if pairs else 0
        time.sleep(num_requests * self.seconds_per_request)
        return self.inner.predict_proba(pairs)


def build_blocking() -> CombinedBlocking:
    return CombinedBlocking([IdOverlapBlocking(), TokenOverlapBlocking(top_n=5)])


def build_dataset(num_entities: int, seed: int) -> Dataset:
    """The synthetic companies dataset."""
    benchmark = generate_benchmark(
        GenerationConfig(num_entities=num_entities, num_sources=4, seed=seed,
                         acquisition_rate=0.05, merger_rate=0.05)
    )
    return benchmark.companies


def measure_throughput(
    matcher: PairwiseMatcher,
    dataset: Dataset,
    candidates: list,
    config: RuntimeConfig,
    repeats: int,
) -> tuple[float, list]:
    """Best-of-``repeats`` pairs/second for one runtime configuration."""
    runtime = PipelineRuntime(config)
    best_seconds = float("inf")
    decisions = None
    for _ in range(repeats):
        start = time.perf_counter()  # repro-lint: disable=obs-clock-discipline -- wall clock is this benchmark's artefact
        decisions = runtime.run_matching(matcher, dataset, candidates)
        best_seconds = min(best_seconds, time.perf_counter() - start)  # repro-lint: disable=obs-clock-discipline -- wall clock is this benchmark's artefact
    return len(candidates) / best_seconds, decisions


def run_blocking_scaling(
    dataset: Dataset,
    worker_counts: Sequence[int],
    repeats: int,
) -> list[dict[str, object]]:
    """Candidate-generation throughput per worker count, sharded by record.

    ``blocking_shards`` follows the worker count, so the serial baseline
    (one worker, one shard) is exactly the pre-sharding code path and every
    parallel row exercises the record-sharded fan-out.
    """
    blocking = build_blocking()
    rows: list[dict[str, object]] = []
    serial_throughput = None
    serial_candidates = None
    for workers in worker_counts:
        runtime = PipelineRuntime(RuntimeConfig(
            workers=workers, executor="process", blocking_shards=workers
        ))
        best_seconds = float("inf")
        candidates = None
        for _ in range(repeats):
            start = time.perf_counter()  # repro-lint: disable=obs-clock-discipline -- wall clock is this benchmark's artefact
            candidates = runtime.run_blocking(blocking, dataset)
            best_seconds = min(best_seconds, time.perf_counter() - start)  # repro-lint: disable=obs-clock-discipline -- wall clock is this benchmark's artefact
        throughput = len(candidates) / best_seconds
        if serial_throughput is None:
            serial_throughput, serial_candidates = throughput, candidates
        assert candidates == serial_candidates, (
            f"sharded candidates diverged from serial at workers={workers}"
        )
        rows.append({
            "Mode": "blocking",
            "Executor": "process" if workers > 1 else "serial",
            "Workers": workers,
            "Batch size": f"shards={workers}",
            "Pairs": len(candidates),
            "Pairs / s": round(throughput, 1),
            "Speedup": round(throughput / serial_throughput, 2),
        })
    return rows


def run_scaling(
    mode: str,
    dataset: Dataset,
    candidates: list,
    worker_counts: Sequence[int],
    batch_size: int,
    repeats: int,
    latency: float,
) -> list[dict[str, object]]:
    """One table row per worker count, with speedup relative to serial."""
    if mode == "cpu":
        matcher: PairwiseMatcher = ThresholdNameMatcher(similarity_threshold=0.88)
        executor = "process"
    else:
        matcher = SimulatedLatencyMatcher(
            ThresholdNameMatcher(similarity_threshold=0.88),
            seconds_per_request=latency,
            max_pairs_per_request=batch_size,
        )
        executor = "thread"

    rows: list[dict[str, object]] = []
    serial_throughput = None
    serial_decisions = None
    for workers in worker_counts:
        config = RuntimeConfig(workers=workers, batch_size=batch_size, executor=executor)
        throughput, decisions = measure_throughput(
            matcher, dataset, candidates, config, repeats
        )
        if serial_throughput is None:
            serial_throughput, serial_decisions = throughput, decisions
        assert decisions == serial_decisions, (
            f"parallel decisions diverged from serial at workers={workers}"
        )
        rows.append({
            "Mode": mode,
            "Executor": executor if workers > 1 else "serial",
            "Workers": workers,
            "Batch size": batch_size,
            "Pairs": len(candidates),
            "Pairs / s": round(throughput, 1),
            "Speedup": round(throughput / serial_throughput, 2),
        })
    return rows


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--entities", type=int, default=200,
                        help="company record groups in the synthetic dataset")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--workers", default="1,2,4",
                        help="comma-separated worker counts (first is the serial baseline)")
    parser.add_argument("--batch-size", type=int, default=512)
    parser.add_argument("--repeats", type=positive_int, default=2,
                        help="best-of repeats per point")
    parser.add_argument("--latency", type=float, default=0.05,
                        help="per-call seconds of the simulated remote matcher")
    parser.add_argument("--modes", default="cpu,latency,blocking",
                        help="comma-separated subset of {cpu,latency,blocking}")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload + single repeat (the CI smoke run)")
    args = parser.parse_args(argv)

    if args.smoke:
        args.entities, args.repeats, args.workers = 40, 1, "1,2"

    worker_counts = [int(w) for w in args.workers.split(",")]
    modes = args.modes.split(",")
    dataset = build_dataset(args.entities, args.seed)
    # The matcher modes score a fixed candidate list; the blocking mode
    # measures candidate generation itself, so it never needs this pass.
    candidates = (build_blocking().candidate_pairs(dataset)
                  if set(modes) - {"blocking"} else [])
    print(f"workload: {len(dataset)} records, "
          f"{len(candidates) or 'mode-generated'} candidate pairs, "
          f"{os.cpu_count()} cpu core(s)")

    rows: list[dict[str, object]] = []
    for mode in modes:
        if mode == "blocking":
            rows.extend(run_blocking_scaling(dataset, worker_counts, args.repeats))
        else:
            rows.extend(run_scaling(mode, dataset, candidates, worker_counts,
                                    args.batch_size, args.repeats, args.latency))

    table = format_table(rows, title="Runtime scaling — stage throughput")
    print(table)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / "runtime_scaling.txt"
    path.write_text(table + "\n", encoding="utf-8")
    print(f"[saved to {path}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
