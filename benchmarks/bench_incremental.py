"""Incremental ingestion: delta cost vs. full re-run, with equivalence.

For a synthetic companies corpus, measures what it costs to absorb the last
``delta`` records into a warm persistent match state versus re-running the
whole batch pipeline from scratch, across delta sizes × worker counts.
Before any timing counts, every configuration asserts **batch equivalence
bitwise**: the post-ingest candidates, decisions (probabilities compared
exactly) and final groups must equal the one-shot pipeline run over the
full corpus.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_incremental.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/bench_incremental.py           # full numbers

A final section ingests three batches on one warm process pool and records
the pool ledger per batch, proving the pool spawns once for the whole
sequence and the persistent profile store ships once per revision (batches
after the first pay no pool-start or re-pickle overhead).

Full runs assert that small-delta ingestion beats the full re-run and write
``benchmarks/results/BENCH_incremental.json``.  Quick runs skip the
wall-clock assertion (CI boxes are too noisy to gate on ratios) and write
``BENCH_incremental_quick.json`` so the committed full-run reference
numbers are never overwritten by a smoke run.
"""

from __future__ import annotations

import argparse
import json
import pickle
import time
from pathlib import Path
from collections.abc import Sequence

from repro.blocking import CombinedBlocking, IdOverlapBlocking, TokenOverlapBlocking
from repro.cli import positive_int
from repro.core.cleanup import CleanupConfig
from repro.core.pipeline import EntityGroupMatchingPipeline
from repro.core.precleanup import PreCleanupConfig
from repro.datagen import GenerationConfig, generate_benchmark
from repro.datagen.records import Dataset
from repro.evaluation import format_table
from repro.incremental import IncrementalMatcher
from repro.matching import LogisticRegressionMatcher
from repro.matching.pairs import as_record_pairs, build_labeled_pairs
from repro.obs.resources import effective_cpu_count, peak_rss_bytes
from repro.runtime import RuntimeConfig

RESULTS_DIR = Path(__file__).parent / "results"


def build_dataset(entities: int, seed: int) -> Dataset:
    return generate_benchmark(
        GenerationConfig(num_entities=entities, num_sources=4, seed=seed,
                         acquisition_rate=0.05, merger_rate=0.05)
    ).companies


def train_matcher(dataset: Dataset) -> LogisticRegressionMatcher:
    pairs = build_labeled_pairs(dataset, negative_ratio=3, seed=0)
    record_pairs, labels = as_record_pairs(pairs)
    return LogisticRegressionMatcher(num_iterations=120).fit(record_pairs, labels)


def make_pipeline(matcher, runtime: RuntimeConfig | None) -> EntityGroupMatchingPipeline:
    return EntityGroupMatchingPipeline(
        matcher=matcher,
        blocking=CombinedBlocking([IdOverlapBlocking(), TokenOverlapBlocking(top_n=3)]),
        cleanup_config=CleanupConfig.for_num_sources(4),
        pre_cleanup_config=PreCleanupConfig(max_component_size=30),
        runtime=runtime,
    )


def time_full_run(matcher, dataset: Dataset, runtime: RuntimeConfig | None,
                  repeats: int):
    """Best-of wall clock (and result) of the one-shot batch pipeline."""
    best, result = float("inf"), None
    for _ in range(repeats):
        with make_pipeline(matcher, runtime) as pipeline:
            start = time.perf_counter()  # repro-lint: disable=obs-clock-discipline -- wall clock is this benchmark's artefact
            result = pipeline.run(dataset)
            best = min(best, time.perf_counter() - start)  # repro-lint: disable=obs-clock-discipline -- wall clock is this benchmark's artefact
    return best, result


def warm_state(matcher, prefix, runtime: RuntimeConfig | None) -> bytes:
    """Ingest the prefix once and freeze the state for repeatable deltas."""
    with IncrementalMatcher.from_pipeline(
        make_pipeline(matcher, runtime), name="bench"
    ) as incremental:
        incremental.ingest(prefix)
        return pickle.dumps(incremental.state, protocol=pickle.HIGHEST_PROTOCOL)


def time_delta_ingest(frozen_state: bytes, delta, runtime: RuntimeConfig | None,
                      repeats: int):
    """Best-of wall clock of ingesting ``delta`` into the warm state.

    Each repeat thaws a fresh copy of the warm state (outside the timed
    region), so repeated ingests never see their own side effects.
    """
    best, matcher, report = float("inf"), None, None
    for _ in range(repeats):
        if matcher is not None:  # release the previous repeat's warm pool
            matcher.close()
        state = pickle.loads(frozen_state)
        matcher = IncrementalMatcher(state, runtime=runtime)
        start = time.perf_counter()  # repro-lint: disable=obs-clock-discipline -- wall clock is this benchmark's artefact
        report = matcher.ingest(delta)
        best = min(best, time.perf_counter() - start)  # repro-lint: disable=obs-clock-discipline -- wall clock is this benchmark's artefact
    return best, matcher, report


def measure_warm_pool(matcher, records, batch_size: int) -> list[dict[str, object]]:
    """Ingest three batches on one warm process pool and expose its ledger.

    Structural proof for the pool fix: the pool spawns exactly once (batches
    after the first show a spawn delta of zero — no process start or
    re-pickle overhead in their matching stage), and the persistent profile
    store is re-published once per growing batch (one revision each), never
    once per ``map_chunks`` call.
    """
    runtime = RuntimeConfig(
        workers=2, batch_size=batch_size, executor="process", blocking_shards=2
    )
    size = (len(records) + 2) // 3
    batches = [records[i:i + size] for i in range(0, len(records), size)]
    per_batch: list[dict[str, object]] = []
    previous = {"spawns": 0, "publishes": 0, "publish_reuses": 0, "fetches": 0}
    with IncrementalMatcher.from_pipeline(
        make_pipeline(matcher, runtime), name="bench-warm"
    ) as incremental:
        for index, batch in enumerate(batches, start=1):
            start = time.perf_counter()  # repro-lint: disable=obs-clock-discipline -- wall clock is this benchmark's artefact
            incremental.ingest(batch)
            seconds = time.perf_counter() - start  # repro-lint: disable=obs-clock-discipline -- wall clock is this benchmark's artefact
            stats = incremental.runtime.pool_stats()
            per_batch.append({
                "batch": index,
                "records": len(batch),
                "seconds": round(seconds, 3),
                "pool_spawns_delta": stats["spawns"] - previous["spawns"],
                "publishes_delta": stats["publishes"] - previous["publishes"],
                "fetches_delta": stats["fetches"] - previous["fetches"],
                "cpu_count": effective_cpu_count(),
                "peak_rss_bytes": peak_rss_bytes(),
            })
            previous = stats
        store = incremental.state.profiles
        assert store is not None and store.revision == 2, (
            "expected one store revision per growing batch after the first"
        )
    assert per_batch[0]["pool_spawns_delta"] == 1, "pool should spawn on batch 1"
    assert all(row["pool_spawns_delta"] == 0 for row in per_batch[1:]), (
        "warm pool was rebuilt after the first batch"
    )
    return per_batch


def assert_batch_equivalent(incremental: IncrementalMatcher, batch_result) -> None:
    assert incremental.candidates() == batch_result.candidates, "candidates drifted"
    decisions = incremental.decisions()
    assert decisions == batch_result.decisions, "decisions drifted"
    assert [d.probability for d in decisions] == [
        d.probability for d in batch_result.decisions
    ], "probabilities drifted"
    assert incremental.groups.groups == batch_result.groups.groups, "groups drifted"


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--entities", type=positive_int, default=300,
                        help="company record groups in the synthetic corpus")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--workers", default="1,2",
                        help="comma-separated worker counts")
    parser.add_argument("--deltas", default="0.02,0.1,0.25",
                        help="comma-separated delta sizes as corpus fractions")
    parser.add_argument("--batch-size", type=positive_int, default=1024)
    parser.add_argument("--repeats", type=positive_int, default=3,
                        help="best-of repeats per point")
    parser.add_argument("--quick", action="store_true",
                        help="tiny workload, single repeat, no wall-clock "
                             "assertion (the CI smoke run)")
    args = parser.parse_args(argv)

    if args.quick:
        args.entities, args.repeats, args.workers = 60, 1, "1"

    worker_counts = [int(w) for w in args.workers.split(",")]
    delta_fractions = [float(d) for d in args.deltas.split(",")]
    dataset = build_dataset(args.entities, args.seed)
    matcher = train_matcher(dataset)
    records = dataset.records
    print(f"workload: {len(records)} records, deltas {delta_fractions}, "
          f"workers {worker_counts}, {effective_cpu_count()} cpu core(s)")

    rows: list[dict[str, object]] = []
    small_delta_beats_full = True
    for workers in worker_counts:
        runtime = None if workers == 1 else RuntimeConfig(
            workers=workers, batch_size=args.batch_size, executor="thread",
            blocking_shards=workers,
        )
        full_seconds, batch_result = time_full_run(
            matcher, dataset, runtime, args.repeats
        )
        for fraction in delta_fractions:
            delta_size = max(1, int(len(records) * fraction))
            prefix, delta = records[:-delta_size], records[-delta_size:]
            frozen = warm_state(matcher, prefix, runtime)
            ingest_seconds, incremental, report = time_delta_ingest(
                frozen, delta, runtime, args.repeats
            )
            try:
                assert_batch_equivalent(incremental, batch_result)
            finally:
                incremental.close()
            speedup = full_seconds / ingest_seconds
            if fraction == min(delta_fractions) and ingest_seconds >= full_seconds:
                small_delta_beats_full = False
            rows.append({
                "Workers": workers,
                "Delta": f"{delta_size} ({fraction:.0%})",
                "Full run (s)": round(full_seconds, 3),
                "Ingest (s)": round(ingest_seconds, 3),
                "Speedup": round(speedup, 2),
                "Pairs scored": f"{report.pairs_scored}/{report.num_candidates}",
                "Recleaned": (
                    f"{report.components_recleaned}/{report.components_total}"
                ),
                "cpu_count": effective_cpu_count(),
                "peak_rss_bytes": peak_rss_bytes(),
            })

    print(format_table(rows, title="Delta ingest vs full batch re-run"))
    print("equivalence: incremental == batch (candidates, probabilities, "
          "groups), bitwise — OK")

    warm_pool_batches = measure_warm_pool(matcher, records, args.batch_size)
    print(format_table(
        warm_pool_batches,
        title="Warm process pool across a 3-batch ingest (workers=2)",
    ))
    print("warm pool: spawned once, store republished once per revision — OK")

    if not args.quick:
        assert small_delta_beats_full, (
            "small-delta ingestion failed to beat the full batch re-run"
        )

    report_doc = {
        "benchmark": "incremental_ingest",
        "quick": args.quick,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "workload": {
            "entities": args.entities,
            "seed": args.seed,
            "records": len(records),
            "delta_fractions": delta_fractions,
            "batch_size": args.batch_size,
            "repeats": args.repeats,
            "cpu_count": effective_cpu_count(),
            "peak_rss_bytes": peak_rss_bytes(),
        },
        "rows": rows,
        "equivalence": {"incremental_equals_batch_bitwise": True},
        "warm_pool": {
            "config": {"workers": 2, "executor": "process", "blocking_shards": 2},
            "per_batch": warm_pool_batches,
            "pool_spawned_once": True,
            "store_shipped_once_per_revision": True,
        },
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    filename = (
        "BENCH_incremental_quick.json" if args.quick else "BENCH_incremental.json"
    )
    path = RESULTS_DIR / filename
    path.write_text(json.dumps(report_doc, indent=2) + "\n", encoding="utf-8")
    print(f"[saved to {path}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
