"""LLM pairwise-matching cost argument (Section 5.2).

The paper rules out LlaMa2-7B for pairwise matching: at ~7 seconds per
candidate pair, matching the synthetic companies dataset (1.14M candidates)
would take more than 90 days.  The cost model reproduces that argument; the
benchmark also contrasts it with the measured per-pair latency of the
DistilBERT stand-in on this machine.
"""

import time

from repro.evaluation import LlmCostModel, format_table
from repro.matching.pairs import as_record_pairs, build_labeled_pairs


PAPER_CANDIDATE_PAIRS = 1_140_000  # synthetic companies, Table 2


def test_llm_cost_model_rules_out_llms(benchmark, save_table):
    """At 7 s/pair the paper-scale matching needs months of GPU time."""
    model = LlmCostModel(seconds_per_pair=7.0)

    days = benchmark(lambda: model.total_days(PAPER_CANDIDATE_PAIRS))

    rows = [{
        "Matcher": "LlaMa2-7B (cost model)",
        "Seconds / pair": 7.0,
        "Days for 1.14M pairs": round(days, 1),
        "Feasible in 7 days": model.is_feasible(PAPER_CANDIDATE_PAIRS, budget_days=7),
    }]
    save_table("llm_cost", format_table(rows, title="LLM pairwise matching cost (Section 5.2)"))
    assert days > 90
    assert not model.is_feasible(PAPER_CANDIDATE_PAIRS, budget_days=7)


def test_transformer_standin_per_pair_latency(benchmark, dataset_registry, finetune_cache):
    """The fine-tuned stand-in evaluates pairs orders of magnitude faster."""
    dataset = dataset_registry["synthetic-companies"]
    fine_tuned, splits, tuner = finetune_cache("synthetic-companies", "distilbert-128-all")
    pairs = build_labeled_pairs(dataset, negative_ratio=1, seed=9)[:256]
    record_pairs, _ = as_record_pairs(pairs)

    def run():
        start = time.perf_counter()  # repro-lint: disable=obs-clock-discipline -- wall clock is this benchmark's artefact
        fine_tuned.matcher.predict_proba(record_pairs)
        return (time.perf_counter() - start) / len(record_pairs)  # repro-lint: disable=obs-clock-discipline -- wall clock is this benchmark's artefact

    seconds_per_pair = benchmark.pedantic(run, rounds=1, iterations=1)
    # Far below the 7 s/pair LLM latency (normally < 10 ms/pair on CPU).
    assert seconds_per_pair < 1.0
