"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
scale (see ``EXPERIMENTS.md`` for the mapping and the scale note).  Datasets
and fine-tuned matchers are expensive, so they are built once per session
and cached here; the ``benchmark`` fixture then measures the interesting
step (generation, blocking, fine-tuning, pipeline, clean-up).

Rendered result tables are written to ``benchmarks/results/`` so the numbers
remain inspectable after the run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.datagen import generate_benchmark
from repro.datagen.wdc import generate_wdc_products
from repro.evaluation import split_dataset
from repro.matching.training import FineTuner

from bench_config import (
    FINE_TUNE_EPOCHS,
    NEGATIVE_RATIO,
    REAL_LIKE_CONFIG,
    SYNTHETIC_CONFIG,
    WDC_CONFIG,
)

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def synthetic_benchmark():
    """Synthetic companies + securities datasets (Table 1/2 'Synthetic')."""
    return generate_benchmark(SYNTHETIC_CONFIG)


@pytest.fixture(scope="session")
def real_like_benchmark():
    """The 'real labelled subset'-shaped datasets (8 sources, easier groups)."""
    return generate_benchmark(REAL_LIKE_CONFIG)


@pytest.fixture(scope="session")
def wdc_dataset():
    """The WDC-Products-style dataset."""
    return generate_wdc_products(WDC_CONFIG)


@pytest.fixture(scope="session")
def dataset_registry(synthetic_benchmark, real_like_benchmark, wdc_dataset):
    """All benchmark datasets keyed by their Table 1 / Table 4 row names."""
    return {
        "synthetic-companies": synthetic_benchmark.companies,
        "synthetic-securities": synthetic_benchmark.securities,
        "real-companies": real_like_benchmark.companies,
        "real-securities": real_like_benchmark.securities,
        "wdc-products": wdc_dataset,
    }


@pytest.fixture(scope="session")
def finetune_cache(dataset_registry):
    """Memoised fine-tuning: (dataset name, model name) -> FineTuneResult."""
    cache: dict[tuple[str, str], object] = {}

    def fine_tune(dataset_name: str, model_name: str):
        key = (dataset_name, model_name)
        if key not in cache:
            dataset = dataset_registry[dataset_name]
            splits = split_dataset(dataset, seed=0)
            tuner = FineTuner(
                negative_ratio=NEGATIVE_RATIO, num_epochs=FINE_TUNE_EPOCHS, seed=0
            )
            cache[key] = (
                tuner.fine_tune(
                    model_name, dataset,
                    splits.train_entities, splits.validation_entities,
                ),
                splits,
                tuner,
            )
        return cache[key]

    return fine_tune


@pytest.fixture(scope="session")
def save_table():
    """Write a rendered table to benchmarks/results/<name>.txt (and stdout)."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)

    def save(name: str, text: str) -> Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[saved to {path}]")
        return path

    return save
