"""Ablation — alternative graph clean-up strategies.

DESIGN.md calls out the clean-up strategy as the central design choice of
GraLMatch.  This ablation compares, on the same prediction graph:

* Algorithm 1 (the paper's Minimum Edge Cut + Betweenness Centrality),
* bridge removal followed by Algorithm 1 (cheaper first phase),
* the density-adaptive clean-up (no hard group-size cap — the behaviour the
  paper suggests for heterogeneous group sizes such as WDC Products).
"""

import pytest

from repro.core.cleanup import CleanupConfig, gralmatch_cleanup
from repro.core.cleanup_variants import adaptive_cleanup, bridge_removal_cleanup
from repro.core.groups import EntityGroups
from repro.core.metrics import group_matching_scores
from repro.evaluation import format_table
from repro.matching import ThresholdNameMatcher
from repro.blocking import CombinedBlocking, IdOverlapBlocking, TokenOverlapBlocking
from repro.core.pipeline import EntityGroupMatchingPipeline

_rows: list[dict] = []
STRATEGIES = ["algorithm-1", "bridge-removal", "density-adaptive"]


@pytest.fixture(scope="module")
def noisy_predictions(dataset_registry):
    """Company predictions from a deliberately noisy (name-threshold) matcher.

    The low threshold produces plenty of Crowdstrike/Crowdstreet-style false
    positives, which is the regime where the clean-up strategies differ.
    """
    dataset = dataset_registry["synthetic-companies"]
    pipeline = EntityGroupMatchingPipeline(
        matcher=ThresholdNameMatcher(similarity_threshold=0.82),
        blocking=CombinedBlocking([IdOverlapBlocking(), TokenOverlapBlocking(top_n=5)]),
    )
    result = pipeline.run(dataset)
    return dataset, result.positive_edges


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_cleanup_strategy(benchmark, noisy_predictions, strategy):
    dataset, edges = noisy_predictions
    config = CleanupConfig.for_num_sources(len(dataset.sources))

    def run():
        if strategy == "algorithm-1":
            return gralmatch_cleanup(edges, config)
        if strategy == "bridge-removal":
            return bridge_removal_cleanup(edges, config)
        return adaptive_cleanup(edges, min_density=0.6)

    components, report = benchmark.pedantic(run, rounds=1, iterations=1)

    all_records = [record.record_id for record in dataset]
    covered = {record for component in components for record in component}
    groups = EntityGroups(list(components) + [{r} for r in all_records if r not in covered])
    scores = group_matching_scores(groups, dataset.true_matches())
    _rows.append({
        "Strategy": strategy,
        **scores.as_row(),
        "Removed edges": report.num_removed,
        "Largest group": max((len(c) for c in components), default=0),
    })
    assert 0.0 <= scores.f1 <= 1.0


def test_cleanup_strategy_report(benchmark, noisy_predictions, save_table):
    dataset, edges = noisy_predictions
    rows = benchmark(lambda: list(_rows))
    save_table("ablation_cleanup", format_table(rows, title="Ablation — clean-up strategies"))
    assert len(rows) == len(STRATEGIES)

    by_name = {row["Strategy"]: row for row in rows}
    # Every strategy must improve on doing nothing at all (pre-cleanup groups).
    pre_groups = EntityGroups.from_edges(edges, [r.record_id for r in dataset])
    pre = group_matching_scores(pre_groups, dataset.true_matches())
    for row in rows:
        assert row["precision"] >= round(100 * pre.precision, 2) - 1e-6
    # Algorithm 1 bounds groups by mu, the adaptive variant may keep larger ones.
    assert by_name["algorithm-1"]["Largest group"] <= 5
