"""Micro-benchmarks of the graph substrate used by Algorithm 1.

The paper notes that Minimum Edge Cut and Edge Betweenness Centrality share
the same worst-case complexity O(m·n) but differ in practice ("the Minimum
Edge Cut tends to have a lower run-time").  These micro-benchmarks measure
the three primitives on a representative oversized component: two dense
groups joined by a single false-positive bridge.
"""

import random

import pytest

from repro.graphs import (
    Graph,
    connected_components,
    edge_betweenness_centrality,
    minimum_edge_cut,
)


def bridged_component(group_size: int, seed: int = 0) -> Graph:
    """Two dense clusters of ``group_size`` records joined by one bridge."""
    rng = random.Random(seed)
    graph = Graph()
    for prefix in ("a", "b"):
        nodes = [f"{prefix}{i}" for i in range(group_size)]
        for i, left in enumerate(nodes):
            for right in nodes[i + 1:]:
                if rng.random() < 0.6:
                    graph.add_edge(left, right)
        # Guarantee connectivity within the cluster.
        for i in range(group_size - 1):
            if not graph.has_edge(nodes[i], nodes[i + 1]):
                graph.add_edge(nodes[i], nodes[i + 1])
    graph.add_edge(f"a{group_size - 1}", "b0")
    return graph


@pytest.fixture(scope="module")
def component():
    return bridged_component(group_size=25, seed=3)


def test_connected_components_speed(benchmark, component):
    components = benchmark(lambda: connected_components(component))
    assert len(components) == 1


def test_minimum_edge_cut_speed(benchmark, component):
    cut = benchmark(lambda: minimum_edge_cut(component.copy()))
    # The bridge is the unique minimum cut.
    assert cut == {("a24", "b0")}


def test_edge_betweenness_speed(benchmark, component):
    scores = benchmark(lambda: edge_betweenness_centrality(component, normalized=False))
    best = max(scores, key=scores.get)
    assert best == ("a24", "b0")


def test_mincut_faster_than_betweenness_note(benchmark, component):
    """Record the relative cost of one MEC step vs one BC step.

    The assertion is deliberately loose (both directions are plausible on a
    small component); the benchmark's value is the recorded timing pair that
    substantiates the paper's phase ordering discussion.
    """
    import time

    def measure():
        start = time.perf_counter()  # repro-lint: disable=obs-clock-discipline -- wall clock is this benchmark's artefact
        minimum_edge_cut(component.copy())
        mec_seconds = time.perf_counter() - start  # repro-lint: disable=obs-clock-discipline -- wall clock is this benchmark's artefact
        start = time.perf_counter()  # repro-lint: disable=obs-clock-discipline -- wall clock is this benchmark's artefact
        edge_betweenness_centrality(component, normalized=False)
        bc_seconds = time.perf_counter() - start  # repro-lint: disable=obs-clock-discipline -- wall clock is this benchmark's artefact
        return mec_seconds, bc_seconds

    mec_seconds, bc_seconds = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert mec_seconds > 0 and bc_seconds > 0
