"""Benchmark-scale configurations shared by the harness.

The paper's synthetic datasets contain 200K record groups and the model
fine-tuning runs for hours on a Tesla T4; the harness runs the identical
code paths at a scale that completes in CPU-minutes.  ``EXPERIMENTS.md``
records this scale next to every reproduced table.
"""

from repro.datagen import GenerationConfig, RealLikeConfig
from repro.datagen.wdc import WdcConfig

#: Synthetic companies / securities generation (Table 1/2 "Synthetic" rows).
SYNTHETIC_CONFIG = GenerationConfig(
    num_entities=140, num_sources=5, seed=101,
    acquisition_rate=0.04, merger_rate=0.04,
)

#: The labelled-real-subset shape (8 sources, mostly identifier-matchable).
REAL_LIKE_CONFIG = RealLikeConfig(num_entities=100, seed=102)

#: WDC-Products-style product offers.
WDC_CONFIG = WdcConfig(num_entities=120, num_sources=15, seed=103)

#: Fine-tuning setup shared by the Table 3 / Table 4 benches.
FINE_TUNE_EPOCHS = 3
NEGATIVE_RATIO = 5
