"""Quickstart: end-to-end entity group matching through the declarative API.

This walks through the full Figure 1 workflow of the paper using the
high-level :mod:`repro.api` facade:

1. generate a multi-source companies dataset with ground truth,
2. describe the experiment as a declarative :class:`repro.ExperimentSpec`
   (the same dataclass `repro run config.toml` loads from disk),
3. run it — fine-tuning, blocking, matching and the GraLMatch Graph
   Cleanup all happen inside ``run_experiment``,
4. report the three-stage scores (pairwise / pre-cleanup / post-cleanup).

For the low-level constructor API (building the pipeline object by object
instead of from a spec), see ``examples/financial_matching.py`` — both
layers stay supported and produce identical results.

Run with:  python examples/quickstart.py
"""

from repro import ExperimentSpec, run_experiment
from repro.datagen import GenerationConfig, generate_benchmark
from repro.evaluation import format_table
from repro.specs import ComponentSpec, PipelineSpec, RuntimeSpec


def main() -> None:
    # 1. Generate a small multi-source benchmark (the paper uses 200K groups;
    #    a few hundred keeps the quickstart under a minute on CPU).
    config = GenerationConfig(num_entities=150, num_sources=5, seed=7,
                              acquisition_rate=0.04, merger_rate=0.04)
    benchmark = generate_benchmark(config)
    companies = benchmark.companies
    print(f"Generated {len(companies)} company records "
          f"for {len(companies.entity_groups())} entities "
          f"across {len(companies.sources)} sources")

    # 2. Describe the whole experiment as data.  Components are referenced
    #    by registry name; omitting [[pipeline.blocking]] would derive the
    #    Table 2 recipe from the dataset kind instead.
    spec = ExperimentSpec(
        kind="companies",
        model="distilbert-128-all",
        epochs=3,
        seed=0,
        pipeline=PipelineSpec(
            blocking=(
                ComponentSpec("id_overlap"),
                ComponentSpec("token_overlap", {"top_n": 5}),
            ),
            runtime=RuntimeSpec(workers=1),
        ),
    )
    print("\nThe spec as TOML (what `repro run` reads from disk):\n")
    print(spec.to_toml())

    # 3. Run it.  `run_experiment` fine-tunes the matcher on the train split,
    #    runs blocking -> matching -> GraLMatch on the whole dataset and
    #    scores all three stages; pass a path-bearing spec instead of a
    #    dataset to run straight from CSV files.
    result = run_experiment(spec, dataset=companies)
    pipeline_result = result.pipeline_result
    print(f"Blocking produced {pipeline_result.num_candidates} candidate pairs; "
          f"{pipeline_result.num_positive} predicted as matches; "
          f"GraLMatch removed {pipeline_result.cleanup_report.num_removed} edges")

    # 4. The three stages of Section 5.3.2, as one Table 4 row.
    print()
    print(format_table([result.as_row()], title="Entity group matching (companies)"))


if __name__ == "__main__":
    main()
