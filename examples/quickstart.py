"""Quickstart: end-to-end entity group matching on a small synthetic benchmark.

This walks through the full Figure 1 workflow of the paper:

1. generate a multi-source companies dataset with ground truth,
2. fine-tune a pairwise matcher (the DistilBERT stand-in) on the train split,
3. block candidate pairs, predict matches, run the GraLMatch Graph Cleanup,
4. report the three-stage scores (pairwise / pre-cleanup / post-cleanup).

Run with:  python examples/quickstart.py
"""

from repro.core.metrics import group_matching_scores, pairwise_scores
from repro.core.pipeline import EntityGroupMatchingPipeline
from repro.core.cleanup import CleanupConfig
from repro.blocking import CombinedBlocking, IdOverlapBlocking, TokenOverlapBlocking
from repro.datagen import GenerationConfig, generate_benchmark
from repro.evaluation import format_table, split_dataset
from repro.matching.pairs import as_record_pairs
from repro.matching.training import FineTuner


def main() -> None:
    # 1. Generate a small multi-source benchmark (the paper uses 200K groups;
    #    a few hundred keeps the quickstart under a minute on CPU).
    config = GenerationConfig(num_entities=150, num_sources=5, seed=7,
                              acquisition_rate=0.04, merger_rate=0.04)
    benchmark = generate_benchmark(config)
    companies = benchmark.companies
    print(f"Generated {len(companies)} company records "
          f"for {len(companies.entity_groups())} entities "
          f"across {len(companies.sources)} sources")

    # 2. Fine-tune the pairwise matcher on the train/validation splits.
    splits = split_dataset(companies, seed=0)
    tuner = FineTuner(negative_ratio=5, num_epochs=3, seed=0)
    fine_tuned = tuner.fine_tune(
        "distilbert-128-all", companies,
        splits.train_entities, splits.validation_entities,
    )
    print(f"Fine-tuned {fine_tuned.name} on {fine_tuned.num_training_pairs} pairs "
          f"in {fine_tuned.training_seconds:.1f}s")

    # 3. Run the end-to-end pipeline (blocking -> matching -> GraLMatch).
    pipeline = EntityGroupMatchingPipeline(
        matcher=fine_tuned.matcher,
        blocking=CombinedBlocking([IdOverlapBlocking(), TokenOverlapBlocking(top_n=5)]),
        cleanup_config=CleanupConfig.for_num_sources(len(companies.sources)),
    )
    result = pipeline.run(companies)
    print(f"Blocking produced {result.num_candidates} candidate pairs; "
          f"{result.num_positive} predicted as matches; "
          f"GraLMatch removed {result.cleanup_report.num_removed} edges")

    # 4. Score the three stages of Section 5.3.2.
    truth = companies.true_matches()
    rows = [
        {"Stage": "Pairwise matching", **pairwise_scores(result.positive_edges, truth).as_row()},
        {"Stage": "Pre Graph Cleanup", **group_matching_scores(result.pre_cleanup_groups, truth).as_row()},
        {"Stage": "Post Graph Cleanup", **group_matching_scores(result.groups, truth).as_row()},
    ]
    print()
    print(format_table(rows, title="Entity group matching (companies)"))


if __name__ == "__main__":
    main()
