"""Walk through the paper's Figure 2 worked example.

Shows the four matching phenomena of the example dataset — naming
variations, look-alike non-matches, acquisition (a true match only reachable
transitively) and merger (identifier contamination without a match) — and
how a false positive pairwise prediction floods the groups with false
transitive matches until GraLMatch removes it (Figures 3 and 4).

Run with:  python examples/figure2_example_dataset.py
"""

from repro.core.cleanup import CleanupConfig, gralmatch_cleanup
from repro.core.groups import EntityGroups
from repro.core.metrics import group_matching_scores
from repro.core.transitive import transitive_matches
from repro.datagen import figure2_dataset
from repro.evaluation import format_table


def main() -> None:
    companies, securities = figure2_dataset()
    print("Figure 2 example dataset:")
    print(f"  {len(companies)} company records, {len(securities)} security records")
    for entity, records in sorted(companies.entity_groups().items()):
        names = [companies.record(r).name for r in records]
        print(f"  {entity:12s} -> {records} ({', '.join(names)})")

    # Figure 3: the Herotel/Hearst acquisition is only matchable transitively.
    print("\nFigure 3 — transitive matches:")
    predicted = [("#11", "#21"), ("#21", "#33"), ("#33", "#41")]
    implied = transitive_matches(predicted)
    print(f"  predicted pairwise matches: {predicted}")
    print(f"  implied transitive matches: {sorted(implied)}")

    # Figure 4: one false positive (Crowdstrike #40 - Crowdstreet #13) merges
    # two groups; the GraLMatch cleanup removes it again.
    print("\nFigure 4 — effect of one false positive and the cleanup:")
    crowdstrike = [("#12", "#31"), ("#22", "#40"), ("#12", "#22"), ("#31", "#40")]
    crowdstreet = [("#13", "#23"), ("#23", "#32"), ("#13", "#32")]
    false_positive = [("#40", "#13")]
    edges = crowdstrike + crowdstreet + false_positive
    truth = companies.true_matches()

    before = EntityGroups.from_edges(edges)
    components, report = gralmatch_cleanup(edges, CleanupConfig(gamma=8, mu=4))
    after = EntityGroups(components)

    rows = [
        {"Stage": "Pre Graph Cleanup", **group_matching_scores(before, truth).as_row(),
         "Groups": len(before)},
        {"Stage": "Post Graph Cleanup", **group_matching_scores(after, truth).as_row(),
         "Groups": len(after)},
    ]
    print(format_table(rows))
    print(f"  removed edges: {sorted(report.removed_edges)}")


if __name__ == "__main__":
    main()
