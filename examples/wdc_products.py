"""Entity group matching on the WDC-Products-style benchmark.

The paper additionally evaluates its pipeline on the WDC Products benchmark
(many web shops, heterogeneous group sizes, 80% corner cases).  The offline
substitute generator reproduces those properties; this example runs the
pipeline on it and shows why the paper's clean-up — which assumes at most
one record per source — is less effective for heterogeneous group sizes
(Section 6.2.3).

Run with:  python examples/wdc_products.py
"""

from repro.blocking import TokenOverlapBlocking
from repro.core.cleanup import CleanupConfig
from repro.core.metrics import group_matching_scores, pairwise_scores
from repro.core.pipeline import EntityGroupMatchingPipeline
from repro.core.precleanup import PreCleanupConfig
from repro.datagen.wdc import WdcConfig, generate_wdc_products
from repro.evaluation import format_table, split_dataset
from repro.matching.training import FineTuner


def main() -> None:
    products = generate_wdc_products(WdcConfig(num_entities=200, num_sources=20, seed=3))
    sizes = sorted((len(g) for g in products.entity_groups().values()), reverse=True)
    print(f"Generated {len(products)} product offers for "
          f"{len(products.entity_groups())} products; group sizes range "
          f"{sizes[-1]}..{sizes[0]}")

    splits = split_dataset(products, seed=0)
    tuner = FineTuner(negative_ratio=5, num_epochs=3, seed=0)
    fine_tuned = tuner.fine_tune(
        "distilbert-128-all", products,
        splits.train_entities, splits.validation_entities,
    )

    pipeline = EntityGroupMatchingPipeline(
        matcher=fine_tuned.matcher,
        blocking=TokenOverlapBlocking(top_n=5),
        cleanup_config=CleanupConfig(gamma=25, mu=5),
        pre_cleanup_config=PreCleanupConfig(enabled=False),
    )
    result = pipeline.run(products)

    truth = products.true_matches()
    rows = [
        {"Stage": "Pairwise matching", **pairwise_scores(result.positive_edges, truth).as_row()},
        {"Stage": "Pre Graph Cleanup",
         **group_matching_scores(result.pre_cleanup_groups, truth).as_row()},
        {"Stage": "Post Graph Cleanup", **group_matching_scores(result.groups, truth).as_row()},
    ]
    print()
    print(format_table(rows, title="WDC-Products-style entity group matching"))
    print("\nNote: the fixed group-size cap mu=5 removes true matches from the"
          "\nlarger product groups — the limitation the paper reports for this"
          "\ndataset in Section 6.2.3.")


if __name__ == "__main__":
    main()
