"""Financial use case: match companies first, then their securities.

Reproduces the paper's motivating scenario (Section 3): records of companies
and the securities they issue arrive from several financial data vendors and
must be grouped per real-world entity.  Securities are blocked both by
identifier overlap and by the *Issuer Match* blocking, which reuses the
groups found by the company matching — the same two-level workflow used in
the paper's securities experiments.

Run with:  python examples/financial_matching.py
"""

from repro.blocking import (
    CombinedBlocking,
    IdOverlapBlocking,
    IssuerMatchBlocking,
    TokenOverlapBlocking,
)
from repro.core.cleanup import CleanupConfig
from repro.core.metrics import group_matching_scores
from repro.core.pipeline import EntityGroupMatchingPipeline
from repro.datagen import GenerationConfig, generate_benchmark
from repro.evaluation import format_table, split_dataset
from repro.matching.training import FineTuner


def match_companies(companies, seed=0):
    """Fine-tune a matcher and group the company records."""
    splits = split_dataset(companies, seed=seed)
    tuner = FineTuner(negative_ratio=5, num_epochs=3, seed=seed)
    fine_tuned = tuner.fine_tune(
        "distilbert-128-all", companies,
        splits.train_entities, splits.validation_entities,
    )
    pipeline = EntityGroupMatchingPipeline(
        matcher=fine_tuned.matcher,
        blocking=CombinedBlocking([IdOverlapBlocking(), TokenOverlapBlocking(top_n=5)]),
        cleanup_config=CleanupConfig.for_num_sources(len(companies.sources)),
    )
    return pipeline.run(companies)


def match_securities(securities, company_groups, seed=0):
    """Group security records, reusing the company matching for blocking."""
    splits = split_dataset(securities, seed=seed)
    tuner = FineTuner(negative_ratio=5, num_epochs=3, seed=seed)
    fine_tuned = tuner.fine_tune(
        "distilbert-128-all", securities,
        splits.train_entities, splits.validation_entities,
    )
    issuer_blocking = IssuerMatchBlocking.from_company_groups(company_groups)
    pipeline = EntityGroupMatchingPipeline(
        matcher=fine_tuned.matcher,
        blocking=CombinedBlocking([IdOverlapBlocking(), issuer_blocking]),
        cleanup_config=CleanupConfig.for_num_sources(len(securities.sources)),
    )
    return pipeline.run(securities)


def main() -> None:
    benchmark = generate_benchmark(
        GenerationConfig(num_entities=120, num_sources=5, seed=13,
                         acquisition_rate=0.04, merger_rate=0.04)
    )
    companies, securities = benchmark.companies, benchmark.securities

    print("Step 1: match the company records")
    company_result = match_companies(companies)
    company_scores = group_matching_scores(company_result.groups, companies.true_matches())
    print(f"  {len(company_result.groups)} company groups, "
          f"F1 {100 * company_scores.f1:.1f}, "
          f"cluster purity {company_scores.cluster_purity:.2f}")

    print("Step 2: match the security records (issuer blocking from step 1)")
    predicted_company_groups = [sorted(group) for group in company_result.groups]
    security_result = match_securities(securities, predicted_company_groups)
    security_scores = group_matching_scores(security_result.groups, securities.true_matches())
    print(f"  {len(security_result.groups)} security groups, "
          f"F1 {100 * security_scores.f1:.1f}, "
          f"cluster purity {security_scores.cluster_purity:.2f}")

    rows = [
        {"Dataset": "companies", **company_scores.as_row()},
        {"Dataset": "securities", **security_scores.as_row()},
    ]
    print()
    print(format_table(rows, title="Post Graph Cleanup scores"))


if __name__ == "__main__":
    main()
