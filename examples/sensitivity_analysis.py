"""Sensitivity analysis of the GraLMatch clean-up thresholds.

Reproduces the Section 5.2.1 sensitivity study: the same pairwise
predictions are cleaned up with the default thresholds, with Minimum Edge
Cuts only (gamma = mu), with Betweenness Centrality only (gamma = infinity)
and with gamma halved, and the resulting group scores are compared.

Run with:  python examples/sensitivity_analysis.py
"""

from repro.blocking import CombinedBlocking, IdOverlapBlocking, TokenOverlapBlocking
from repro.core.cleanup import CleanupConfig, gralmatch_cleanup
from repro.core.groups import EntityGroups
from repro.core.metrics import group_matching_scores
from repro.core.pipeline import EntityGroupMatchingPipeline
from repro.datagen import GenerationConfig, generate_benchmark
from repro.evaluation import format_table, split_dataset
from repro.matching.training import FineTuner


def main() -> None:
    benchmark = generate_benchmark(
        GenerationConfig(num_entities=150, num_sources=5, seed=23,
                         acquisition_rate=0.04, merger_rate=0.04)
    )
    companies = benchmark.companies

    splits = split_dataset(companies, seed=0)
    tuner = FineTuner(negative_ratio=5, num_epochs=3, seed=0)
    fine_tuned = tuner.fine_tune(
        "distilbert-128-all", companies,
        splits.train_entities, splits.validation_entities,
    )
    base_config = CleanupConfig.for_num_sources(len(companies.sources))
    pipeline = EntityGroupMatchingPipeline(
        matcher=fine_tuned.matcher,
        blocking=CombinedBlocking([IdOverlapBlocking(), TokenOverlapBlocking(top_n=5)]),
        cleanup_config=base_config,
    )
    result = pipeline.run(companies)
    truth = companies.true_matches()
    all_records = [record.record_id for record in companies]

    variants = {
        "default (gamma=5*mu)": base_config,
        "MEC only (gamma=mu)": base_config.mec_only(),
        "half gamma": base_config.half_gamma(),
        "BC only (gamma=inf)": base_config.bc_only(),
    }

    rows = []
    for name, config in variants.items():
        components, report = gralmatch_cleanup(result.positive_edges, config)
        covered = {r for c in components for r in c}
        groups = EntityGroups(
            list(components) + [{r} for r in all_records if r not in covered]
        )
        scores = group_matching_scores(groups, truth)
        rows.append({
            "Variant": name,
            **scores.as_row(),
            "Removed edges": report.num_removed,
            "MEC removals": report.mincut_removals,
            "BC removals": report.betweenness_removals,
        })

    print(format_table(rows, title="GraLMatch threshold sensitivity (companies)"))


if __name__ == "__main__":
    main()
