"""Configuration of the batched pipeline execution engine.

The runtime splits the data-parallel pipeline stages (candidate generation
and pairwise inference) into chunks and fans them out over a
:mod:`concurrent.futures` worker pool.  Both knobs matter independently:

* ``workers`` bounds the parallelism,
* ``batch_size`` bounds the per-task granularity — large enough to amortize
  scheduling (and, for process pools, pickling) overhead, small enough to
  keep all workers busy and the per-chunk timings informative,
* ``blocking_shards`` splits candidate generation itself into record chunks
  (shared index built once, per-chunk scoring fanned out), so a single
  blocking scales beyond one core,
* ``profile_cache`` lets profile-capable matchers score pairwise inference
  from per-record feature profiles prepared once per run (and shipped to
  workers once), instead of re-deriving record-local state for both sides
  of every pair,
* ``columnar_dispatch`` keeps profiled inference columnar end to end for
  ``columnar_capable`` matchers: chunk tasks return probability arrays,
  decision objects materialise lazily at the API boundary,
* ``warm_pool`` keeps one persistent worker pool alive across stage calls,
  pipeline runs and ingest batches, shipping shared payloads through the
  epoch protocol (once per state revision) instead of re-spawning the pool
  and re-pickling the payload per call.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Executor kinds accepted by :class:`RuntimeConfig`.
EXECUTOR_KINDS = ("thread", "process")


@dataclass(frozen=True)
class RuntimeConfig:
    """How the pipeline's data-parallel stages are executed.

    The default configuration (one worker) is the fully serial engine; it
    batches pairwise inference but never spawns a pool, so library users pay
    nothing for the parallel machinery unless they opt in.
    """

    #: Number of worker slots; 1 means serial execution (no pool).
    workers: int = 1
    #: Candidate pairs per inference chunk.
    batch_size: int = 2048
    #: Pool flavour used when ``workers > 1``: "process" achieves real
    #: CPU parallelism for pure-Python matchers (the GIL serialises
    #: "thread"), while "thread" avoids pickling and suits matchers that
    #: release the GIL (numpy-heavy forward passes) or do I/O.
    executor: str = "process"
    #: Record chunks candidate generation is sharded into; 1 means each
    #: blocking runs as one task (the pre-sharding behaviour).  Sharding is
    #: deterministic at any shard count: the shared index is global and the
    #: per-chunk results merge in record order, so the candidates are
    #: byte-identical to the serial run.
    blocking_shards: int = 1
    #: Score pairwise inference from per-record feature profiles when the
    #: matcher supports them (``profile_capable``): the profile store is
    #: prepared once in the parent, shipped to process-pool workers via the
    #: initializer path, and chunk tasks carry bare id pairs instead of
    #: pickled record objects.  Output is byte-identical either way — this
    #: knob trades memory for speed, never results.  Matchers without
    #: profile support fall back to the record-pair path automatically.
    profile_cache: bool = True
    #: Dispatch pairwise inference through the matcher's columnar
    #: ``score_profiled`` kernel when the matcher is ``columnar_capable``
    #: (and the profiled route is active): chunk tasks return float64
    #: probability arrays instead of per-pair decision objects, and the
    #: engine hands back a lazy
    #: :class:`~repro.matching.decisions.DecisionVector` that materialises
    #: :class:`~repro.matching.base.MatchDecision` objects only where a
    #: consumer indexes them.  Output is byte-identical either way — the
    #: vector applies exactly the conversions ``decide_profiled`` applies
    #: eagerly.  Non-columnar matchers fall back to the object route
    #: automatically.
    columnar_dispatch: bool = True
    #: Keep one persistent worker pool per runtime, spawned lazily and
    #: reused across stage calls, pipeline runs and incremental-ingest
    #: batches; shared payloads (profile store + matcher, blocking shared
    #: index) ship to process workers through the epoch protocol — pickled
    #: once per state revision, cached worker-side — instead of riding the
    #: pool initializer on every call.  ``False`` restores the historical
    #: pool-per-call engine.  Results are byte-identical either way; this
    #: knob trades resident worker processes for latency, never results.
    warm_pool: bool = True
    #: Stream a structured run trace (spans + metrics, JSON Lines) to this
    #: path; ``None`` (the default) installs the no-op recorder and the
    #: engine does no observability work at all.  Like every other knob,
    #: tracing only *observes*: outputs are byte-identical with tracing on
    #: or off.  Read the file back with ``repro report``.
    trace: str | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be a positive integer, got {self.workers}")
        if self.batch_size < 1:
            raise ValueError(
                f"batch_size must be a positive integer, got {self.batch_size}"
            )
        if self.executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"executor must be one of {EXECUTOR_KINDS}, got {self.executor!r}"
            )
        if self.blocking_shards < 1:
            raise ValueError(
                f"blocking_shards must be a positive integer, got {self.blocking_shards}"
            )
        if not isinstance(self.profile_cache, bool):
            raise ValueError(
                f"profile_cache must be a boolean, got {self.profile_cache!r}"
            )
        if not isinstance(self.columnar_dispatch, bool):
            raise ValueError(
                f"columnar_dispatch must be a boolean, got {self.columnar_dispatch!r}"
            )
        if not isinstance(self.warm_pool, bool):
            raise ValueError(
                f"warm_pool must be a boolean, got {self.warm_pool!r}"
            )
        if self.trace is not None and not isinstance(self.trace, str):
            raise ValueError(
                f"trace must be a path string or None, got {self.trace!r}"
            )

    @property
    def is_parallel(self) -> bool:
        return self.workers > 1

    @classmethod
    def serial(cls, batch_size: int = 2048) -> "RuntimeConfig":
        """The serial engine (explicit spelling of the default)."""
        return cls(workers=1, batch_size=batch_size)
