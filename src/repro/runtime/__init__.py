"""Batched, optionally parallel execution engine for the matching pipeline.

The runtime separates *what* the pipeline computes from *how* it is
executed.  :class:`RuntimeConfig` selects the worker count, chunk size and
pool flavour; :class:`PipelineRuntime` executes the data-parallel stages
(candidate generation, pairwise inference); :class:`ChunkScheduler` is the
underlying order-preserving fan-out primitive; :class:`StageProfiler`
records stage and per-chunk wall-clock timings.

Observability lives in :mod:`repro.obs`; the runtime is its producer:
``RuntimeConfig.trace`` (or an explicit recorder handed to
:class:`PipelineRuntime`) threads a trace recorder through the scheduler
and pool, and the profiler doubles as the timings view over the trace.

Serial and parallel execution are guaranteed to produce identical results —
the regression suite pins this on a golden dataset — and tracing never
changes outputs either.
"""

from repro.runtime.config import EXECUTOR_KINDS, RuntimeConfig
from repro.runtime.engine import PipelineRuntime
from repro.runtime.pool import PoolStats, WorkerPool
from repro.runtime.profiler import StageProfiler
from repro.runtime.scheduler import ChunkScheduler, chunked, even_spans, split_evenly

__all__ = [
    "EXECUTOR_KINDS",
    "RuntimeConfig",
    "PipelineRuntime",
    "PoolStats",
    "StageProfiler",
    "ChunkScheduler",
    "WorkerPool",
    "chunked",
    "even_spans",
    "split_evenly",
]
