"""The pipeline execution engine.

:class:`PipelineRuntime` is the seam between the entity-group-matching
*logic* (blocking recipes, matchers, graph clean-up) and its *execution*
(batching, worker pools, profiling).  The pipeline delegates its two
data-parallel stages here:

* **candidate generation** — a composite blocking is partitioned into its
  independent sub-blockings, and each shardable sub-blocking is further
  split into record chunks (``blocking_shards``): the blocking's
  :meth:`~repro.blocking.base.Blocking.prepare` builds the shared state
  (inverted index, document frequencies) once in the parent, the per-chunk
  :meth:`~repro.blocking.base.Blocking.candidates_for` calls fan out over
  the pool, and the results merge parts-major / chunks-minor — declaration
  order first, record order second — before one global de-duplication, so
  first blocking wins on duplicates exactly like the serial
  :class:`~repro.blocking.combine.CombinedBlocking`,
* **pairwise inference** — candidates are chunked into ``batch_size`` record
  pairs; every chunk goes through the matcher's batched
  :meth:`~repro.matching.base.PairwiseMatcher.decide_batches` entry point,
  one call per chunk — in-process under the serial engine, one pool task
  per chunk under the parallel engine.  When the matcher is profile-capable
  and ``profile_cache`` is on (the default), the matcher's
  :meth:`~repro.matching.base.PairwiseMatcher.prepare_profiles` runs once
  here in the parent, the store ships to each worker out of band — via the
  warm pool's epoch protocol (once per state revision) or, under
  ``warm_pool=False``, via the per-call pool initializer — and the
  per-chunk payload shrinks to bare id pairs: record objects are no longer
  re-pickled per batch, and record-local feature derivations happen once
  per record instead of once per pair side.  When the matcher is
  additionally ``columnar_capable`` (and ``columnar_dispatch`` is on, the
  default), chunk tasks run the matcher's vectorised ``score_profiled``
  kernel and return bare float64 probability arrays — the engine
  concatenates them and hands back a lazy
  :class:`~repro.matching.decisions.DecisionVector`, so no per-pair
  decision object is built (or shipped) unless a consumer at the
  pipeline/API/CLI boundary actually indexes one.

The runtime owns one persistent :class:`~repro.runtime.pool.WorkerPool`
(via its scheduler) when ``warm_pool`` is on: spawned lazily on the first
parallel stage, reused across stage calls, pipeline runs and incremental
batches, released by :meth:`PipelineRuntime.close` (or the context-manager
protocol) — after which the next parallel call simply respawns it.

Determinism guarantee: chunk results are merged in submission order, every
matcher decision depends only on its own record pair, and the chunking — the
numeric batch shape a vectorised matcher sees — depends only on
``batch_size``, never on ``workers`` or the executor.  Runs that share a
``batch_size`` therefore produce identical decisions, edges and groups at
any worker count.  (Shape stability matters: BLAS reductions are not
bitwise-reproducible across matrix shapes, so re-batching can flip
borderline probabilities at the last ULP.)
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.blocking.base import Blocking, CandidatePair, dedupe_pairs
from repro.datagen.records import Dataset, Record
from repro.matching.base import IdPair, MatchDecision, PairwiseMatcher, RecordPair
from repro.matching.decisions import DecisionVector
from repro.obs.sinks import JsonlSink
from repro.obs.trace import NULL_RECORDER, TraceRecorder
from repro.runtime.config import RuntimeConfig
from repro.runtime.profiler import StageProfiler
from repro.runtime.scheduler import ChunkScheduler, chunked, even_spans


def _decide_chunk(
    matcher: PairwiseMatcher, pairs: list[RecordPair]
) -> list[MatchDecision]:
    """Worker task: one inference chunk (module-level for picklability).

    Goes through :meth:`decide_batches` — the same matcher entry point the
    serial engine uses — so a matcher that overrides the batched path
    behaves identically under both engines.
    """
    return matcher.decide_batches([pairs])[0]


@dataclass(frozen=True)
class _MatchingPlan:
    """Per-run shared state of the profiled inference path.

    The matcher and its prepared profile store ride to each process-pool
    worker once via the initializer, so chunk tasks only carry id pairs.
    """

    matcher: PairwiseMatcher
    profiles: Any


def _decide_profiled_chunk(
    plan: _MatchingPlan, id_pairs: list[tuple[str, str]]
) -> list[MatchDecision]:
    """Worker task: one profiled inference chunk (module-level, picklable)."""
    return plan.matcher.decide_profiled_batches(plan.profiles, [id_pairs])[0]


def _score_profiled_chunk(
    plan: _MatchingPlan, id_pairs: list[tuple[str, str]]
) -> np.ndarray:
    """Worker task of the columnar dispatch route: one chunk's probability
    vector, as a float64 array — no per-pair decision objects are built (or
    pickled back) anywhere in the fan-out."""
    return plan.matcher.score_profiled(plan.profiles, id_pairs)


@dataclass(frozen=True)
class _BlockingPlan:
    """Per-run shared state shipped to every blocking worker once.

    ``parts`` are the partitioned sub-blockings, ``states`` their prepared
    shared state (``None`` for parts running unsharded), ``records`` the
    dataset's records (present when any task is sharded), ``dataset`` the
    full dataset (present only when some part runs unsharded).  Everything
    bulky rides here — shipped to process workers out of band (pickled once
    per epoch under the warm pool, once per worker via the cold-pool
    initializer) — so the per-task payload is just a pair of indexes.
    """

    parts: tuple[Blocking, ...]
    states: tuple[Any, ...]
    records: tuple[Record, ...] | None
    dataset: Dataset | None


@dataclass(frozen=True)
class _BlockingTask:
    """One pool task: a record-index span of one part, or a whole unsharded
    part (``span=None``)."""

    part: int
    span: tuple[int, int] | None


def _blocking_task(plan: _BlockingPlan, task: _BlockingTask) -> list[CandidatePair]:
    """Worker task: candidates of one record chunk (or one whole part)."""
    blocking = plan.parts[task.part]
    if task.span is None:
        return blocking.candidate_pairs(plan.dataset)
    start, stop = task.span
    return blocking.candidates_for(plan.states[task.part], plan.records[start:stop])


@dataclass(frozen=True)
class _DeltaBlockingPlan:
    """Shared state of the per-record rescoring fan-out (delta ingestion).

    One part, its prepared shared index, and the records to rescore; tasks
    are index spans into ``records``.
    """

    part: Blocking
    state: Any
    records: tuple[Record, ...]


def _delta_blocking_task(
    plan: _DeltaBlockingPlan, span: tuple[int, int]
) -> list[tuple[CandidatePair, ...]]:
    """Worker task: per-record owned candidate lists for one record span.

    Single-record chunks are a valid chunking under the shardable contract,
    so each record's ``candidates_for`` output is exactly its slice of the
    serial emission stream — which is what lets the incremental matcher
    splice rescored records into a stored per-record candidate map.
    """
    start, stop = span
    return [
        tuple(plan.part.candidates_for(plan.state, (record,)))
        for record in plan.records[start:stop]
    ]


def _owned_candidate_count(owned: list[tuple[CandidatePair, ...]]) -> int:
    """Candidates across one delta-blocking span's per-record owned lists."""
    return sum(len(pairs) for pairs in owned)


class PipelineRuntime:
    """Executes the data-parallel pipeline stages under a runtime config.

    The runtime also owns the run's observability: ``recorder`` (or, when
    omitted, ``config.trace`` → a JSONL-streaming
    :class:`~repro.obs.trace.TraceRecorder`; no trace configured → the
    shared no-op) is threaded through the scheduler and pool, and
    :meth:`profiler` hands out stage profilers bound to it so stage/chunk
    timings land in the trace.  Recording never steers execution — traced
    and untraced runs produce byte-identical outputs.
    """

    def __init__(
        self, config: RuntimeConfig | None = None, recorder: Any = None
    ) -> None:
        self.config = config or RuntimeConfig()
        if recorder is not None:
            self.recorder = recorder
        elif self.config.trace is not None:
            self.recorder = TraceRecorder(sink=JsonlSink(self.config.trace))
        else:
            self.recorder = NULL_RECORDER
        self.scheduler = ChunkScheduler(self.config, recorder=self.recorder)

    # -- lifecycle ----------------------------------------------------------

    def profiler(self) -> StageProfiler:
        """A new stage profiler bound to this runtime's trace recorder.

        Pipeline runs and ingest batches build their per-run profiler here,
        so stage spans and chunk spans nest in the runtime's trace; without
        a recorder this is exactly ``StageProfiler()``.
        """
        return StageProfiler(recorder=self.recorder)

    def close(self) -> None:
        """Release the persistent worker pool and its published payloads,
        and finalise the trace (the recorder streams its metrics record and
        releases the sink).

        Idempotent and non-terminal: the next parallel stage call lazily
        respawns a fresh pool.  Serial runtimes never spawn a pool, so this
        is a no-op for them.
        """
        self.scheduler.close()
        self.recorder.finish()

    def __enter__(self) -> "PipelineRuntime":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def pool_stats(self) -> dict[str, int] | None:
        """Snapshot of the warm pool's cost counters (``None`` if no pool).

        Exposes spawn/publish/fetch counts so benchmarks and tests can
        prove that pools spawn once and payloads ship once per revision.
        """
        pool = self.scheduler.pool
        return None if pool is None else pool.stats.snapshot()

    # -- candidate generation ----------------------------------------------

    def run_blocking(
        self,
        blocking: Blocking,
        dataset: Dataset,
        profiler: StageProfiler | None = None,
    ) -> list[CandidatePair]:
        """Generate candidate pairs, fanning out parts and record shards.

        The task list is built parts-major, chunks-minor: the blocking is
        partitioned into its independent parts (declaration order), and each
        shardable part is split into ``blocking_shards`` consecutive record
        chunks — its :meth:`~repro.blocking.base.Blocking.prepare` runs once
        here in the parent, the chunk tasks only score.  Non-shardable parts
        stay one task each.  All tasks go through one scheduler call (one
        pool), results merge in submission order, and a single global
        de-duplication keeps the first occurrence — which reproduces the
        serial semantics bit for bit, including first-blocking-wins tags.
        """
        parts = blocking.partition()
        shards = self.config.blocking_shards
        tasks: list[_BlockingTask] = []
        states: list[Any] = []
        for index, part in enumerate(parts):
            if shards > 1 and part.shardable:
                states.append(part.prepare(dataset))
                tasks.extend(
                    _BlockingTask(index, span)
                    for span in even_spans(len(dataset), shards)
                )
            else:
                states.append(None)
                tasks.append(_BlockingTask(index, None))
        if len(tasks) == 1 and tasks[0].span is None:
            # One whole-part task: skip the plan plumbing entirely.
            return blocking.candidate_pairs(dataset)
        needs_records = any(task.span is not None for task in tasks)
        needs_dataset = any(task.span is None for task in tasks)
        # Both can ride along in the mixed case: one pickling pass memoizes
        # the Record objects the dataset and the tuple share.
        plan = _BlockingPlan(
            parts=tuple(parts),
            states=tuple(states),
            records=tuple(dataset.records) if needs_records else None,
            dataset=dataset if needs_dataset else None,
        )
        per_task = self.scheduler.map_chunks(
            _blocking_task,
            tasks,
            stage="blocking",
            profiler=profiler,
            shared=plan,
            items=len,  # candidates emitted per task -> candidates/s chunks
        )
        merged: list[CandidatePair] = []
        for pairs in per_task:
            merged.extend(pairs)
        return dedupe_pairs(merged)

    def run_blocking_delta(
        self,
        part: Blocking,
        shared: Any,
        records: Sequence[Record],
        profiler: StageProfiler | None = None,
    ) -> list[tuple[CandidatePair, ...]]:
        """Rescore individual records against a prepared shared index.

        The incremental-ingestion counterpart of :meth:`run_blocking`: given
        one (shardable) part and its up-to-date shared state, return each
        record's owned candidate pairs — one tuple per record, aligned with
        ``records``.  Spans of records fan out over the pool exactly like
        sharded candidate generation (``blocking_shards`` tasks, shared
        state shipped out of band), and per-record outputs are sliced
        worker-side so the parent can splice them into a persistent
        record → candidates map.
        """
        if not records:
            return []
        plan = _DeltaBlockingPlan(
            part=part, state=shared, records=tuple(records)
        )
        spans = even_spans(len(records), self.config.blocking_shards)
        per_span = self.scheduler.map_chunks(
            _delta_blocking_task,
            spans,
            stage="blocking_delta",
            profiler=profiler,
            shared=plan,
            items=_owned_candidate_count,
        )
        merged: list[tuple[CandidatePair, ...]] = []
        for owned in per_span:
            merged.extend(owned)
        return merged

    # -- pairwise inference -------------------------------------------------

    def run_matching(
        self,
        matcher: PairwiseMatcher,
        dataset: Dataset,
        candidates: Sequence[CandidatePair],
        profiler: StageProfiler | None = None,
        profiles: Any = None,
        id_pairs: Sequence[IdPair] | None = None,
    ) -> Sequence[MatchDecision]:
        """Predict Match / NoMatch for every candidate, in candidate order.

        Either way the scheduler runs one matcher call per ``batch_size``
        chunk (in-process when serial, pooled when parallel), so the matcher
        entry point, the call granularity and the numeric batch shapes are
        identical at any worker count — which is what keeps serial and
        parallel decisions bit-identical — and every run gets per-chunk
        timings and pair counts.  The three routes differ only in what
        rides where:

        * **columnar** (profiled route active, matcher ``columnar_capable``,
          ``columnar_dispatch`` on) — chunk tasks run the matcher's
          :meth:`~repro.matching.base.PairwiseMatcher.score_profiled` kernel
          and return float64 probability arrays; the concatenated vector
          comes back as a lazy
          :class:`~repro.matching.decisions.DecisionVector` that
          materialises decision objects only at the API boundary;
        * **profiled** (``profile_cache`` on, matcher ``profile_capable``) —
          the matcher prepares its per-record profiles once, matcher + store
          ship to each worker out of band (epoch protocol or initializer),
          chunk payloads are bare id pairs;
        * **record pairs** (fallback) — chunk payloads are the record
          objects themselves, resolved here in the parent.

        The chunking — and therefore every numeric batch shape — is shared
        by all three routes, which is what keeps their outputs byte-identical
        (the columnar invariance suite pins this at every engine setting).

        ``profiles`` (optional) short-circuits the preparation step of the
        profiled route with an already-built store — the incremental
        matcher's persistent :class:`~repro.matching.profiles.ProfileStore`
        rides through here so each delta reuses every prior profile.  It
        must cover every record the candidates reference; profiled output is
        byte-identical to in-run preparation because profiles are pure
        per-record derivations.

        ``id_pairs`` (optional) short-circuits the id-pair extraction of the
        profiled routes with a precomputed ``(left_id, right_id)`` list
        aligned with ``candidates`` — callers that already hold bare id
        pairs (incremental ingest) skip the per-candidate Python loop here.
        """
        if not candidates:
            return []
        if self.config.profile_cache and matcher.profile_capable:
            if profiles is None:
                # Profile only the records the candidates reference: on a
                # sparse candidate set (narrow blocking over a huge dataset)
                # profiling the whole dataset would cost more than the cache
                # saves.
                referenced: dict[str, None] = {}
                for candidate in candidates:
                    referenced.setdefault(candidate.left_id)
                    referenced.setdefault(candidate.right_id)
                profiles = matcher.prepare_profiles(
                    dataset.record(record_id) for record_id in referenced
                )
            if id_pairs is None:
                id_pairs = [
                    (candidate.left_id, candidate.right_id)
                    for candidate in candidates
                ]
            elif len(id_pairs) != len(candidates):
                raise ValueError(
                    f"id_pairs must align with candidates: got {len(id_pairs)} "
                    f"pairs for {len(candidates)} candidates"
                )
            plan = _MatchingPlan(matcher=matcher, profiles=profiles)
            id_batches = chunked(id_pairs, self.config.batch_size)
            columnar = self.config.columnar_dispatch and matcher.columnar_capable
            # Similarity-memo accounting (trace only): delta the store's
            # hit/miss counters around the stage.  In-process execution
            # (serial, and threads — they share the store by reference) is
            # fully counted; process-pool workers gather against their own
            # shipped copies, which this parent-side delta cannot see.
            memo_before = (
                profiles.memo_stats()
                if self.recorder.enabled and hasattr(profiles, "memo_stats")
                else None
            )
            scored = self.scheduler.map_chunks(
                _score_profiled_chunk if columnar else _decide_profiled_chunk,
                id_batches,
                stage="pairwise_matching",
                profiler=profiler,
                shared=plan,
                # Epoch identity: the same matcher + the same store at the
                # same revision means the already-published plan is current,
                # so consecutive calls (incremental batches reusing the
                # persistent store) skip re-pickling it.  Stores without a
                # revision counter get a fresh sentinel per call — always
                # republished, never stale.
                shared_anchors=(matcher, profiles),
                shared_version=getattr(profiles, "revision", object()),
                items=len,
            )
            if memo_before is not None:
                hits_before, misses_before = memo_before
                hits_after, misses_after = profiles.memo_stats()
                self.recorder.metrics.add(
                    "profile_store.sim_memo.hits", hits_after - hits_before
                )
                self.recorder.metrics.add(
                    "profile_store.sim_memo.misses", misses_after - misses_before
                )
            if columnar:
                # Concatenating the per-chunk vectors copies values bitwise,
                # so the vector holds exactly the probabilities the object
                # route would attach chunk by chunk.
                probabilities = (
                    scored[0] if len(scored) == 1 else np.concatenate(scored)
                )
                return DecisionVector(
                    pairs=id_pairs,
                    probabilities=probabilities,
                    threshold=matcher.threshold,
                )
            decided = scored
        else:
            pair_batches: list[list[RecordPair]] = [
                [
                    (dataset.record(candidate.left_id), dataset.record(candidate.right_id))
                    for candidate in batch
                ]
                for batch in chunked(candidates, self.config.batch_size)
            ]
            decided = self.scheduler.map_chunks(
                _decide_chunk,
                pair_batches,
                stage="pairwise_matching",
                profiler=profiler,
                shared=matcher,
                # The matcher itself is the payload: the same matcher object
                # is current across calls (fitted models are not re-fit
                # between runs in the built-in flows).
                shared_anchors=(matcher,),
                items=len,
            )
        decisions: list[MatchDecision] = []
        for batch in decided:
            decisions.extend(batch)
        return decisions
