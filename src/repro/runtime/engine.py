"""The pipeline execution engine.

:class:`PipelineRuntime` is the seam between the entity-group-matching
*logic* (blocking recipes, matchers, graph clean-up) and its *execution*
(batching, worker pools, profiling).  The pipeline delegates its two
data-parallel stages here:

* **candidate generation** — a composite blocking is partitioned into its
  independent sub-blockings, which are fanned out over the pool and merged
  in declaration order (first blocking wins on duplicates, exactly like the
  serial :class:`~repro.blocking.combine.CombinedBlocking`),
* **pairwise inference** — candidates are chunked into ``batch_size`` record
  pairs; every chunk goes through the matcher's batched
  :meth:`~repro.matching.base.PairwiseMatcher.decide_batches` entry point,
  one call per chunk — in-process under the serial engine, one pool task
  per chunk under the parallel engine.

Determinism guarantee: chunk results are merged in submission order, every
matcher decision depends only on its own record pair, and the chunking — the
numeric batch shape a vectorised matcher sees — depends only on
``batch_size``, never on ``workers`` or the executor.  Runs that share a
``batch_size`` therefore produce identical decisions, edges and groups at
any worker count.  (Shape stability matters: BLAS reductions are not
bitwise-reproducible across matrix shapes, so re-batching can flip
borderline probabilities at the last ULP.)
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.blocking.base import Blocking, CandidatePair, dedupe_pairs
from repro.datagen.records import Dataset
from repro.matching.base import MatchDecision, PairwiseMatcher, RecordPair
from repro.runtime.config import RuntimeConfig
from repro.runtime.profiler import StageProfiler
from repro.runtime.scheduler import ChunkScheduler, chunked


def _decide_chunk(
    matcher: PairwiseMatcher, pairs: list[RecordPair]
) -> list[MatchDecision]:
    """Worker task: one inference chunk (module-level for picklability).

    Goes through :meth:`decide_batches` — the same matcher entry point the
    serial engine uses — so a matcher that overrides the batched path
    behaves identically under both engines.
    """
    return matcher.decide_batches([pairs])[0]


def _blocking_part(dataset: Dataset, blocking: Blocking) -> list[CandidatePair]:
    """Worker task: candidate pairs of one sub-blocking."""
    return blocking.candidate_pairs(dataset)


class PipelineRuntime:
    """Executes the data-parallel pipeline stages under a runtime config."""

    def __init__(self, config: RuntimeConfig | None = None) -> None:
        self.config = config or RuntimeConfig()
        self.scheduler = ChunkScheduler(self.config)

    # -- candidate generation ----------------------------------------------

    def run_blocking(
        self,
        blocking: Blocking,
        dataset: Dataset,
        profiler: StageProfiler | None = None,
    ) -> list[CandidatePair]:
        """Generate candidate pairs, fanning out composite blockings.

        A blocking that partitions into a single part (every non-composite
        blocking) runs in-process.  Composite blockings run one part per
        pool task; merging concatenates the parts in declaration order and
        de-duplicates keeping the first occurrence, which reproduces the
        serial semantics bit for bit.
        """
        parts = blocking.partition()
        if len(parts) == 1 or not self.config.is_parallel:
            return blocking.candidate_pairs(dataset)
        per_part = self.scheduler.map_chunks(
            _blocking_part,
            parts,
            stage="blocking",
            profiler=profiler,
            shared=dataset,
        )
        merged: list[CandidatePair] = []
        for pairs in per_part:
            merged.extend(pairs)
        return dedupe_pairs(merged)

    # -- pairwise inference -------------------------------------------------

    def run_matching(
        self,
        matcher: PairwiseMatcher,
        dataset: Dataset,
        candidates: Sequence[CandidatePair],
        profiler: StageProfiler | None = None,
    ) -> list[MatchDecision]:
        """Predict Match / NoMatch for every candidate, in candidate order."""
        batches = chunked(candidates, self.config.batch_size)
        pair_batches: list[list[RecordPair]] = [
            [
                (dataset.record(candidate.left_id), dataset.record(candidate.right_id))
                for candidate in batch
            ]
            for batch in batches
        ]
        # One path for both engines: the scheduler runs _decide_chunk per
        # batch (in-process when serial, pooled when parallel), so the
        # matcher entry point, the call granularity and the numeric batch
        # shapes are identical at any worker count — which is what keeps
        # serial and parallel decisions bit-identical — and every run gets
        # per-chunk timings.
        decided = self.scheduler.map_chunks(
            _decide_chunk,
            pair_batches,
            stage="pairwise_matching",
            profiler=profiler,
            shared=matcher,
        )
        decisions: list[MatchDecision] = []
        for batch in decided:
            decisions.extend(batch)
        return decisions
