"""Stage and chunk profiling for pipeline runs.

The profiler collects wall-clock timings at two granularities: whole stages
("blocking", "pairwise_matching", "graph_cleanup") and — when a stage is
executed in chunks — the individual chunk durations.  Chunk durations are
measured where the work happens (inside the worker for pooled execution), so
they reflect compute time, not queueing delay.

Chunked stages may also record how many *items* each chunk processed or
produced (candidate pairs for matching, candidates for blocking), which
turns the raw durations into per-chunk throughputs
(:meth:`StageProfiler.chunk_throughput`) — benches and the CLI's timing
output show where time goes without any external timing.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from collections.abc import Iterator


class StageProfiler:
    """Records per-stage and per-chunk wall-clock timings of one run."""

    def __init__(self) -> None:
        self._stages: dict[str, float] = {}
        self._chunks: dict[str, list[float]] = {}
        self._chunk_items: dict[str, list[int | None]] = {}

    # -- recording ---------------------------------------------------------

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a whole stage: ``with profiler.stage("blocking"): ...``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self._stages[name] = time.perf_counter() - start

    def record_stage(self, name: str, seconds: float) -> None:
        self._stages[name] = seconds

    def record_chunk(
        self, stage: str, seconds: float, items: int | None = None
    ) -> None:
        """Append one chunk duration to ``stage`` (chunks are ordered).

        ``items`` — how many items the chunk processed/produced (pairs for
        matching, candidates for blocking) — feeds the per-chunk throughput
        accessors; ``None`` when the caller has no meaningful count.
        """
        self._chunks.setdefault(stage, []).append(seconds)
        self._chunk_items.setdefault(stage, []).append(items)

    # -- reading -----------------------------------------------------------

    def stage_seconds(self, name: str) -> float:
        return self._stages.get(name, 0.0)

    def chunk_seconds(self, stage: str) -> list[float]:
        return list(self._chunks.get(stage, []))

    def chunk_items(self, stage: str) -> list[int | None]:
        """Per-chunk item counts, aligned with :meth:`chunk_seconds`."""
        return list(self._chunk_items.get(stage, []))

    def chunk_throughput(self, stage: str) -> list[float | None]:
        """Per-chunk items/second (``None`` where no count was recorded)."""
        return [
            items / seconds if items is not None and seconds > 0 else None
            for items, seconds in zip(self.chunk_items(stage), self.chunk_seconds(stage))
        ]

    def stage_throughput(self, stage: str) -> float | None:
        """Aggregate items/second over a stage's counted chunks."""
        total_items = 0
        total_seconds = 0.0
        for items, seconds in zip(self.chunk_items(stage), self.chunk_seconds(stage)):
            if items is not None:
                total_items += items
                total_seconds += seconds
        if total_items == 0 or total_seconds <= 0:
            return None
        return total_items / total_seconds

    def as_timings(self) -> dict[str, float]:
        """Flatten into the ``PipelineResult.timings`` dictionary.

        Stage totals keep their plain names; chunk durations are keyed
        ``"<stage>/chunk<index>"`` so a flat ``dict[str, float]`` remains
        backward compatible for consumers that only read the stage keys.
        The index is zero-padded to the stage's chunk count (at least three
        digits, so the common keys stay stable), keeping lexicographic key
        order equal to chunk order at any chunk count — 1000+ chunks are
        routine once blocking is record-sharded.
        """
        timings: dict[str, float] = dict(self._stages)
        for stage, chunks in self._chunks.items():
            width = max(3, len(str(len(chunks) - 1)))
            for index, seconds in enumerate(chunks):
                timings[f"{stage}/chunk{index:0{width}d}"] = seconds
        return timings
