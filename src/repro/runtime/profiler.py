"""Stage and chunk profiling for pipeline runs.

The profiler collects wall-clock timings at two granularities: whole stages
("blocking", "pairwise_matching", "graph_cleanup") and — when a stage is
executed in chunks — the individual chunk durations.  Chunk durations are
measured where the work happens (inside the worker for pooled execution), so
they reflect compute time, not queueing delay.

Chunked stages may also record how many *items* each chunk processed or
produced (candidate pairs for matching, candidates for blocking), which
turns the raw durations into per-chunk throughputs
(:meth:`StageProfiler.chunk_throughput`) — benches and the CLI's timing
output show where time goes without any external timing.

Since ``repro.obs`` landed, the profiler is also the *timings view over the
run trace*: construct it with a :class:`~repro.obs.trace.TraceRecorder`
(``PipelineRuntime.profiler()`` does) and every stage it times becomes a
``stage`` span and every chunk a ``chunk`` span in the trace, while the
flat accumulation dicts keep serving the stable ``as_timings()`` /
throughput contract.  With the default :data:`~repro.obs.trace.NULL_RECORDER`
nothing changes: the profiler works standalone exactly as before.

Stage timings *accumulate* across repeated invocations of the same stage
name — a multi-batch ingest reuses one runtime and runs ``delta_blocking``
once per batch, and ``stage_seconds`` reports the total, not just the last
batch.  (Earlier versions clobbered repeats.)
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from collections.abc import Iterator
from typing import Any

from repro.obs.trace import NULL_RECORDER


class StageProfiler:
    """Records per-stage and per-chunk wall-clock timings of one run.

    ``recorder`` (default: the shared no-op) additionally receives each
    timed region as a trace span; the profiler never *requires* a trace.
    """

    def __init__(self, recorder: Any = None) -> None:
        self.recorder = NULL_RECORDER if recorder is None else recorder
        self._stages: dict[str, float] = {}
        self._chunks: dict[str, list[float]] = {}
        self._chunk_items: dict[str, list[int | None]] = {}

    # -- recording ---------------------------------------------------------

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a whole stage: ``with profiler.stage("blocking"): ...``.

        Repeated invocations of the same name accumulate.  The region is
        also opened as a ``stage`` span on the recorder, so chunk spans and
        events recorded inside nest under it.
        """
        with self.recorder.span(name, kind="stage"):
            start = time.perf_counter()
            try:
                yield
            finally:
                elapsed = time.perf_counter() - start
                self._stages[name] = self._stages.get(name, 0.0) + elapsed

    def record_stage(self, name: str, seconds: float) -> None:
        """Add ``seconds`` to stage ``name`` (accumulates across calls)."""
        self._stages[name] = self._stages.get(name, 0.0) + seconds

    def record_chunk(
        self,
        stage: str,
        seconds: float,
        items: int | None = None,
        *,
        start: float | None = None,
        end: float | None = None,
        attributes: dict[str, Any] | None = None,
    ) -> None:
        """Append one chunk duration to ``stage`` (chunks are ordered).

        ``items`` — how many items the chunk processed/produced (pairs for
        matching, candidates for blocking) — feeds the per-chunk throughput
        accessors; ``None`` when the caller has no meaningful count.

        When the caller also knows the chunk's position on the shared
        monotonic timeline (``start``/``end``, as the scheduler does for
        worker-measured chunks), and a real recorder is attached, the chunk
        lands in the trace as a ``chunk`` span with its index, item count
        and any extra ``attributes``.
        """
        chunks = self._chunks.setdefault(stage, [])
        index = len(chunks)
        chunks.append(seconds)
        self._chunk_items.setdefault(stage, []).append(items)
        if self.recorder.enabled and start is not None and end is not None:
            span_attributes: dict[str, Any] = {"index": index}
            if items is not None:
                span_attributes["items"] = items
            if attributes:
                span_attributes.update(attributes)
            self.recorder.add_span(
                stage, kind="chunk", start=start, end=end, attributes=span_attributes
            )

    # -- reading -----------------------------------------------------------

    def stage_seconds(self, name: str) -> float:
        return self._stages.get(name, 0.0)

    def chunk_seconds(self, stage: str) -> list[float]:
        return list(self._chunks.get(stage, []))

    def chunk_items(self, stage: str) -> list[int | None]:
        """Per-chunk item counts, aligned with :meth:`chunk_seconds`."""
        return list(self._chunk_items.get(stage, []))

    def chunk_throughput(self, stage: str) -> list[float | None]:
        """Per-chunk items/second (``None`` where no count was recorded)."""
        return [
            items / seconds if items is not None and seconds > 0 else None
            for items, seconds in zip(self.chunk_items(stage), self.chunk_seconds(stage))
        ]

    def stage_throughput(self, stage: str) -> float | None:
        """Aggregate items/second over a stage's counted chunks."""
        total_items = 0
        total_seconds = 0.0
        for items, seconds in zip(self.chunk_items(stage), self.chunk_seconds(stage)):
            if items is not None:
                total_items += items
                total_seconds += seconds
        if total_items == 0 or total_seconds <= 0:
            return None
        return total_items / total_seconds

    def as_timings(self) -> dict[str, float]:
        """Flatten into the ``PipelineResult.timings`` dictionary.

        Stage totals keep their plain names; chunk durations are keyed
        ``"<stage>/chunk<index>"`` so a flat ``dict[str, float]`` remains
        backward compatible for consumers that only read the stage keys.
        The index is zero-padded to the stage's chunk count (at least three
        digits, so the common keys stay stable), keeping lexicographic key
        order equal to chunk order at any chunk count — 1000+ chunks are
        routine once blocking is record-sharded.
        """
        timings: dict[str, float] = dict(self._stages)
        for stage, chunks in self._chunks.items():
            width = max(3, len(str(len(chunks) - 1)))
            for index, seconds in enumerate(chunks):
                timings[f"{stage}/chunk{index:0{width}d}"] = seconds
        return timings
