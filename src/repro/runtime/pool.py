"""Persistent worker pools and the shared-state epoch protocol.

Before this module existed the scheduler built a fresh
:class:`~concurrent.futures.ProcessPoolExecutor` for every ``map_chunks``
call and re-shipped the whole shared payload (profile store + matcher,
blocking shared index) through the pool initializer each time.  On the
profiled matching hot path that fixed cost — pool spawn plus payload
pickling — swamped the actual work, and 2-worker parallel runs lost to the
serial engine.  :class:`WorkerPool` inverts the cost structure:

* **the pool is persistent** — spawned lazily on first use, sized once from
  ``RuntimeConfig.workers`` (excess slots idle harmlessly), and reused
  across stage calls, pipeline runs and incremental-ingest batches until
  :meth:`close` (after which the next use simply respawns it),
* **shared payloads ship by epoch, not by call** — :meth:`publish` assigns
  each payload revision a globally unique *epoch id* and spools the pickled
  payload to a private file exactly once; worker tasks carry only
  ``(slot, epoch, path)`` and lazily fetch-and-cache the payload when their
  cached epoch is stale (:func:`load_epoch_payload`).  A publish whose
  *anchors* (the payload's constituent objects, compared by identity) and
  *version* (a revision counter for in-place-mutable payloads, e.g.
  ``ProfileStore.revision``) match the current epoch is answered without
  re-pickling anything — a store ships once per state revision instead of
  once per call.

The parent keeps strong references to the anchor objects of the current
epoch, so identity comparison can never be confused by id reuse after
garbage collection.  Thread pools skip the protocol entirely: threads share
the parent's memory, so payloads pass by reference for free.

Correctness note: epoch reuse assumes a payload is a pure function of its
anchors + version.  Mutating an anchored object in place *without* bumping
its revision (e.g. re-``fit``-ing a matcher between runs) is not detected —
call :meth:`close` (or :meth:`PipelineRuntime.close`) to drop published
state first.  The built-in flows never do this: profile stores carry a
``revision`` counter bumped on every append, and every other payload is
rebuilt (new objects, new epoch) per call.
"""

from __future__ import annotations

import itertools
import os
import pickle
import shutil
import tempfile
import threading
import weakref
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any

from repro.obs.trace import NULL_RECORDER
from repro.runtime.config import EXECUTOR_KINDS

#: Globally unique epoch ids (parent side).  A plain monotonic counter:
#: epochs are never reused within a process, so a worker's cached epoch can
#: only ever match the payload it was actually fetched for — even across a
#: pool dispose/respawn cycle.
_EPOCH_IDS = itertools.count(1)

#: Worker-side payload cache: ``slot -> (epoch, payload)``.  Lives in the
#: worker *process* (module global); the parent never writes to it.  One
#: entry per slot — publishing a new epoch implicitly evicts the old
#: payload on the next fetch.
_fetch_cache: dict[str, tuple[int, Any]] = {}


def load_epoch_payload(slot: str, epoch: int, path: str) -> tuple[Any, bool]:
    """Worker-side fetch: return ``(payload, fetched)`` for one epoch.

    Serves the payload from the per-process cache when the cached epoch
    matches, otherwise reads and unpickles the spool file written by
    :meth:`WorkerPool.publish` (at most once per worker per epoch) and
    caches it.  The ``fetched`` flag travels back to the parent so pool
    statistics can prove how often payloads actually shipped.
    """
    cached = _fetch_cache.get(slot)
    if cached is not None and cached[0] == epoch:
        return cached[1], False
    with open(path, "rb") as handle:
        payload = pickle.load(handle)
    _fetch_cache[slot] = (epoch, payload)
    return payload, True


@dataclass
class PoolStats:
    """Observable cost counters of one :class:`WorkerPool`.

    ``spawns`` counts executor constructions (pool cold starts),
    ``publishes`` counts epochs actually pickled to the spool,
    ``publish_reuses`` counts :meth:`WorkerPool.publish` calls answered by
    the current epoch without re-pickling, and ``fetches`` counts
    worker-side payload loads reported back through task results.  The
    benchmarks snapshot these between ingest batches to prove the warm pool
    pays pool-start and pickling costs once, not per call.
    """

    spawns: int = 0
    publishes: int = 0
    publish_reuses: int = 0
    fetches: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "spawns": self.spawns,
            "publishes": self.publishes,
            "publish_reuses": self.publish_reuses,
            "fetches": self.fetches,
        }


@dataclass(frozen=True)
class PublishedEpoch:
    """Parent-side record of one published payload revision.

    Holds a strong reference to the payload *and* its anchors: while this
    epoch is current, the anchor objects cannot be garbage collected, so
    the identity comparison inside :meth:`WorkerPool.publish` is sound (a
    new object can never alias a compared-against id).
    """

    slot: str
    epoch: int
    #: Spool file holding the pickled payload (``None`` for thread pools —
    #: payloads pass by reference and are never spooled).
    path: str | None
    payload: Any
    anchors: tuple[Any, ...] | None
    version: Any


def _shutdown_abandoned(executor: Executor | None, payload_dir: str | None) -> None:
    """GC finalizer for pools that were dropped without :meth:`close`.

    Keeps test suites and notebooks honest: a pool owner that simply goes
    out of scope must not leak worker processes or spool files until
    interpreter exit.
    """
    if executor is not None:
        executor.shutdown(wait=False, cancel_futures=True)
    if payload_dir is not None:
        shutil.rmtree(payload_dir, ignore_errors=True)


class WorkerPool:
    """A persistent executor plus the parent half of the epoch protocol.

    ``recorder`` (default: the shared no-op) receives lifecycle trace
    events — executor spawns, epoch publishes with payload bytes, publish
    reuses — and mirrors :class:`PoolStats` into trace metrics.  The stats
    object remains the pool-local view (benchmarks snapshot it directly);
    the metrics are the whole-run aggregate across every pool a trace sees.
    """

    def __init__(self, kind: str, workers: int, *, recorder: Any = None) -> None:
        if kind not in EXECUTOR_KINDS:
            raise ValueError(f"executor must be one of {EXECUTOR_KINDS}, got {kind!r}")
        if workers < 1:
            raise ValueError(f"workers must be a positive integer, got {workers}")
        self.kind = kind
        self.recorder = NULL_RECORDER if recorder is None else recorder
        #: Pool width, fixed at construction from ``RuntimeConfig.workers``.
        #: Never clamped to a call's task count: executors start workers on
        #: demand, so excess slots cost nothing while idling, and resizing
        #: per call would force a rebuild (the bug this class fixes).
        self.workers = workers
        self.stats = PoolStats()
        self._executor: Executor | None = None
        self._epochs: dict[str, PublishedEpoch] = {}
        self._payload_dir: str | None = None
        self._finalizer: weakref.finalize | None = None
        #: Guards every state transition (executor spawn/teardown, epoch
        #: table, spool directory, statistics).  Re-entrant because the
        #: locked lifecycle methods call each other (``close`` →
        #: ``dispose``) and share ``_refresh_finalizer``.  One pipeline
        #: runtime is single-threaded, but a pool outlives calls by design
        #: and e.g. benchmark drivers poke ``stats`` from timer threads.
        self._lock = threading.RLock()

    # -- lifecycle ---------------------------------------------------------

    @property
    def executor(self) -> Executor:
        """The live executor, spawned lazily on first use."""
        with self._lock:
            if self._executor is None:
                if self.kind == "process":
                    self._executor = ProcessPoolExecutor(max_workers=self.workers)
                else:
                    self._executor = ThreadPoolExecutor(max_workers=self.workers)
                self.stats.spawns += 1
                if self.recorder.enabled:
                    self.recorder.event(
                        "pool.spawn",
                        executor=self.kind,
                        workers=self.workers,
                        mode="warm",
                    )
                    self.recorder.metrics.add("pool.spawns")
                self._refresh_finalizer()
            return self._executor

    def dispose(self, *, cancel: bool = False) -> None:
        """Shut the executor down (optionally cancelling queued tasks).

        Published epochs and their spool files survive: the next use
        respawns fresh workers whose empty caches simply re-fetch the
        current payloads.  This is the failure-recovery path — after a
        worker exception the pool is disposed with ``cancel=True`` so no
        in-flight chunk task outlives the call that submitted it.
        """
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True, cancel_futures=cancel)
                self._executor = None
                self._refresh_finalizer()

    def close(self) -> None:
        """Release everything: workers, published payloads, spool files.

        Safe to call twice; the pool remains usable afterwards (the next
        use starts from a cold, empty state).
        """
        with self._lock:
            self.dispose(cancel=True)
            if self._finalizer is not None:
                self._finalizer.detach()
                self._finalizer = None
            if self._payload_dir is not None:
                shutil.rmtree(self._payload_dir, ignore_errors=True)
                self._payload_dir = None
            self._epochs.clear()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _refresh_finalizer(self) -> None:
        with self._lock:
            if self._finalizer is not None:
                self._finalizer.detach()
            if self._executor is None and self._payload_dir is None:
                self._finalizer = None
                return
            self._finalizer = weakref.finalize(
                self, _shutdown_abandoned, self._executor, self._payload_dir
            )

    # -- the epoch protocol ------------------------------------------------

    def publish(
        self,
        slot: str,
        payload: Any,
        *,
        anchors: tuple[Any, ...] | None = None,
        version: Any = None,
    ) -> PublishedEpoch:
        """Register ``payload`` under ``slot``; returns its current epoch.

        ``anchors`` are the objects the payload is built from; when every
        anchor of the current epoch is the *same object* (identity, not
        equality) and ``version`` compares equal, the current epoch is
        reused and nothing is pickled.  ``anchors=None`` means "always
        stale": every publish is a new epoch (the right call for payloads
        rebuilt per call, like blocking plans).  For process pools the
        payload is spooled to a private file once per epoch; thread pools
        keep it by reference only.
        """
        with self._lock:
            current = self._epochs.get(slot)
            if (
                current is not None
                and anchors is not None
                and current.anchors is not None
                and len(current.anchors) == len(anchors)
                and all(ours is theirs for ours, theirs in zip(current.anchors, anchors))
                and current.version == version
            ):
                self.stats.publish_reuses += 1
                if self.recorder.enabled:
                    self.recorder.event(
                        "pool.publish_reuse", slot=slot, epoch=current.epoch
                    )
                    self.recorder.metrics.add("pool.publish_reuses")
                return current
            epoch = next(_EPOCH_IDS)
            path: str | None = None
            payload_bytes: int | None = None
            if self.kind == "process":
                if self._payload_dir is None:
                    self._payload_dir = tempfile.mkdtemp(prefix="repro-pool-")
                    self._refresh_finalizer()
                path = os.path.join(self._payload_dir, f"{slot}-{epoch:d}.pkl")
                with open(path, "wb") as handle:
                    pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
                    payload_bytes = handle.tell()
                if current is not None and current.path is not None:
                    # No in-flight tasks can reference the old epoch: map_chunks
                    # drains all futures before the next publish.
                    try:
                        os.unlink(current.path)
                    except OSError:
                        pass
            published = PublishedEpoch(
                slot=slot,
                epoch=epoch,
                path=path,
                payload=payload,
                anchors=tuple(anchors) if anchors is not None else None,
                version=version,
            )
            self._epochs[slot] = published
            self.stats.publishes += 1
            if self.recorder.enabled:
                attributes: dict[str, Any] = {"slot": slot, "epoch": epoch}
                if payload_bytes is not None:
                    attributes["payload_bytes"] = payload_bytes
                self.recorder.event("pool.publish", **attributes)
                self.recorder.metrics.add("pool.publishes")
                if payload_bytes is not None:
                    self.recorder.metrics.add("pool.publish_bytes", payload_bytes)
            return published

    def current_epoch(self, slot: str) -> PublishedEpoch | None:
        """The epoch currently published under ``slot`` (if any)."""
        with self._lock:
            return self._epochs.get(slot)

    def record_fetches(self, count: int) -> None:
        """Fold worker-reported payload fetches into the statistics."""
        with self._lock:
            self.stats.fetches += count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "live" if self._executor is not None else "cold"
        return (
            f"WorkerPool(kind={self.kind!r}, workers={self.workers}, {state}, "
            f"slots={sorted(self._epochs)})"
        )
