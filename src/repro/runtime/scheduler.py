"""The chunked scheduler: deterministic fan-out over a worker pool.

The scheduler owns exactly one concern: run one function over a list of
chunks — serially or on a :mod:`concurrent.futures` pool — and return the
per-chunk results *in submission order*, so pooled execution is
indistinguishable from serial execution for any per-chunk-pure function.
Out-of-order completion never leaks into results, which is what makes the
parallel pipeline byte-identical to the serial one.

Two pooled execution modes exist, selected by ``RuntimeConfig.warm_pool``:

* **warm** (the default) — one persistent :class:`~repro.runtime.pool.WorkerPool`
  per scheduler, spawned lazily, sized once from ``config.workers`` and
  reused across calls; shared payloads ship to process workers through the
  epoch protocol (pickled once per payload revision, fetched and cached
  worker-side), thread workers read them by reference,
* **cold** (``warm_pool=False``) — the historical behaviour: a fresh
  executor per call, sized ``min(workers, num_tasks)``, shared payloads
  shipped through the process-pool initializer.

Both modes produce byte-identical results; the golden suites sweep them.

Failure protocol (both modes): the first worker exception — earliest by
submission order among the failed tasks — is re-raised as-is, every not-yet
-running task is cancelled, and the pool is shut down (``cancel_futures``)
so no in-flight chunk outlives the call that submitted it.  A warm pool is
disposed, not closed: the next call respawns fresh workers.

Worker functions used with the process pool must be picklable: module-level
functions (optionally wrapped in :func:`functools.partial`) qualify,
closures and lambdas do not.
"""

from __future__ import annotations

from concurrent.futures import (
    FIRST_EXCEPTION,
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from functools import partial
from collections.abc import Callable, Sequence
from typing import Any, TypeVar

from repro.obs import clock
from repro.obs.trace import NULL_RECORDER
from repro.runtime.config import RuntimeConfig
from repro.runtime.pool import WorkerPool, load_epoch_payload
from repro.runtime.profiler import StageProfiler

T = TypeVar("T")
R = TypeVar("R")


def chunked(items: Sequence[T], size: int) -> list[list[T]]:
    """Split ``items`` into consecutive chunks of at most ``size`` elements.

    The concatenation of the chunks is exactly ``items``; the empty sequence
    yields no chunks.
    """
    if size < 1:
        raise ValueError(f"chunk size must be a positive integer, got {size}")
    return [list(items[start:start + size]) for start in range(0, len(items), size)]


def even_spans(count: int, parts: int) -> list[tuple[int, int]]:
    """At most ``parts`` consecutive, near-equal ``(start, stop)`` spans.

    The index arithmetic behind :func:`split_evenly`, exposed separately so
    callers that only need boundaries (the sharded blocking fan-out ships
    spans, not copies) skip materialising the chunks.  Sizes differ by at
    most one (larger spans first), the spans tile ``range(count)`` exactly,
    and none is empty — fewer than ``parts`` spans when ``count < parts``.
    """
    if parts < 1:
        raise ValueError(f"parts must be a positive integer, got {parts}")
    parts = min(parts, count)
    if parts == 0:
        return []
    base, extra = divmod(count, parts)
    spans: list[tuple[int, int]] = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        spans.append((start, start + size))
        start += size
    return spans


def split_evenly(items: Sequence[T], parts: int) -> list[list[T]]:
    """Split ``items`` into at most ``parts`` consecutive, near-equal chunks.

    Sizes differ by at most one (the larger chunks come first), the
    concatenation of the chunks is exactly ``items``, and no chunk is empty
    — fewer than ``parts`` chunks are returned when there are fewer items.
    The count-based, list-materialising counterpart of :func:`chunked`; the
    engine's sharded blocking fan-out ships :func:`even_spans` boundaries
    instead and slices worker-side, so this helper is for callers that want
    the chunks themselves.
    """
    return [list(items[start:stop]) for start, stop in even_spans(len(items), parts)]


def timed_call(fn: Callable[[T], R], chunk: T) -> tuple[R, float, float]:
    """Run ``fn(chunk)`` and return ``(result, start, end)``.

    Module-level so that ``partial(timed_call, fn)`` stays picklable for the
    process pool; the interval is measured inside the worker and therefore
    excludes queueing and result-transfer time.  Endpoints are read from
    :func:`repro.obs.clock.now` — a system-wide monotonic clock, so
    worker-measured intervals land on the parent's trace timeline; the
    duration is simply ``end - start``.
    """
    start = clock.now()
    result = fn(chunk)
    return result, start, clock.now()


#: Per-worker shared state installed by the process-pool initializer (cold
#: mode only), so a large shared object is pickled once per *worker*
#: instead of once per *chunk task*.
_worker_shared: Any = None


def _install_shared(value: Any) -> None:
    global _worker_shared
    _worker_shared = value


def _timed_shared_call(
    fn: Callable[[Any, T], R], chunk: T
) -> tuple[R, float, float]:
    """Cold-mode worker task: ``fn(shared, chunk)`` with initializer state."""
    return timed_call(partial(fn, _worker_shared), chunk)


def _timed_epoch_call(
    fn: Callable[[Any, T], R], slot: str, epoch: int, path: str, chunk: T
) -> tuple[R, float, float, bool]:
    """Warm-mode worker task: fetch the epoch payload, then ``fn(payload, chunk)``.

    Returns ``(result, start, end, fetched)`` — ``fetched`` tells the parent
    whether this task actually loaded the payload (at most once per worker
    per epoch) or served it from the worker's cache.  Worker-side trace data
    rides back on this existing chunk-result channel; there is no separate
    IPC for observability.
    """
    payload, fetched = load_epoch_payload(slot, epoch, path)
    result, start, end = timed_call(partial(fn, payload), chunk)
    return result, start, end, fetched


class ChunkScheduler:
    """Runs chunk functions according to a :class:`RuntimeConfig`.

    ``recorder`` (default: the shared no-op) receives pool lifecycle events
    (executor spawns) and payload-fetch metrics; per-chunk spans flow through
    the profiler handed to :meth:`map_chunks`.  Recording never alters
    scheduling — results are byte-identical with or without a recorder.
    """

    def __init__(
        self, config: RuntimeConfig | None = None, recorder: Any = None
    ) -> None:
        self.config = config or RuntimeConfig()
        self.recorder = NULL_RECORDER if recorder is None else recorder
        self._pool: WorkerPool | None = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def pool(self) -> WorkerPool | None:
        """The persistent pool (``None`` until the first warm pooled call)."""
        return self._pool

    def warm_pool(self) -> WorkerPool:
        """The persistent pool, created lazily — once per scheduler.

        Sized from ``config.workers`` exactly; never resized or rebuilt
        because a call happens to carry fewer chunks than there are slots.
        """
        if self._pool is None:
            self._pool = WorkerPool(
                self.config.executor, self.config.workers, recorder=self.recorder
            )
        return self._pool

    def close(self) -> None:
        """Shut the persistent pool down and drop all published payloads.

        Idempotent, and never terminal: the next pooled call lazily creates
        a fresh pool.
        """
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "ChunkScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- executors ---------------------------------------------------------

    def _make_executor(self, num_tasks: int, initializer_state: Any = None) -> Executor:
        # Cold mode only: the pool lives for one map_chunks call, and the
        # process-pool initializer binds the workers to this call's shared
        # state.  The per-call ``min(workers, num_tasks)`` clamp is safe
        # here precisely because the pool is discarded afterwards — a warm
        # pool is sized once from the config instead (see WorkerPool).
        workers = min(self.config.workers, num_tasks)
        if self.recorder.enabled:
            self.recorder.event(
                "pool.spawn",
                executor=self.config.executor,
                workers=workers,
                mode="cold",
            )
            self.recorder.metrics.add("pool.spawns")
        if self.config.executor == "process":
            if initializer_state is not None:
                return ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_install_shared,
                    initargs=(initializer_state,),
                )
            return ProcessPoolExecutor(max_workers=workers)
        return ThreadPoolExecutor(max_workers=workers)

    def _should_pool(self, num_tasks: int) -> bool:
        return self.config.is_parallel and num_tasks > 1

    # -- mapping -----------------------------------------------------------

    def map_chunks(
        self,
        fn: Callable[..., Any],
        chunks: Sequence[Any],
        *,
        stage: str | None = None,
        profiler: StageProfiler | None = None,
        shared: Any = None,
        shared_anchors: tuple[Any, ...] | None = None,
        shared_version: Any = None,
        slot: str | None = None,
        items: Callable[[Any], int] | None = None,
    ) -> list[Any]:
        """Apply ``fn`` to every chunk, preserving chunk order.

        Without ``shared``, ``fn`` is called as ``fn(chunk)``.  With
        ``shared``, ``fn`` is called as ``fn(shared, chunk)`` and the shared
        object ships to process-pool workers out of band — via the epoch
        protocol under a warm pool (pickled once per payload revision), via
        the pool initializer in cold mode (once per worker per call) —
        while thread and serial execution pass it by reference for free.

        ``shared_anchors`` / ``shared_version`` identify the payload's
        revision for epoch reuse (see :meth:`WorkerPool.publish`); ``slot``
        names the payload family (defaults to ``stage``), so consecutive
        calls for the same stage can reuse a still-current payload.

        With ``stage`` and ``profiler`` set, each chunk's in-worker duration
        is recorded via :meth:`StageProfiler.record_chunk`; ``items``
        (optional) maps a chunk *result* to its item count — e.g. ``len``
        when each result is the produced list/array — so the profiler can
        also report per-chunk throughput.  It runs parent-side on the
        returned results, never in a worker.  Serial execution (one worker,
        or a single chunk) runs in-process without a pool.
        """
        if not chunks:
            return []
        bound = fn if shared is None else partial(fn, shared)
        if not self._should_pool(len(chunks)):
            results = []
            for chunk in chunks:
                result, start, end = timed_call(bound, chunk)
                self._record(profiler, stage, start, end, result, items)
                results.append(result)
            return results
        if self.config.warm_pool:
            return self._map_warm(
                fn, bound, chunks, stage, profiler, shared,
                shared_anchors, shared_version, slot or stage or "shared", items,
            )
        return self._map_cold(fn, bound, chunks, stage, profiler, shared, items)

    # -- warm mode ---------------------------------------------------------

    def _map_warm(
        self,
        fn: Callable[..., Any],
        bound: Callable[..., Any],
        chunks: Sequence[Any],
        stage: str | None,
        profiler: StageProfiler | None,
        shared: Any,
        shared_anchors: tuple[Any, ...] | None,
        shared_version: Any,
        slot: str,
        items: Callable[[Any], int] | None,
    ) -> list[Any]:
        pool = self.warm_pool()
        executor = pool.executor
        # Only process pools need payloads shipped; threads share memory.
        use_epochs = shared is not None and self.config.executor == "process"
        if use_epochs:
            published = pool.publish(
                slot, shared, anchors=shared_anchors, version=shared_version
            )
            futures: list[Future] = [
                executor.submit(
                    _timed_epoch_call,
                    fn, slot, published.epoch, published.path, chunk,
                )
                for chunk in chunks
            ]
        else:
            futures = [executor.submit(timed_call, bound, chunk) for chunk in chunks]
        raw = self._collect(futures, on_error=lambda: pool.dispose(cancel=True))
        results = []
        fetches = 0
        for item in raw:
            extra = None
            if use_epochs:
                result, start, end, fetched = item
                fetches += int(fetched)
                if self.recorder.enabled:
                    extra = {"fetched": bool(fetched)}
            else:
                result, start, end = item
            self._record(profiler, stage, start, end, result, items, extra)
            results.append(result)
        if use_epochs:
            pool.record_fetches(fetches)
            if self.recorder.enabled:
                # Payload-fetch accounting per task: a "hit" is a task served
                # from its worker's epoch cache, a "miss" re-read the spool.
                self.recorder.metrics.add("pool.payload.misses", fetches)
                self.recorder.metrics.add("pool.payload.hits", len(raw) - fetches)
        return results

    # -- cold mode (per-call pools, the pre-warm-pool behaviour) -----------

    def _map_cold(
        self,
        fn: Callable[..., Any],
        bound: Callable[..., Any],
        chunks: Sequence[Any],
        stage: str | None,
        profiler: StageProfiler | None,
        shared: Any,
        items: Callable[[Any], int] | None,
    ) -> list[Any]:
        # Decided once: process pools receive `shared` through the worker
        # initializer (pickled once per worker) and tasks fetch it from
        # worker state; all other routes carry it by reference via `bound`.
        use_initializer = shared is not None and self.config.executor == "process"
        executor = self._make_executor(
            len(chunks), initializer_state=shared if use_initializer else None
        )
        try:
            futures: list[Future] = [
                executor.submit(_timed_shared_call, fn, chunk)
                if use_initializer
                else executor.submit(timed_call, bound, chunk)
                for chunk in chunks
            ]
            raw = self._collect(
                futures,
                on_error=lambda: executor.shutdown(wait=True, cancel_futures=True),
            )
            results = []
            for result, start, end in raw:
                self._record(profiler, stage, start, end, result, items)
                results.append(result)
            return results
        finally:
            executor.shutdown(wait=True)

    # -- shared plumbing ---------------------------------------------------

    @staticmethod
    def _record(
        profiler: StageProfiler | None,
        stage: str | None,
        start: float,
        end: float,
        result: Any = None,
        items: Callable[[Any], int] | None = None,
        attributes: dict[str, Any] | None = None,
    ) -> None:
        if profiler is not None and stage is not None:
            profiler.record_chunk(
                stage,
                end - start,
                items=None if items is None else items(result),
                start=start,
                end=end,
                attributes=attributes,
            )

    @staticmethod
    def _collect(futures: list[Future], on_error: Callable[[], None]) -> list[Any]:
        """Drain futures in submission order, with the failure protocol.

        On success, returns every result in submission order.  On failure,
        cancels everything still pending, shuts the pool down via
        ``on_error`` and re-raises the *first worker exception* — earliest
        by submission order among the failed tasks — rather than whatever
        ``Future.result`` would have surfaced first.
        """
        done, _ = wait(futures, return_when=FIRST_EXCEPTION)
        if any(not f.cancelled() and f.exception() is not None for f in done):
            # Cancel everything still queued, let already-running tasks
            # drain, then pick the earliest failure by *submission* order —
            # completion order must not decide which exception surfaces.
            for future in futures:
                future.cancel()
            wait(futures)
            failure = next(
                future.exception()
                for future in futures
                if future.done()
                and not future.cancelled()
                and future.exception() is not None
            )
            on_error()
            raise failure
        return [future.result() for future in futures]
