"""The chunked scheduler: deterministic fan-out over a worker pool.

The scheduler owns exactly one concern: run one function over a list of
chunks — serially or on a :mod:`concurrent.futures` pool — and return the
per-chunk results *in submission order*, so pooled execution is
indistinguishable from serial execution for any per-chunk-pure function.
Out-of-order completion never leaks into results, which is what makes the
parallel pipeline byte-identical to the serial one.

Worker functions used with the process pool must be picklable: module-level
functions (optionally wrapped in :func:`functools.partial`) qualify,
closures and lambdas do not.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from functools import partial
from collections.abc import Callable, Sequence
from typing import Any, TypeVar

from repro.runtime.config import RuntimeConfig
from repro.runtime.profiler import StageProfiler

T = TypeVar("T")
R = TypeVar("R")


def chunked(items: Sequence[T], size: int) -> list[list[T]]:
    """Split ``items`` into consecutive chunks of at most ``size`` elements.

    The concatenation of the chunks is exactly ``items``; the empty sequence
    yields no chunks.
    """
    if size < 1:
        raise ValueError(f"chunk size must be a positive integer, got {size}")
    return [list(items[start:start + size]) for start in range(0, len(items), size)]


def even_spans(count: int, parts: int) -> list[tuple[int, int]]:
    """At most ``parts`` consecutive, near-equal ``(start, stop)`` spans.

    The index arithmetic behind :func:`split_evenly`, exposed separately so
    callers that only need boundaries (the sharded blocking fan-out ships
    spans, not copies) skip materialising the chunks.  Sizes differ by at
    most one (larger spans first), the spans tile ``range(count)`` exactly,
    and none is empty — fewer than ``parts`` spans when ``count < parts``.
    """
    if parts < 1:
        raise ValueError(f"parts must be a positive integer, got {parts}")
    parts = min(parts, count)
    if parts == 0:
        return []
    base, extra = divmod(count, parts)
    spans: list[tuple[int, int]] = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        spans.append((start, start + size))
        start += size
    return spans


def split_evenly(items: Sequence[T], parts: int) -> list[list[T]]:
    """Split ``items`` into at most ``parts`` consecutive, near-equal chunks.

    Sizes differ by at most one (the larger chunks come first), the
    concatenation of the chunks is exactly ``items``, and no chunk is empty
    — fewer than ``parts`` chunks are returned when there are fewer items.
    The count-based, list-materialising counterpart of :func:`chunked`; the
    engine's sharded blocking fan-out ships :func:`even_spans` boundaries
    instead and slices worker-side, so this helper is for callers that want
    the chunks themselves.
    """
    return [list(items[start:stop]) for start, stop in even_spans(len(items), parts)]


def timed_call(fn: Callable[[T], R], chunk: T) -> tuple[R, float]:
    """Run ``fn(chunk)`` and return ``(result, seconds)``.

    Module-level so that ``partial(timed_call, fn)`` stays picklable for the
    process pool; the duration is measured inside the worker and therefore
    excludes queueing and result-transfer time.
    """
    start = time.perf_counter()
    result = fn(chunk)
    return result, time.perf_counter() - start


#: Per-worker shared state installed by the process-pool initializer, so a
#: large shared object (a matcher with weight matrices, a dataset) is
#: pickled once per *worker* instead of once per *chunk task*.
_worker_shared: Any = None


def _install_shared(value: Any) -> None:
    global _worker_shared
    _worker_shared = value


def _timed_shared_call(fn: Callable[[Any, T], R], chunk: T) -> tuple[R, float]:
    """Worker task: ``fn(shared, chunk)`` with the per-worker shared state."""
    return timed_call(partial(fn, _worker_shared), chunk)


class ChunkScheduler:
    """Runs chunk functions according to a :class:`RuntimeConfig`."""

    def __init__(self, config: RuntimeConfig | None = None) -> None:
        self.config = config or RuntimeConfig()

    # -- executors ---------------------------------------------------------

    def _make_executor(self, num_tasks: int, initializer_state: Any = None) -> Executor:
        # The pool lives for one map_chunks call: the process-pool
        # initializer binds the workers to this call's shared state, so a
        # longer-lived pool would serve stale state to the next stage.
        # (Persistent pools across runs are a ROADMAP item.)
        workers = min(self.config.workers, num_tasks)
        if self.config.executor == "process":
            if initializer_state is not None:
                return ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_install_shared,
                    initargs=(initializer_state,),
                )
            return ProcessPoolExecutor(max_workers=workers)
        return ThreadPoolExecutor(max_workers=workers)

    def _should_pool(self, num_tasks: int) -> bool:
        return self.config.is_parallel and num_tasks > 1

    # -- mapping -----------------------------------------------------------

    def map_chunks(
        self,
        fn: Callable[..., Any],
        chunks: Sequence[Any],
        *,
        stage: str | None = None,
        profiler: StageProfiler | None = None,
        shared: Any = None,
    ) -> list[Any]:
        """Apply ``fn`` to every chunk, preserving chunk order.

        Without ``shared``, ``fn`` is called as ``fn(chunk)``.  With
        ``shared``, ``fn`` is called as ``fn(shared, chunk)`` and the shared
        object is shipped to each process-pool worker exactly once (via the
        pool initializer) instead of riding along with every chunk task —
        thread and serial execution pass it by reference for free.

        With ``stage`` and ``profiler`` set, each chunk's in-worker duration
        is recorded via :meth:`StageProfiler.record_chunk`.  Serial execution
        (one worker, or a single chunk) runs in-process without a pool.
        """
        if not chunks:
            return []
        bound = fn if shared is None else partial(fn, shared)
        if not self._should_pool(len(chunks)):
            results = []
            for chunk in chunks:
                result, seconds = timed_call(bound, chunk)
                if profiler is not None and stage is not None:
                    profiler.record_chunk(stage, seconds)
                results.append(result)
            return results

        # Decided once: process pools receive `shared` through the worker
        # initializer (pickled once per worker) and tasks fetch it from
        # worker state; all other routes carry it by reference via `bound`.
        use_initializer = shared is not None and self.config.executor == "process"
        with self._make_executor(
            len(chunks), initializer_state=shared if use_initializer else None
        ) as executor:
            futures: list[Future] = [
                executor.submit(_timed_shared_call, fn, chunk)
                if use_initializer
                else executor.submit(timed_call, bound, chunk)
                for chunk in chunks
            ]
            results = []
            for future in futures:  # submission order, not completion order
                result, seconds = future.result()
                if profiler is not None and stage is not None:
                    profiler.record_chunk(stage, seconds)
                results.append(result)
            return results
