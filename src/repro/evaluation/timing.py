"""LLM pairwise-matching cost model.

Section 5.2: the authors considered LlaMa2-7B for pairwise matching, measured
roughly 7 seconds per candidate pair and concluded the full matching would
take 90+ days, ruling LLMs out for datasets of this size.  We cannot (and
need not) run an LLM offline; the cost model below reproduces the argument
quantitatively and is exercised by a benchmark so the claim stays checked.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LlmCostModel:
    """Extrapolates total matching time from a per-pair latency."""

    #: Average seconds to generate one Match/NoMatch answer (paper: ~7 s).
    seconds_per_pair: float = 7.0

    def __post_init__(self) -> None:
        if self.seconds_per_pair <= 0:
            raise ValueError("seconds_per_pair must be positive")

    def total_seconds(self, num_pairs: int) -> float:
        if num_pairs < 0:
            raise ValueError("num_pairs must be non-negative")
        return num_pairs * self.seconds_per_pair

    def total_days(self, num_pairs: int) -> float:
        return self.total_seconds(num_pairs) / 86_400.0

    def is_feasible(self, num_pairs: int, budget_days: float = 7.0) -> bool:
        """Whether the matching would finish within ``budget_days``."""
        if budget_days <= 0:
            raise ValueError("budget_days must be positive")
        return self.total_days(num_pairs) <= budget_days

    def speedup_required(self, num_pairs: int, budget_days: float = 7.0) -> float:
        """Factor by which per-pair latency must drop to fit the budget."""
        days = self.total_days(num_pairs)
        if days == 0:
            return 1.0
        return max(1.0, days / budget_days)
