"""Experiment harness: splits, fine-tuning evaluation, end-to-end runs, tables.

* :mod:`repro.evaluation.splits` — group-wise 60/20/20 train/validation/test
  splits (Section 5.1.3),
* :mod:`repro.evaluation.finetune` — Table 3: fine-tuning scores on the test
  split pairs,
* :mod:`repro.evaluation.experiment` — Table 4: the end-to-end entity group
  matching experiment with the three-stage scoring,
* :mod:`repro.evaluation.reporting` — plain-text table rendering used by the
  benchmark harness,
* :mod:`repro.evaluation.timing` — the LLM cost model used to reproduce the
  paper's argument that LLM pairwise matching is infeasible at this scale.
"""

from repro.evaluation.splits import DatasetSplits, split_dataset
from repro.evaluation.finetune import FineTuneEvaluation, evaluate_fine_tuning
from repro.evaluation.experiment import (
    EntityGroupMatchingExperiment,
    ExperimentConfig,
    ExperimentResult,
)
from repro.evaluation.reporting import format_table, rows_to_table
from repro.evaluation.timing import LlmCostModel

__all__ = [
    "DatasetSplits",
    "split_dataset",
    "FineTuneEvaluation",
    "evaluate_fine_tuning",
    "EntityGroupMatchingExperiment",
    "ExperimentConfig",
    "ExperimentResult",
    "format_table",
    "rows_to_table",
    "LlmCostModel",
]
