"""Train / validation / test splits along record groups.

Section 5.1.3: "we divide the records of the datasets into train, validation
and test splits, each containing all the records belonging to 60%/20%/20% of
the ground truth record groups.  We split along the record groups to make
sure that the set of true matches of each entity belongs exclusively to one
split, preventing models from memorizing pairs."

For the WDC Products experiments the test split additionally contains 100%
*unseen* entities, which group-wise splitting guarantees by construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datagen.records import Dataset


@dataclass(frozen=True)
class DatasetSplits:
    """Entity-id lists for the three splits of one dataset."""

    train_entities: tuple[str, ...]
    validation_entities: tuple[str, ...]
    test_entities: tuple[str, ...]

    def restrict(self, dataset: Dataset, split: str) -> Dataset:
        """Materialise one split as a dataset of its records."""
        entities = {
            "train": self.train_entities,
            "validation": self.validation_entities,
            "test": self.test_entities,
        }.get(split)
        if entities is None:
            raise ValueError("split must be 'train', 'validation' or 'test'")
        return dataset.subset_by_entities(entities, name=f"{dataset.name}-{split}")

    @property
    def num_entities(self) -> int:
        return (
            len(self.train_entities)
            + len(self.validation_entities)
            + len(self.test_entities)
        )


def split_dataset(
    dataset: Dataset,
    train_fraction: float = 0.6,
    validation_fraction: float = 0.2,
    seed: int = 0,
) -> DatasetSplits:
    """Split the dataset's ground-truth groups 60/20/20 (by default).

    The split is over *entities* (groups), so the record counts per split
    vary slightly with group sizes, exactly as noted in the paper's footnote.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    if not 0.0 < validation_fraction < 1.0:
        raise ValueError("validation_fraction must be in (0, 1)")
    if train_fraction + validation_fraction >= 1.0:
        raise ValueError("train + validation fractions must leave room for the test split")

    entities = sorted(dataset.entity_groups())
    rng = random.Random(seed)
    rng.shuffle(entities)

    num_train = int(len(entities) * train_fraction)
    num_validation = int(len(entities) * validation_fraction)
    train = entities[:num_train]
    validation = entities[num_train:num_train + num_validation]
    test = entities[num_train + num_validation:]
    return DatasetSplits(
        train_entities=tuple(train),
        validation_entities=tuple(validation),
        test_entities=tuple(test),
    )
