"""Plain-text table rendering for the benchmark harness.

The benchmark scripts print the same rows the paper's tables report; this
module renders lists of row dictionaries as aligned monospace tables so the
output of ``pytest benchmarks/ --benchmark-only`` is directly comparable to
the tables in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def _format_value(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def rows_to_table(rows: Sequence[Mapping[str, object]]) -> list[list[str]]:
    """Normalise row dictionaries into a header + string cell matrix."""
    if not rows:
        return []
    columns: list[str] = []
    for row in rows:
        for column in row:
            if column not in columns:
                columns.append(column)
    table = [columns]
    for row in rows:
        table.append([_format_value(row.get(column)) for column in columns])
    return table


def format_table(rows: Sequence[Mapping[str, object]], title: str | None = None) -> str:
    """Render rows as an aligned monospace table."""
    table = rows_to_table(rows)
    if not table:
        return f"{title}\n(no rows)" if title else "(no rows)"

    widths = [
        max(len(row[column_index]) for row in table)
        for column_index in range(len(table[0]))
    ]
    lines = []
    if title:
        lines.append(title)
    header, *body = table
    lines.append(" | ".join(cell.ljust(width) for cell, width in zip(header, widths)))
    lines.append("-+-".join("-" * width for width in widths))
    for row in body:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)
