"""Fine-tuning evaluation (Table 3).

For every model setup, fine-tune on the train split, select the best epoch on
the validation split and score Match / NoMatch classification on the *test
split pairs* (all positives of the test groups plus 5:1 sampled negatives).
This mirrors Table 3 of the paper: pairwise precision / recall / F1 plus the
wall-clock training time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import PairwiseScores, pairwise_scores
from repro.datagen.records import Dataset
from repro.evaluation.splits import DatasetSplits
from repro.matching.models import MODEL_SPECS, ModelSpec
from repro.matching.pairs import as_record_pairs
from repro.matching.training import FineTuner


@dataclass
class FineTuneEvaluation:
    """One Table 3 row: test-pair scores of one fine-tuned model."""

    dataset: str
    model: str
    scores: PairwiseScores
    training_seconds: float
    num_training_pairs: int
    num_test_pairs: int

    def as_row(self) -> dict[str, object]:
        return {
            "Dataset": self.dataset,
            "Model": self.model,
            "Precision": round(100 * self.scores.precision, 2),
            "Recall": round(100 * self.scores.recall, 2),
            "F1 Score": round(100 * self.scores.f1, 2),
            "Training Time (s)": round(self.training_seconds, 2),
        }


def evaluate_fine_tuning(
    dataset: Dataset,
    splits: DatasetSplits,
    model: ModelSpec | str,
    tuner: FineTuner | None = None,
) -> FineTuneEvaluation:
    """Fine-tune ``model`` and score it on the test-split pairs."""
    if isinstance(model, str):
        model = MODEL_SPECS[model]
    tuner = tuner or FineTuner()

    result = tuner.fine_tune(
        model,
        dataset,
        train_entities=splits.train_entities,
        validation_entities=splits.validation_entities,
    )

    # Test pairs always use the full (non-reduced) sampling so all models are
    # scored on the identical pair set.
    test_spec = MODEL_SPECS["distilbert-128-all"]
    test_pairs = tuner.build_pairs(dataset, splits.test_entities, test_spec)
    record_pairs, labels = as_record_pairs(test_pairs)
    predictions = result.matcher.predict(record_pairs)

    predicted_matches = [
        (left.record_id, right.record_id)
        for (left, right), predicted in zip(record_pairs, predictions)
        if predicted
    ]
    true_matches = [
        (left.record_id, right.record_id)
        for (left, right), label in zip(record_pairs, labels)
        if label == 1
    ]
    scores = pairwise_scores(predicted_matches, true_matches)

    return FineTuneEvaluation(
        dataset=dataset.name,
        model=model.name,
        scores=scores,
        training_seconds=result.training_seconds,
        num_training_pairs=result.num_training_pairs,
        num_test_pairs=len(test_pairs),
    )
