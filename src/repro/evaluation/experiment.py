"""The end-to-end entity group matching experiment (Table 4).

For one dataset and one model setup:

1. fine-tune the pairwise matcher on the train/validation splits,
2. run the full pipeline (blocking → pairwise matching → pre-cleanup →
   GraLMatch) on the *whole* dataset,
3. score the three stages of Section 5.3.2: pairwise matching (blocking
   pairs), Pre Graph Cleanup (with transitive matches) and Post Graph Cleanup
   (the final groups), plus the Cluster Purity Score and inference time.

The blocking recipe per dataset follows Table 2: companies use
ID Overlap + Token Overlap, securities use ID Overlap + Issuer Match (with
the issuer groups coming from a company matching or from the ground truth
for oracle ablations), WDC Products uses Token Overlap only.  The recipes
are data (:data:`repro.specs.pipeline.BLOCKING_RECIPES`) resolved through
the component registry, so spec files and externally registered blockings
plug in without touching this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.blocking.base import Blocking
from repro.core.cleanup import CleanupConfig
from repro.core.metrics import (
    GroupMatchingScores,
    PairwiseScores,
    group_matching_scores,
    pairwise_scores,
)
from repro.core.pipeline import EntityGroupMatchingPipeline, PipelineResult
from repro.core.precleanup import PreCleanupConfig
from repro.datagen.records import Dataset
from repro.evaluation.splits import DatasetSplits, split_dataset
from repro.matching.models import ModelSpec, resolve_model_spec
from repro.matching.training import FineTuner
from repro.runtime import RuntimeConfig
from repro.specs.pipeline import (
    BLOCKING_RECIPES,
    CleanupSpec,
    ComponentSpec,
    PipelineSpec,
)


@dataclass
class ExperimentConfig:
    """Configuration of one Table 4 run."""

    #: Named model spec (see :data:`repro.matching.models.MODEL_SPECS`).
    model: str = "distilbert-128-all"
    #: "companies", "securities" or "products" — selects the blocking recipe.
    dataset_kind: str = "companies"
    #: Graph clean-up thresholds (γ, μ); defaults follow Table 2 given the
    #: number of sources when left unset.
    cleanup: CleanupConfig | None = None
    #: Pre-cleanup rule; enabled for companies by default, disabled otherwise.
    pre_cleanup: PreCleanupConfig | None = None
    #: Token-overlap top-n.
    token_top_n: int = 5
    #: Negative sampling ratio for fine-tuning.
    negative_ratio: int = 5
    #: Epochs for trainable matchers.
    num_epochs: int = 3
    #: Split / sampling seed.
    seed: int = 0
    #: For securities: company record-id groups used by the Issuer Match
    #: blocking.  ``None`` falls back to the ground-truth issuer groups
    #: (oracle issuer matching), which is what the unit benches use.
    issuer_groups: list[list[str]] | None = field(default=None)
    #: Explicit blocking component list (registry names + params); ``None``
    #: uses the Table 2 recipe for ``dataset_kind``.
    blocking: tuple[ComponentSpec, ...] | None = None
    #: Partial clean-up thresholds from a declarative spec; unset fields are
    #: derived from the dataset's source count at run time.  Ignored when
    #: ``cleanup`` is set explicitly.
    cleanup_spec: CleanupSpec | None = None
    #: Named graph clean-up strategy (see :data:`repro.registry.CLEANUPS`).
    cleanup_strategy: str = "gralmatch"
    #: Execution-engine settings (workers, batch size, pool flavour);
    #: ``None`` runs the serial engine.
    runtime: RuntimeConfig | None = None


@dataclass
class ExperimentResult:
    """One Table 4 row with all three evaluation stages."""

    dataset: str
    model: str
    num_records: int
    num_candidates: int
    pairwise: PairwiseScores
    pre_cleanup: GroupMatchingScores
    post_cleanup: GroupMatchingScores
    inference_seconds: float
    graph_seconds: float
    gamma: int | None
    mu: int
    pipeline_result: PipelineResult

    def as_row(self) -> dict[str, object]:
        return {
            "Dataset": self.dataset,
            "Model": self.model,
            "# Candidates": self.num_candidates,
            "Pairwise P": round(100 * self.pairwise.precision, 2),
            "Pairwise R": round(100 * self.pairwise.recall, 2),
            "Pairwise F1": round(100 * self.pairwise.f1, 2),
            "Pre P": round(100 * self.pre_cleanup.precision, 2),
            "Pre R": round(100 * self.pre_cleanup.recall, 2),
            "Pre F1": round(100 * self.pre_cleanup.f1, 2),
            "Pre ClPur": round(self.pre_cleanup.cluster_purity, 2),
            "Post P": round(100 * self.post_cleanup.precision, 2),
            "Post R": round(100 * self.post_cleanup.recall, 2),
            "Post F1": round(100 * self.post_cleanup.f1, 2),
            "Post ClPur": round(self.post_cleanup.cluster_purity, 2),
            "Inference (s)": round(self.inference_seconds, 2),
        }


class EntityGroupMatchingExperiment:
    """Runs the fine-tune + end-to-end-match experiment for one dataset."""

    def __init__(self, dataset: Dataset, config: ExperimentConfig | None = None) -> None:
        self.dataset = dataset
        self.config = config or ExperimentConfig()
        self.splits: DatasetSplits = split_dataset(dataset, seed=self.config.seed)

    # -- components ------------------------------------------------------------------

    def blocking_specs(self) -> tuple[ComponentSpec, ...]:
        """The effective blocking components: explicit config, else Table 2."""
        if self.config.blocking is not None:
            return tuple(self.config.blocking)
        kind = self.config.dataset_kind
        try:
            return BLOCKING_RECIPES[kind]
        except KeyError:
            raise ValueError(f"unknown dataset kind: {kind!r}") from None

    def build_blocking(self) -> Blocking:
        """Resolve the blocking components through the spec builder.

        Experiment-level context the spec file cannot carry is injected as
        ``extra_params``: the ``token_overlap`` top-n default and the
        ``issuer_match`` company-group mapping (from the configured company
        matching, or the ground-truth issuer groups as the oracle
        fallback).  Explicit component params always win over injected
        ones, so a spec that pins its own groups — or merely tweaks an
        unrelated param like ``cross_source_only`` — composes correctly.
        """
        specs = self.blocking_specs()
        extra_params: dict[str, dict] = {
            "token_overlap": {"top_n": self.config.token_top_n},
        }
        if any(component.name == "issuer_match" for component in specs):
            if self.config.issuer_groups is not None:
                extra_params["issuer_match"] = {
                    "issuer_groups": self.config.issuer_groups
                }
            else:
                extra_params["issuer_match"] = {
                    "issuer_group_of": self._ground_truth_issuer_groups()
                }
        return PipelineSpec(blocking=specs).build_blocking(extra_params)

    def _ground_truth_issuer_groups(self) -> dict[str, int]:
        """Issuer groups derived from the records' issuer entity ids."""
        mapping: dict[str, int] = {}
        group_index: dict[str, int] = {}
        for record in self.dataset:
            issuer_record_id = getattr(record, "issuer_record_id", None)
            issuer_entity_id = getattr(record, "issuer_entity_id", None)
            if issuer_record_id is None or issuer_entity_id is None:
                continue
            index = group_index.setdefault(issuer_entity_id, len(group_index))
            mapping[issuer_record_id] = index
        return mapping

    def build_cleanup_config(self) -> CleanupConfig:
        if self.config.cleanup is not None:
            return self.config.cleanup
        num_sources = len(self.dataset.sources)
        if self.config.cleanup_spec is not None:
            # Partial spec: unset thresholds derive from the dataset here,
            # where the source count is known (mu = #sources, gamma = 5*mu).
            return PipelineSpec(
                cleanup=self.config.cleanup_spec
            ).build_cleanup_config(num_sources)
        return CleanupConfig.for_num_sources(num_sources)

    def build_pre_cleanup_config(self) -> PreCleanupConfig:
        if self.config.pre_cleanup is not None:
            return self.config.pre_cleanup
        return PreCleanupConfig(enabled=self.config.dataset_kind == "companies")

    # -- the run -----------------------------------------------------------------------

    def run(self, model: str | ModelSpec | None = None) -> ExperimentResult:
        """Fine-tune the model and run the end-to-end matching."""
        spec = resolve_model_spec(model or self.config.model)
        pipeline = self._assemble_pipeline(spec)
        try:
            result = pipeline.run(self.dataset)
        finally:
            # The pipeline (and its warm worker pool) lives for this one
            # run; closing is lazy-respawn-safe even for shared runtimes.
            pipeline.close()
        return self._score(spec, pipeline.cleanup_config, result)

    def build_pipeline(
        self, model: str | ModelSpec | None = None
    ) -> EntityGroupMatchingPipeline:
        """Fine-tune the configured model and assemble the pipeline around
        it, *without* running it.

        The entry point the incremental-ingestion subsystem shares with
        :meth:`run`: both construct the exact same fitted matcher and
        components (the fine-tuning protocol is deterministic given the
        dataset and seed), which is what makes a persistent state
        initialised from a training corpus produce groups byte-identical to
        ``run()`` on that corpus.
        """
        return self._assemble_pipeline(resolve_model_spec(model or self.config.model))

    def _assemble_pipeline(self, spec: ModelSpec) -> EntityGroupMatchingPipeline:
        tuner = FineTuner(
            negative_ratio=self.config.negative_ratio,
            num_epochs=self.config.num_epochs,
            seed=self.config.seed,
        )
        fine_tuned = tuner.fine_tune(
            spec,
            self.dataset,
            train_entities=self.splits.train_entities,
            validation_entities=self.splits.validation_entities,
        )
        return EntityGroupMatchingPipeline(
            matcher=fine_tuned.matcher,
            blocking=self.build_blocking(),
            cleanup_config=self.build_cleanup_config(),
            pre_cleanup_config=self.build_pre_cleanup_config(),
            runtime=self.config.runtime,
            cleanup_strategy=self.config.cleanup_strategy,
        )

    def _score(
        self,
        spec: ModelSpec,
        cleanup_config: CleanupConfig,
        result: PipelineResult,
    ) -> ExperimentResult:
        truth = self.dataset.true_matches()
        return ExperimentResult(
            dataset=self.dataset.name,
            model=spec.name,
            num_records=len(self.dataset),
            num_candidates=result.num_candidates,
            pairwise=pairwise_scores(result.positive_edges, truth),
            pre_cleanup=group_matching_scores(result.pre_cleanup_groups, truth),
            post_cleanup=group_matching_scores(result.groups, truth),
            inference_seconds=result.inference_seconds,
            graph_seconds=result.graph_seconds,
            gamma=cleanup_config.gamma,
            mu=cleanup_config.mu,
            pipeline_result=result,
        )
