"""Named component registries: the lookup layer of the declarative API.

The declarative pipeline specs (:mod:`repro.specs`) describe *what* to run
as data — ``{"name": "token_overlap", "params": {"top_n": 5}}`` — and the
registries resolve those names to component factories.  Three registries
cover the pipeline's pluggable axes:

* **blockings** (:data:`BLOCKINGS`, :func:`register_blocking`) — candidate
  pair generators, keyed by the same name the blocking stamps on its
  candidates (``id_overlap``, ``token_overlap``, ``issuer_match``),
* **matchers** (:data:`MATCHERS`, :func:`register_matcher`) — pairwise
  matcher factories keyed by model *kind* (``transformer``, ``logistic``,
  ``id-overlap``); the named model zoo of
  :data:`repro.matching.models.MODEL_SPECS` layers on top,
* **cleanups** (:data:`CLEANUPS`, :func:`register_cleanup`) — graph clean-up
  strategies ``(edges, config) -> (components, report)`` (``gralmatch``,
  ``bridge_removal``, ``adaptive``).

Third-party components register with the decorators and become available to
every spec by name::

    from repro.registry import register_blocking
    from repro.blocking.base import Blocking

    @register_blocking("sharded_token_overlap")
    class ShardedTokenOverlapBlocking(Blocking):
        ...

Built-in components live in modules that are only imported on demand, so
the registries stay import-cycle-free and lookups stay lazy.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import Any, TypeVar

FactoryT = TypeVar("FactoryT", bound=Callable[..., Any])


class RegistryError(LookupError):
    """Raised for unknown or duplicate component names."""


class ComponentRegistry:
    """A name → factory mapping with helpful failure modes.

    ``kind`` labels error messages (e.g. ``"blocking"``); ``builtins`` names
    the modules whose import registers the built-in components, resolved
    lazily on first lookup so registration never forces eager imports.
    """

    def __init__(self, kind: str, builtins: Iterable[str] = ()) -> None:
        self.kind = kind
        self._factories: dict[str, Callable[..., Any]] = {}
        self._builtin_modules = tuple(builtins)
        self._builtins_loaded = False

    # -- registration -------------------------------------------------------

    def register(self, name: str) -> Callable[[FactoryT], FactoryT]:
        """Decorator registering ``factory`` under ``name``.

        Duplicate names are rejected — shadowing a registered component
        silently would make specs mean different things in different import
        orders.  Use :meth:`unregister` first to deliberately replace one.
        The built-in modules are imported before the duplicate check so that
        shadowing a builtin fails *here*, at the offending registration, not
        later from inside an unrelated lookup.  (Re-entrant registrations
        from those imports are safe: the loaded flag is set first.)
        """
        if not name or not isinstance(name, str):
            raise RegistryError(f"{self.kind} name must be a non-empty string")
        self._load_builtins()

        def decorator(factory: FactoryT) -> FactoryT:
            if name in self._factories:
                raise RegistryError(
                    f"{self.kind} {name!r} is already registered "
                    f"(to {self._factories[name]!r}); unregister it first "
                    f"to replace it"
                )
            self._factories[name] = factory
            return factory

        return decorator

    def unregister(self, name: str) -> None:
        """Remove ``name`` (KeyError via :class:`RegistryError` if absent)."""
        self._load_builtins()
        if name not in self._factories:
            raise RegistryError(self._unknown_message(name))
        del self._factories[name]

    # -- lookup -------------------------------------------------------------

    def get(self, name: str) -> Callable[..., Any]:
        """Return the factory registered under ``name``."""
        self._load_builtins()
        try:
            return self._factories[name]
        except KeyError:
            raise RegistryError(self._unknown_message(name)) from None

    def create(self, name: str, /, **params: Any) -> Any:
        """Instantiate the component ``name`` with keyword ``params``."""
        factory = self.get(name)
        try:
            return factory(**params)
        except TypeError as error:
            raise RegistryError(
                f"invalid params for {self.kind} {name!r}: {error}"
            ) from error

    def names(self) -> list[str]:
        """Sorted names of every registered component."""
        self._load_builtins()
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        self._load_builtins()
        return name in self._factories

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ComponentRegistry({self.kind!r}, names={self.names()})"

    # -- internals ----------------------------------------------------------

    def _unknown_message(self, name: str) -> str:
        registered = ", ".join(repr(n) for n in sorted(self._factories)) or "none"
        return f"unknown {self.kind} {name!r}; registered: {registered}"

    def _load_builtins(self) -> None:
        if self._builtins_loaded:
            return
        import sys

        # A builtin module that is itself mid-import (its decorators are
        # running right now) may not have defined all its names yet, so
        # importing its siblings here could read partially initialized
        # modules.  Defer — the next lookup retries, and by then the
        # in-flight import has finished.
        for module in self._builtin_modules:
            existing = sys.modules.get(module)
            spec = getattr(existing, "__spec__", None)
            if existing is not None and getattr(spec, "_initializing", False):
                return
        self._builtins_loaded = True
        from importlib import import_module

        for module in self._builtin_modules:
            import_module(module)


#: Candidate pair generators (see :mod:`repro.blocking`).
BLOCKINGS = ComponentRegistry(
    "blocking",
    builtins=(
        "repro.blocking.id_overlap",
        "repro.blocking.token_overlap",
        "repro.blocking.issuer_match",
        "repro.blocking.combine",
    ),
)

#: Pairwise matcher factories by model kind (see :mod:`repro.matching.models`).
MATCHERS = ComponentRegistry("matcher", builtins=("repro.matching.models",))

#: Graph clean-up strategies ``(edges, config) -> (components, report)``.
CLEANUPS = ComponentRegistry(
    "cleanup",
    builtins=("repro.core.cleanup", "repro.core.cleanup_variants"),
)


def register_blocking(name: str):
    """Register a :class:`~repro.blocking.base.Blocking` factory under ``name``."""
    return BLOCKINGS.register(name)


def register_matcher(name: str):
    """Register a pairwise matcher factory under model-kind ``name``."""
    return MATCHERS.register(name)


def register_cleanup(name: str):
    """Register a clean-up strategy ``(edges, config) -> (components, report)``."""
    return CLEANUPS.register(name)
