"""Evaluation metrics: pairwise scores, group scores and Cluster Purity.

The experiments score three stages (Section 5.3.2):

1. *Pairwise matching* — the positively predicted candidate pairs, scored
   against **all** ground-truth matches of the dataset (so recall is bounded
   by the blocking).
2. *Pre Graph Cleanup* — the predictions plus all implied transitive
   matches.
3. *Post Graph Cleanup* — the groups produced by GraLMatch, again with all
   intra-group pairs counted.

All three use precision / recall / F1 over unordered record pairs.  The
group stages additionally report the Cluster Purity Score (Section 5.3.3):
the size-weighted average share of true-positive pairs per produced group.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

from repro.core.groups import EntityGroups
from repro.graphs.graph import Edge, canonical_edge


@dataclass(frozen=True)
class PairwiseScores:
    """Precision / recall / F1 over unordered record pairs."""

    precision: float
    recall: float
    f1: float
    true_positives: int
    false_positives: int
    false_negatives: int

    def as_row(self) -> dict[str, float]:
        return {
            "precision": round(100 * self.precision, 2),
            "recall": round(100 * self.recall, 2),
            "f1": round(100 * self.f1, 2),
        }


@dataclass(frozen=True)
class GroupMatchingScores:
    """Pair scores of a group assignment plus its Cluster Purity."""

    precision: float
    recall: float
    f1: float
    cluster_purity: float
    num_groups: int
    largest_group: int

    def as_row(self) -> dict[str, float]:
        return {
            "precision": round(100 * self.precision, 2),
            "recall": round(100 * self.recall, 2),
            "f1": round(100 * self.f1, 2),
            "cluster_purity": round(self.cluster_purity, 2),
        }


def _canonicalise(edges: Iterable[tuple[str, str]]) -> set[Edge]:
    return {canonical_edge(left, right) for left, right in edges}


def precision_recall_f1(
    predicted: set[Edge], truth: set[Edge]
) -> tuple[float, float, float, int, int, int]:
    """Core pair-level computation shared by both score types."""
    true_positives = len(predicted & truth)
    false_positives = len(predicted - truth)
    false_negatives = len(truth - predicted)

    precision = (
        true_positives / (true_positives + false_positives)
        if predicted
        else (1.0 if not truth else 0.0)
    )
    recall = (
        true_positives / (true_positives + false_negatives)
        if truth
        else 1.0
    )
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall > 0
        else 0.0
    )
    return precision, recall, f1, true_positives, false_positives, false_negatives


def pairwise_scores(
    predicted_matches: Iterable[tuple[str, str]],
    true_matches: Iterable[tuple[str, str]],
) -> PairwiseScores:
    """Score a set of predicted match pairs against the ground truth."""
    predicted = _canonicalise(predicted_matches)
    truth = _canonicalise(true_matches)
    precision, recall, f1, tp, fp, fn = precision_recall_f1(predicted, truth)
    return PairwiseScores(precision, recall, f1, tp, fp, fn)


def cluster_purity(
    groups: EntityGroups,
    true_matches: Iterable[tuple[str, str]],
) -> float:
    """Cluster Purity Score of a group assignment (Section 5.3.3).

    For every produced group ``c_i`` (interpreted as a complete graph) the
    share of its pairs that are true matches is computed and the shares are
    averaged weighted by group size.  Singleton groups have no pairs and are
    counted as pure, which matches the intuition that an unmatched record
    cannot contaminate any downstream aggregation.
    """
    truth = _canonicalise(true_matches)
    total_weight = 0
    weighted_purity = 0.0
    for group in groups:
        size = len(group)
        total_weight += size
        num_edges = size * (size - 1) // 2
        if num_edges == 0:
            weighted_purity += size * 1.0
            continue
        members = sorted(group)
        true_pairs = 0
        for i, left in enumerate(members):
            for right in members[i + 1:]:
                if canonical_edge(left, right) in truth:
                    true_pairs += 1
        weighted_purity += size * (true_pairs / num_edges)
    if total_weight == 0:
        return 1.0
    return weighted_purity / total_weight


def group_matching_scores(
    groups: EntityGroups,
    true_matches: Iterable[tuple[str, str]],
) -> GroupMatchingScores:
    """Score a group assignment: pair precision / recall / F1 + Cluster Purity."""
    truth = _canonicalise(true_matches)
    predicted = groups.match_edges()
    precision, recall, f1, *_ = precision_recall_f1(predicted, truth)
    purity = cluster_purity(groups, truth)
    sizes = groups.group_sizes()
    return GroupMatchingScores(
        precision=precision,
        recall=recall,
        f1=f1,
        cluster_purity=purity,
        num_groups=len(groups),
        largest_group=sizes[0] if sizes else 0,
    )
