"""Alternative graph clean-up strategies.

The paper (Section 4.2) notes that "different approaches can be employed to
discover good candidate edges for removal" and that Algorithm 1's fixed
group-size cap is a poor fit for datasets with heterogeneous group sizes
such as WDC Products (Section 6.2.3).  This module implements two
alternatives that the ablation benchmark compares against Algorithm 1:

* :func:`bridge_removal_cleanup` — remove *bridge* edges from oversized
  components first (cheap, targets exactly the single-spurious-edge
  failure mode), then fall back to Algorithm 1 for what remains.
* :func:`adaptive_cleanup` — like Algorithm 1, but instead of a hard ``mu``
  cap it stops splitting a component once its edge density exceeds a
  threshold, allowing genuinely large, densely confirmed groups to survive
  (the behaviour one would want for web-scraped product offers).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.cleanup import CleanupConfig, CleanupReport, gralmatch_cleanup
from repro.graphs.betweenness import max_betweenness_edge
from repro.graphs.bridges import bridges
from repro.graphs.components import connected_components
from repro.graphs.graph import Graph
from repro.graphs.validation import density
from repro.registry import register_cleanup


@register_cleanup("bridge_removal")
def bridge_removal_cleanup(
    edges: Iterable[tuple[str, str]],
    config: CleanupConfig | None = None,
) -> tuple[list[set[str]], CleanupReport]:
    """Remove bridges from oversized components, then run Algorithm 1.

    Bridges inside components larger than ``mu`` are removed in one pass —
    they are exactly the "single false positive joining two groups" pattern
    of Figure 4 and cost O(n + m) to find.  Components that are still too
    large afterwards (false positives forming parallel paths) are handled by
    the regular GraLMatch clean-up.
    """
    config = config or CleanupConfig()
    graph = Graph(edges)
    report = CleanupReport()
    components = connected_components(graph)
    report.initial_largest_component = len(components[0]) if components else 0

    removed_bridges = set()
    for component in components:
        if len(component) <= config.mu:
            continue
        subgraph = graph.subgraph(component)
        for edge in bridges(subgraph):
            removed_bridges.add(edge)
    graph.remove_edges(removed_bridges)

    remaining_components, fallback_report = gralmatch_cleanup(
        [tuple(edge) for edge in graph.edges()], config
    )

    report.removed_edges = removed_bridges | fallback_report.removed_edges
    report.mincut_removals = fallback_report.mincut_removals
    report.betweenness_removals = fallback_report.betweenness_removals
    report.final_largest_component = fallback_report.final_largest_component
    return remaining_components, report


# Bridges are found per oversized component and the Algorithm 1 fallback is
# itself component-local, so this strategy qualifies for per-component
# incremental recleanup (see the marker in repro.core.cleanup).
bridge_removal_cleanup.component_local = True


def adaptive_cleanup(
    edges: Iterable[tuple[str, str]],
    min_density: float = 0.6,
    max_iterations: int = 10_000,
) -> tuple[list[set[str]], CleanupReport]:
    """Density-driven clean-up for heterogeneous group sizes.

    Instead of capping group size at ``mu``, keep removing the highest
    betweenness edge from any component whose edge density is below
    ``min_density``: a group of records that is genuinely one entity tends to
    be densely confirmed by pairwise predictions regardless of its size,
    whereas two groups joined by a few false positives are sparse.
    """
    if not 0.0 < min_density <= 1.0:
        raise ValueError("min_density must be in (0, 1]")
    graph = Graph(edges)
    report = CleanupReport()
    components = connected_components(graph)
    report.initial_largest_component = len(components[0]) if components else 0

    for _ in range(max_iterations):
        sparse = [
            component
            for component in connected_components(graph)
            if len(component) > 2 and density(graph.subgraph(component)) < min_density
        ]
        if not sparse:
            break
        target = max(sparse, key=len)
        subgraph = graph.subgraph(target)
        edge, _ = max_betweenness_edge(subgraph)
        graph.remove_edge(*edge)
        report.removed_edges.add(edge)
        report.betweenness_removals += 1

    final_components = connected_components(graph)
    report.final_largest_component = len(final_components[0]) if final_components else 0
    return [set(component) for component in final_components], report


@register_cleanup("adaptive")
def adaptive_cleanup_strategy(
    edges: Iterable[tuple[str, str]],
    config: CleanupConfig | None = None,
) -> tuple[list[set[str]], CleanupReport]:
    """Registry adapter for :func:`adaptive_cleanup`.

    The adaptive strategy is density-driven, so the ``gamma``/``mu``
    thresholds of ``config`` are intentionally ignored — the adapter exists
    so declarative specs can select the strategy by name with the common
    ``(edges, config)`` calling convention.

    Deliberately *not* marked ``component_local``: although each removal
    targets one component's subgraph, ``max_iterations`` is a single global
    budget shared across components — running the strategy once per
    component would give every component its own fresh budget and could
    remove more edges than one whole-graph run.  The incremental subsystem
    therefore re-cleans the whole graph for this strategy (correct, just
    not delta-proportional).
    """
    return adaptive_cleanup(edges)
