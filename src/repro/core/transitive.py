"""Transitively matched records.

Records ``r_i`` and ``r_j`` are *transitively matched* by a pairwise matching
logic if a path of positive pairwise predictions connects them (Section 1).
The expected output of an entity group matching is the set of groups
represented as complete graphs, so the transitive closure of the predictions
— all edges missing from each connected component — is part of the implied
result and must be included when scoring a group assignment (the paper's
"Pre Graph Cleanup" and "Post Graph Cleanup" stages both do this).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.graphs.components import connected_components
from repro.graphs.graph import Edge, Graph, canonical_edge


def prediction_graph(edges: Iterable[tuple[str, str]]) -> Graph:
    """Build the match graph from predicted match pairs."""
    return Graph(edges)


def transitive_closure_edges(edges: Iterable[tuple[str, str]]) -> set[Edge]:
    """All edges of the complete graphs spanned by the connected components.

    The result *includes* the original edges: it is the full set of matches
    implied by the pairwise predictions (predicted + transitive).
    """
    graph = Graph(edges)
    closure: set[Edge] = set()
    for component in connected_components(graph):
        members = sorted(component, key=repr)
        for i, left in enumerate(members):
            for right in members[i + 1:]:
                closure.add(canonical_edge(left, right))
    return closure


def transitive_matches(edges: Iterable[tuple[str, str]]) -> set[Edge]:
    """Only the *implied* matches: closure edges that were not predicted."""
    edge_list = list(edges)
    predicted = {canonical_edge(u, v) for u, v in edge_list}
    return transitive_closure_edges(edge_list) - predicted


def groups_from_edges(
    edges: Iterable[tuple[str, str]],
    all_records: Iterable[str] | None = None,
) -> list[set[str]]:
    """Connected components of the prediction graph as record-id groups.

    If ``all_records`` is given, records that never appear in a predicted
    match are appended as singleton groups, so the output is a partition of
    the full record set (what a downstream consumer of the matching needs).
    """
    graph = Graph(edges)
    groups = [set(component) for component in connected_components(graph)]
    if all_records is not None:
        covered = {record for group in groups for record in group}
        for record in all_records:
            if record not in covered:
                groups.append({record})
    return groups
