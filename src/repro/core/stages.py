"""The pipeline as an ordered sequence of named stages over a shared context.

:class:`~repro.core.pipeline.EntityGroupMatchingPipeline` used to be one
monolithic ``run()`` method; it is now a list of :class:`PipelineStage`
objects that read and write a shared :class:`PipelineContext`.  Each stage
is small, independently testable, and — crucially for the ROADMAP's
sharding/caching/async plans — *replaceable and insertable* without
touching ``run()``: a caching stage can slot in before pairwise matching, a
sharded blocking can replace :class:`BlockingStage`, an audit stage can
observe the context between any two steps.

The five default stages reproduce Figure 1 / Section 4 exactly:

========================  ===================================================
``blocking``              candidate pairs via the execution engine
``pairwise_matching``     Match / NoMatch decisions via the execution engine
``pre_cleanup``           drop token-overlap predictions in huge components
``gralmatch_cleanup``     Algorithm 1 (or a registered alternative strategy)
``grouping``              connected components → entity groups (+ singletons)
========================  ===================================================

Stages whose ``timing_group`` is ``"graph"`` are rolled up into the
``graph_cleanup`` aggregate timing, keeping ``PipelineResult.timings``
backward compatible with the pre-stage pipeline.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import Any

from repro.blocking.base import Blocking, CandidatePair
from repro.core.cleanup import CleanupConfig, CleanupReport
from repro.core.groups import EntityGroups
from repro.core.precleanup import PreCleanupConfig, pre_cleanup
from repro.datagen.records import Dataset
from repro.graphs.graph import Edge
from repro.matching.base import MatchDecision, PairwiseMatcher
from repro.matching.decisions import DecisionVector
from repro.registry import CLEANUPS
from repro.runtime import PipelineRuntime, StageProfiler


@dataclass
class PipelineContext:
    """Everything the stages share during one pipeline run.

    Early fields are inputs (dataset, runtime, profiler); the rest are
    artefacts produced by successive stages.  Custom stages may stash
    additional state in :attr:`extras` without subclassing the context.
    """

    dataset: Dataset
    runtime: PipelineRuntime
    profiler: StageProfiler

    candidates: list[CandidatePair] = field(default_factory=list)
    #: ``list[MatchDecision]`` on the object routes, a lazy
    #: :class:`~repro.matching.decisions.DecisionVector` under columnar
    #: dispatch — element-wise identical either way.
    decisions: Sequence[MatchDecision] = field(default_factory=list)
    positive_edges: list[Edge] = field(default_factory=list)
    edge_blockings: dict[tuple[str, str], str] = field(default_factory=dict)
    kept_edges: list[Edge] = field(default_factory=list)
    pre_cleanup_removed: set[Edge] = field(default_factory=set)
    components: list[set[str]] = field(default_factory=list)
    cleanup_report: CleanupReport = field(default_factory=CleanupReport)
    groups: EntityGroups | None = None
    pre_cleanup_groups: EntityGroups | None = None

    #: Scratch space for inserted stages (caches, shard maps, audit trails).
    extras: dict[str, Any] = field(default_factory=dict)


class PipelineStage(ABC):
    """One named step of the pipeline.

    ``name`` doubles as the profiler stage key and the handle for the
    pipeline's ``insert_before`` / ``insert_after`` / ``replace_stage``
    helpers; ``timing_group = "graph"`` opts the stage into the
    ``graph_cleanup`` aggregate timing.
    """

    name: str = "stage"
    timing_group: str | None = None

    @abstractmethod
    def run(self, context: PipelineContext) -> None:
        """Execute the stage, reading/writing ``context`` in place."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class BlockingStage(PipelineStage):
    """Candidate generation, fanned out by the execution engine."""

    name = "blocking"

    def __init__(self, blocking: Blocking) -> None:
        self.blocking = blocking

    def run(self, context: PipelineContext) -> None:
        context.candidates = context.runtime.run_blocking(
            self.blocking, context.dataset, context.profiler
        )


class MatchingStage(PipelineStage):
    """Pairwise Match / NoMatch inference, batched by the execution engine."""

    name = "pairwise_matching"

    def __init__(self, matcher: PairwiseMatcher) -> None:
        self.matcher = matcher

    def run(self, context: PipelineContext) -> None:
        context.decisions = context.runtime.run_matching(
            self.matcher, context.dataset, context.candidates, context.profiler
        )


def apply_pre_cleanup(
    decisions: Sequence[MatchDecision],
    candidates: list[CandidatePair],
    config: PreCleanupConfig,
) -> tuple[list[Edge], dict[tuple[str, str], str], list[Edge], set[Edge]]:
    """Positive edges, blocking tags, and the pre-cleanup rule — one place.

    Returns ``(positive_edges, edge_blockings, kept_edges, removed)``.
    Shared by :class:`PreCleanupStage` and the incremental matcher so the
    two execution modes cannot drift — byte-identical ingestion depends on
    both running exactly this computation.

    A columnar :class:`~repro.matching.decisions.DecisionVector` yields its
    positive edges straight off the kept-edge mask — the same
    ``(left_id, right_id)`` tuples, no decision objects materialised.
    """
    if isinstance(decisions, DecisionVector):
        positive_edges = decisions.positive_pairs()
    else:
        positive_edges = [
            decision.pair for decision in decisions if decision.is_match
        ]
    edge_blockings = {
        candidate.key: candidate.blocking for candidate in candidates
    }
    kept_edges, removed = pre_cleanup(positive_edges, edge_blockings, config)
    return positive_edges, edge_blockings, kept_edges, removed


def groups_from_components(
    components: list[set[str]],
    all_record_ids: list[str],
    positive_edges: list[Edge],
) -> tuple[EntityGroups, EntityGroups]:
    """Final + pre-cleanup groups from cleaned components — one place.

    Cleaned components first (in their given order), then singletons for
    uncovered records in dataset order.  Shared by :class:`GroupingStage`
    and the incremental matcher (same drift argument as
    :func:`apply_pre_cleanup`).
    """
    covered = {
        record_id for component in components for record_id in component
    }
    groups: list[set[str]] = [set(component) for component in components]
    groups.extend(
        {record_id} for record_id in all_record_ids if record_id not in covered
    )
    return (
        EntityGroups(groups),
        EntityGroups.from_edges(positive_edges, all_record_ids),
    )


class PreCleanupStage(PipelineStage):
    """Section 4.2.1: drop token-overlap predictions in huge components."""

    name = "pre_cleanup"
    timing_group = "graph"

    def __init__(self, config: PreCleanupConfig | None = None) -> None:
        self.config = config or PreCleanupConfig()

    def run(self, context: PipelineContext) -> None:
        (
            context.positive_edges,
            context.edge_blockings,
            context.kept_edges,
            context.pre_cleanup_removed,
        ) = apply_pre_cleanup(context.decisions, context.candidates, self.config)


class GraphCleanupStage(PipelineStage):
    """Algorithm 1 — or any clean-up strategy registered under a name."""

    name = "gralmatch_cleanup"
    timing_group = "graph"

    def __init__(
        self,
        config: CleanupConfig | None = None,
        strategy: str = "gralmatch",
    ) -> None:
        self.config = config or CleanupConfig()
        self.strategy = strategy

    def run(self, context: PipelineContext) -> None:
        cleanup = CLEANUPS.get(self.strategy)
        context.components, context.cleanup_report = cleanup(
            context.kept_edges, self.config
        )


class GroupingStage(PipelineStage):
    """Components → entity groups, plus singletons for unmatched records."""

    name = "grouping"
    timing_group = "graph"

    def run(self, context: PipelineContext) -> None:
        all_record_ids = [record.record_id for record in context.dataset]
        context.groups, context.pre_cleanup_groups = groups_from_components(
            context.components, all_record_ids, context.positive_edges
        )
