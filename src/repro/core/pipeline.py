"""The end-to-end entity group matching pipeline (Figure 1).

Steps, exactly as in Section 4:

1. **Blocking** — produce candidate record pairs,
2. **Pairwise matching** — predict Match / NoMatch for every candidate with a
   fine-tuned (or heuristic) pairwise matcher,
3. **Pre Graph Cleanup** — drop token-overlap predictions inside oversized
   components,
4. **GraLMatch Graph Cleanup** — Algorithm 1 (minimum edge cuts, then
   betweenness-centrality removals),
5. **Entity groups** — the connected components of the cleaned-up graph,
   interpreted as complete graphs (all transitive matches included).

Each step is a named :class:`~repro.core.stages.PipelineStage` over a shared
:class:`~repro.core.stages.PipelineContext`; ``run()`` just walks the stage
list, so new stages (sharded blocking, decision caches, audits) can be
inserted or swapped without touching it — see ``insert_before`` /
``insert_after`` / ``replace_stage``.

The pipeline never looks at ground truth; scoring lives in
:mod:`repro.evaluation.experiment`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.blocking.base import Blocking, CandidatePair
from repro.core.cleanup import CleanupConfig, CleanupReport
from repro.core.groups import EntityGroups
from repro.core.metrics import GroupMatchingScores, PairwiseScores
from repro.core.precleanup import PreCleanupConfig
from repro.core.stages import (
    BlockingStage,
    GraphCleanupStage,
    GroupingStage,
    MatchingStage,
    PipelineContext,
    PipelineStage,
    PreCleanupStage,
)
from repro.datagen.records import Dataset
from repro.graphs.graph import Edge
from repro.matching.base import MatchDecision, PairwiseMatcher
from repro.runtime import PipelineRuntime, RuntimeConfig, StageProfiler


@dataclass(frozen=True)
class StageScores:
    """The three evaluation stages of Section 5.3.2 for one run."""

    pairwise: PairwiseScores
    pre_cleanup: GroupMatchingScores
    post_cleanup: GroupMatchingScores


@dataclass
class PipelineResult:
    """Everything one pipeline run produced."""

    #: Candidate pairs emitted by the blocking.
    candidates: list[CandidatePair]
    #: Full decisions (probability + verdict) for every candidate pair — a
    #: ``list[MatchDecision]`` on the object routes, a lazy array-backed
    #: :class:`~repro.matching.decisions.DecisionVector` under columnar
    #: dispatch (element-wise identical; indexing materialises decisions).
    decisions: Sequence[MatchDecision]
    #: Positively predicted pairs (before any clean-up).
    positive_edges: list[Edge]
    #: Edges dropped by the pre-cleanup rule.
    pre_cleanup_removed: set[Edge]
    #: Algorithm 1 bookkeeping.
    cleanup_report: CleanupReport
    #: Final group assignment (connected components after clean-up, plus
    #: singletons for records that were never positively matched).
    groups: EntityGroups
    #: Group assignment implied by the raw predictions (pre-clean-up), used
    #: for the "Pre Graph Cleanup" stage scores.
    pre_cleanup_groups: EntityGroups
    #: Wall-clock seconds spent in the pairwise matching step (the paper's
    #: "Inference Time" column) and in the graph stages.
    inference_seconds: float = 0.0
    graph_seconds: float = 0.0
    blocking_seconds: float = 0.0
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def num_candidates(self) -> int:
        return len(self.candidates)

    @property
    def num_positive(self) -> int:
        return len(self.positive_edges)


class EntityGroupMatchingPipeline:
    """Composable end-to-end entity group matching.

    The constructor assembles the five default stages; ``stages`` replaces
    the whole sequence for callers that compose their own.  The stage list
    is a plain mutable attribute — the editing helpers below are sugar over
    it that locate stages by name.
    """

    def __init__(
        self,
        matcher: PairwiseMatcher,
        blocking: Blocking,
        cleanup_config: CleanupConfig | None = None,
        pre_cleanup_config: PreCleanupConfig | None = None,
        runtime: PipelineRuntime | RuntimeConfig | None = None,
        cleanup_strategy: str = "gralmatch",
        stages: list[PipelineStage] | None = None,
    ) -> None:
        self.matcher = matcher
        self.blocking = blocking
        self.cleanup_config = cleanup_config or CleanupConfig()
        self.pre_cleanup_config = pre_cleanup_config or PreCleanupConfig()
        self.cleanup_strategy = cleanup_strategy
        if runtime is None:
            runtime = PipelineRuntime()
        elif isinstance(runtime, RuntimeConfig):
            runtime = PipelineRuntime(runtime)
        self.runtime = runtime
        self.stages: list[PipelineStage] = (
            list(stages) if stages is not None else self.default_stages()
        )

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Release the runtime's persistent worker pool (if any was spawned).

        Safe to call on serial pipelines (no-op) and more than once; the
        pipeline stays usable — a later :meth:`run` respawns the pool
        lazily.  Use the context-manager form for scoped lifetimes::

            with EntityGroupMatchingPipeline(matcher, blocking, runtime=cfg) as p:
                result = p.run(dataset)
        """
        self.runtime.close()

    def __enter__(self) -> "EntityGroupMatchingPipeline":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def default_stages(self) -> list[PipelineStage]:
        """The Figure 1 stage sequence for this pipeline's components."""
        return [
            BlockingStage(self.blocking),
            MatchingStage(self.matcher),
            PreCleanupStage(self.pre_cleanup_config),
            GraphCleanupStage(self.cleanup_config, self.cleanup_strategy),
            GroupingStage(),
        ]

    # -- stage editing ------------------------------------------------------

    def stage_names(self) -> list[str]:
        return [stage.name for stage in self.stages]

    def _stage_index(self, name: str) -> int:
        for index, stage in enumerate(self.stages):
            if stage.name == name:
                return index
        raise KeyError(
            f"no stage named {name!r}; stages: {self.stage_names()}"
        )

    def insert_before(self, name: str, stage: PipelineStage) -> None:
        """Insert ``stage`` immediately before the stage named ``name``."""
        self.stages.insert(self._stage_index(name), stage)

    def insert_after(self, name: str, stage: PipelineStage) -> None:
        """Insert ``stage`` immediately after the stage named ``name``."""
        self.stages.insert(self._stage_index(name) + 1, stage)

    def replace_stage(self, name: str, stage: PipelineStage) -> None:
        """Swap the stage named ``name`` for ``stage``."""
        self.stages[self._stage_index(name)] = stage

    # -- the run ------------------------------------------------------------

    def run(self, dataset: Dataset) -> PipelineResult:
        """Run the stage sequence on ``dataset`` and return all artefacts.

        Candidate generation and pairwise inference are delegated to the
        execution engine (:class:`~repro.runtime.PipelineRuntime`), which
        batches and optionally parallelises them; the graph stages operate
        on the global match graph and stay single-pass.  Serial and parallel
        engines produce identical results.
        """
        profiler = self.runtime.profiler()
        context = PipelineContext(
            dataset=dataset, runtime=self.runtime, profiler=profiler
        )
        with profiler.recorder.span(
            "pipeline.run", kind="run", records=len(dataset)
        ):
            for stage in self.stages:
                with profiler.stage(stage.name):
                    stage.run(context)
        return self._to_result(context, profiler)

    def _to_result(
        self, context: PipelineContext, profiler: StageProfiler
    ) -> PipelineResult:
        graph_seconds = sum(
            profiler.stage_seconds(stage.name)
            for stage in self.stages
            if stage.timing_group == "graph"
        )
        timings = profiler.as_timings()
        # Pre-stage pipelines timed the three graph steps as one
        # "graph_cleanup" stage; keep the aggregate key for consumers.
        timings.setdefault("graph_cleanup", graph_seconds)
        if context.groups is None or context.pre_cleanup_groups is None:
            raise RuntimeError(
                "pipeline finished without producing groups — a grouping "
                f"stage is missing from {self.stage_names()}"
            )
        return PipelineResult(
            candidates=context.candidates,
            decisions=context.decisions,
            positive_edges=list(context.positive_edges),
            pre_cleanup_removed=context.pre_cleanup_removed,
            cleanup_report=context.cleanup_report,
            groups=context.groups,
            pre_cleanup_groups=context.pre_cleanup_groups,
            inference_seconds=profiler.stage_seconds("pairwise_matching"),
            graph_seconds=graph_seconds,
            blocking_seconds=profiler.stage_seconds("blocking"),
            timings=timings,
        )
