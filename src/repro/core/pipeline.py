"""The end-to-end entity group matching pipeline (Figure 1).

Steps, exactly as in Section 4:

1. **Blocking** — produce candidate record pairs,
2. **Pairwise matching** — predict Match / NoMatch for every candidate with a
   fine-tuned (or heuristic) pairwise matcher,
3. **Pre Graph Cleanup** — drop token-overlap predictions inside oversized
   components,
4. **GraLMatch Graph Cleanup** — Algorithm 1 (minimum edge cuts, then
   betweenness-centrality removals),
5. **Entity groups** — the connected components of the cleaned-up graph,
   interpreted as complete graphs (all transitive matches included).

The pipeline never looks at ground truth; scoring lives in
:mod:`repro.evaluation.experiment`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.blocking.base import Blocking, CandidatePair
from repro.core.cleanup import CleanupConfig, CleanupReport, gralmatch_cleanup
from repro.core.groups import EntityGroups
from repro.core.metrics import GroupMatchingScores, PairwiseScores
from repro.core.precleanup import PreCleanupConfig, pre_cleanup
from repro.datagen.records import Dataset
from repro.graphs.graph import Edge
from repro.matching.base import MatchDecision, PairwiseMatcher
from repro.runtime import PipelineRuntime, RuntimeConfig, StageProfiler


@dataclass(frozen=True)
class StageScores:
    """The three evaluation stages of Section 5.3.2 for one run."""

    pairwise: PairwiseScores
    pre_cleanup: GroupMatchingScores
    post_cleanup: GroupMatchingScores


@dataclass
class PipelineResult:
    """Everything one pipeline run produced."""

    #: Candidate pairs emitted by the blocking.
    candidates: list[CandidatePair]
    #: Full decisions (probability + verdict) for every candidate pair.
    decisions: list[MatchDecision]
    #: Positively predicted pairs (before any clean-up).
    positive_edges: list[Edge]
    #: Edges dropped by the pre-cleanup rule.
    pre_cleanup_removed: set[Edge]
    #: Algorithm 1 bookkeeping.
    cleanup_report: CleanupReport
    #: Final group assignment (connected components after clean-up, plus
    #: singletons for records that were never positively matched).
    groups: EntityGroups
    #: Group assignment implied by the raw predictions (pre-clean-up), used
    #: for the "Pre Graph Cleanup" stage scores.
    pre_cleanup_groups: EntityGroups
    #: Wall-clock seconds spent in the pairwise matching step (the paper's
    #: "Inference Time" column) and in the graph stages.
    inference_seconds: float = 0.0
    graph_seconds: float = 0.0
    blocking_seconds: float = 0.0
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def num_candidates(self) -> int:
        return len(self.candidates)

    @property
    def num_positive(self) -> int:
        return len(self.positive_edges)


class EntityGroupMatchingPipeline:
    """Composable end-to-end entity group matching."""

    def __init__(
        self,
        matcher: PairwiseMatcher,
        blocking: Blocking,
        cleanup_config: CleanupConfig | None = None,
        pre_cleanup_config: PreCleanupConfig | None = None,
        runtime: PipelineRuntime | RuntimeConfig | None = None,
    ) -> None:
        self.matcher = matcher
        self.blocking = blocking
        self.cleanup_config = cleanup_config or CleanupConfig()
        self.pre_cleanup_config = pre_cleanup_config or PreCleanupConfig()
        if runtime is None:
            runtime = PipelineRuntime()
        elif isinstance(runtime, RuntimeConfig):
            runtime = PipelineRuntime(runtime)
        self.runtime = runtime

    # -- the five steps -----------------------------------------------------------

    def run(self, dataset: Dataset) -> PipelineResult:
        """Run the full pipeline on ``dataset`` and return all artefacts.

        Candidate generation and pairwise inference are delegated to the
        execution engine (:class:`~repro.runtime.PipelineRuntime`), which
        batches and optionally parallelises them; the graph stages operate
        on the global match graph and stay single-pass.  Serial and parallel
        engines produce identical results.
        """
        profiler = StageProfiler()

        with profiler.stage("blocking"):
            candidates = self.runtime.run_blocking(self.blocking, dataset, profiler)

        with profiler.stage("pairwise_matching"):
            decisions = self.runtime.run_matching(
                self.matcher, dataset, candidates, profiler
            )

        with profiler.stage("graph_cleanup"):
            positive_edges = [
                decision.pair for decision in decisions if decision.is_match
            ]
            edge_blockings = {
                candidate.key: candidate.blocking for candidate in candidates
            }

            kept_edges, removed_by_precleanup = pre_cleanup(
                positive_edges, edge_blockings, self.pre_cleanup_config
            )

            components, cleanup_report = gralmatch_cleanup(
                kept_edges, self.cleanup_config
            )

            all_record_ids = [record.record_id for record in dataset]
            groups = self._components_to_groups(components, all_record_ids)
            pre_cleanup_groups = EntityGroups.from_edges(positive_edges, all_record_ids)

        return PipelineResult(
            candidates=candidates,
            decisions=decisions,
            positive_edges=list(positive_edges),
            pre_cleanup_removed=removed_by_precleanup,
            cleanup_report=cleanup_report,
            groups=groups,
            pre_cleanup_groups=pre_cleanup_groups,
            inference_seconds=profiler.stage_seconds("pairwise_matching"),
            graph_seconds=profiler.stage_seconds("graph_cleanup"),
            blocking_seconds=profiler.stage_seconds("blocking"),
            timings=profiler.as_timings(),
        )

    @staticmethod
    def _components_to_groups(
        components: Sequence[set[str]], all_record_ids: Sequence[str]
    ) -> EntityGroups:
        covered = {record_id for component in components for record_id in component}
        groups: list[set[str]] = [set(component) for component in components]
        groups.extend({record_id} for record_id in all_record_ids if record_id not in covered)
        return EntityGroups(groups)
