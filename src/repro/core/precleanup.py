"""Pre Graph Cleanup (Section 4.2.1).

Some prediction sets produce *exceedingly large* connected components, which
makes Algorithm 1 slow (both removal techniques delete only a few edges per
iteration).  The paper therefore applies a cheap pre-cleanup first:

    "Company datasets: We remove all positively predicted matches obtained
    through the Token Overlap blocking in connected components larger than 50
    records."

The function below implements exactly that rule, generalised to a
configurable component-size threshold and blocking name.  Predictions whose
candidate pair came from an identifier-based blocking are never touched —
those edges are backed by evidence the token-overlap candidates lack.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Mapping

from repro.graphs.graph import Edge, canonical_edge
from repro.graphs.union_find import DisjointSet


@dataclass(frozen=True)
class PreCleanupConfig:
    """Parameters of the pre-cleanup rule."""

    #: Components larger than this trigger the removal rule.
    max_component_size: int = 50
    #: Edges whose candidate pair came from this blocking are removed.
    target_blocking: str = "token_overlap"
    #: Disable entirely (the securities datasets do not need a pre-cleanup).
    enabled: bool = True


def pre_cleanup(
    edges: Iterable[tuple[str, str]],
    edge_blockings: Mapping[tuple[str, str], str],
    config: PreCleanupConfig | None = None,
) -> tuple[list[tuple[str, str]], set[Edge]]:
    """Apply the pre-cleanup rule.

    Parameters
    ----------
    edges:
        Positively predicted match pairs.
    edge_blockings:
        For every predicted pair, the name of the blocking that produced the
        candidate (canonical or as-given orientation both accepted).
    config:
        Rule parameters; the default reproduces the paper's setting.

    Returns
    -------
    (kept_edges, removed_edges)
    """
    config = config or PreCleanupConfig()
    edge_list = [canonical_edge(u, v) for u, v in edges]
    if not config.enabled:
        return list(edge_list), set()

    lookup: dict[Edge, str] = {}
    for (u, v), blocking in edge_blockings.items():
        lookup[canonical_edge(u, v)] = blocking

    # Component sizing via union-find: only the size of each node's
    # component matters here, so the adjacency graph is never materialised.
    dsu = DisjointSet()
    for u, v in edge_list:
        dsu.union(u, v)

    kept: list[Edge] = []
    removed: set[Edge] = set()
    for edge in edge_list:
        u, _ = edge  # both endpoints share a component by construction
        in_oversized = dsu.component_size(u) > config.max_component_size
        if in_oversized and lookup.get(edge) == config.target_blocking:
            removed.add(edge)
        else:
            kept.append(edge)
    return kept, removed
