"""GraLMatch core: transitive matching, graph clean-up, metrics, pipeline.

This package is the paper's primary contribution:

* :mod:`repro.core.transitive` — transitively matched records (Section 1),
* :mod:`repro.core.groups` — entity groups (connected components expanded to
  complete graphs),
* :mod:`repro.core.cleanup` — the GraLMatch Graph Cleanup (Algorithm 1) and
  its sensitivity variants,
* :mod:`repro.core.precleanup` — the Pre Graph Cleanup of Section 4.2.1,
* :mod:`repro.core.metrics` — pairwise and group precision / recall / F1 and
  the Cluster Purity Score,
* :mod:`repro.core.stages` — the named pipeline stages and their shared
  :class:`~repro.core.stages.PipelineContext`,
* :mod:`repro.core.pipeline` — the end-to-end entity group matching workflow
  of Figure 1, as an ordered stage sequence.
"""

from repro.core.cleanup import CleanupConfig, CleanupReport, gralmatch_cleanup
from repro.core.groups import EntityGroups
from repro.core.metrics import (
    GroupMatchingScores,
    PairwiseScores,
    cluster_purity,
    group_matching_scores,
    pairwise_scores,
)
from repro.core.pipeline import EntityGroupMatchingPipeline, PipelineResult, StageScores
from repro.core.precleanup import pre_cleanup
from repro.core.stages import (
    BlockingStage,
    GraphCleanupStage,
    GroupingStage,
    MatchingStage,
    PipelineContext,
    PipelineStage,
    PreCleanupStage,
)
from repro.core.transitive import transitive_closure_edges, transitive_matches

__all__ = [
    "BlockingStage",
    "GraphCleanupStage",
    "GroupingStage",
    "MatchingStage",
    "PipelineContext",
    "PipelineStage",
    "PreCleanupStage",
    "CleanupConfig",
    "CleanupReport",
    "gralmatch_cleanup",
    "EntityGroups",
    "PairwiseScores",
    "GroupMatchingScores",
    "pairwise_scores",
    "group_matching_scores",
    "cluster_purity",
    "EntityGroupMatchingPipeline",
    "PipelineResult",
    "StageScores",
    "pre_cleanup",
    "transitive_closure_edges",
    "transitive_matches",
]
