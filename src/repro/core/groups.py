"""Entity groups: the output of an entity group matching.

An :class:`EntityGroups` object is a partition of (a subset of) the record
ids into groups, each group standing for one real-world entity.  Groups are
interpreted as complete graphs: every pair of records within a group is a
match (predicted or transitive).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.graphs.graph import Edge, canonical_edge


class EntityGroups:
    """A group assignment of records."""

    def __init__(self, groups: Iterable[Iterable[str]]) -> None:
        self._groups: list[frozenset[str]] = []
        seen: dict[str, int] = {}
        for group in groups:
            frozen = frozenset(group)
            if not frozen:
                continue
            for record_id in frozen:
                if record_id in seen:
                    raise ValueError(
                        f"record {record_id!r} appears in more than one group"
                    )
                seen[record_id] = len(self._groups)
            self._groups.append(frozen)
        self._group_of = seen

    # -- basic access -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._groups)

    def __iter__(self) -> Iterator[frozenset[str]]:
        return iter(self._groups)

    @property
    def groups(self) -> list[frozenset[str]]:
        return list(self._groups)

    @property
    def num_records(self) -> int:
        return len(self._group_of)

    def group_of(self, record_id: str) -> frozenset[str]:
        """The group containing ``record_id`` (KeyError when unassigned)."""
        return self._groups[self._group_of[record_id]]

    def __contains__(self, record_id: str) -> bool:
        return record_id in self._group_of

    def same_group(self, left_id: str, right_id: str) -> bool:
        """True when both records are assigned and share a group."""
        if left_id not in self._group_of or right_id not in self._group_of:
            return False
        return self._group_of[left_id] == self._group_of[right_id]

    # -- derived quantities ----------------------------------------------------------

    def match_edges(self) -> set[Edge]:
        """All intra-group record pairs (the complete-graph interpretation)."""
        edges: set[Edge] = set()
        for group in self._groups:
            members = sorted(group)
            for i, left in enumerate(members):
                for right in members[i + 1:]:
                    edges.add(canonical_edge(left, right))
        return edges

    def group_sizes(self) -> list[int]:
        return sorted((len(group) for group in self._groups), reverse=True)

    def largest_group(self) -> frozenset[str]:
        if not self._groups:
            return frozenset()
        return max(self._groups, key=len)

    def non_singleton_groups(self) -> list[frozenset[str]]:
        return [group for group in self._groups if len(group) > 1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EntityGroups(groups={len(self._groups)}, records={self.num_records}, "
            f"largest={len(self.largest_group())})"
        )

    # -- constructors ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls, edges: Iterable[tuple[str, str]], all_records: Iterable[str] | None = None
    ) -> "EntityGroups":
        """Groups = connected components of a prediction edge list."""
        from repro.core.transitive import groups_from_edges

        return cls(groups_from_edges(edges, all_records))

    @classmethod
    def from_ground_truth(cls, dataset) -> "EntityGroups":
        """The ground-truth group assignment of a generated dataset."""
        return cls(dataset.entity_groups().values())
