"""GraLMatch Graph Cleanup (Algorithm 1).

The clean-up removes likely false-positive pairwise predictions using only
the structure of the match graph:

* **Phase 1 — Minimum Edge Cut**: while the largest connected component is
  bigger than the threshold ``gamma``, remove a minimum edge cut from it.
  Removing a minimum cut is guaranteed to split the component, so this phase
  quickly breaks up the huge components produced by a handful of false
  positives, at the cost of occasionally removing true edges.
* **Phase 2 — Edge Betweenness Centrality**: while the largest component is
  still bigger than ``mu`` (the expected maximum group size, normally the
  number of data sources), remove the single edge with the highest edge
  betweenness centrality.  This is slower but more surgical: bridges between
  densely connected sub-groups carry the most shortest paths.

The sensitivity variants of Section 5.2.1 are expressed through
:class:`CleanupConfig`: ``gamma = mu`` gives the MEC-only variant,
``gamma = None`` (treated as infinity) gives the BC-only variant and halving
``gamma`` gives the ``½γ`` variant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable

from repro.graphs.betweenness import max_betweenness_edge
from repro.graphs.components import connected_components
from repro.graphs.graph import Edge, Graph
from repro.graphs.mincut import minimum_edge_cut
from repro.registry import register_cleanup


@dataclass(frozen=True)
class CleanupConfig:
    """Thresholds of Algorithm 1.

    ``gamma`` — components larger than this are split with Minimum Edge Cuts
    (``None`` disables the phase, i.e. γ = ∞).
    ``mu`` — the maximum allowed group size; components larger than this are
    refined by removing maximum-betweenness edges.  The paper sets ``mu`` to
    the number of data sources.
    """

    gamma: int | None = 25
    mu: int = 5

    def __post_init__(self) -> None:
        if self.mu < 1:
            raise ValueError("mu must be at least 1")
        if self.gamma is not None and self.gamma < self.mu:
            raise ValueError("gamma must be >= mu (or None for infinity)")

    @classmethod
    def for_num_sources(cls, num_sources: int, gamma: int | None = None) -> "CleanupConfig":
        """The paper's default: mu = number of sources, gamma = 5 * mu."""
        if gamma is None:
            gamma = 5 * num_sources
        return cls(gamma=gamma, mu=num_sources)

    def mec_only(self) -> "CleanupConfig":
        """Sensitivity variant: gamma = mu (only Minimum Edge Cuts)."""
        return CleanupConfig(gamma=self.mu, mu=self.mu)

    def bc_only(self) -> "CleanupConfig":
        """Sensitivity variant: gamma = infinity (only Betweenness Centrality)."""
        return CleanupConfig(gamma=None, mu=self.mu)

    def half_gamma(self) -> "CleanupConfig":
        """Sensitivity variant: gamma halved (rounded down, floored at mu)."""
        if self.gamma is None:
            return self
        return CleanupConfig(gamma=max(self.mu, self.gamma // 2), mu=self.mu)


@dataclass
class CleanupReport:
    """What the clean-up did — used by the result tables and the figures."""

    removed_edges: set[Edge] = field(default_factory=set)
    mincut_removals: int = 0
    betweenness_removals: int = 0
    initial_largest_component: int = 0
    final_largest_component: int = 0

    @property
    def num_removed(self) -> int:
        return len(self.removed_edges)


@register_cleanup("gralmatch")
def gralmatch_cleanup(
    edges: Iterable[tuple[str, str]],
    config: CleanupConfig | None = None,
) -> tuple[list[set[str]], CleanupReport]:
    """Run Algorithm 1 on a set of predicted match edges.

    Returns the connected components of the cleaned-up graph (the entity
    groups before transitive-closure expansion) and a :class:`CleanupReport`
    describing the removals.
    """
    config = config or CleanupConfig()
    graph = Graph(edges)
    report = CleanupReport()

    components = connected_components(graph)
    report.initial_largest_component = len(components[0]) if components else 0

    # Phase 1: Minimum Edge Cut until every component is <= gamma.
    if config.gamma is not None:
        _split_with_minimum_cuts(graph, config.gamma, report)

    # Phase 2: Betweenness Centrality until every component is <= mu.
    _refine_with_betweenness(graph, config.mu, report)

    final_components = connected_components(graph)
    report.final_largest_component = (
        len(final_components[0]) if final_components else 0
    )
    return [set(component) for component in final_components], report


# Every removal Algorithm 1 makes is chosen from (and applied to) a single
# connected component's subgraph, and the stopping conditions are per
# component — so cleaning each initial component in isolation yields exactly
# the same final components and removals as one global run.  The incremental
# subsystem relies on this to re-clean only *dirty* components; strategies
# without the marker are re-run on the whole graph every ingest.
gralmatch_cleanup.component_local = True


def _split_with_minimum_cuts(graph: Graph, gamma: int, report: CleanupReport) -> None:
    while True:
        largest = _largest_component(graph)
        if largest is None or len(largest) <= gamma:
            return
        subgraph = graph.subgraph(largest)
        cut = minimum_edge_cut(subgraph)
        if not cut:
            return
        graph.remove_edges(cut)
        report.removed_edges.update(cut)
        report.mincut_removals += len(cut)


def _refine_with_betweenness(graph: Graph, mu: int, report: CleanupReport) -> None:
    while True:
        largest = _largest_component(graph)
        if largest is None or len(largest) <= mu:
            return
        subgraph = graph.subgraph(largest)
        edge, _ = max_betweenness_edge(subgraph)
        graph.remove_edge(*edge)
        report.removed_edges.add(edge)
        report.betweenness_removals += 1


def _largest_component(graph: Graph) -> set | None:
    components = connected_components(graph)
    if not components:
        return None
    return components[0]
