"""Feature-based logistic-regression matcher.

A compact, fast, fully-trainable matcher over the similarity features of
:class:`~repro.matching.features.PairFeatureExtractor`.  It serves two
purposes in the reproduction:

* as the classical baseline the neural matchers are compared against, and
* as the default matcher for very large candidate sets where the attention
  model would dominate the experiment's run time.

Training uses full-batch gradient descent with L2 regularisation — the
feature dimensionality is tiny, so nothing fancier is needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

import numpy as np

from repro.datagen.records import Record
from repro.matching.base import IdPair, MatchDecision, RecordPair, TrainablePairwiseMatcher
from repro.matching.features import PairFeatureExtractor
from repro.matching.profiles import ProfileStore


def _sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


@dataclass
class LogisticTrainingHistory:
    """Loss trajectory of one fit, useful for tests and diagnostics."""

    train_loss: list[float] = field(default_factory=list)
    validation_loss: list[float] = field(default_factory=list)


class LogisticRegressionMatcher(TrainablePairwiseMatcher):
    """Binary logistic regression over pair similarity features."""

    #: Features come from a :class:`PairFeatureExtractor`, which scores from
    #: per-record profiles — so the execution engine may prepare a profile
    #: store once and feed this matcher bare id pairs.
    profile_capable = True

    #: Profiled scoring is one feature-matrix extraction plus row-local
    #: array arithmetic — no per-pair Python until decisions are built.
    columnar_capable = True

    def __init__(
        self,
        learning_rate: float = 0.5,
        num_iterations: int = 300,
        l2: float = 1e-3,
        threshold: float = 0.5,
        extractor: PairFeatureExtractor | None = None,
        class_weighted: bool = True,
        seed: int = 0,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if num_iterations < 1:
            raise ValueError("num_iterations must be at least 1")
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        self.learning_rate = learning_rate
        self.num_iterations = num_iterations
        self.l2 = l2
        self.threshold = threshold
        self.extractor = extractor or PairFeatureExtractor()
        self.class_weighted = class_weighted
        self.seed = seed

        self._weights: np.ndarray | None = None
        self._bias: float = 0.0
        self._feature_means: np.ndarray | None = None
        self._feature_scales: np.ndarray | None = None
        self.history = LogisticTrainingHistory()

    # -- training ---------------------------------------------------------------

    def fit(
        self,
        pairs: Sequence[RecordPair],
        labels: Sequence[int],
        validation_pairs: Sequence[RecordPair] | None = None,
        validation_labels: Sequence[int] | None = None,
    ) -> "LogisticRegressionMatcher":
        if len(pairs) != len(labels):
            raise ValueError("pairs and labels must have the same length")
        if not pairs:
            raise ValueError("cannot fit on an empty training set")

        features = self.extractor.extract_batch(pairs)
        targets = np.asarray(labels, dtype=np.float64)
        if set(np.unique(targets)) - {0.0, 1.0}:
            raise ValueError("labels must be 0 or 1")

        self._fit_scaler(features)
        features = self._scale(features)

        validation_features = None
        validation_targets = None
        if validation_pairs is not None and validation_labels is not None:
            validation_features = self._scale(self.extractor.extract_batch(validation_pairs))
            validation_targets = np.asarray(validation_labels, dtype=np.float64)

        rng = np.random.default_rng(self.seed)
        num_features = features.shape[1]
        weights = rng.normal(0.0, 0.01, size=num_features)
        bias = 0.0

        sample_weights = self._sample_weights(targets)
        self.history = LogisticTrainingHistory()

        for _ in range(self.num_iterations):
            logits = features @ weights + bias
            probabilities = _sigmoid(logits)
            errors = (probabilities - targets) * sample_weights
            gradient_weights = features.T @ errors / len(targets) + self.l2 * weights
            gradient_bias = float(errors.mean())
            weights -= self.learning_rate * gradient_weights
            bias -= self.learning_rate * gradient_bias

            self.history.train_loss.append(
                self._loss(probabilities, targets, sample_weights, weights)
            )
            if validation_features is not None and validation_targets is not None:
                validation_probabilities = _sigmoid(validation_features @ weights + bias)
                self.history.validation_loss.append(
                    self._loss(
                        validation_probabilities,
                        validation_targets,
                        np.ones_like(validation_targets),
                        weights,
                    )
                )

        self._weights = weights
        self._bias = bias
        return self

    def _sample_weights(self, targets: np.ndarray) -> np.ndarray:
        """Balance classes so the 5:1 negative ratio does not bias the fit."""
        if not self.class_weighted:
            return np.ones_like(targets)
        num_positive = float(targets.sum())
        num_negative = float(len(targets) - num_positive)
        if num_positive == 0 or num_negative == 0:
            return np.ones_like(targets)
        positive_weight = len(targets) / (2.0 * num_positive)
        negative_weight = len(targets) / (2.0 * num_negative)
        return np.where(targets == 1.0, positive_weight, negative_weight)

    def _loss(
        self,
        probabilities: np.ndarray,
        targets: np.ndarray,
        sample_weights: np.ndarray,
        weights: np.ndarray,
    ) -> float:
        eps = 1e-12
        cross_entropy = -(
            targets * np.log(probabilities + eps)
            + (1.0 - targets) * np.log(1.0 - probabilities + eps)
        )
        return float(
            (cross_entropy * sample_weights).mean() + 0.5 * self.l2 * (weights @ weights)
        )

    # -- feature scaling -----------------------------------------------------------

    def _fit_scaler(self, features: np.ndarray) -> None:
        self._feature_means = features.mean(axis=0)
        scales = features.std(axis=0)
        scales[scales < 1e-9] = 1.0
        self._feature_scales = scales

    def _scale(self, features: np.ndarray) -> np.ndarray:
        if self._feature_means is None or self._feature_scales is None:
            raise RuntimeError("scaler not fitted")
        return (features - self._feature_means) / self._feature_scales

    # -- inference -------------------------------------------------------------------

    def predict_proba(self, pairs: Sequence[RecordPair]) -> list[float]:
        if self._weights is None:
            raise RuntimeError("matcher must be fitted before predicting")
        if not pairs:
            return []
        features = self._scale(self.extractor.extract_batch(pairs))
        return self._probabilities(features)

    def _probability_vector(self, scaled_features: np.ndarray) -> np.ndarray:
        # Row-local on purpose: each pair's logit is an elementwise product
        # reduced along its own row, never one batched gemv — BLAS may pick
        # different accumulation paths at different matrix heights, which
        # shifts borderline logits by an ULP.  NumPy's axis-1 pairwise
        # reduction runs per row over a fixed length, so a pair's
        # probability is bitwise independent of how inference was batched —
        # the property the incremental subsystem's decision cache (reusing
        # a probability scored under one chunking inside a run that chose
        # another) relies on.
        logits = (scaled_features * self._weights).sum(axis=1)
        return _sigmoid(logits + self._bias)

    def _probabilities(self, scaled_features: np.ndarray) -> list[float]:
        return [float(p) for p in self._probability_vector(scaled_features)]

    # -- profiled inference -------------------------------------------------------

    def prepare_profiles(self, records: Iterable[Record]) -> ProfileStore:
        """Profile every record once; pairs are then scored by id."""
        return self.extractor.prepare(records)

    def score_profiled(
        self, profiles: ProfileStore, id_pairs: Sequence[IdPair]
    ) -> np.ndarray:
        """Probability vector for id pairs resolved against a profile store.

        The columnar phase-2 core: feature extraction, scaling and the
        row-local logit reduction are all array expressions — the only
        per-pair Python left in profiled inference is building the decision
        objects.  Byte-identical to :meth:`predict_proba` on the
        corresponding record pairs: the feature matrix holds the same
        float64 values in the same shape, so scaling and the row-local
        reduction see identical inputs.
        """
        if self._weights is None:
            raise RuntimeError("matcher must be fitted before predicting")
        if not id_pairs:
            return np.zeros(0, dtype=np.float64)
        features = self._scale(self.extractor.extract_batch_profiles(profiles, id_pairs))
        return self._probability_vector(features)

    def predict_proba_profiled(
        self, profiles: ProfileStore, id_pairs: Sequence[IdPair]
    ) -> list[float]:
        """Match probabilities for id pairs, as plain floats."""
        return [float(p) for p in self.score_profiled(profiles, id_pairs)]

    def decide_profiled(
        self, profiles: ProfileStore, id_pairs: Sequence[IdPair]
    ) -> list[MatchDecision]:
        probabilities = self.predict_proba_profiled(profiles, id_pairs)
        return [
            MatchDecision(
                left_id=left_id,
                right_id=right_id,
                probability=probability,
                is_match=probability >= self.threshold,
            )
            for (left_id, right_id), probability in zip(id_pairs, probabilities)
        ]

    # -- introspection -----------------------------------------------------------------

    def feature_importances(self) -> dict[str, float]:
        """Absolute weight per feature name (after scaling), for diagnostics."""
        if self._weights is None:
            raise RuntimeError("matcher must be fitted before inspecting weights")
        return {
            name: float(weight)
            for name, weight in zip(self.extractor.feature_names(), self._weights)
        }
