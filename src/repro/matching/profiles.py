"""Per-record feature profiles: precompute once, score many.

Pairwise matching evaluates far more candidate *pairs* than there are
*records* — every record appears in many pairs, yet the feature extractor
used to re-run text normalisation, tokenisation, corporate-term stripping
and identifier canonicalisation for both sides of every single pair.  A
:class:`RecordProfile` factors that record-local work out: it holds every
derived value the pair features need, computed exactly once per record, so
scoring a pair is reduced to the genuinely pairwise comparisons (edit
distances, set intersections, equality checks).

A :class:`ProfileStore` maps record ids to profiles and mirrors the
two-phase protocol of the sharded blocking layer: ``prepare(dataset)`` runs
once in the parent process, the (picklable) store ships to process-pool
workers out of band — once per store revision under the warm pool's epoch
protocol, once per worker via the cold-pool initializer — and the per-chunk
task payload shrinks to bare id pairs — record objects are no longer
re-pickled per batch.

The contract that makes this safe: scoring from profiles is **byte
identical** to recomputing from the records, because a profile stores the
unmodified outputs of the exact same normalisation calls the direct path
makes.  The golden runtime suite and a hypothesis equivalence test pin
this.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Mapping

from repro.datagen.identifiers import SECURITY_ID_FIELDS
from repro.datagen.records import CompanyRecord, Record, SecurityRecord
from repro.text.normalize import normalize_identifier, normalize_text, strip_corporate_terms
from repro.text.tokenize import word_tokenize

#: Record-kind discriminators stored on a profile.  Identifier features only
#: fire for same-kind pairs, mirroring the ``isinstance`` checks of the
#: direct extraction path.
KIND_COMPANY = "company"
KIND_SECURITY = "security"
KIND_OTHER = "other"

#: Auxiliary attributes compared with the 1 / 0.5 / 0 equality feature, in
#: feature order.  Profiles store their normalised values.
EQUALITY_ATTRIBUTES: tuple[str, ...] = (
    "city",
    "region",
    "country_code",
    "industry",
    "security_type",
    "ticker",
)


@dataclass(frozen=True, slots=True)
class RecordProfile:
    """Everything record-local the pair features derive from one record.

    Token collections are stored both in order (tuples, for consumers that
    care about sequence) and as frozensets (for the set-based similarity
    measures, which then skip per-comparison ``set()`` construction).
    Frozen + slotted keeps profiles compact, hashable and picklable.
    """

    record_id: str
    source: str
    kind: str

    name_norm: str
    name_tokens: tuple[str, ...]
    name_token_set: frozenset[str]

    stripped_name: str
    stripped_tokens: tuple[str, ...]
    stripped_token_set: frozenset[str]

    has_description: bool
    description_tokens: tuple[str, ...]
    description_token_set: frozenset[str]

    #: Normalised auxiliary attributes, in :data:`EQUALITY_ATTRIBUTES` order.
    city: str
    region: str
    country_code: str
    industry: str
    security_type: str
    ticker: str

    #: Normalised security identifiers in ``SECURITY_ID_FIELDS`` order
    #: (empty string where the record has none); ``()`` for non-securities.
    security_identifiers: tuple[str, ...]
    #: Normalised, non-empty associated-security ISINs; empty for
    #: non-companies.
    isin_set: frozenset[str]


def record_name(record: Record) -> str:
    """The record's display name ("name" for companies/securities, "title"
    for products).

    The single name lookup every consumer shares — profiles are built from
    it and name-based matchers score with it — so a profiled path can never
    drift from its record-pair counterpart."""
    for attribute in ("name", "title"):
        value = getattr(record, attribute, None)
        if value:
            return str(value)
    return ""


def _attribute_of(record: Record, attribute: str) -> str:
    value = getattr(record, attribute, None)
    return str(value) if value else ""


def build_profile(record: Record) -> RecordProfile:
    """Compute one record's feature profile.

    Every stored value is the unmodified output of the same call the
    pairwise-recompute path makes, which is what keeps profile-based
    extraction byte-identical to direct extraction.
    """
    name = record_name(record)
    name_norm = normalize_text(name)
    name_tokens = tuple(name_norm.split())
    stripped_name = strip_corporate_terms(name)
    stripped_tokens = tuple(stripped_name.split())

    description = _attribute_of(record, "description")
    description_tokens = tuple(word_tokenize(description))

    if isinstance(record, SecurityRecord):
        kind = KIND_SECURITY
        security_identifiers = tuple(
            normalize_identifier(getattr(record, field)) for field in SECURITY_ID_FIELDS
        )
        isin_set: frozenset[str] = frozenset()
    elif isinstance(record, CompanyRecord):
        kind = KIND_COMPANY
        security_identifiers = ()
        isins = {normalize_identifier(value) for value in record.security_isins}
        isins.discard("")
        isin_set = frozenset(isins)
    else:
        kind = KIND_OTHER
        security_identifiers = ()
        isin_set = frozenset()

    return RecordProfile(
        record_id=record.record_id,
        source=record.source,
        kind=kind,
        name_norm=name_norm,
        name_tokens=name_tokens,
        name_token_set=frozenset(name_tokens),
        stripped_name=stripped_name,
        stripped_tokens=stripped_tokens,
        stripped_token_set=frozenset(stripped_tokens),
        has_description=bool(description),
        description_tokens=description_tokens,
        description_token_set=frozenset(description_tokens),
        city=normalize_text(_attribute_of(record, "city")),
        region=normalize_text(_attribute_of(record, "region")),
        country_code=normalize_text(_attribute_of(record, "country_code")),
        industry=normalize_text(_attribute_of(record, "industry")),
        security_type=normalize_text(_attribute_of(record, "security_type")),
        ticker=normalize_text(_attribute_of(record, "ticker")),
        security_identifiers=security_identifiers,
        isin_set=isin_set,
    )


class ProfileStore:
    """Record-id → :class:`RecordProfile` mapping, computed once per run.

    The matching counterpart of the blocking layer's prepared shared state:
    built in the parent by :meth:`prepare`, shipped to every process-pool
    worker out of band, and read by id from the per-chunk scoring tasks.  Stores are picklable; they only ever grow
    (:meth:`add_records` appends profiles for newly ingested records —
    existing profiles are never mutated or replaced).

    Besides the profiles, a store carries transient *similarity caches*:
    records repeat names across data sources, so candidate sets compare the
    same (normalised) string pair many times — typically only ~a third of
    name comparisons are distinct.  The caches memoise the pure
    string-similarity results per distinct string pair for the lifetime of
    the store (one run).  Cached values are bitwise identical to fresh
    computation (the functions are deterministic), so hits can never change
    a result; concurrent threads may at worst recompute a value.  The
    caches are dropped on pickling — each process-pool worker rebuilds its
    own as it scores.
    """

    __slots__ = (
        "_profiles",
        "revision",
        "name_similarity_cache",
        "stripped_similarity_cache",
    )

    def __init__(self, profiles: Mapping[str, RecordProfile]) -> None:
        self._profiles = dict(profiles)
        #: Content revision, bumped whenever :meth:`add_records` grows the
        #: store.  The warm pool's epoch protocol compares it to decide
        #: whether an already-shipped store is still current — a store
        #: therefore ships once per revision, not once per matching call.
        self.revision = 0
        #: (name_norm, name_norm) → (jaro_winkler, levenshtein, lcs) triples.
        self.name_similarity_cache: dict[tuple[str, str], tuple[float, float, float]] = {}
        #: (stripped_name, stripped_name) → jaro_winkler.
        self.stripped_similarity_cache: dict[tuple[str, str], float] = {}

    def __getstate__(self) -> dict[str, RecordProfile]:
        # Ship only the profiles; workers warm their own caches.
        return self._profiles

    def __setstate__(self, profiles: dict[str, RecordProfile]) -> None:
        self.__init__(profiles)

    @classmethod
    def prepare(cls, records: Iterable[Record]) -> "ProfileStore":
        """Profile every record once.  Accepts any record iterable — a
        :class:`~repro.datagen.records.Dataset` iterates its records."""
        return cls({record.record_id: build_profile(record) for record in records})

    def add_records(self, records: Iterable[Record]) -> int:
        """Profile records not yet in the store; returns how many were added.

        The incremental-ingestion append path: a persistent store grows with
        each delta instead of being rebuilt per run.  Profiles are pure
        per-record derivations, so appending is trivially equivalent to a
        fresh :meth:`prepare` over the union — already-profiled records are
        skipped (their profile could not change) and the similarity memo
        caches stay valid (they key on strings, not records).
        """
        added = 0
        for record in records:
            if record.record_id not in self._profiles:
                self._profiles[record.record_id] = build_profile(record)
                added += 1
        if added:
            self.revision += 1
        return added

    def get(self, record_id: str) -> RecordProfile:
        return self._profiles[record_id]

    def __contains__(self, record_id: str) -> bool:
        return record_id in self._profiles

    def __len__(self) -> int:
        return len(self._profiles)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProfileStore(records={len(self._profiles)})"
