"""Per-record feature profiles: precompute once, score many — columnar.

Pairwise matching evaluates far more candidate *pairs* than there are
*records* — every record appears in many pairs, yet the feature extractor
used to re-run text normalisation, tokenisation, corporate-term stripping
and identifier canonicalisation for both sides of every single pair.  A
:class:`RecordProfile` factors that record-local work out; a
:class:`ProfileStore` holds one profile per record.

Since the columnar refactor the store is laid out **struct-of-arrays**: the
profile fields live in contiguous numpy columns indexed by row (record id →
row index via :meth:`ProfileStore.row_indices`), every string is interned
once into a shared table (``id 0`` is the empty string, so "missing" is a
plain integer comparison), and ragged per-record collections — token sets,
company ISIN sets, description token sequences — are CSR-packed
:class:`IdSetColumn` buffers of interned ids.  Feature extraction then runs
as array ops over row-index pairs (set overlaps via sorted-id intersection
counts, attribute agreement via integer equality) instead of a Python loop
over pairs; see :meth:`repro.matching.features.PairFeatureExtractor.extract_batch_profiles`.

The store mirrors the two-phase protocol of the sharded blocking layer:
``prepare(dataset)`` runs once in the parent process, the (picklable) store
ships to process-pool workers out of band — the pickled payload *is* the
columnar arrays, shipped once per store revision under the warm pool's
epoch protocol — and the per-chunk task payload shrinks to bare id pairs.
:meth:`ProfileStore.add_records` appends rows to every column in place and
bumps ``revision``, so incremental ingest grows the store instead of
rebuilding it.

The contract that makes all of this safe: scoring from the columns is
**byte identical** to recomputing from the records, because every column
stores the unmodified output of the exact same normalisation calls the
direct path makes (interning changes *where* a string lives, never *what*
it is), and the interning order is a pure function of record order.  The
golden runtime suite and a hypothesis equivalence test pin this.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.datagen.identifiers import SECURITY_ID_FIELDS
from repro.datagen.records import CompanyRecord, Record, SecurityRecord
from repro.text.normalize import normalize_identifier, normalize_text, strip_corporate_terms
from repro.text.tokenize import word_tokenize

#: Record-kind discriminators stored on a profile.  Identifier features only
#: fire for same-kind pairs, mirroring the ``isinstance`` checks of the
#: direct extraction path.
KIND_COMPANY = "company"
KIND_SECURITY = "security"
KIND_OTHER = "other"

#: Kind strings in column-code order: ``kind_codes`` stores the index.
KIND_NAMES: tuple[str, ...] = (KIND_OTHER, KIND_COMPANY, KIND_SECURITY)
_KIND_CODES: dict[str, int] = {name: code for code, name in enumerate(KIND_NAMES)}

#: Auxiliary attributes compared with the 1 / 0.5 / 0 equality feature, in
#: feature order.  Profiles store their normalised values.
EQUALITY_ATTRIBUTES: tuple[str, ...] = (
    "city",
    "region",
    "country_code",
    "industry",
    "security_type",
    "ticker",
)

#: Marker keying the columnar pickle payload; pickles written before the
#: columnar refactor carry a plain ``{record_id: RecordProfile}`` dict
#: instead and are rebuilt column by column on load.
_COLUMNAR_PICKLE_FORMAT = "profile-store-columnar-v1"


@dataclass(frozen=True, slots=True)
class RecordProfile:
    """Everything record-local the pair features derive from one record.

    Token collections are stored both in order (tuples, for consumers that
    care about sequence) and as frozensets (for the set-based similarity
    measures, which then skip per-comparison ``set()`` construction).
    Frozen + slotted keeps profiles compact, hashable and picklable.
    """

    record_id: str
    source: str
    kind: str

    name_norm: str
    name_tokens: tuple[str, ...]
    name_token_set: frozenset[str]

    stripped_name: str
    stripped_tokens: tuple[str, ...]
    stripped_token_set: frozenset[str]

    has_description: bool
    description_tokens: tuple[str, ...]
    description_token_set: frozenset[str]

    #: Normalised auxiliary attributes, in :data:`EQUALITY_ATTRIBUTES` order.
    city: str
    region: str
    country_code: str
    industry: str
    security_type: str
    ticker: str

    #: Normalised security identifiers in ``SECURITY_ID_FIELDS`` order
    #: (empty string where the record has none); ``()`` for non-securities.
    security_identifiers: tuple[str, ...]
    #: Normalised, non-empty associated-security ISINs; empty for
    #: non-companies.
    isin_set: frozenset[str]


def record_name(record: Record) -> str:
    """The record's display name ("name" for companies/securities, "title"
    for products).

    The single name lookup every consumer shares — profiles are built from
    it and name-based matchers score with it — so a profiled path can never
    drift from its record-pair counterpart."""
    for attribute in ("name", "title"):
        value = getattr(record, attribute, None)
        if value:
            return str(value)
    return ""


def _attribute_of(record: Record, attribute: str) -> str:
    value = getattr(record, attribute, None)
    return str(value) if value else ""


class _ProfileBuilder:
    """Builds profiles with per-batch memo caches on the *raw* strings.

    Records repeat names, descriptions and attribute values across data
    sources, so a batch re-normalises the same raw string many times.  The
    builder memoises each pure derivation per distinct input for the
    lifetime of one ``prepare``/``add_records`` call; memoising a pure
    function cannot change a value, so the profiles are bitwise identical
    to unmemoised construction.
    """

    __slots__ = ("_names", "_texts", "_descriptions", "_identifiers")

    def __init__(self) -> None:
        #: raw name -> (name_norm, name_tokens, stripped_name, stripped_tokens)
        self._names: dict[str, tuple[str, tuple[str, ...], str, tuple[str, ...]]] = {}
        #: raw attribute value -> normalize_text(value)
        self._texts: dict[str, str] = {}
        #: raw description -> ordered token tuple
        self._descriptions: dict[str, tuple[str, ...]] = {}
        #: raw identifier -> normalize_identifier(value)
        self._identifiers: dict[str, str] = {}

    def _name_forms(self, name: str) -> tuple[str, tuple[str, ...], str, tuple[str, ...]]:
        forms = self._names.get(name)
        if forms is None:
            name_norm = normalize_text(name)
            stripped = strip_corporate_terms(name)
            forms = (name_norm, tuple(name_norm.split()), stripped, tuple(stripped.split()))
            self._names[name] = forms
        return forms

    def _text(self, value: str) -> str:
        normalized = self._texts.get(value)
        if normalized is None:
            normalized = normalize_text(value)
            self._texts[value] = normalized
        return normalized

    def _description_tokens(self, description: str) -> tuple[str, ...]:
        tokens = self._descriptions.get(description)
        if tokens is None:
            tokens = tuple(word_tokenize(description))
            self._descriptions[description] = tokens
        return tokens

    def _identifier(self, value: str) -> str:
        normalized = self._identifiers.get(value)
        if normalized is None:
            normalized = normalize_identifier(value)
            self._identifiers[value] = normalized
        return normalized

    def build(self, record: Record) -> RecordProfile:
        """Compute one record's feature profile.

        Every stored value is the unmodified output of the same call the
        pairwise-recompute path makes, which is what keeps profile-based
        extraction byte-identical to direct extraction.
        """
        name = record_name(record)
        name_norm, name_tokens, stripped_name, stripped_tokens = self._name_forms(name)

        description = _attribute_of(record, "description")
        description_tokens = self._description_tokens(description)

        if isinstance(record, SecurityRecord):
            kind = KIND_SECURITY
            security_identifiers = tuple(
                self._identifier(_attribute_of(record, field))
                for field in SECURITY_ID_FIELDS
            )
            isin_set: frozenset[str] = frozenset()
        elif isinstance(record, CompanyRecord):
            kind = KIND_COMPANY
            security_identifiers = ()
            isins = {self._identifier(str(value) if value else "") for value in record.security_isins}
            isins.discard("")
            isin_set = frozenset(isins)
        else:
            kind = KIND_OTHER
            security_identifiers = ()
            isin_set = frozenset()

        return RecordProfile(
            record_id=record.record_id,
            source=record.source,
            kind=kind,
            name_norm=name_norm,
            name_tokens=name_tokens,
            name_token_set=frozenset(name_tokens),
            stripped_name=stripped_name,
            stripped_tokens=stripped_tokens,
            stripped_token_set=frozenset(stripped_tokens),
            has_description=bool(description),
            description_tokens=description_tokens,
            description_token_set=frozenset(description_tokens),
            city=self._text(_attribute_of(record, "city")),
            region=self._text(_attribute_of(record, "region")),
            country_code=self._text(_attribute_of(record, "country_code")),
            industry=self._text(_attribute_of(record, "industry")),
            security_type=self._text(_attribute_of(record, "security_type")),
            ticker=self._text(_attribute_of(record, "ticker")),
            security_identifiers=security_identifiers,
            isin_set=isin_set,
        )


def build_profile(record: Record) -> RecordProfile:
    """Compute one record's feature profile (see :class:`_ProfileBuilder`)."""
    return _ProfileBuilder().build(record)


class IdSetColumn:
    """Ragged rows of interned string ids in one contiguous CSR buffer.

    ``values`` holds every row's ids back to back; ``offsets[row]`` /
    ``offsets[row + 1]`` delimit one row.  Set-valued rows store their ids
    sorted ascending, which is what lets pairwise set overlaps run as
    sorted-id intersection counts without touching the strings.
    """

    __slots__ = ("values", "offsets")

    def __init__(self, values: np.ndarray | None = None, offsets: np.ndarray | None = None) -> None:
        self.values = values if values is not None else np.zeros(0, dtype=np.int32)
        self.offsets = offsets if offsets is not None else np.zeros(1, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.offsets) - 1

    def row(self, row: int) -> np.ndarray:
        return self.values[self.offsets[row] : self.offsets[row + 1]]

    def lengths(self, rows: np.ndarray) -> np.ndarray:
        """Row sizes for an array of row indices."""
        return self.offsets[rows + 1] - self.offsets[rows]

    def extend(self, rows: Sequence[Sequence[int]]) -> None:
        """Append one list of ids per new row (in-place growth)."""
        if not rows:
            return
        lengths = np.fromiter((len(r) for r in rows), dtype=np.int64, count=len(rows))
        flat = [value for row in rows for value in row]
        self.values = np.concatenate(
            [self.values, np.asarray(flat, dtype=np.int32)]
        )
        self.offsets = np.concatenate(
            [self.offsets, self.offsets[-1] + np.cumsum(lengths)]
        )


_SENTINEL = np.iinfo(np.int32).max


def sorted_intersection_counts(
    column: IdSetColumn, left_rows: np.ndarray, right_rows: np.ndarray
) -> np.ndarray:
    """Per-pair ``|row(left) ∩ row(right)|`` over a set-valued column.

    Ids within a set row are unique, so after concatenating both sides into
    one padded buffer and sorting each pair's row, every adjacent duplicate
    is exactly one shared id — an exact integer count, equal to
    ``len(set_a & set_b)`` on the underlying strings because interning is a
    bijection.  (The sentinel never collides with a real id: ids are table
    indexes, far below int32 max.)
    """
    n = len(left_rows)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    len_l = column.lengths(left_rows)
    len_r = column.lengths(right_rows)
    total = len_l + len_r
    width = int(total.max())
    if width == 0:
        return np.zeros(n, dtype=np.int64)
    positions = np.arange(width, dtype=np.int64)
    buffer = np.full((n, width), _SENTINEL, dtype=np.int32)
    mask_l = positions < len_l[:, None]
    source_l = column.offsets[left_rows][:, None] + positions
    buffer[mask_l] = column.values[source_l[mask_l]]
    mask_r = (positions >= len_l[:, None]) & (positions < total[:, None])
    source_r = column.offsets[right_rows][:, None] + (positions - len_l[:, None])
    buffer[mask_r] = column.values[source_r[mask_r]]
    buffer.sort(axis=1)
    return ((buffer[:, 1:] == buffer[:, :-1]) & (buffer[:, :-1] != _SENTINEL)).sum(
        axis=1, dtype=np.int64
    )


class ProfileStore:
    """Struct-of-arrays record profiles, computed once per run.

    The matching counterpart of the blocking layer's prepared shared state:
    built in the parent by :meth:`prepare`, shipped to every process-pool
    worker out of band (the pickled payload is the columnar arrays), and
    read by row index from the per-chunk scoring tasks.  Stores only ever
    grow: :meth:`add_records` appends one row per newly ingested record to
    every column in place — existing rows are never mutated or replaced —
    and bumps ``revision`` so the warm pool's epoch protocol re-ships the
    store exactly once per growth step.

    Columns (all row-aligned; strings live once in the interned table):

    * ``kind_codes`` (int8), ``source_ids`` / ``name_ids`` /
      ``stripped_ids`` (int32 interned ids), ``has_description`` (bool),
    * ``attr_ids`` — (rows, len(:data:`EQUALITY_ATTRIBUTES`)) interned
      normalised auxiliary attributes, id 0 == missing,
    * ``identifier_ids`` — (rows, len(``SECURITY_ID_FIELDS``)) interned
      security identifiers (all-0 rows for non-securities),
    * ``name_token_sets`` / ``stripped_token_sets`` /
      ``description_token_sets`` / ``isin_sets`` — sorted-id
      :class:`IdSetColumn` sets,
    * ``description_token_seqs`` — the *ordered* description token ids
      (duplicates kept), so :meth:`get` can materialise an exact
      :class:`RecordProfile` back out of the columns.

    Besides the columns, a store carries transient *similarity caches*:
    records repeat names across data sources, so candidate sets compare the
    same (normalised) string pair many times — typically only ~a third of
    name comparisons are distinct.  The caches memoise the pure
    string-similarity results per distinct string pair for the lifetime of
    the store (one run).  Cached values are bitwise identical to fresh
    computation (the functions are deterministic), so hits can never change
    a result; concurrent threads may at worst recompute a value.  The
    caches are dropped on pickling — each process-pool worker rebuilds its
    own as it scores.
    """

    __slots__ = (
        "_row_of",
        "_record_ids",
        "_strings",
        "_string_ids",
        "kind_codes",
        "source_ids",
        "name_ids",
        "stripped_ids",
        "has_description",
        "attr_ids",
        "identifier_ids",
        "name_token_sets",
        "stripped_token_sets",
        "description_token_sets",
        "description_token_seqs",
        "isin_sets",
        "revision",
        "name_similarity_cache",
        "stripped_similarity_cache",
        "sim_cache_hits",
        "sim_cache_misses",
        "_profile_cache",
    )

    def __init__(self, profiles: Mapping[str, RecordProfile] = ()) -> None:
        self._row_of: dict[str, int] = {}
        self._record_ids: list[str] = []
        #: Interned string table; index 0 is the empty string, so a missing
        #: value is the integer 0 everywhere in the columns.
        self._strings: list[str] = [""]
        self._string_ids: dict[str, int] = {"": 0}
        self.kind_codes = np.zeros(0, dtype=np.int8)
        self.source_ids = np.zeros(0, dtype=np.int32)
        self.name_ids = np.zeros(0, dtype=np.int32)
        self.stripped_ids = np.zeros(0, dtype=np.int32)
        self.has_description = np.zeros(0, dtype=np.bool_)
        self.attr_ids = np.zeros((0, len(EQUALITY_ATTRIBUTES)), dtype=np.int32)
        self.identifier_ids = np.zeros((0, len(SECURITY_ID_FIELDS)), dtype=np.int32)
        self.name_token_sets = IdSetColumn()
        self.stripped_token_sets = IdSetColumn()
        self.description_token_sets = IdSetColumn()
        self.description_token_seqs = IdSetColumn()
        self.isin_sets = IdSetColumn()
        #: Content revision, bumped whenever :meth:`add_records` grows the
        #: store.  The warm pool's epoch protocol compares it to decide
        #: whether an already-shipped store is still current — a store
        #: therefore ships once per revision, not once per matching call.
        self.revision = 0
        self._reset_transient()
        if profiles:
            self._append_profiles(dict(profiles).items())

    def _reset_transient(self) -> None:
        #: (name_norm, name_norm) → (jaro_winkler, levenshtein, lcs) triples.
        self.name_similarity_cache: dict[tuple[str, str], tuple[float, float, float]] = {}
        #: (stripped_name, stripped_name) → jaro_winkler.
        self.stripped_similarity_cache: dict[tuple[str, str], float] = {}
        #: Similarity-memo accounting (transient, like the caches they
        #: count): gather paths bulk-increment these; :meth:`memo_stats`
        #: reads them.  Counting is unconditional — two int adds per *batch*
        #: on the gather paths — so no recorder handle needs to reach here.
        self.sim_cache_hits = 0
        self.sim_cache_misses = 0
        #: record id → materialised :class:`RecordProfile`, filled lazily by
        #: :meth:`get` (profiles are views over the columns, reconstructed
        #: exactly; the columns are the source of truth).
        self._profile_cache: dict[str, RecordProfile] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def prepare(cls, records: Iterable[Record]) -> "ProfileStore":
        """Profile every record once.  Accepts any record iterable — a
        :class:`~repro.datagen.records.Dataset` iterates its records."""
        builder = _ProfileBuilder()
        return cls({record.record_id: builder.build(record) for record in records})

    def add_records(self, records: Iterable[Record]) -> int:
        """Profile records not yet in the store; returns how many were added.

        The incremental-ingestion append path: a persistent store grows with
        each delta instead of being rebuilt per run.  Profiles are pure
        per-record derivations, so appending rows is trivially equivalent to
        a fresh :meth:`prepare` over the union — already-profiled records
        are skipped (their profile could not change), the string-similarity
        memo caches stay valid (they key on strings, not records), and the
        interned table only ever gains entries, so existing column rows keep
        their exact ids.
        """
        builder = _ProfileBuilder()
        staged: dict[str, RecordProfile] = {}
        for record in records:
            if record.record_id in self._row_of or record.record_id in staged:
                continue
            staged[record.record_id] = builder.build(record)
        added = self._append_profiles(staged.items())
        if added:
            self.revision += 1
        return added

    def memo_stats(self) -> tuple[int, int]:
        """``(hits, misses)`` of the similarity memo caches so far.

        Counts distinct-pair lookups on the gather paths: a *miss* computed
        a similarity fresh, a *hit* served it from the per-store memo.
        Transient like the caches themselves — a shipped worker copy starts
        back at zero.
        """
        return self.sim_cache_hits, self.sim_cache_misses

    def _intern(self, value: str) -> int:
        index = self._string_ids.get(value)
        if index is None:
            index = len(self._strings)
            self._string_ids[value] = index
            self._strings.append(value)
        return index

    def _intern_set(self, tokens: Sequence[str]) -> list[int]:
        """Sorted unique interned ids of an *ordered* token sequence.

        Interning walks the deterministic sequence order (never a set), so
        the table layout — and therefore every pickled column — is a pure
        function of record order.
        """
        ids = {self._intern(token) for token in tokens}
        return sorted(ids)

    def _append_profiles(
        self, items: Iterable[tuple[str, RecordProfile]]
    ) -> int:
        """Pack profiles into new column rows (callers pre-filter duplicates)."""
        kind_codes: list[int] = []
        source_ids: list[int] = []
        name_ids: list[int] = []
        stripped_ids: list[int] = []
        has_description: list[bool] = []
        attr_rows: list[list[int]] = []
        identifier_rows: list[list[int]] = []
        name_sets: list[list[int]] = []
        stripped_sets: list[list[int]] = []
        description_sets: list[list[int]] = []
        description_seqs: list[list[int]] = []
        isin_rows: list[list[int]] = []
        no_identifiers = [0] * len(SECURITY_ID_FIELDS)
        intern = self._intern
        intern_set = self._intern_set
        # Per-batch memo for the token-derived id rows: records share names
        # and descriptions across sources, so the same token tuple repeats;
        # interning it again would walk the same deterministic order to the
        # same ids (the table already contains them), so reuse is exact.
        token_set_memo: dict[tuple[str, ...], list[int]] = {}
        description_memo: dict[tuple[str, ...], tuple[list[int], list[int]]] = {}

        for record_id, profile in items:  # repro-lint: disable=unordered-iteration -- dict insertion order == record order, the interning contract
            self._row_of[record_id] = len(self._record_ids)
            self._record_ids.append(record_id)
            kind_codes.append(_KIND_CODES[profile.kind])
            source_ids.append(intern(profile.source))
            name_ids.append(intern(profile.name_norm))
            stripped_ids.append(intern(profile.stripped_name))
            has_description.append(profile.has_description)
            name_set = token_set_memo.get(profile.name_tokens)
            if name_set is None:
                name_set = intern_set(profile.name_tokens)
                token_set_memo[profile.name_tokens] = name_set
            name_sets.append(name_set)
            stripped_set = token_set_memo.get(profile.stripped_tokens)
            if stripped_set is None:
                stripped_set = intern_set(profile.stripped_tokens)
                token_set_memo[profile.stripped_tokens] = stripped_set
            stripped_sets.append(stripped_set)
            description = description_memo.get(profile.description_tokens)
            if description is None:
                sequence = [intern(token) for token in profile.description_tokens]
                description = (sequence, sorted(set(sequence)))
                description_memo[profile.description_tokens] = description
            description_seqs.append(description[0])
            description_sets.append(description[1])
            attr_rows.append(
                [intern(getattr(profile, attr)) for attr in EQUALITY_ATTRIBUTES]
            )
            if profile.security_identifiers:
                identifier_rows.append(
                    [intern(value) for value in profile.security_identifiers]
                )
            else:
                identifier_rows.append(no_identifiers)
            # Sorted for deterministic interning: isin_set is a frozenset,
            # whose iteration order would leak PYTHONHASHSEED into the table.
            isin_rows.append([intern(value) for value in sorted(profile.isin_set)])

        added = len(kind_codes)
        if not added:
            return 0
        self.kind_codes = np.concatenate(
            [self.kind_codes, np.asarray(kind_codes, dtype=np.int8)]
        )
        self.source_ids = np.concatenate(
            [self.source_ids, np.asarray(source_ids, dtype=np.int32)]
        )
        self.name_ids = np.concatenate(
            [self.name_ids, np.asarray(name_ids, dtype=np.int32)]
        )
        self.stripped_ids = np.concatenate(
            [self.stripped_ids, np.asarray(stripped_ids, dtype=np.int32)]
        )
        self.has_description = np.concatenate(
            [self.has_description, np.asarray(has_description, dtype=np.bool_)]
        )
        self.attr_ids = np.concatenate(
            [
                self.attr_ids,
                np.asarray(attr_rows, dtype=np.int32).reshape(
                    added, len(EQUALITY_ATTRIBUTES)
                ),
            ]
        )
        self.identifier_ids = np.concatenate(
            [
                self.identifier_ids,
                np.asarray(identifier_rows, dtype=np.int32).reshape(
                    added, len(SECURITY_ID_FIELDS)
                ),
            ]
        )
        self.name_token_sets.extend(name_sets)
        self.stripped_token_sets.extend(stripped_sets)
        self.description_token_sets.extend(description_sets)
        self.description_token_seqs.extend(description_seqs)
        self.isin_sets.extend(isin_rows)
        return added

    # -- pickling ------------------------------------------------------------

    def __getstate__(self) -> dict[str, object]:
        # Ship the columnar arrays themselves — the epoch protocol publishes
        # exactly these bytes once per revision; workers warm their own
        # transient caches.
        return {
            "format": _COLUMNAR_PICKLE_FORMAT,
            "record_ids": self._record_ids,
            "strings": self._strings,
            "kind_codes": self.kind_codes,
            "source_ids": self.source_ids,
            "name_ids": self.name_ids,
            "stripped_ids": self.stripped_ids,
            "has_description": self.has_description,
            "attr_ids": self.attr_ids,
            "identifier_ids": self.identifier_ids,
            "name_token_sets": (self.name_token_sets.values, self.name_token_sets.offsets),
            "stripped_token_sets": (
                self.stripped_token_sets.values,
                self.stripped_token_sets.offsets,
            ),
            "description_token_sets": (
                self.description_token_sets.values,
                self.description_token_sets.offsets,
            ),
            "description_token_seqs": (
                self.description_token_seqs.values,
                self.description_token_seqs.offsets,
            ),
            "isin_sets": (self.isin_sets.values, self.isin_sets.offsets),
        }

    def __setstate__(self, state: dict) -> None:
        if isinstance(state, dict) and state.get("format") == _COLUMNAR_PICKLE_FORMAT:
            self.__init__()
            self._record_ids = list(state["record_ids"])
            self._row_of = {
                record_id: row for row, record_id in enumerate(self._record_ids)
            }
            self._strings = list(state["strings"])
            self._string_ids = {value: idx for idx, value in enumerate(self._strings)}
            self.kind_codes = state["kind_codes"]
            self.source_ids = state["source_ids"]
            self.name_ids = state["name_ids"]
            self.stripped_ids = state["stripped_ids"]
            self.has_description = state["has_description"]
            self.attr_ids = state["attr_ids"]
            self.identifier_ids = state["identifier_ids"]
            self.name_token_sets = IdSetColumn(*state["name_token_sets"])
            self.stripped_token_sets = IdSetColumn(*state["stripped_token_sets"])
            self.description_token_sets = IdSetColumn(*state["description_token_sets"])
            self.description_token_seqs = IdSetColumn(*state["description_token_seqs"])
            self.isin_sets = IdSetColumn(*state["isin_sets"])
        else:
            # Legacy payload: a {record_id: RecordProfile} dict written
            # before the columnar layout; rebuild the columns from it.
            self.__init__(state)

    # -- row access ----------------------------------------------------------

    def row_indices(
        self, id_pairs: Sequence[tuple[str, str]]
    ) -> tuple[np.ndarray, np.ndarray]:
        """(left rows, right rows) for a sequence of record-id pairs.

        Raises ``KeyError`` for unknown ids, like :meth:`get`.
        """
        row_of = self._row_of
        flat = np.fromiter(
            (row_of[record_id] for pair in id_pairs for record_id in pair),
            dtype=np.int64,
            count=2 * len(id_pairs),
        )
        return flat[0::2], flat[1::2]

    def string_at(self, index: int) -> str:
        """The interned string behind a column id."""
        return self._strings[index]

    @property
    def strings(self) -> Sequence[str]:
        """The interned string table (read-only view by convention)."""
        return self._strings

    @property
    def record_ids(self) -> Sequence[str]:
        """Record ids in row order (read-only view by convention)."""
        return self._record_ids

    def get(self, record_id: str) -> RecordProfile:
        """Materialise one record's :class:`RecordProfile` from its row.

        Every field is re-derived from the columns through the same pure
        transformations :func:`build_profile` used to create them, so the
        result is equal to the originally built profile; materialisations
        are memoised per store lifetime.
        """
        profile = self._profile_cache.get(record_id)
        if profile is None:
            profile = self._materialize(self._row_of[record_id])
            self._profile_cache[record_id] = profile
        return profile

    def _materialize(self, row: int) -> RecordProfile:
        strings = self._strings
        name_norm = strings[self.name_ids[row]]
        name_tokens = tuple(name_norm.split())
        stripped_name = strings[self.stripped_ids[row]]
        stripped_tokens = tuple(stripped_name.split())
        description_tokens = tuple(
            strings[index] for index in self.description_token_seqs.row(row)
        )
        kind = KIND_NAMES[self.kind_codes[row]]
        if kind == KIND_SECURITY:
            security_identifiers = tuple(
                strings[index] for index in self.identifier_ids[row]
            )
        else:
            security_identifiers = ()
        attrs = [strings[index] for index in self.attr_ids[row]]
        return RecordProfile(
            record_id=self._record_ids[row],
            source=strings[self.source_ids[row]],
            kind=kind,
            name_norm=name_norm,
            name_tokens=name_tokens,
            name_token_set=frozenset(name_tokens),
            stripped_name=stripped_name,
            stripped_tokens=stripped_tokens,
            stripped_token_set=frozenset(stripped_tokens),
            has_description=bool(self.has_description[row]),
            description_tokens=description_tokens,
            description_token_set=frozenset(description_tokens),
            city=attrs[0],
            region=attrs[1],
            country_code=attrs[2],
            industry=attrs[3],
            security_type=attrs[4],
            ticker=attrs[5],
            security_identifiers=security_identifiers,
            isin_set=frozenset(
                strings[index] for index in self.isin_sets.row(row)
            ),
        )

    def __contains__(self, record_id: str) -> bool:
        return record_id in self._row_of

    def __len__(self) -> int:
        return len(self._record_ids)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProfileStore(records={len(self._record_ids)}, "
            f"strings={len(self._strings)}, revision={self.revision})"
        )
