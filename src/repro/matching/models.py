"""The named model zoo of the paper's experiments (Table 3 / Table 4).

Each :class:`ModelSpec` describes one of the setups the paper evaluates:

====================  =========================================================
``distilbert-128-all``  plain serialisation, 128-token budget, trained on all
                        pairs of the train split (DistilBERT (128)-ALL)
``distilbert-128-15k``  same model, trained only on the reduced
                        identifier-matchable pair subset (DistilBERT (128)-15K)
``ditto-128``           DITTO ``[COL]/[VAL]`` serialisation, 128 tokens
``ditto-256``           DITTO serialisation, 256 tokens
``logistic``            feature-based logistic regression baseline
``id-overlap``          identifier-overlap heuristic (no training)
====================  =========================================================

The factory keeps all model hyper-parameters in one place so that the
benchmark harness, the examples and the tests construct identical models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.matching.attention import TransformerPairClassifier
from repro.matching.base import PairwiseMatcher
from repro.matching.heuristic import IdOverlapMatcher
from repro.matching.logistic import LogisticRegressionMatcher
from repro.registry import MATCHERS, register_matcher
from repro.text.serialize import DITTO_SCHEME, PLAIN_SCHEME, make_serializer


@dataclass(frozen=True)
class ModelSpec:
    """Declarative description of one experimental model setup."""

    name: str
    kind: str  # "transformer", "logistic" or "id-overlap"
    serialization_scheme: str = PLAIN_SCHEME
    max_tokens: int = 128
    #: Restrict training to the identifier-matchable subset ("15K"-style).
    reduced_training: bool = False
    #: Cap on the number of training pairs (``None`` = all).
    max_training_pairs: int | None = None
    description: str = ""
    extra: dict = field(default_factory=dict)


MODEL_SPECS: dict[str, ModelSpec] = {
    "distilbert-128-all": ModelSpec(
        name="distilbert-128-all",
        kind="transformer",
        serialization_scheme=PLAIN_SCHEME,
        max_tokens=128,
        description="DistilBERT (128)-ALL: plain serialisation, all training pairs",
    ),
    "distilbert-128-15k": ModelSpec(
        name="distilbert-128-15k",
        kind="transformer",
        serialization_scheme=PLAIN_SCHEME,
        max_tokens=128,
        reduced_training=True,
        description=(
            "DistilBERT (128)-15K: plain serialisation, reduced identifier-"
            "matchable training subset"
        ),
    ),
    "ditto-128": ModelSpec(
        name="ditto-128",
        kind="transformer",
        serialization_scheme=DITTO_SCHEME,
        max_tokens=128,
        description="DITTO (128): [COL]/[VAL] serialisation, 128-token budget",
    ),
    "ditto-256": ModelSpec(
        name="ditto-256",
        kind="transformer",
        serialization_scheme=DITTO_SCHEME,
        max_tokens=256,
        description="DITTO (256): [COL]/[VAL] serialisation, 256-token budget",
    ),
    "logistic": ModelSpec(
        name="logistic",
        kind="logistic",
        description="Feature-based logistic regression baseline",
    ),
    "id-overlap": ModelSpec(
        name="id-overlap",
        kind="id-overlap",
        description="Identifier-overlap heuristic (the industry benchmark)",
    ),
}


@register_matcher("transformer")
def build_transformer_matcher(
    spec: ModelSpec, attributes: Sequence[str], **options: object
) -> PairwiseMatcher:
    """Factory for the attention-based DistilBERT/DITTO stand-ins."""
    serializer = make_serializer(
        spec.serialization_scheme, attributes, max_tokens=spec.max_tokens
    )
    return TransformerPairClassifier(
        serializer=serializer,
        num_epochs=int(options.get("num_epochs", 5)),
        embedding_dim=int(options.get("embedding_dim", 32)),
        hidden_dim=int(options.get("hidden_dim", 64)),
        num_blocks=int(options.get("num_blocks", 1)),
        seed=int(options.get("seed", 0)),
    )


@register_matcher("logistic")
def build_logistic_matcher(
    spec: ModelSpec, attributes: Sequence[str], **options: object
) -> PairwiseMatcher:
    """Factory for the feature-based logistic regression baseline."""
    return LogisticRegressionMatcher(seed=int(options.get("seed", 0)))


@register_matcher("id-overlap")
def build_id_overlap_matcher(
    spec: ModelSpec, attributes: Sequence[str], **options: object
) -> PairwiseMatcher:
    """Factory for the identifier-overlap heuristic (needs no training)."""
    return IdOverlapMatcher()


def resolve_model_spec(spec: ModelSpec | str) -> ModelSpec:
    """Resolve a model-zoo name to its :class:`ModelSpec` (pass-through otherwise)."""
    if isinstance(spec, str):
        try:
            return MODEL_SPECS[spec]
        except KeyError as error:
            raise ValueError(
                f"unknown model {spec!r}; available: {sorted(MODEL_SPECS)}"
            ) from error
    return spec


def build_matcher(
    spec: ModelSpec | str,
    attributes: Sequence[str],
    seed: int = 0,
    num_epochs: int = 5,
    embedding_dim: int = 32,
    hidden_dim: int = 64,
    num_blocks: int = 1,
) -> PairwiseMatcher:
    """Instantiate the matcher described by ``spec`` for a given record schema.

    ``attributes`` is the serialisation order of the record attributes —
    normally ``RecordClass.MATCHING_ATTRIBUTES`` of the dataset at hand.
    Dispatches on ``spec.kind`` through the :data:`repro.registry.MATCHERS`
    registry, so externally registered kinds work here and in the specs.
    """
    spec = resolve_model_spec(spec)
    if spec.kind not in MATCHERS:
        raise ValueError(f"unknown model kind: {spec.kind!r}")
    factory = MATCHERS.get(spec.kind)
    return factory(
        spec,
        attributes,
        seed=seed,
        num_epochs=num_epochs,
        embedding_dim=embedding_dim,
        hidden_dim=hidden_dim,
        num_blocks=num_blocks,
    )
