"""Heuristic (non-learned) pairwise matchers.

Two baselines:

* :class:`IdOverlapMatcher` — "the benchmark heuristic often used to match
  these types of financial records" (Section 5.3.1): predict a match exactly
  when the records share an identifier (securities) or an associated
  security ISIN (companies).  Its failure mode is precisely the data-drift
  phenomenon: merger-contaminated identifiers yield false positives and
  re-issued identifiers yield false negatives.
* :class:`ThresholdNameMatcher` — predict a match when the (corporate-term
  stripped) names are closer than a threshold under Jaro–Winkler.  Used in
  tests and as an ingredient of ablation benches.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.datagen.identifiers import identifier_overlap
from repro.datagen.records import CompanyRecord, Record, SecurityRecord
from repro.matching.base import IdPair, MatchDecision, PairwiseMatcher, RecordPair
from repro.matching.features import gather_stripped_similarities
from repro.matching.profiles import ProfileStore, record_name
from repro.text.normalize import normalize_identifier, strip_corporate_terms
from repro.text.similarity import jaro_winkler_similarity


class IdOverlapMatcher(PairwiseMatcher):
    """Match records exactly when they share a (non-empty) identifier."""

    def __init__(self, threshold: float = 0.5) -> None:
        self.threshold = threshold

    def predict_proba(self, pairs: Sequence[RecordPair]) -> list[float]:
        return [1.0 if self._share_identifier(left, right) else 0.0 for left, right in pairs]

    @staticmethod
    def _share_identifier(left: Record, right: Record) -> bool:
        if isinstance(left, SecurityRecord) and isinstance(right, SecurityRecord):
            return bool(
                identifier_overlap(left.identifier_values(), right.identifier_values())
            )
        if isinstance(left, CompanyRecord) and isinstance(right, CompanyRecord):
            left_isins = {
                normalize_identifier(value) for value in left.security_isins if value
            }
            right_isins = {
                normalize_identifier(value) for value in right.security_isins if value
            }
            return bool(left_isins & right_isins)
        return False


class ThresholdNameMatcher(PairwiseMatcher):
    """Match records whose names exceed a Jaro–Winkler similarity threshold."""

    #: Stripped names are per-record state, so a profile store carries them —
    #: pairs then only pay the Jaro–Winkler comparison.
    profile_capable = True

    #: Profiled scoring runs the batched Jaro–Winkler kernel over the
    #: store's interned stripped-name ids — one array sweep per chunk.
    columnar_capable = True

    def __init__(self, similarity_threshold: float = 0.92) -> None:
        if not 0.0 <= similarity_threshold <= 1.0:
            raise ValueError("similarity_threshold must be in [0, 1]")
        self.similarity_threshold = similarity_threshold
        self.threshold = 0.5

    def predict_proba(self, pairs: Sequence[RecordPair]) -> list[float]:
        # record_name is the same lookup profiles are built from, so the
        # profiled path below cannot drift from this one.
        probabilities = []
        for left, right in pairs:
            similarity = jaro_winkler_similarity(
                strip_corporate_terms(record_name(left)),
                strip_corporate_terms(record_name(right)),
            )
            probabilities.append(self._probability(similarity))
        return probabilities

    def _probability(self, similarity: float) -> float:
        return 1.0 if similarity >= self.similarity_threshold else similarity

    # -- profiled inference -------------------------------------------------------

    def prepare_profiles(self, records: Iterable[Record]) -> ProfileStore:
        return ProfileStore.prepare(records)

    def score_profiled(
        self, profiles: ProfileStore, id_pairs: Sequence[IdPair]
    ) -> np.ndarray:
        # The store's stripped-name column is strip_corporate_terms applied
        # to record_name, and the batched kernel is bitwise-equal to the
        # scalar jaro_winkler_similarity — so this vector holds exactly the
        # probabilities decide() computes on the record pairs.
        if not id_pairs:
            return np.zeros(0, dtype=np.float64)
        left_rows, right_rows = profiles.row_indices(id_pairs)
        similarities = gather_stripped_similarities(profiles, left_rows, right_rows)
        return np.where(similarities >= self.similarity_threshold, 1.0, similarities)

    def decide_profiled(
        self, profiles: ProfileStore, id_pairs: Sequence[IdPair]
    ) -> list[MatchDecision]:
        probabilities = self.score_profiled(profiles, id_pairs)
        return [
            MatchDecision(
                left_id=left_id,
                right_id=right_id,
                probability=float(probability),
                is_match=float(probability) >= self.threshold,
            )
            for (left_id, right_id), probability in zip(id_pairs, probabilities)
        ]
