"""Heuristic (non-learned) pairwise matchers.

Two baselines:

* :class:`IdOverlapMatcher` — "the benchmark heuristic often used to match
  these types of financial records" (Section 5.3.1): predict a match exactly
  when the records share an identifier (securities) or an associated
  security ISIN (companies).  Its failure mode is precisely the data-drift
  phenomenon: merger-contaminated identifiers yield false positives and
  re-issued identifiers yield false negatives.
* :class:`ThresholdNameMatcher` — predict a match when the (corporate-term
  stripped) names are closer than a threshold under Jaro–Winkler.  Used in
  tests and as an ingredient of ablation benches.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.datagen.identifiers import identifier_overlap
from repro.datagen.records import CompanyRecord, Record, SecurityRecord
from repro.matching.base import PairwiseMatcher, RecordPair
from repro.text.normalize import normalize_identifier, strip_corporate_terms
from repro.text.similarity import jaro_winkler_similarity


class IdOverlapMatcher(PairwiseMatcher):
    """Match records exactly when they share a (non-empty) identifier."""

    def __init__(self, threshold: float = 0.5) -> None:
        self.threshold = threshold

    def predict_proba(self, pairs: Sequence[RecordPair]) -> list[float]:
        return [1.0 if self._share_identifier(left, right) else 0.0 for left, right in pairs]

    @staticmethod
    def _share_identifier(left: Record, right: Record) -> bool:
        if isinstance(left, SecurityRecord) and isinstance(right, SecurityRecord):
            return bool(
                identifier_overlap(left.identifier_values(), right.identifier_values())
            )
        if isinstance(left, CompanyRecord) and isinstance(right, CompanyRecord):
            left_isins = {
                normalize_identifier(value) for value in left.security_isins if value
            }
            right_isins = {
                normalize_identifier(value) for value in right.security_isins if value
            }
            return bool(left_isins & right_isins)
        return False


class ThresholdNameMatcher(PairwiseMatcher):
    """Match records whose names exceed a Jaro–Winkler similarity threshold."""

    def __init__(self, similarity_threshold: float = 0.92) -> None:
        if not 0.0 <= similarity_threshold <= 1.0:
            raise ValueError("similarity_threshold must be in [0, 1]")
        self.similarity_threshold = similarity_threshold
        self.threshold = 0.5

    def predict_proba(self, pairs: Sequence[RecordPair]) -> list[float]:
        probabilities = []
        for left, right in pairs:
            similarity = jaro_winkler_similarity(
                strip_corporate_terms(self._name(left)),
                strip_corporate_terms(self._name(right)),
            )
            probabilities.append(1.0 if similarity >= self.similarity_threshold else similarity)
        return probabilities

    @staticmethod
    def _name(record: Record) -> str:
        for attribute in ("name", "title"):
            value = getattr(record, attribute, None)
            if value:
                return str(value)
        return ""
