"""Pairwise matching models.

The paper's pairwise matchers are fine-tuned Transformer language models
(DistilBERT, and DITTO which wraps a DistilBERT backbone behind a different
serialisation scheme).  HuggingFace models are not available offline, so the
matchers here are built from scratch on numpy (see DESIGN.md, substitution
2) while keeping the exact role and interface of the originals: given a
serialised record pair, produce a Match / NoMatch probability.

* :mod:`repro.matching.base` — the :class:`PairwiseMatcher` interface,
* :mod:`repro.matching.pairs` — labelled pair construction and negative
  sampling (the 5:1 scheme of Section 5.1.3),
* :mod:`repro.matching.features` — similarity features for the classical
  baseline,
* :mod:`repro.matching.profiles` — per-record feature profiles
  (:class:`RecordProfile` / :class:`ProfileStore`): record-local
  derivations computed once, pairs scored from profiles,
* :mod:`repro.matching.decisions` — array-backed decision containers
  (:class:`DecisionVector` / :class:`DecisionCache`) for the engine's
  columnar dispatch route and the incremental decision cache,
* :mod:`repro.matching.logistic` — logistic-regression matcher,
* :mod:`repro.matching.nn` — numpy neural-network building blocks,
* :mod:`repro.matching.attention` — the Transformer-style cross-encoder
  (DistilBERT stand-in),
* :mod:`repro.matching.models` — the named model zoo of Table 3
  (``distilbert-128-all``, ``distilbert-128-15k``, ``ditto-128``,
  ``ditto-256``, …),
* :mod:`repro.matching.heuristic` — the identifier-overlap baseline,
* :mod:`repro.matching.training` — the fine-tuning loop (epochs, validation
  loss model selection, timing).
"""

from repro.matching.base import MatchDecision, PairwiseMatcher, ScoredPair
from repro.matching.decisions import DecisionCache, DecisionVector
from repro.matching.pairs import LabeledPair, PairSampler, build_labeled_pairs
from repro.matching.features import PairFeatureExtractor
from repro.matching.profiles import ProfileStore, RecordProfile, build_profile
from repro.matching.logistic import LogisticRegressionMatcher
from repro.matching.attention import TransformerPairClassifier
from repro.matching.heuristic import IdOverlapMatcher, ThresholdNameMatcher
from repro.matching.models import MODEL_SPECS, ModelSpec, build_matcher
from repro.matching.training import FineTuner, FineTuneResult

__all__ = [
    "MatchDecision",
    "PairwiseMatcher",
    "ScoredPair",
    "DecisionCache",
    "DecisionVector",
    "LabeledPair",
    "PairSampler",
    "build_labeled_pairs",
    "PairFeatureExtractor",
    "ProfileStore",
    "RecordProfile",
    "build_profile",
    "LogisticRegressionMatcher",
    "TransformerPairClassifier",
    "IdOverlapMatcher",
    "ThresholdNameMatcher",
    "MODEL_SPECS",
    "ModelSpec",
    "build_matcher",
    "FineTuner",
    "FineTuneResult",
]
