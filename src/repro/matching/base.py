"""The pairwise matcher interface.

Every matcher — neural, feature-based or heuristic — consumes *record pairs*
and produces Match / NoMatch decisions with a probability.  The entity group
matching pipeline only depends on this interface (Figure 1 explicitly
supports "any matching method that produces pairwise matches").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from collections.abc import Iterable, Sequence
from typing import Any

import numpy as np

from repro.datagen.records import Record


@dataclass(frozen=True)
class ScoredPair:
    """A candidate pair together with the matcher's probability of a match."""

    left_id: str
    right_id: str
    probability: float

    @property
    def pair(self) -> tuple[str, str]:
        return (self.left_id, self.right_id)


@dataclass(frozen=True)
class MatchDecision:
    """Final Match / NoMatch decision for one candidate pair."""

    left_id: str
    right_id: str
    probability: float
    is_match: bool

    @property
    def pair(self) -> tuple[str, str]:
        return (self.left_id, self.right_id)


RecordPair = tuple[Record, Record]


#: An unordered pair referenced by record id — the task payload of the
#: profiled inference path (the records themselves live in the profile
#: store, shipped to each worker once).
IdPair = tuple[str, str]


class PairwiseMatcher(ABC):
    """Binary Match / NoMatch classifier over record pairs.

    Besides the record-pair entry points, a matcher may opt into the
    *profiled* two-phase protocol (``profile_capable = True``), the matching
    analogue of the blocking layer's shardable protocol:

    1. :meth:`prepare_profiles` derives per-record state from the dataset
       once (for the feature-based matchers: a
       :class:`~repro.matching.profiles.ProfileStore`).  Runs in the parent
       process; the result must be picklable.
    2. :meth:`decide_profiled` scores chunks of bare ``(left_id, right_id)``
       pairs against that state, embarrassingly parallel across chunks.

    The contract: for any chunking of the candidate list,
    ``decide_profiled(prepare_profiles(dataset), ids)`` must equal
    ``decide(pairs)`` on the corresponding record pairs **byte for byte**
    (same probabilities, same verdicts) — profiles precompute record-local
    work, they never change it.

    Profiled matchers whose phase-2 scoring is vectorised over the columnar
    :class:`~repro.matching.profiles.ProfileStore` additionally set
    ``columnar_capable = True`` and implement :meth:`score_profiled`, the
    array-in/array-out core :meth:`decide_profiled` is a thin wrapper over.
    The execution engine's columnar dispatch route sends chunks straight to
    :meth:`score_profiled` and wraps the probability arrays in a lazy
    :class:`~repro.matching.decisions.DecisionVector` — which is why the
    columnar protocol only exists *inside* the profiled one: the flag and
    the method come as a pair, and ``columnar_capable = True`` presupposes
    ``profile_capable = True``.  The protocol-conformance lint rule enforces
    both couplings.
    """

    #: Decision threshold applied to the match probability.
    threshold: float = 0.5

    #: Whether this matcher implements the profiled two-phase protocol.
    profile_capable: bool = False

    #: Whether phase 2 is vectorised over the columnar store:
    #: ``score_profiled`` returns the probability vector as one float64
    #: array, with no per-pair Python in the scoring loop.
    columnar_capable: bool = False

    @abstractmethod
    def predict_proba(self, pairs: Sequence[RecordPair]) -> list[float]:
        """Return the match probability for every pair, in order."""

    def predict(self, pairs: Sequence[RecordPair]) -> list[bool]:
        """Apply the decision threshold to :meth:`predict_proba`."""
        return [p >= self.threshold for p in self.predict_proba(pairs)]

    def decide(self, pairs: Sequence[RecordPair]) -> list[MatchDecision]:
        """Return full decisions (ids, probability, verdict) for every pair."""
        probabilities = self.predict_proba(pairs)
        return [
            MatchDecision(
                left_id=left.record_id,
                right_id=right.record_id,
                probability=probability,
                is_match=probability >= self.threshold,
            )
            for (left, right), probability in zip(pairs, probabilities)
        ]

    def decide_batches(
        self, batches: Sequence[Sequence[RecordPair]]
    ) -> list[list[MatchDecision]]:
        """Decide several batches of pairs through one batched entry point.

        This is the inference path of the execution engine: each batch is
        one (vectorised) :meth:`decide` call, so per-call overhead is
        amortized over ``batch_size`` pairs while the *numeric batch shape
        stays exactly the chunking the engine chose*.  That shape stability
        is deliberate — BLAS reductions are not bitwise-reproducible across
        matrix shapes, so flattening batches into one fused call can flip
        borderline probabilities at the last ULP and break the engine's
        serial/parallel determinism guarantee.  Matchers whose arithmetic
        is shape-independent may override this with a fused implementation.
        """
        return [self.decide(batch) for batch in batches]

    # -- profiled inference (opt-in) --------------------------------------------

    def prepare_profiles(self, records: Iterable[Record]) -> Any:
        """Phase 1 of the profiled protocol: per-record state, built once.

        Runs in the parent process; the returned object is shipped to every
        worker (for process pools: once per worker, via the pool
        initializer) and must be picklable.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support profiled inference "
            "(profile_capable=False)"
        )

    def decide_profiled(
        self, profiles: Any, id_pairs: Sequence[IdPair]
    ) -> list[MatchDecision]:
        """Phase 2: decisions for one chunk of id pairs, from profiles only."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support profiled inference "
            "(profile_capable=False)"
        )

    def score_profiled(self, profiles: Any, id_pairs: Sequence[IdPair]) -> np.ndarray:
        """Columnar phase 2: the probability vector for one chunk of id pairs.

        Returns a float64 array of length ``len(id_pairs)`` whose values are
        bitwise those :meth:`decide_profiled` would attach to its decisions
        — the columnar path changes where the arithmetic runs (array
        expressions over the store's columns), never what it computes.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support columnar scoring "
            "(columnar_capable=False)"
        )

    def decide_profiled_batches(
        self, profiles: Any, batches: Sequence[Sequence[IdPair]]
    ) -> list[list[MatchDecision]]:
        """Batched entry point of the profiled path.

        One :meth:`decide_profiled` call per batch, mirroring
        :meth:`decide_batches` — the numeric batch shape a vectorised
        matcher sees stays exactly the chunking the engine chose, which is
        what keeps profiled and record-pair inference bit-identical at any
        worker count.
        """
        return [self.decide_profiled(profiles, batch) for batch in batches]

    def score_pairs(self, pairs: Sequence[RecordPair]) -> list[ScoredPair]:
        """Return scored pairs without applying the threshold."""
        probabilities = self.predict_proba(pairs)
        return [
            ScoredPair(left.record_id, right.record_id, probability)
            for (left, right), probability in zip(pairs, probabilities)
        ]


class TrainablePairwiseMatcher(PairwiseMatcher):
    """A matcher that is fine-tuned on labelled pairs before use."""

    @abstractmethod
    def fit(
        self,
        pairs: Sequence[RecordPair],
        labels: Sequence[int],
        validation_pairs: Sequence[RecordPair] | None = None,
        validation_labels: Sequence[int] | None = None,
    ) -> "TrainablePairwiseMatcher":
        """Train on labelled pairs (1 = match, 0 = non-match)."""
