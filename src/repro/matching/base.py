"""The pairwise matcher interface.

Every matcher — neural, feature-based or heuristic — consumes *record pairs*
and produces Match / NoMatch decisions with a probability.  The entity group
matching pipeline only depends on this interface (Figure 1 explicitly
supports "any matching method that produces pairwise matches").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from collections.abc import Sequence

from repro.datagen.records import Record


@dataclass(frozen=True)
class ScoredPair:
    """A candidate pair together with the matcher's probability of a match."""

    left_id: str
    right_id: str
    probability: float

    @property
    def pair(self) -> tuple[str, str]:
        return (self.left_id, self.right_id)


@dataclass(frozen=True)
class MatchDecision:
    """Final Match / NoMatch decision for one candidate pair."""

    left_id: str
    right_id: str
    probability: float
    is_match: bool

    @property
    def pair(self) -> tuple[str, str]:
        return (self.left_id, self.right_id)


RecordPair = tuple[Record, Record]


class PairwiseMatcher(ABC):
    """Binary Match / NoMatch classifier over record pairs."""

    #: Decision threshold applied to the match probability.
    threshold: float = 0.5

    @abstractmethod
    def predict_proba(self, pairs: Sequence[RecordPair]) -> list[float]:
        """Return the match probability for every pair, in order."""

    def predict(self, pairs: Sequence[RecordPair]) -> list[bool]:
        """Apply the decision threshold to :meth:`predict_proba`."""
        return [p >= self.threshold for p in self.predict_proba(pairs)]

    def decide(self, pairs: Sequence[RecordPair]) -> list[MatchDecision]:
        """Return full decisions (ids, probability, verdict) for every pair."""
        probabilities = self.predict_proba(pairs)
        return [
            MatchDecision(
                left_id=left.record_id,
                right_id=right.record_id,
                probability=probability,
                is_match=probability >= self.threshold,
            )
            for (left, right), probability in zip(pairs, probabilities)
        ]

    def decide_batches(
        self, batches: Sequence[Sequence[RecordPair]]
    ) -> list[list[MatchDecision]]:
        """Decide several batches of pairs through one batched entry point.

        This is the inference path of the execution engine: each batch is
        one (vectorised) :meth:`decide` call, so per-call overhead is
        amortized over ``batch_size`` pairs while the *numeric batch shape
        stays exactly the chunking the engine chose*.  That shape stability
        is deliberate — BLAS reductions are not bitwise-reproducible across
        matrix shapes, so flattening batches into one fused call can flip
        borderline probabilities at the last ULP and break the engine's
        serial/parallel determinism guarantee.  Matchers whose arithmetic
        is shape-independent may override this with a fused implementation.
        """
        return [self.decide(batch) for batch in batches]

    def score_pairs(self, pairs: Sequence[RecordPair]) -> list[ScoredPair]:
        """Return scored pairs without applying the threshold."""
        probabilities = self.predict_proba(pairs)
        return [
            ScoredPair(left.record_id, right.record_id, probability)
            for (left, right), probability in zip(pairs, probabilities)
        ]


class TrainablePairwiseMatcher(PairwiseMatcher):
    """A matcher that is fine-tuned on labelled pairs before use."""

    @abstractmethod
    def fit(
        self,
        pairs: Sequence[RecordPair],
        labels: Sequence[int],
        validation_pairs: Sequence[RecordPair] | None = None,
        validation_labels: Sequence[int] | None = None,
    ) -> "TrainablePairwiseMatcher":
        """Train on labelled pairs (1 = match, 0 = non-match)."""
