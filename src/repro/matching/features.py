"""Similarity features for the classical (feature-based) matcher.

The feature extractor turns a record pair into a fixed-length numpy vector
of string / set / identifier similarities.  It powers the
:class:`~repro.matching.logistic.LogisticRegressionMatcher`, which plays the
role of a strong non-neural baseline and is also much faster than the
attention model — handy for large candidate sets.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.datagen.identifiers import SECURITY_ID_FIELDS
from repro.datagen.records import CompanyRecord, Record, SecurityRecord
from repro.text.normalize import normalize_identifier, normalize_text, strip_corporate_terms
from repro.text.similarity import (
    jaccard_similarity,
    jaro_winkler_similarity,
    levenshtein_similarity,
    longest_common_substring_similarity,
    overlap_coefficient,
)
from repro.text.tokenize import word_tokenize


class PairFeatureExtractor:
    """Extract a numeric feature vector from a record pair.

    The feature set is intentionally generic: a block of name similarities, a
    block of auxiliary-attribute agreements and a block of identifier
    overlaps.  Fields that a record type does not have contribute neutral
    values, so the same extractor works for companies, securities and
    products.
    """

    FEATURE_NAMES: tuple[str, ...] = (
        "name_jaro_winkler",
        "name_levenshtein",
        "name_token_jaccard",
        "name_token_overlap",
        "name_lcs",
        "stripped_name_jaro_winkler",
        "stripped_name_token_jaccard",
        "description_token_jaccard",
        "description_present_both",
        "city_match",
        "region_match",
        "country_match",
        "industry_match",
        "security_type_match",
        "identifier_overlap_count",
        "identifier_conflict_count",
        "isin_overlap",
        "ticker_match",
        "same_source",
    )

    def feature_names(self) -> tuple[str, ...]:
        return self.FEATURE_NAMES

    @property
    def num_features(self) -> int:
        return len(self.FEATURE_NAMES)

    # -- single pair -----------------------------------------------------------

    def extract(self, left: Record, right: Record) -> np.ndarray:
        """Return the feature vector for one pair."""
        left_name = self._name(left)
        right_name = self._name(right)
        left_name_norm = normalize_text(left_name)
        right_name_norm = normalize_text(right_name)
        left_tokens = left_name_norm.split()
        right_tokens = right_name_norm.split()
        left_stripped = strip_corporate_terms(left_name)
        right_stripped = strip_corporate_terms(right_name)

        left_description = self._attribute(left, "description")
        right_description = self._attribute(right, "description")
        description_tokens_left = word_tokenize(left_description)
        description_tokens_right = word_tokenize(right_description)

        identifier_overlaps, identifier_conflicts, isin_overlap = (
            self._identifier_features(left, right)
        )

        values = (
            jaro_winkler_similarity(left_name_norm, right_name_norm),
            levenshtein_similarity(left_name_norm, right_name_norm),
            jaccard_similarity(left_tokens, right_tokens),
            overlap_coefficient(left_tokens, right_tokens),
            longest_common_substring_similarity(left_name_norm, right_name_norm),
            jaro_winkler_similarity(left_stripped, right_stripped),
            jaccard_similarity(left_stripped.split(), right_stripped.split()),
            jaccard_similarity(description_tokens_left, description_tokens_right)
            if description_tokens_left and description_tokens_right
            else 0.0,
            1.0 if left_description and right_description else 0.0,
            self._equality_feature(left, right, "city"),
            self._equality_feature(left, right, "region"),
            self._equality_feature(left, right, "country_code"),
            self._equality_feature(left, right, "industry"),
            self._equality_feature(left, right, "security_type"),
            float(identifier_overlaps),
            float(identifier_conflicts),
            isin_overlap,
            self._equality_feature(left, right, "ticker"),
            1.0 if left.source == right.source else 0.0,
        )
        return np.asarray(values, dtype=np.float64)

    def extract_batch(self, pairs: Sequence[tuple[Record, Record]]) -> np.ndarray:
        """Feature matrix (num_pairs, num_features) for a pair sequence."""
        if not pairs:
            return np.zeros((0, self.num_features), dtype=np.float64)
        return np.stack([self.extract(left, right) for left, right in pairs])

    # -- helpers -------------------------------------------------------------------

    @staticmethod
    def _name(record: Record) -> str:
        for attribute in ("name", "title"):
            value = getattr(record, attribute, None)
            if value:
                return str(value)
        return ""

    @staticmethod
    def _attribute(record: Record, attribute: str) -> str:
        value = getattr(record, attribute, None)
        return str(value) if value else ""

    def _equality_feature(self, left: Record, right: Record, attribute: str) -> float:
        """1 if both present and equal (normalised), 0.5 if either missing."""
        left_value = normalize_text(self._attribute(left, attribute))
        right_value = normalize_text(self._attribute(right, attribute))
        if not left_value or not right_value:
            return 0.5
        return 1.0 if left_value == right_value else 0.0

    def _identifier_features(self, left: Record, right: Record) -> tuple[int, int, float]:
        """(overlap count, conflict count, company-ISIN overlap flag)."""
        overlaps = 0
        conflicts = 0
        isin_overlap = 0.0

        if isinstance(left, SecurityRecord) and isinstance(right, SecurityRecord):
            for field in SECURITY_ID_FIELDS:
                left_value = normalize_identifier(getattr(left, field))
                right_value = normalize_identifier(getattr(right, field))
                if not left_value or not right_value:
                    continue
                if left_value == right_value:
                    overlaps += 1
                else:
                    conflicts += 1
            isin_overlap = 1.0 if overlaps else 0.0

        if isinstance(left, CompanyRecord) and isinstance(right, CompanyRecord):
            left_isins = {normalize_identifier(value) for value in left.security_isins}
            right_isins = {normalize_identifier(value) for value in right.security_isins}
            left_isins.discard("")
            right_isins.discard("")
            shared = left_isins & right_isins
            overlaps = len(shared)
            if left_isins and right_isins and not shared:
                conflicts = 1
            isin_overlap = 1.0 if shared else 0.0

        return overlaps, conflicts, isin_overlap
