"""Similarity features for the classical (feature-based) matcher.

The feature extractor turns a record pair into a fixed-length numpy vector
of string / set / identifier similarities.  It powers the
:class:`~repro.matching.logistic.LogisticRegressionMatcher`, which plays the
role of a strong non-neural baseline and is also much faster than the
attention model — handy for large candidate sets.

Extraction is factored through per-record feature profiles
(:mod:`repro.matching.profiles`): all record-local derivations (text
normalisation, tokenisation, identifier canonicalisation) live in
:func:`~repro.matching.profiles.build_profile`, and the pair features score
two profiles.  :meth:`PairFeatureExtractor.extract` builds both profiles on
the spot (the classic pairwise-recompute behaviour, byte for byte), while
:meth:`PairFeatureExtractor.extract_batch_profiles` reads them from a
prepared :class:`~repro.matching.profiles.ProfileStore` — the
prepare-once/score-many hot path of the execution engine.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.datagen.records import Record
from repro.matching.profiles import (
    KIND_COMPANY,
    KIND_SECURITY,
    ProfileStore,
    RecordProfile,
    build_profile,
)
from repro.text.similarity import (
    jaccard_similarity,
    jaro_winkler_similarity,
    levenshtein_similarity,
    longest_common_substring_similarity,
    overlap_coefficient,
)


class PairFeatureExtractor:
    """Extract a numeric feature vector from a record pair.

    The feature set is intentionally generic: a block of name similarities, a
    block of auxiliary-attribute agreements and a block of identifier
    overlaps.  Fields that a record type does not have contribute neutral
    values, so the same extractor works for companies, securities and
    products.
    """

    FEATURE_NAMES: tuple[str, ...] = (
        "name_jaro_winkler",
        "name_levenshtein",
        "name_token_jaccard",
        "name_token_overlap",
        "name_lcs",
        "stripped_name_jaro_winkler",
        "stripped_name_token_jaccard",
        "description_token_jaccard",
        "description_present_both",
        "city_match",
        "region_match",
        "country_match",
        "industry_match",
        "security_type_match",
        "identifier_overlap_count",
        "identifier_conflict_count",
        "isin_overlap",
        "ticker_match",
        "same_source",
    )

    def feature_names(self) -> tuple[str, ...]:
        return self.FEATURE_NAMES

    @property
    def num_features(self) -> int:
        return len(self.FEATURE_NAMES)

    # -- profiles ---------------------------------------------------------------

    def prepare(self, records) -> ProfileStore:
        """Profile every record once (see :meth:`ProfileStore.prepare`)."""
        return ProfileStore.prepare(records)

    # -- single pair -----------------------------------------------------------

    def extract(self, left: Record, right: Record) -> np.ndarray:
        """Return the feature vector for one pair (profiles built on the spot)."""
        return np.asarray(
            self._pair_values(build_profile(left), build_profile(right)),
            dtype=np.float64,
        )

    def extract_profiled(self, left: RecordProfile, right: RecordProfile) -> np.ndarray:
        """Feature vector for one pair of precomputed profiles."""
        return np.asarray(self._pair_values(left, right), dtype=np.float64)

    def extract_batch(self, pairs: Sequence[tuple[Record, Record]]) -> np.ndarray:
        """Feature matrix (num_pairs, num_features) for a record-pair sequence.

        Rows go through :meth:`extract`, so a subclass that overrides the
        per-pair extraction changes the batched path too; the matrix is
        preallocated and filled row by row (less allocator churn than
        stacking per-pair arrays).
        """
        if not pairs:
            return np.zeros((0, self.num_features), dtype=np.float64)
        matrix = np.empty((len(pairs), self.num_features), dtype=np.float64)
        for row, (left, right) in enumerate(pairs):
            matrix[row] = self.extract(left, right)
        return matrix

    def extract_batch_profiles(
        self, profiles: ProfileStore, id_pairs: Sequence[tuple[str, str]]
    ) -> np.ndarray:
        """Feature matrix for id pairs resolved against a prepared store.

        The hot path of the execution engine's profiled inference: the store
        was built once (each record profiled exactly once, however many
        pairs it appears in) and each row here is pure pairwise scoring.
        """
        if not id_pairs:
            return np.zeros((0, self.num_features), dtype=np.float64)
        matrix = np.empty((len(id_pairs), self.num_features), dtype=np.float64)
        for row, (left_id, right_id) in enumerate(id_pairs):
            matrix[row] = self._pair_values(
                profiles.get(left_id), profiles.get(right_id), store=profiles
            )
        return matrix

    # -- scoring -------------------------------------------------------------------

    def _pair_values(
        self,
        left: RecordProfile,
        right: RecordProfile,
        store: ProfileStore | None = None,
    ) -> tuple[float, ...]:
        """The feature tuple for one profile pair.

        Rows are assigned into preallocated float64 matrices (less allocator
        churn than stacking per-pair arrays); every value is computed by the
        same similarity call on the same derived strings/sets as the
        historical per-pair extraction, keeping results byte-identical.

        With a ``store``, the name-similarity block is memoised per distinct
        string pair in the store's similarity caches — records repeating a
        name across sources then pay the quadratic string comparisons once,
        not once per candidate pair.  Memoisation of a pure function cannot
        change a value.
        """
        if store is None:
            name_jw = jaro_winkler_similarity(left.name_norm, right.name_norm)
            name_lev = levenshtein_similarity(left.name_norm, right.name_norm)
            name_lcs = longest_common_substring_similarity(
                left.name_norm, right.name_norm
            )
            stripped_jw = jaro_winkler_similarity(left.stripped_name, right.stripped_name)
        else:
            name_key = (left.name_norm, right.name_norm)
            name_sims = store.name_similarity_cache.get(name_key)
            if name_sims is None:
                name_sims = (
                    jaro_winkler_similarity(left.name_norm, right.name_norm),
                    levenshtein_similarity(left.name_norm, right.name_norm),
                    longest_common_substring_similarity(
                        left.name_norm, right.name_norm
                    ),
                )
                store.name_similarity_cache[name_key] = name_sims
            name_jw, name_lev, name_lcs = name_sims
            stripped_key = (left.stripped_name, right.stripped_name)
            stripped_jw = store.stripped_similarity_cache.get(stripped_key)
            if stripped_jw is None:
                stripped_jw = jaro_winkler_similarity(*stripped_key)
                store.stripped_similarity_cache[stripped_key] = stripped_jw
        identifier_overlaps, identifier_conflicts, isin_overlap = (
            self._identifier_features(left, right)
        )
        return (
            name_jw,
            name_lev,
            jaccard_similarity(left.name_token_set, right.name_token_set),
            overlap_coefficient(left.name_token_set, right.name_token_set),
            name_lcs,
            stripped_jw,
            jaccard_similarity(left.stripped_token_set, right.stripped_token_set),
            jaccard_similarity(left.description_token_set, right.description_token_set)
            if left.description_token_set and right.description_token_set
            else 0.0,
            1.0 if left.has_description and right.has_description else 0.0,
            self._equality_feature(left.city, right.city),
            self._equality_feature(left.region, right.region),
            self._equality_feature(left.country_code, right.country_code),
            self._equality_feature(left.industry, right.industry),
            self._equality_feature(left.security_type, right.security_type),
            float(identifier_overlaps),
            float(identifier_conflicts),
            isin_overlap,
            self._equality_feature(left.ticker, right.ticker),
            1.0 if left.source == right.source else 0.0,
        )

    # -- helpers -------------------------------------------------------------------

    @staticmethod
    def _equality_feature(left_value: str, right_value: str) -> float:
        """1 if both present and equal (normalised), 0.5 if either missing."""
        if not left_value or not right_value:
            return 0.5
        return 1.0 if left_value == right_value else 0.0

    @staticmethod
    def _identifier_features(
        left: RecordProfile, right: RecordProfile
    ) -> tuple[int, int, float]:
        """(overlap count, conflict count, company-ISIN overlap flag)."""
        overlaps = 0
        conflicts = 0
        isin_overlap = 0.0

        if left.kind == KIND_SECURITY and right.kind == KIND_SECURITY:
            for left_value, right_value in zip(
                left.security_identifiers, right.security_identifiers
            ):
                if not left_value or not right_value:
                    continue
                if left_value == right_value:
                    overlaps += 1
                else:
                    conflicts += 1
            isin_overlap = 1.0 if overlaps else 0.0

        if left.kind == KIND_COMPANY and right.kind == KIND_COMPANY:
            shared = left.isin_set & right.isin_set
            overlaps = len(shared)
            if left.isin_set and right.isin_set and not shared:
                conflicts = 1
            isin_overlap = 1.0 if shared else 0.0

        return overlaps, conflicts, isin_overlap
