"""Similarity features for the classical (feature-based) matcher.

The feature extractor turns a record pair into a fixed-length numpy vector
of string / set / identifier similarities.  It powers the
:class:`~repro.matching.logistic.LogisticRegressionMatcher`, which plays the
role of a strong non-neural baseline and is also much faster than the
attention model — handy for large candidate sets.

Extraction is factored through per-record feature profiles
(:mod:`repro.matching.profiles`): all record-local derivations (text
normalisation, tokenisation, identifier canonicalisation) live in
:func:`~repro.matching.profiles.build_profile`, and the pair features score
two profiles.  :meth:`PairFeatureExtractor.extract` builds both profiles on
the spot (the classic pairwise-recompute behaviour, byte for byte), while
:meth:`PairFeatureExtractor.extract_batch_profiles` scores id pairs against
a prepared :class:`~repro.matching.profiles.ProfileStore` — the
prepare-once/score-many hot path of the execution engine.

Since the columnar refactor the store path is vectorised: every
``FEATURE_NAMES`` column is computed as array ops over row-index pairs.
Set-overlap features run as sorted-id intersection counts over the store's
CSR columns, attribute agreements as interned-id equality, and the string
similarities as batched kernels (:mod:`repro.text.batch_similarity`) over
the *deduplicated* unique string pairs, gathered back per pair through the
store's similarity memo caches.  The byte-identity contract carries over
from the row path: every column replays the same float64 operations on the
same values as the scalar extraction (int→float divisions of exact counts,
kernels bitwise-equal to their scalar forms), so the matrix is bitwise
identical to :meth:`PairFeatureExtractor.extract_batch_profiles_rows` — the
retained per-pair reference implementation — which is itself bitwise
identical to per-pair recompute.  Hypothesis-pinned in
``tests/matching/test_profiles.py``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.datagen.records import Record
from repro.matching.profiles import (
    KIND_COMPANY,
    KIND_NAMES,
    KIND_SECURITY,
    IdSetColumn,
    ProfileStore,
    RecordProfile,
    build_profile,
    sorted_intersection_counts,
)
from repro.text.batch_similarity import (
    PAD_LEFT,
    PAD_RIGHT,
    jaro_winkler_similarity_packed,
    levenshtein_similarity_packed,
    longest_common_substring_similarity_packed,
    pack_codepoints,
)
from repro.text.similarity import (
    jaccard_similarity,
    jaro_winkler_similarity,
    levenshtein_similarity,
    longest_common_substring_similarity,
    overlap_coefficient,
)

_COMPANY_CODE = KIND_NAMES.index(KIND_COMPANY)
_SECURITY_CODE = KIND_NAMES.index(KIND_SECURITY)


# -- columnar building blocks -------------------------------------------------


def _unique_id_pairs(
    left_ids: np.ndarray, right_ids: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(unique left ids, unique right ids, inverse) for an ordered id-pair list.

    Packs each (left, right) interned-id pair into one int64 key (ids are
    int32, so the shift is lossless); the expensive string work then runs
    once per *distinct* pair and is gathered back through ``inverse``.
    """
    keys = (left_ids.astype(np.int64) << 32) | right_ids.astype(np.int64)
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    return (unique_keys >> 32), (unique_keys & 0xFFFFFFFF), inverse


def _pack_missing_pairs(
    strings: Sequence[str],
    left_ids: np.ndarray,
    right_ids: np.ndarray,
    missing: list[int],
) -> tuple[np.ndarray, ...]:
    """Packed codepoint matrices + ids for the cache-missing unique pairs.

    Each *distinct* string id is packed exactly once per side and gathered
    back per pair — on dense candidate sets (many pairs over few records)
    that cuts the Python-level packing work by another order of magnitude.
    Also returns the pair-equality mask, decided on interned ids without
    touching characters, and the per-row interned ids themselves, which the
    bit-parallel kernels use to dedup their equality tables exactly.
    """
    miss_left = left_ids[missing]
    miss_right = right_ids[missing]
    distinct_left, inverse_left = np.unique(miss_left, return_inverse=True)
    distinct_right, inverse_right = np.unique(miss_right, return_inverse=True)
    left_codes, left_lengths = pack_codepoints(
        [strings[index] for index in distinct_left], fill=PAD_LEFT
    )
    right_codes, right_lengths = pack_codepoints(
        [strings[index] for index in distinct_right], fill=PAD_RIGHT
    )
    return (
        left_codes[inverse_left],
        left_lengths[inverse_left],
        right_codes[inverse_right],
        right_lengths[inverse_right],
        miss_left == miss_right,
        miss_left,
        miss_right,
    )


def _pad_concat(first: np.ndarray, second: np.ndarray, fill: int) -> np.ndarray:
    """Stack two packed codepoint matrices, padding the narrower with ``fill``."""
    width = max(first.shape[1], second.shape[1])

    def widen(codes: np.ndarray) -> np.ndarray:
        if codes.shape[1] == width:
            return codes
        out = np.full((codes.shape[0], width), fill, dtype=np.int32)
        out[:, : codes.shape[1]] = codes
        return out

    return np.concatenate((widen(first), widen(second)))


def _concat_packed(first, second):
    """Concatenate two ``_pack_missing_pairs`` results into one batch.

    Extra padding columns cannot change any kernel value: the distinct
    left/right pad codes never compare equal and every kernel is bounded by
    the per-row lengths, which are carried through unchanged.
    """
    if first is None:
        return second
    if second is None:
        return first
    return (
        _pad_concat(first[0], second[0], PAD_LEFT),
        np.concatenate((first[1], second[1])),
        _pad_concat(first[2], second[2], PAD_RIGHT),
        np.concatenate((first[3], second[3])),
        np.concatenate((first[4], second[4])),
        np.concatenate((first[5], second[5])),
        np.concatenate((first[6], second[6])),
    )


def gather_pair_similarities(
    store: ProfileStore, left_rows: np.ndarray, right_rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-pair (name jw, name lev, name lcs, stripped jw) in one sweep.

    Semantically :func:`gather_name_similarities` +
    :func:`gather_stripped_similarities` (same caches, same keys, same
    values), but the two Jaro–Winkler kernel invocations are fused into one
    packed batch over the union of cache-missing pairs — per-DP-step fixed
    costs are paid once instead of twice on the extraction hot path.
    """
    strings = store.strings

    name_left, name_right, name_inverse = _unique_id_pairs(
        store.name_ids[left_rows], store.name_ids[right_rows]
    )
    name_cache = store.name_similarity_cache
    name_count = len(name_left)
    name_keys = list(
        zip(
            [strings[i] for i in name_left.tolist()],
            [strings[i] for i in name_right.tolist()],
        )
    )
    name_jw = np.empty(name_count, dtype=np.float64)
    name_lev = np.empty(name_count, dtype=np.float64)
    name_lcs = np.empty(name_count, dtype=np.float64)
    name_missing: list[int] = []
    if name_cache:
        for index, key in enumerate(name_keys):
            sims = name_cache.get(key)
            if sims is None:
                name_missing.append(index)
            else:
                name_jw[index], name_lev[index], name_lcs[index] = sims
    else:
        name_missing = list(range(name_count))

    stripped_left, stripped_right, stripped_inverse = _unique_id_pairs(
        store.stripped_ids[left_rows], store.stripped_ids[right_rows]
    )
    stripped_cache = store.stripped_similarity_cache
    stripped_count = len(stripped_left)
    stripped_keys = list(
        zip(
            [strings[i] for i in stripped_left.tolist()],
            [strings[i] for i in stripped_right.tolist()],
        )
    )
    stripped_jw = np.empty(stripped_count, dtype=np.float64)
    stripped_missing: list[int] = []
    if stripped_cache:
        for index, key in enumerate(stripped_keys):
            value = stripped_cache.get(key)
            if value is None:
                stripped_missing.append(index)
            else:
                stripped_jw[index] = value
    else:
        stripped_missing = list(range(stripped_count))

    store.sim_cache_misses += len(name_missing) + len(stripped_missing)
    store.sim_cache_hits += (name_count - len(name_missing)) + (
        stripped_count - len(stripped_missing)
    )
    if name_missing or stripped_missing:
        name_packed = (
            _pack_missing_pairs(strings, name_left, name_right, name_missing)
            if name_missing
            else None
        )
        stripped_packed = (
            _pack_missing_pairs(
                strings, stripped_left, stripped_right, stripped_missing
            )
            if stripped_missing
            else None
        )
        merged = _concat_packed(name_packed, stripped_packed)
        jw_new = jaro_winkler_similarity_packed(
            *merged[:5], a_ids=merged[5], b_ids=merged[6]
        )
        if name_missing:
            lev_new = levenshtein_similarity_packed(
                *name_packed[:5], a_ids=name_packed[5], b_ids=name_packed[6]
            )
            lcs_new = longest_common_substring_similarity_packed(*name_packed[:5])
            triples = list(
                zip(
                    jw_new[: len(name_missing)].tolist(),
                    lev_new.tolist(),
                    lcs_new.tolist(),
                )
            )
            for slot, index in enumerate(name_missing):
                values = triples[slot]
                name_cache[name_keys[index]] = values
                name_jw[index], name_lev[index], name_lcs[index] = values
        if stripped_missing:
            values_new = jw_new[len(name_missing) :].tolist()
            for slot, index in enumerate(stripped_missing):
                value = values_new[slot]
                stripped_cache[stripped_keys[index]] = value
                stripped_jw[index] = value

    return (
        name_jw[name_inverse],
        name_lev[name_inverse],
        name_lcs[name_inverse],
        stripped_jw[stripped_inverse],
    )


def gather_name_similarities(
    store: ProfileStore, left_rows: np.ndarray, right_rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-pair (jaro_winkler, levenshtein, lcs) over normalised names.

    Deduplicates the string pairs, serves hits from the store's
    ``name_similarity_cache`` (same keys and values as the row path — the
    caches are shared), computes misses with the batched kernels (bitwise
    equal to the scalar functions) and memoises them back.
    """
    unique_left, unique_right, inverse = _unique_id_pairs(
        store.name_ids[left_rows], store.name_ids[right_rows]
    )
    strings = store.strings
    cache = store.name_similarity_cache
    count = len(unique_left)
    jaro_winkler = np.empty(count, dtype=np.float64)
    levenshtein = np.empty(count, dtype=np.float64)
    lcs = np.empty(count, dtype=np.float64)
    missing: list[int] = []
    for index in range(count):
        key = (strings[unique_left[index]], strings[unique_right[index]])
        sims = cache.get(key)
        if sims is None:
            missing.append(index)
        else:
            jaro_winkler[index], levenshtein[index], lcs[index] = sims
    store.sim_cache_misses += len(missing)
    store.sim_cache_hits += count - len(missing)
    if missing:
        packed = _pack_missing_pairs(strings, unique_left, unique_right, missing)
        jw_new = jaro_winkler_similarity_packed(
            *packed[:5], a_ids=packed[5], b_ids=packed[6]
        )
        lev_new = levenshtein_similarity_packed(
            *packed[:5], a_ids=packed[5], b_ids=packed[6]
        )
        lcs_new = longest_common_substring_similarity_packed(*packed[:5])
        for slot, index in enumerate(missing):
            values = (float(jw_new[slot]), float(lev_new[slot]), float(lcs_new[slot]))
            cache[(strings[unique_left[index]], strings[unique_right[index]])] = values
            jaro_winkler[index], levenshtein[index], lcs[index] = values
    return jaro_winkler[inverse], levenshtein[inverse], lcs[inverse]


def gather_stripped_similarities(
    store: ProfileStore, left_rows: np.ndarray, right_rows: np.ndarray
) -> np.ndarray:
    """Per-pair Jaro–Winkler over corporate-term-stripped names (memoised)."""
    unique_left, unique_right, inverse = _unique_id_pairs(
        store.stripped_ids[left_rows], store.stripped_ids[right_rows]
    )
    strings = store.strings
    cache = store.stripped_similarity_cache
    count = len(unique_left)
    similarities = np.empty(count, dtype=np.float64)
    missing: list[int] = []
    for index in range(count):
        key = (strings[unique_left[index]], strings[unique_right[index]])
        value = cache.get(key)
        if value is None:
            missing.append(index)
        else:
            similarities[index] = value
    store.sim_cache_misses += len(missing)
    store.sim_cache_hits += count - len(missing)
    if missing:
        packed = _pack_missing_pairs(strings, unique_left, unique_right, missing)
        jw_new = jaro_winkler_similarity_packed(
            *packed[:5], a_ids=packed[5], b_ids=packed[6]
        )
        for slot, index in enumerate(missing):
            value = float(jw_new[slot])
            cache[(strings[unique_left[index]], strings[unique_right[index]])] = value
            similarities[index] = value
    return similarities[inverse]


def _jaccard_counts(
    shared: np.ndarray, left_sizes: np.ndarray, right_sizes: np.ndarray
) -> np.ndarray:
    """Vector Jaccard from intersection counts; both-empty is 1.0 by definition."""
    union = left_sizes + right_sizes - shared
    out = np.ones(len(shared), dtype=np.float64)
    nonempty = union > 0
    out[nonempty] = shared[nonempty].astype(np.float64) / union[nonempty].astype(
        np.float64
    )
    return out


def _overlap_counts(
    shared: np.ndarray, left_sizes: np.ndarray, right_sizes: np.ndarray
) -> np.ndarray:
    """Vector overlap coefficient; both-empty 1.0, either-empty 0.0."""
    out = np.zeros(len(shared), dtype=np.float64)
    out[(left_sizes == 0) & (right_sizes == 0)] = 1.0
    both = (left_sizes > 0) & (right_sizes > 0)
    out[both] = shared[both].astype(np.float64) / np.minimum(
        left_sizes[both], right_sizes[both]
    ).astype(np.float64)
    return out


def _set_features(
    column: IdSetColumn, left_rows: np.ndarray, right_rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(intersection counts, left sizes, right sizes) for one CSR set column."""
    shared = sorted_intersection_counts(column, left_rows, right_rows)
    return shared, column.lengths(left_rows), column.lengths(right_rows)


class PairFeatureExtractor:
    """Extract a numeric feature vector from a record pair.

    The feature set is intentionally generic: a block of name similarities, a
    block of auxiliary-attribute agreements and a block of identifier
    overlaps.  Fields that a record type does not have contribute neutral
    values, so the same extractor works for companies, securities and
    products.
    """

    FEATURE_NAMES: tuple[str, ...] = (
        "name_jaro_winkler",
        "name_levenshtein",
        "name_token_jaccard",
        "name_token_overlap",
        "name_lcs",
        "stripped_name_jaro_winkler",
        "stripped_name_token_jaccard",
        "description_token_jaccard",
        "description_present_both",
        "city_match",
        "region_match",
        "country_match",
        "industry_match",
        "security_type_match",
        "identifier_overlap_count",
        "identifier_conflict_count",
        "isin_overlap",
        "ticker_match",
        "same_source",
    )

    def feature_names(self) -> tuple[str, ...]:
        return self.FEATURE_NAMES

    @property
    def num_features(self) -> int:
        return len(self.FEATURE_NAMES)

    # -- profiles ---------------------------------------------------------------

    def prepare(self, records) -> ProfileStore:
        """Profile every record once (see :meth:`ProfileStore.prepare`)."""
        return ProfileStore.prepare(records)

    # -- single pair -----------------------------------------------------------

    def extract(self, left: Record, right: Record) -> np.ndarray:
        """Return the feature vector for one pair (profiles built on the spot)."""
        return np.asarray(
            self._pair_values(build_profile(left), build_profile(right)),
            dtype=np.float64,
        )

    def extract_profiled(self, left: RecordProfile, right: RecordProfile) -> np.ndarray:
        """Feature vector for one pair of precomputed profiles."""
        return np.asarray(self._pair_values(left, right), dtype=np.float64)

    def extract_batch(self, pairs: Sequence[tuple[Record, Record]]) -> np.ndarray:
        """Feature matrix (num_pairs, num_features) for a record-pair sequence.

        Rows go through :meth:`extract`, so a subclass that overrides the
        per-pair extraction changes the batched path too; the matrix is
        preallocated and filled row by row (less allocator churn than
        stacking per-pair arrays).
        """
        if not pairs:
            return np.zeros((0, self.num_features), dtype=np.float64)
        matrix = np.empty((len(pairs), self.num_features), dtype=np.float64)
        for row, (left, right) in enumerate(pairs):
            matrix[row] = self.extract(left, right)
        return matrix

    def extract_batch_profiles(
        self, profiles: ProfileStore, id_pairs: Sequence[tuple[str, str]]
    ) -> np.ndarray:
        """Feature matrix for id pairs, vectorised over the columnar store.

        The hot path of the execution engine's profiled inference: each
        feature column is one array expression over the row-index pairs, and
        only the deduplicated distinct string pairs touch Python-level
        string code (inside the batched kernels).  Bitwise identical to
        :meth:`extract_batch_profiles_rows` — dtype float64 throughout, the
        same left-to-right scalar operations per value — which the golden
        suites and a hypothesis test pin.
        """
        if not id_pairs:
            return np.zeros((0, self.num_features), dtype=np.float64)
        left_rows, right_rows = profiles.row_indices(id_pairs)

        name_jw, name_lev, name_lcs, stripped_jw = gather_pair_similarities(
            profiles, left_rows, right_rows
        )

        name_shared, name_left, name_right = _set_features(
            profiles.name_token_sets, left_rows, right_rows
        )
        stripped_shared, stripped_left, stripped_right = _set_features(
            profiles.stripped_token_sets, left_rows, right_rows
        )
        description_shared, description_left, description_right = _set_features(
            profiles.description_token_sets, left_rows, right_rows
        )
        # Gated on both token sets nonempty (matching the row path), else 0.
        description_jaccard = np.zeros(len(left_rows), dtype=np.float64)
        both_described = (description_left > 0) & (description_right > 0)
        description_union = (
            description_left + description_right - description_shared
        )
        description_jaccard[both_described] = description_shared[
            both_described
        ].astype(np.float64) / description_union[both_described].astype(np.float64)

        overlaps, conflicts, isin_overlap = self._identifier_columns(
            profiles, left_rows, right_rows
        )

        attr_left = profiles.attr_ids[left_rows]
        attr_right = profiles.attr_ids[right_rows]
        # 0.5 if either side missing (id 0 == empty string), else 1/0 equality.
        attr_match = np.where(
            (attr_left == 0) | (attr_right == 0),
            0.5,
            (attr_left == attr_right).astype(np.float64),
        )

        matrix = np.column_stack(
            (
                name_jw,
                name_lev,
                _jaccard_counts(name_shared, name_left, name_right),
                _overlap_counts(name_shared, name_left, name_right),
                name_lcs,
                stripped_jw,
                _jaccard_counts(stripped_shared, stripped_left, stripped_right),
                description_jaccard,
                (
                    profiles.has_description[left_rows]
                    & profiles.has_description[right_rows]
                ).astype(np.float64),
                attr_match[:, 0],  # city
                attr_match[:, 1],  # region
                attr_match[:, 2],  # country_code
                attr_match[:, 3],  # industry
                attr_match[:, 4],  # security_type
                overlaps.astype(np.float64),
                conflicts.astype(np.float64),
                isin_overlap,
                attr_match[:, 5],  # ticker
                (
                    profiles.source_ids[left_rows] == profiles.source_ids[right_rows]
                ).astype(np.float64),
            )
        )
        return np.ascontiguousarray(matrix)

    @staticmethod
    def _identifier_columns(
        profiles: ProfileStore, left_rows: np.ndarray, right_rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Columnar (overlap count, conflict count, ISIN overlap flag).

        Same-kind gating mirrors :meth:`_identifier_features`: securities
        compare field-aligned identifier ids (0 == missing skips the field),
        companies intersect their ISIN id sets; mixed pairs stay neutral.
        """
        count = len(left_rows)
        overlaps = np.zeros(count, dtype=np.int64)
        conflicts = np.zeros(count, dtype=np.int64)
        isin_overlap = np.zeros(count, dtype=np.float64)

        kinds_left = profiles.kind_codes[left_rows]
        kinds_right = profiles.kind_codes[right_rows]

        security_pairs = (kinds_left == _SECURITY_CODE) & (
            kinds_right == _SECURITY_CODE
        )
        if security_pairs.any():
            ids_left = profiles.identifier_ids[left_rows[security_pairs]]
            ids_right = profiles.identifier_ids[right_rows[security_pairs]]
            present = (ids_left != 0) & (ids_right != 0)
            equal = present & (ids_left == ids_right)
            pair_overlaps = equal.sum(axis=1)
            overlaps[security_pairs] = pair_overlaps
            conflicts[security_pairs] = (present & ~equal).sum(axis=1)
            isin_overlap[security_pairs] = (pair_overlaps > 0).astype(np.float64)

        company_pairs = (kinds_left == _COMPANY_CODE) & (
            kinds_right == _COMPANY_CODE
        )
        if company_pairs.any():
            shared, sizes_left, sizes_right = _set_features(
                profiles.isin_sets,
                left_rows[company_pairs],
                right_rows[company_pairs],
            )
            overlaps[company_pairs] = shared
            conflicts[company_pairs] = (
                (sizes_left > 0) & (sizes_right > 0) & (shared == 0)
            ).astype(np.int64)
            isin_overlap[company_pairs] = (shared > 0).astype(np.float64)

        return overlaps, conflicts, isin_overlap

    def extract_batch_profiles_rows(
        self, profiles: ProfileStore, id_pairs: Sequence[tuple[str, str]]
    ) -> np.ndarray:
        """Row-at-a-time reference implementation of the store path.

        Scores each pair through :meth:`_pair_values` on materialised
        profiles — the pre-columnar hot path, kept as the bitwise oracle the
        vectorised :meth:`extract_batch_profiles` is benched and tested
        against.
        """
        if not id_pairs:
            return np.zeros((0, self.num_features), dtype=np.float64)
        matrix = np.empty((len(id_pairs), self.num_features), dtype=np.float64)
        for row, (left_id, right_id) in enumerate(id_pairs):
            matrix[row] = self._pair_values(
                profiles.get(left_id), profiles.get(right_id), store=profiles
            )
        return matrix

    # -- scoring -------------------------------------------------------------------

    def _pair_values(
        self,
        left: RecordProfile,
        right: RecordProfile,
        store: ProfileStore | None = None,
    ) -> tuple[float, ...]:
        """The feature tuple for one profile pair.

        Every value is computed by the same similarity call on the same
        derived strings/sets as the historical per-pair extraction, keeping
        results byte-identical.

        With a ``store``, the name-similarity block is memoised per distinct
        string pair in the store's similarity caches — records repeating a
        name across sources then pay the quadratic string comparisons once,
        not once per candidate pair.  Memoisation of a pure function cannot
        change a value.
        """
        if store is None:
            name_jw = jaro_winkler_similarity(left.name_norm, right.name_norm)
            name_lev = levenshtein_similarity(left.name_norm, right.name_norm)
            name_lcs = longest_common_substring_similarity(
                left.name_norm, right.name_norm
            )
            stripped_jw = jaro_winkler_similarity(left.stripped_name, right.stripped_name)
        else:
            name_key = (left.name_norm, right.name_norm)
            name_sims = store.name_similarity_cache.get(name_key)
            if name_sims is None:
                name_sims = (
                    jaro_winkler_similarity(left.name_norm, right.name_norm),
                    levenshtein_similarity(left.name_norm, right.name_norm),
                    longest_common_substring_similarity(
                        left.name_norm, right.name_norm
                    ),
                )
                store.name_similarity_cache[name_key] = name_sims
                store.sim_cache_misses += 1
            else:
                store.sim_cache_hits += 1
            name_jw, name_lev, name_lcs = name_sims
            stripped_key = (left.stripped_name, right.stripped_name)
            stripped_jw = store.stripped_similarity_cache.get(stripped_key)
            if stripped_jw is None:
                stripped_jw = jaro_winkler_similarity(*stripped_key)
                store.stripped_similarity_cache[stripped_key] = stripped_jw
                store.sim_cache_misses += 1
            else:
                store.sim_cache_hits += 1
        identifier_overlaps, identifier_conflicts, isin_overlap = (
            self._identifier_features(left, right)
        )
        return (
            name_jw,
            name_lev,
            jaccard_similarity(left.name_token_set, right.name_token_set),
            overlap_coefficient(left.name_token_set, right.name_token_set),
            name_lcs,
            stripped_jw,
            jaccard_similarity(left.stripped_token_set, right.stripped_token_set),
            jaccard_similarity(left.description_token_set, right.description_token_set)
            if left.description_token_set and right.description_token_set
            else 0.0,
            1.0 if left.has_description and right.has_description else 0.0,
            self._equality_feature(left.city, right.city),
            self._equality_feature(left.region, right.region),
            self._equality_feature(left.country_code, right.country_code),
            self._equality_feature(left.industry, right.industry),
            self._equality_feature(left.security_type, right.security_type),
            float(identifier_overlaps),
            float(identifier_conflicts),
            isin_overlap,
            self._equality_feature(left.ticker, right.ticker),
            1.0 if left.source == right.source else 0.0,
        )

    # -- helpers -------------------------------------------------------------------

    @staticmethod
    def _equality_feature(left_value: str, right_value: str) -> float:
        """1 if both present and equal (normalised), 0.5 if either missing."""
        if not left_value or not right_value:
            return 0.5
        return 1.0 if left_value == right_value else 0.0

    @staticmethod
    def _identifier_features(
        left: RecordProfile, right: RecordProfile
    ) -> tuple[int, int, float]:
        """(overlap count, conflict count, company-ISIN overlap flag)."""
        overlaps = 0
        conflicts = 0
        isin_overlap = 0.0

        if left.kind == KIND_SECURITY and right.kind == KIND_SECURITY:
            for left_value, right_value in zip(
                left.security_identifiers, right.security_identifiers
            ):
                if not left_value or not right_value:
                    continue
                if left_value == right_value:
                    overlaps += 1
                else:
                    conflicts += 1
            isin_overlap = 1.0 if overlaps else 0.0

        if left.kind == KIND_COMPANY and right.kind == KIND_COMPANY:
            shared = left.isin_set & right.isin_set
            overlaps = len(shared)
            if left.isin_set and right.isin_set and not shared:
                conflicts = 1
            isin_overlap = 1.0 if shared else 0.0

        return overlaps, conflicts, isin_overlap
