"""Labelled pair construction for fine-tuning.

Section 5.1.3: models are fine-tuned "with all the positive pairs of each
split" plus "randomly sampled negative pairs with a ratio of 5:1 negative
pairs for each positive one".  Splitting happens along record groups (see
:mod:`repro.evaluation.splits`); this module turns a split's records into the
actual labelled pair list.

The reduced "15K"-style training sets of the sensitivity analysis are
obtained with :func:`filter_easy_pairs`, which mirrors the paper: keep only
pairs whose records were not involved in an acquisition and which can be
matched via identifier overlaps, then truncate to a budget.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.datagen.identifiers import identifier_overlap
from repro.datagen.records import CompanyRecord, Dataset, Record, SecurityRecord


@dataclass(frozen=True)
class LabeledPair:
    """A training pair: two records and the ground-truth label."""

    left: Record
    right: Record
    label: int  # 1 = match, 0 = non-match

    @property
    def key(self) -> tuple[str, str]:
        left_id, right_id = self.left.record_id, self.right.record_id
        return (left_id, right_id) if left_id <= right_id else (right_id, left_id)


class PairSampler:
    """Builds positive pairs and samples negatives at a fixed ratio."""

    def __init__(self, negative_ratio: int = 5, seed: int = 0) -> None:
        if negative_ratio < 0:
            raise ValueError("negative_ratio must be non-negative")
        self.negative_ratio = negative_ratio
        self.seed = seed

    def positive_pairs(self, dataset: Dataset, entity_ids: Iterable[str] | None = None) -> list[LabeledPair]:
        """All intra-group pairs of the dataset (restricted to ``entity_ids``)."""
        groups = dataset.entity_groups()
        if entity_ids is not None:
            keep = set(entity_ids)
            groups = {entity: ids for entity, ids in groups.items() if entity in keep}  # repro-lint: disable=unordered-iteration -- entity_groups() is insertion-ordered by dataset order
        pairs: list[LabeledPair] = []
        for record_ids in groups.values():  # repro-lint: disable=unordered-iteration -- entity_groups() is insertion-ordered by dataset order
            for i, left_id in enumerate(record_ids):
                for right_id in record_ids[i + 1:]:
                    pairs.append(
                        LabeledPair(dataset.record(left_id), dataset.record(right_id), 1)
                    )
        return pairs

    def negative_pairs(
        self,
        dataset: Dataset,
        num_negatives: int,
        entity_ids: Iterable[str] | None = None,
    ) -> list[LabeledPair]:
        """Randomly sampled cross-group pairs (the paper's easy negatives)."""
        rng = random.Random(self.seed)
        if entity_ids is not None:
            keep = set(entity_ids)
            records = [record for record in dataset if record.entity_id in keep]
        else:
            records = dataset.records
        if len(records) < 2:
            return []

        negatives: list[LabeledPair] = []
        seen: set[tuple[str, str]] = set()
        attempts = 0
        max_attempts = num_negatives * 20 + 100
        while len(negatives) < num_negatives and attempts < max_attempts:
            attempts += 1
            left, right = rng.sample(records, 2)
            if left.entity_id == right.entity_id:
                continue
            pair = LabeledPair(left, right, 0)
            if pair.key in seen:
                continue
            seen.add(pair.key)
            negatives.append(pair)
        return negatives

    def build(self, dataset: Dataset, entity_ids: Iterable[str] | None = None) -> list[LabeledPair]:
        """Positive pairs plus ``negative_ratio`` negatives per positive, shuffled."""
        positives = self.positive_pairs(dataset, entity_ids)
        negatives = self.negative_pairs(
            dataset, num_negatives=len(positives) * self.negative_ratio,
            entity_ids=entity_ids,
        )
        pairs = positives + negatives
        random.Random(self.seed + 1).shuffle(pairs)
        return pairs


def build_labeled_pairs(
    dataset: Dataset,
    entity_ids: Iterable[str] | None = None,
    negative_ratio: int = 5,
    seed: int = 0,
) -> list[LabeledPair]:
    """Convenience wrapper around :class:`PairSampler`."""
    return PairSampler(negative_ratio=negative_ratio, seed=seed).build(dataset, entity_ids)


def filter_easy_pairs(
    pairs: Sequence[LabeledPair],
    max_pairs: int | None = None,
) -> list[LabeledPair]:
    """Keep only "cheaply labelable" pairs, as for DistilBERT (128)-15K.

    A pair is kept when it is a negative, or when it is a positive whose two
    records share at least one identifier (securities) or at least one
    security ISIN (companies) — i.e. pairs that a human labeller could have
    confirmed via identifier codes without reading the text.  Positives whose
    records were involved in data-drift events generally fail this test and
    are discarded, exactly like in the paper's 15K setup.
    """
    selected: list[LabeledPair] = []
    for pair in pairs:
        if pair.label == 0 or _pair_matchable_via_identifiers(pair.left, pair.right):
            selected.append(pair)
            if max_pairs is not None and len(selected) >= max_pairs:
                break
    return selected


def _pair_matchable_via_identifiers(left: Record, right: Record) -> bool:
    if isinstance(left, SecurityRecord) and isinstance(right, SecurityRecord):
        return bool(identifier_overlap(left.identifier_values(), right.identifier_values()))
    if isinstance(left, CompanyRecord) and isinstance(right, CompanyRecord):
        return bool(set(left.security_isins) & set(right.security_isins))
    return False


def as_record_pairs(pairs: Sequence[LabeledPair]) -> tuple[list[tuple[Record, Record]], list[int]]:
    """Split labelled pairs into the (pairs, labels) form used by matchers."""
    record_pairs = [(pair.left, pair.right) for pair in pairs]
    labels = [pair.label for pair in pairs]
    return record_pairs, labels
