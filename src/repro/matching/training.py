"""Fine-tuning harness.

Glues together pair construction (:mod:`repro.matching.pairs`), the model zoo
(:mod:`repro.matching.models`) and the evaluation splits to reproduce the
paper's fine-tuning protocol (Section 5.1.3 / 5.2):

* models are trained on all positive pairs of the train split plus randomly
  sampled negatives at 5:1,
* the "15K"-style reduced setups are trained on the identifier-matchable
  subset only, capped at a pair budget,
* training runs for a fixed number of epochs and the epoch with the lowest
  validation loss is kept (handled inside the trainable matchers),
* wall-clock training time is recorded (the paper's "Training Time" column).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.datagen.records import Dataset
from repro.matching.base import PairwiseMatcher, TrainablePairwiseMatcher
from repro.matching.models import ModelSpec, build_matcher, resolve_model_spec
from repro.obs import clock
from repro.matching.pairs import (
    LabeledPair,
    PairSampler,
    as_record_pairs,
    filter_easy_pairs,
)


@dataclass
class FineTuneResult:
    """A fitted matcher plus bookkeeping about how it was trained."""

    matcher: PairwiseMatcher
    spec: ModelSpec
    num_training_pairs: int
    num_validation_pairs: int
    training_seconds: float

    @property
    def name(self) -> str:
        return self.spec.name


class FineTuner:
    """Fine-tunes one model spec on one dataset split."""

    def __init__(
        self,
        negative_ratio: int = 5,
        reduced_pair_budget: int = 15_000,
        num_epochs: int = 5,
        seed: int = 0,
    ) -> None:
        if negative_ratio < 0:
            raise ValueError("negative_ratio must be non-negative")
        if reduced_pair_budget < 1:
            raise ValueError("reduced_pair_budget must be positive")
        self.negative_ratio = negative_ratio
        self.reduced_pair_budget = reduced_pair_budget
        self.num_epochs = num_epochs
        self.seed = seed

    # -- pair assembly ---------------------------------------------------------

    def build_pairs(
        self,
        dataset: Dataset,
        entity_ids: Sequence[str],
        spec: ModelSpec,
    ) -> list[LabeledPair]:
        """Labelled pairs for one split, honouring the spec's training regime."""
        sampler = PairSampler(negative_ratio=self.negative_ratio, seed=self.seed)
        pairs = sampler.build(dataset, entity_ids)
        if spec.reduced_training:
            pairs = filter_easy_pairs(pairs, max_pairs=self.reduced_pair_budget)
        if spec.max_training_pairs is not None:
            pairs = pairs[: spec.max_training_pairs]
        return pairs

    # -- training ---------------------------------------------------------------

    def fine_tune(
        self,
        spec: ModelSpec | str,
        dataset: Dataset,
        train_entities: Sequence[str],
        validation_entities: Sequence[str],
        attributes: Sequence[str] | None = None,
    ) -> FineTuneResult:
        """Fine-tune ``spec`` on the given train / validation entity splits."""
        spec = resolve_model_spec(spec)
        if attributes is None:
            attributes = self._infer_attributes(dataset)

        matcher = build_matcher(
            spec, attributes, seed=self.seed, num_epochs=self.num_epochs
        )

        train_pairs = self.build_pairs(dataset, train_entities, spec)
        validation_pairs = self.build_pairs(dataset, validation_entities, spec)

        start = clock.now()
        if isinstance(matcher, TrainablePairwiseMatcher):
            record_pairs, labels = as_record_pairs(train_pairs)
            validation_record_pairs, validation_labels = as_record_pairs(validation_pairs)
            matcher.fit(
                record_pairs,
                labels,
                validation_pairs=validation_record_pairs,
                validation_labels=validation_labels,
            )
        elapsed = clock.now() - start

        return FineTuneResult(
            matcher=matcher,
            spec=spec,
            num_training_pairs=len(train_pairs),
            num_validation_pairs=len(validation_pairs),
            training_seconds=elapsed,
        )

    @staticmethod
    def _infer_attributes(dataset: Dataset) -> Sequence[str]:
        for record in dataset:
            return record.MATCHING_ATTRIBUTES
        raise ValueError("cannot infer attributes from an empty dataset")
