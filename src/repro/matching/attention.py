"""Transformer-style pairwise sequence classifier (DistilBERT stand-in).

The paper fine-tunes DistilBERT (optionally behind DITTO's serialisation
scheme) for binary Match / NoMatch sequence classification.  This module
implements the same role with a small Transformer encoder built from the
numpy layers in :mod:`repro.matching.nn`:

* the record pair is serialised by a :class:`~repro.text.serialize.PairSerializer`
  (plain or DITTO scheme, 128- or 256-token budget),
* tokens are mapped to ids by a :class:`~repro.text.tokenize.Vocabulary`
  fitted on the training pairs (the WordPiece substitute),
* a learned embedding + positional embedding feeds one or more pre-norm
  Transformer blocks, a masked mean pooling and a 2-way softmax head,
* training minimises cross-entropy with Adam for a few epochs and keeps the
  epoch with the lowest validation loss, exactly as in Section 4.1.

The network is orders of magnitude smaller than DistilBERT, but it occupies
the identical position in the pipeline and reacts to the same experimental
knobs (serialisation scheme, token budget, training-set size).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from repro.matching.base import RecordPair, TrainablePairwiseMatcher
from repro.obs import clock
from repro.matching.features import PairFeatureExtractor
from repro.matching.nn import (
    Adam,
    Embedding,
    Linear,
    LayerNorm,
    MaskedMeanPool,
    Module,
    PositionalEmbedding,
    TransformerBlock,
    cross_entropy,
    softmax,
)
from repro.text.serialize import PairSerializer, PlainSerializer
from repro.text.tokenize import Vocabulary


@dataclass
class TrainingHistory:
    """Per-epoch loss trajectory of one fine-tuning run."""

    train_loss: list[float] = field(default_factory=list)
    validation_loss: list[float] = field(default_factory=list)
    best_epoch: int = -1
    training_seconds: float = 0.0


class _PairEncoderNetwork(Module):
    """Cross-encoder with a segment-interaction classification head.

    The full serialised pair runs through the Transformer blocks (so tokens
    of the two records can attend to each other), after which three pooled
    vectors are formed: the whole sequence, the left record's segment and the
    right record's segment.  The classifier sees
    ``[pooled_all, pooled_left · pooled_right, |pooled_left − pooled_right|]``,
    which gives the tiny model the matching-oriented inductive bias a fully
    pre-trained DistilBERT brings along from pre-training.
    """

    def __init__(
        self,
        vocab_size: int,
        max_length: int,
        dim: int,
        hidden_dim: int,
        num_blocks: int,
        num_aux_features: int,
        rng: np.random.Generator,
    ) -> None:
        self.token_embedding = Embedding(vocab_size, dim, rng, "token_embedding")
        self.positional_embedding = PositionalEmbedding(max_length, dim, rng, "positional")
        self.blocks = [
            TransformerBlock(dim, hidden_dim, rng, name=f"block{i}")
            for i in range(num_blocks)
        ]
        self.final_norm = LayerNorm(dim, name="final_norm")
        self.pool_all = MaskedMeanPool()
        self.pool_left = MaskedMeanPool()
        self.pool_right = MaskedMeanPool()
        self.num_aux_features = num_aux_features
        self.classifier = Linear(3 * dim + num_aux_features, 2, rng, "classifier")
        self._cache: dict[str, np.ndarray] | None = None

    def forward(
        self,
        ids: np.ndarray,
        mask: np.ndarray,
        left_mask: np.ndarray,
        right_mask: np.ndarray,
        aux_features: np.ndarray | None = None,
    ) -> np.ndarray:
        embeddings = self.token_embedding.forward(ids)
        hidden = self.positional_embedding.forward(embeddings)
        for block in self.blocks:
            hidden = block.forward(hidden, mask)
        hidden = self.final_norm.forward(hidden)

        # The contextualised sequence representation...
        pooled_all = self.pool_all.forward(hidden, mask)
        # ...plus segment representations pooled from the *raw* token
        # embeddings: identical tokens in the two records contribute identical
        # vectors, preserving the exact-overlap signal that a pre-trained
        # encoder would carry through its contextualisation.
        pooled_left = self.pool_left.forward(embeddings, left_mask)
        pooled_right = self.pool_right.forward(embeddings, right_mask)

        difference = pooled_left - pooled_right
        parts = [pooled_all, pooled_left * pooled_right, np.abs(difference)]
        if self.num_aux_features:
            if aux_features is None:
                raise ValueError("aux_features required by this network configuration")
            parts.append(aux_features)
        features = np.concatenate(parts, axis=-1)
        self._cache = {
            "pooled_left": pooled_left,
            "pooled_right": pooled_right,
            "difference_sign": np.sign(difference),
        }
        return self.classifier.forward(features)

    def backward(self, grad_logits: np.ndarray) -> None:
        assert self._cache is not None
        cache = self._cache
        grad_features = self.classifier.backward(grad_logits)
        dim = (grad_features.shape[-1] - self.num_aux_features) // 3
        grad_all = grad_features[:, :dim]
        grad_product = grad_features[:, dim:2 * dim]
        grad_absdiff = grad_features[:, 2 * dim:3 * dim]
        # Gradients w.r.t. the auxiliary similarity features are discarded —
        # they are inputs, not produced by any trainable layer.

        grad_left = (
            grad_product * cache["pooled_right"] + grad_absdiff * cache["difference_sign"]
        )
        grad_right = (
            grad_product * cache["pooled_left"] - grad_absdiff * cache["difference_sign"]
        )

        # Contextualised path.
        grad_hidden = self.pool_all.backward(grad_all)
        grad = self.final_norm.backward(grad_hidden)
        for block in reversed(self.blocks):
            grad = block.backward(grad)
        grad = self.positional_embedding.backward(grad)

        # Raw-embedding path (accumulates into the same embedding table).
        grad_embeddings = (
            grad + self.pool_left.backward(grad_left) + self.pool_right.backward(grad_right)
        )
        self.token_embedding.backward(grad_embeddings)


class TransformerPairClassifier(TrainablePairwiseMatcher):
    """Trainable Match / NoMatch classifier over serialised record pairs."""

    def __init__(
        self,
        serializer: PairSerializer | None = None,
        attributes: Sequence[str] | None = None,
        max_tokens: int = 128,
        embedding_dim: int = 32,
        hidden_dim: int = 64,
        num_blocks: int = 1,
        num_epochs: int = 5,
        batch_size: int = 32,
        learning_rate: float = 2e-3,
        vocab_size: int = 8_000,
        threshold: float = 0.5,
        class_weighted: bool = True,
        use_similarity_features: bool = True,
        seed: int = 0,
    ) -> None:
        if serializer is None:
            if attributes is None:
                raise ValueError("either a serializer or an attribute list is required")
            serializer = PlainSerializer(attributes, max_tokens=max_tokens)
        if num_epochs < 1:
            raise ValueError("num_epochs must be at least 1")
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")

        self.serializer = serializer
        self.max_tokens = serializer.max_tokens
        self.embedding_dim = embedding_dim
        self.hidden_dim = hidden_dim
        self.num_blocks = num_blocks
        self.num_epochs = num_epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.vocab_size = vocab_size
        self.threshold = threshold
        #: Reweight the loss so the 5:1 negative sampling does not push the
        #: model into always predicting NoMatch (DistilBERT is large enough
        #: not to need this; the tiny stand-in is not).
        self.class_weighted = class_weighted
        #: DistilBERT arrives pre-trained with strong lexical-similarity
        #: priors; the from-scratch stand-in does not, so by default the
        #: classification head additionally receives the classic pair
        #: similarity features (see DESIGN.md, substitution 2).  Disable to
        #: study the pure token model.
        self.use_similarity_features = use_similarity_features
        self.seed = seed

        self._feature_extractor = PairFeatureExtractor() if use_similarity_features else None
        self._feature_means: np.ndarray | None = None
        self._feature_scales: np.ndarray | None = None
        self.vocabulary: Vocabulary | None = None
        self.network: _PairEncoderNetwork | None = None
        self.history = TrainingHistory()
        #: Inverse document frequency per token id, estimated on the training
        #: pairs.  Used to weight the pooling so that ubiquitous tokens
        #: (corporate suffixes, country names, [COL] markers) do not dominate
        #: the pooled record representations — the stand-in for what
        #: DistilBERT's pre-trained attention learns to do.
        self._idf: np.ndarray | None = None

    # -- encoding -----------------------------------------------------------------

    def _encode_pairs(
        self, pairs: Sequence[RecordPair]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Serialize + tokenise pairs into (ids, mask, left_mask, right_mask, aux).

        The left/right segment masks split the sequence at the first middle
        ``[SEP]`` token (the record boundary produced by the serialiser); they
        feed the segment-interaction head of the network.  ``aux`` holds the
        (standardised) pair similarity features when enabled, otherwise an
        empty array.
        """
        if self.vocabulary is None:
            raise RuntimeError("matcher must be fitted before encoding")
        ids = np.zeros((len(pairs), self.max_tokens), dtype=np.int64)
        mask = np.zeros((len(pairs), self.max_tokens), dtype=np.float64)
        left_mask = np.zeros((len(pairs), self.max_tokens), dtype=np.float64)
        right_mask = np.zeros((len(pairs), self.max_tokens), dtype=np.float64)
        sep_id = self.vocabulary.sep_id
        for row, (left, right) in enumerate(pairs):
            tokens = self.serializer.serialize_pair(left.attributes(), right.attributes())
            encoded = self.vocabulary.encode(tokens, max_length=self.max_tokens)
            length = len(encoded)
            ids[row, :length] = encoded
            mask[row, :length] = 1.0
            # Position 0 is [CLS]; the first [SEP] after it separates records.
            boundary = length
            for position in range(1, length):
                if encoded[position] == sep_id:
                    boundary = position
                    break
            left_mask[row, 1:boundary] = 1.0
            right_mask[row, boundary + 1:length] = 1.0
        if self._idf is not None:
            token_weights = self._idf[ids]
            left_mask *= token_weights
            right_mask *= token_weights
        aux = self._aux_features(pairs)
        return ids, mask, left_mask, right_mask, aux

    def _aux_features(self, pairs: Sequence[RecordPair]) -> np.ndarray:
        """Standardised similarity features (empty array when disabled)."""
        if self._feature_extractor is None:
            return np.zeros((len(pairs), 0))
        features = self._feature_extractor.extract_batch(pairs)
        if self._feature_means is not None and self._feature_scales is not None:
            features = (features - self._feature_means) / self._feature_scales
        return features

    def _fit_feature_scaler(self, features: np.ndarray) -> np.ndarray:
        """Fit mean/std scaling on the training features and return them scaled."""
        self._feature_means = features.mean(axis=0)
        scales = features.std(axis=0)
        scales[scales < 1e-9] = 1.0
        self._feature_scales = scales
        return (features - self._feature_means) / self._feature_scales

    def _fit_idf(self, ids: np.ndarray) -> np.ndarray:
        """Estimate per-token-id inverse document frequency from training ids."""
        assert self.vocabulary is not None
        vocab_size = len(self.vocabulary)
        document_frequency = np.zeros(vocab_size, dtype=np.float64)
        for row in ids:
            document_frequency[np.unique(row)] += 1.0
        num_documents = max(len(ids), 1)
        idf = np.log((1.0 + num_documents) / (1.0 + document_frequency)) + 1.0
        # Padding must never contribute to a pooled representation.
        idf[self.vocabulary.pad_id] = 0.0
        return idf

    # -- training --------------------------------------------------------------------

    def fit(
        self,
        pairs: Sequence[RecordPair],
        labels: Sequence[int],
        validation_pairs: Sequence[RecordPair] | None = None,
        validation_labels: Sequence[int] | None = None,
    ) -> "TransformerPairClassifier":
        if len(pairs) != len(labels):
            raise ValueError("pairs and labels must have the same length")
        if not pairs:
            raise ValueError("cannot fit on an empty training set")

        start_time = clock.now()

        corpus = (
            self.serializer.serialize_pair_text(left.attributes(), right.attributes())
            for left, right in pairs
        )
        self.vocabulary = Vocabulary(max_size=self.vocab_size).fit(corpus)

        num_aux = self._feature_extractor.num_features if self._feature_extractor else 0
        rng = np.random.default_rng(self.seed)
        self.network = _PairEncoderNetwork(
            vocab_size=len(self.vocabulary),
            max_length=self.max_tokens,
            dim=self.embedding_dim,
            hidden_dim=self.hidden_dim,
            num_blocks=self.num_blocks,
            num_aux_features=num_aux,
            rng=rng,
        )
        optimizer = Adam(self.network.parameters(), learning_rate=self.learning_rate)

        ids, mask, left_mask, right_mask, aux = self._encode_pairs(pairs)
        self._idf = self._fit_idf(ids)
        token_weights = self._idf[ids]
        if num_aux:
            aux = self._fit_feature_scaler(aux)
        encoded = (ids, mask, left_mask * token_weights, right_mask * token_weights, aux)
        targets = np.asarray(labels, dtype=np.int64)
        sample_weights = self._class_weights(targets)

        validation_data = None
        if validation_pairs and validation_labels:
            validation_data = (
                self._encode_pairs(validation_pairs),
                np.asarray(validation_labels, dtype=np.int64),
            )

        self.history = TrainingHistory()
        best_loss = np.inf
        best_snapshot: list[np.ndarray] | None = None

        for epoch in range(self.num_epochs):
            epoch_loss = self._run_epoch(encoded, targets, sample_weights, optimizer, rng)
            self.history.train_loss.append(epoch_loss)

            if validation_data is not None:
                validation_loss = self._evaluate_loss(*validation_data)
            else:
                validation_loss = epoch_loss
            self.history.validation_loss.append(validation_loss)

            if validation_loss < best_loss:
                best_loss = validation_loss
                best_snapshot = [p.value.copy() for p in self.network.parameters()]
                self.history.best_epoch = epoch

        if best_snapshot is not None:
            for parameter, saved in zip(self.network.parameters(), best_snapshot):
                parameter.value[...] = saved

        self.history.training_seconds = clock.now() - start_time
        return self

    def _class_weights(self, targets: np.ndarray) -> np.ndarray:
        """Per-sample weights balancing the Match / NoMatch classes."""
        if not self.class_weighted:
            return np.ones(len(targets))
        num_positive = float((targets == 1).sum())
        num_negative = float((targets == 0).sum())
        if num_positive == 0 or num_negative == 0:
            return np.ones(len(targets))
        positive_weight = len(targets) / (2.0 * num_positive)
        negative_weight = len(targets) / (2.0 * num_negative)
        return np.where(targets == 1, positive_weight, negative_weight)

    def _run_epoch(
        self,
        encoded: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        targets: np.ndarray,
        sample_weights: np.ndarray,
        optimizer: Adam,
        rng: np.random.Generator,
    ) -> float:
        assert self.network is not None
        ids, mask, left_mask, right_mask, aux = encoded
        order = rng.permutation(len(targets))
        total_loss = 0.0
        num_batches = 0
        for start in range(0, len(order), self.batch_size):
            batch = order[start:start + self.batch_size]
            optimizer.zero_grad()
            logits = self.network.forward(
                ids[batch], mask[batch], left_mask[batch], right_mask[batch], aux[batch]
            )
            loss, grad_logits = cross_entropy(
                logits, targets[batch], sample_weights[batch]
            )
            self.network.backward(grad_logits)
            optimizer.step()
            total_loss += loss
            num_batches += 1
        return total_loss / max(num_batches, 1)

    def _evaluate_loss(
        self,
        encoded: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        targets: np.ndarray,
    ) -> float:
        assert self.network is not None
        ids, mask, left_mask, right_mask, aux = encoded
        total_loss = 0.0
        num_batches = 0
        for start in range(0, len(targets), self.batch_size):
            stop = start + self.batch_size
            logits = self.network.forward(
                ids[start:stop], mask[start:stop],
                left_mask[start:stop], right_mask[start:stop], aux[start:stop],
            )
            loss, _ = cross_entropy(logits, targets[start:stop])
            total_loss += loss
            num_batches += 1
        return total_loss / max(num_batches, 1)

    # -- inference -----------------------------------------------------------------------

    def predict_proba(self, pairs: Sequence[RecordPair]) -> list[float]:
        if self.network is None or self.vocabulary is None:
            raise RuntimeError("matcher must be fitted before predicting")
        if not pairs:
            return []
        ids, mask, left_mask, right_mask, aux = self._encode_pairs(pairs)
        probabilities: list[float] = []
        for start in range(0, len(pairs), self.batch_size):
            stop = start + self.batch_size
            logits = self.network.forward(
                ids[start:stop], mask[start:stop],
                left_mask[start:stop], right_mask[start:stop], aux[start:stop],
            )
            batch_probabilities = softmax(logits)[:, 1]
            probabilities.extend(float(p) for p in batch_probabilities)
        return probabilities

    # -- persistence-ish helpers ------------------------------------------------------------

    def num_parameters(self) -> int:
        """Total number of trainable scalars (for the model-size comparisons)."""
        if self.network is None:
            return 0
        return int(sum(p.value.size for p in self.network.parameters()))
