"""Decision-threshold calibration for pairwise matchers.

Section 6 of the paper concludes that *precision* is the deciding factor for
entity group matching: a matcher with slightly lower recall but higher
precision ends up with the better post-clean-up F1 because fewer false
positives reach the graph stage.  Calibrating the decision threshold on the
validation split is the cheapest way to trade recall for precision with an
already-trained matcher, so the library ships it as a first-class utility
(and an ablation benchmark measures its effect).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.matching.base import PairwiseMatcher, RecordPair


@dataclass(frozen=True)
class ThresholdCandidate:
    """Scores achieved by one candidate decision threshold."""

    threshold: float
    precision: float
    recall: float
    f1: float


def _scores_at_threshold(
    probabilities: Sequence[float], labels: Sequence[int], threshold: float
) -> ThresholdCandidate:
    true_positives = sum(
        1 for p, label in zip(probabilities, labels) if p >= threshold and label == 1
    )
    false_positives = sum(
        1 for p, label in zip(probabilities, labels) if p >= threshold and label == 0
    )
    false_negatives = sum(
        1 for p, label in zip(probabilities, labels) if p < threshold and label == 1
    )
    precision = (
        true_positives / (true_positives + false_positives)
        if true_positives + false_positives
        else 1.0
    )
    recall = (
        true_positives / (true_positives + false_negatives)
        if true_positives + false_negatives
        else 1.0
    )
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return ThresholdCandidate(threshold, precision, recall, f1)


def sweep_thresholds(
    probabilities: Sequence[float],
    labels: Sequence[int],
    num_steps: int = 99,
) -> list[ThresholdCandidate]:
    """Evaluate evenly spaced thresholds in (0, 1)."""
    if len(probabilities) != len(labels):
        raise ValueError("probabilities and labels must have the same length")
    if num_steps < 1:
        raise ValueError("num_steps must be positive")
    thresholds = [(step + 1) / (num_steps + 1) for step in range(num_steps)]
    return [_scores_at_threshold(probabilities, labels, t) for t in thresholds]


def calibrate_threshold(
    matcher: PairwiseMatcher,
    validation_pairs: Sequence[RecordPair],
    validation_labels: Sequence[int],
    objective: str = "f1",
    min_precision: float | None = None,
    num_steps: int = 99,
) -> ThresholdCandidate:
    """Pick the decision threshold that optimises ``objective`` on validation.

    Parameters
    ----------
    objective:
        ``"f1"`` maximises F1; ``"precision"`` maximises precision among
        thresholds that keep a non-zero recall (ties broken toward higher
        recall) — the setting the paper's conclusion favours for large
        datasets.
    min_precision:
        When given, only thresholds reaching at least this precision are
        considered (fallback: the highest-precision candidate).

    The matcher's ``threshold`` attribute is updated in place and the chosen
    candidate returned.
    """
    if objective not in ("f1", "precision"):
        raise ValueError("objective must be 'f1' or 'precision'")
    if not validation_pairs:
        raise ValueError("validation pairs are required for calibration")

    probabilities = matcher.predict_proba(validation_pairs)
    candidates = sweep_thresholds(probabilities, validation_labels, num_steps=num_steps)

    eligible = candidates
    if min_precision is not None:
        filtered = [c for c in candidates if c.precision >= min_precision]
        eligible = filtered or [max(candidates, key=lambda c: c.precision)]

    if objective == "f1":
        best = max(eligible, key=lambda c: (c.f1, c.precision))
    else:
        with_recall = [c for c in eligible if c.recall > 0] or eligible
        best = max(with_recall, key=lambda c: (c.precision, c.recall))

    matcher.threshold = best.threshold
    return best
