"""Array-backed decision containers for the columnar matching path.

The execution engine's columnar dispatch route (``columnar_dispatch`` on a
:class:`~repro.runtime.config.RuntimeConfig`) keeps the matcher's
:meth:`~repro.matching.base.PairwiseMatcher.score_profiled` output columnar
all the way to the API boundary: chunk tasks return float64 probability
arrays, and the engine wraps the concatenated result in a
:class:`DecisionVector` — a lazy sequence that *behaves* like the
``list[MatchDecision]`` the object route returns but only materialises
:class:`~repro.matching.base.MatchDecision` objects where a consumer
actually indexes or iterates.  Stage-internal consumers never do: the
pre-cleanup stage reads the kept-edge mask straight off the probability
array via :meth:`DecisionVector.positive_pairs`.

:class:`DecisionCache` is the incremental counterpart: the persistent
store of every decision ever scored, keyed by canonical id pair but backed
by the same parallel arrays instead of a dict of decision objects.  A delta
ingest appends the newly scored arrays and gathers the candidate-order
:class:`DecisionVector` by row index — no per-pair objects on either side.

Bitwise contract (pinned by the golden columnar suite): a vector's
materialised decisions equal the object route's byte for byte.  The
argument is mechanical — ``decide_profiled`` builds each decision as
``probability=float(scores[i])`` / ``is_match = probability >= threshold``
from the very array ``score_profiled`` returns, and the vector applies the
identical conversions lazily.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.graphs.graph import canonical_edge
from repro.matching.base import IdPair, MatchDecision


class DecisionVector(Sequence):
    """A lazy, array-backed sequence of :class:`MatchDecision`.

    Holds the candidate-order id pairs, the float64 probability vector and
    the boolean verdict mask; ``vector[i]`` / iteration materialise
    equivalent :class:`MatchDecision` objects on demand.  Equality compares
    element-wise against any other decision sequence (vector or list), so
    golden suites can diff the columnar and object routes directly.
    """

    __slots__ = ("pairs", "probabilities", "threshold", "_mask")

    def __init__(
        self,
        pairs: Sequence[IdPair],
        probabilities: np.ndarray,
        threshold: float | None = None,
        is_match: np.ndarray | None = None,
    ) -> None:
        probabilities = np.asarray(probabilities, dtype=np.float64)
        if len(pairs) != probabilities.shape[0]:
            raise ValueError(
                f"{len(pairs)} id pairs but {probabilities.shape[0]} probabilities"
            )
        if is_match is None and threshold is None:
            raise ValueError("need a threshold or an explicit is_match mask")
        self.pairs: list[IdPair] = list(pairs)
        self.probabilities = probabilities
        self.threshold = threshold
        self._mask = None if is_match is None else np.asarray(is_match, dtype=bool)

    # -- columnar reads (no object materialisation) -------------------------

    @property
    def is_match_mask(self) -> np.ndarray:
        """The boolean verdict vector (``probabilities >= threshold``).

        Element-wise float64 comparison — bitwise the ``probability >=
        threshold`` each materialised decision carries.
        """
        if self._mask is None:
            self._mask = self.probabilities >= self.threshold
        return self._mask

    def positive_pairs(self) -> list[IdPair]:
        """``[decision.pair for decision in self if decision.is_match]``
        straight off the mask — the graph stage's fast path."""
        return [self.pairs[index] for index in np.flatnonzero(self.is_match_mask)]

    # -- sequence protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.pairs)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        left_id, right_id = self.pairs[index]
        return MatchDecision(
            left_id=left_id,
            right_id=right_id,
            probability=float(self.probabilities[index]),
            is_match=bool(self.is_match_mask[index]),
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DecisionVector):
            return (
                self.pairs == other.pairs
                and np.array_equal(self.probabilities, other.probabilities)
                and np.array_equal(self.is_match_mask, other.is_match_mask)
            )
        if isinstance(other, (list, tuple)):
            return len(other) == len(self) and all(
                mine == theirs for mine, theirs in zip(self, other)
            )
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DecisionVector({len(self)} decisions)"


class DecisionCache:
    """Array-backed store of every decision ever scored.

    Keyed on the canonical id pair (:attr:`CandidatePair.key`); each row
    keeps the pair in as-scored orientation plus its probability and
    verdict, so :meth:`vector` serves back exactly the decisions the dict
    of :class:`MatchDecision` objects used to hold — gathered by numpy row
    indexing instead of per-pair object lookups.  Pickles as the parallel
    arrays; the key index is rebuilt on load.
    """

    def __init__(self) -> None:
        self._index: dict[IdPair, int] = {}
        self._pairs: list[IdPair] = []
        self._probabilities = np.zeros(0, dtype=np.float64)
        self._is_match = np.zeros(0, dtype=bool)

    # -- querying ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._pairs)

    def __contains__(self, key: IdPair) -> bool:
        return key in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DecisionCache):
            return NotImplemented
        return (
            self._pairs == other._pairs
            and np.array_equal(self._probabilities, other._probabilities)
            and np.array_equal(self._is_match, other._is_match)
        )

    def vector(self, keys: Sequence[IdPair]) -> DecisionVector:
        """The stored decisions for ``keys``, as one gathered vector."""
        rows = np.fromiter(
            (self._index[key] for key in keys), dtype=np.intp, count=len(keys)
        )
        return DecisionVector(
            pairs=[self._pairs[row] for row in rows.tolist()],
            probabilities=self._probabilities[rows],
            is_match=self._is_match[rows],
        )

    # -- growing -------------------------------------------------------------

    def extend(
        self,
        keys: Sequence[IdPair],
        scored: DecisionVector | Sequence[MatchDecision],
    ) -> None:
        """Append newly scored decisions (aligned with their cache keys).

        Accepts the columnar engine's :class:`DecisionVector` (arrays are
        adopted directly) or a plain decision list from the object route.
        """
        if isinstance(scored, DecisionVector):
            pairs = scored.pairs
            probabilities = scored.probabilities
            mask = scored.is_match_mask
        else:
            pairs = [(decision.left_id, decision.right_id) for decision in scored]
            probabilities = np.fromiter(
                (decision.probability for decision in scored),
                dtype=np.float64,
                count=len(scored),
            )
            mask = np.fromiter(
                (decision.is_match for decision in scored),
                dtype=bool,
                count=len(scored),
            )
        if len(keys) != len(pairs):
            raise ValueError(f"{len(keys)} keys for {len(pairs)} scored decisions")
        base = len(self._pairs)
        for offset, key in enumerate(keys):
            self._index[key] = base + offset
        self._pairs.extend(pairs)
        self._probabilities = np.concatenate([self._probabilities, probabilities])
        self._is_match = np.concatenate([self._is_match, np.asarray(mask, dtype=bool)])

    # -- dict-format migration -----------------------------------------------

    @classmethod
    def from_decisions(
        cls, decisions: dict[IdPair, MatchDecision]
    ) -> "DecisionCache":
        """Migrate a v1 per-pair dict of decision objects (insertion order —
        i.e. scoring order — becomes row order)."""
        cache = cls()
        cache.extend(list(decisions.keys()), list(decisions.values()))  # repro-lint: disable=unordered-iteration -- dict insertion order is the v1 scoring order
        return cache

    def to_decisions(self) -> dict[IdPair, MatchDecision]:
        """The v1 dict form (for round-trip tests and inspection)."""
        vector = self.vector(list(self._index.keys()))  # repro-lint: disable=unordered-iteration -- index insertion order is row order
        return dict(zip(self._index.keys(), vector))

    # -- pickling ------------------------------------------------------------

    def __getstate__(self) -> dict[str, Any]:
        return {
            "pairs": self._pairs,
            "probabilities": self._probabilities,
            "is_match": self._is_match,
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        self._pairs = state["pairs"]
        self._probabilities = state["probabilities"]
        self._is_match = state["is_match"]
        # The index is derived: rebuild it with the same canonicalisation
        # CandidatePair.key applies, in row order.
        self._index = {
            canonical_edge(left_id, right_id): row
            for row, (left_id, right_id) in enumerate(self._pairs)
        }
