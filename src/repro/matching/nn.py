"""Minimal neural-network building blocks on numpy.

These layers implement exactly what the Transformer-style pair classifier in
:mod:`repro.matching.attention` needs: token + positional embeddings, linear
projections, layer normalisation, single-head scaled dot-product
self-attention with padding masks, ReLU, masked mean pooling, a softmax
cross-entropy loss and the Adam optimiser.

Every layer caches its forward inputs and implements an explicit
``backward`` pass; the test-suite validates all gradients against numerical
differentiation, so the stack can be trusted as a (tiny) stand-in for the
DistilBERT fine-tuning the paper performs on GPU.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np


class Parameter:
    """A trainable tensor with its accumulated gradient."""

    def __init__(self, value: np.ndarray, name: str = "") -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.value.shape})"


class Module:
    """Base class: a layer with parameters and a forward/backward pair."""

    def parameters(self) -> list[Parameter]:
        found: list[Parameter] = []
        for attribute in vars(self).values():  # repro-lint: disable=unordered-iteration -- __dict__ follows attribute-assignment order in __init__; deterministic
            if isinstance(attribute, Parameter):
                found.append(attribute)
            elif isinstance(attribute, Module):
                found.extend(attribute.parameters())
            elif isinstance(attribute, (list, tuple)):
                for item in attribute:
                    if isinstance(item, Module):
                        found.extend(item.parameters())
        return found

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()


# ---------------------------------------------------------------------------
# Layers
# ---------------------------------------------------------------------------


class Embedding(Module):
    """Token-id lookup table.  Input (B, L) int ids -> (B, L, D)."""

    def __init__(self, vocab_size: int, dim: int, rng: np.random.Generator,
                 name: str = "embedding") -> None:
        scale = 1.0 / np.sqrt(dim)
        self.weight = Parameter(rng.normal(0.0, scale, size=(vocab_size, dim)), f"{name}.weight")
        self._ids: np.ndarray | None = None

    def forward(self, ids: np.ndarray) -> np.ndarray:
        self._ids = ids
        return self.weight.value[ids]

    def backward(self, grad_output: np.ndarray) -> None:
        if self._ids is None:
            raise RuntimeError("forward must be called before backward")
        np.add.at(self.weight.grad, self._ids, grad_output)


class PositionalEmbedding(Module):
    """Learned positional embeddings added to the token embeddings."""

    def __init__(self, max_length: int, dim: int, rng: np.random.Generator,
                 name: str = "positional") -> None:
        self.weight = Parameter(
            rng.normal(0.0, 0.02, size=(max_length, dim)), f"{name}.weight"
        )
        self._length: int | None = None
        self._batch: int | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, length, _ = x.shape
        if length > self.weight.value.shape[0]:
            raise ValueError("sequence longer than the positional table")
        self._length = length
        self._batch = batch
        return x + self.weight.value[None, :length, :]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._length is not None
        self.weight.grad[: self._length] += grad_output.sum(axis=0)
        return grad_output


class Linear(Module):
    """Affine projection on the last axis: (..., in) -> (..., out)."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator,
                 name: str = "linear") -> None:
        scale = np.sqrt(2.0 / (in_dim + out_dim))
        self.weight = Parameter(rng.normal(0.0, scale, size=(in_dim, out_dim)), f"{name}.weight")
        self.bias = Parameter(np.zeros(out_dim), f"{name}.bias")
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input = x
        return x @ self.weight.value + self.bias.value

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._input is not None
        flat_input = self._input.reshape(-1, self._input.shape[-1])
        flat_grad = grad_output.reshape(-1, grad_output.shape[-1])
        self.weight.grad += flat_input.T @ flat_grad
        self.bias.grad += flat_grad.sum(axis=0)
        return grad_output @ self.weight.value.T


class LayerNorm(Module):
    """Layer normalisation over the last axis."""

    def __init__(self, dim: int, eps: float = 1e-5, name: str = "layernorm") -> None:
        self.gamma = Parameter(np.ones(dim), f"{name}.gamma")
        self.beta = Parameter(np.zeros(dim), f"{name}.beta")
        self.eps = eps
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        variance = x.var(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(variance + self.eps)
        normalised = (x - mean) * inv_std
        self._cache = (x - mean, inv_std, normalised)
        return normalised * self.gamma.value + self.beta.value

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._cache is not None
        centred, inv_std, normalised = self._cache
        dim = grad_output.shape[-1]

        self.gamma.grad += (grad_output * normalised).reshape(-1, dim).sum(axis=0)
        self.beta.grad += grad_output.reshape(-1, dim).sum(axis=0)

        grad_normalised = grad_output * self.gamma.value
        grad_variance = (
            (grad_normalised * centred * -0.5 * inv_std ** 3).sum(axis=-1, keepdims=True)
        )
        grad_mean = (
            (-grad_normalised * inv_std).sum(axis=-1, keepdims=True)
            + grad_variance * (-2.0 * centred).mean(axis=-1, keepdims=True)
        )
        return (
            grad_normalised * inv_std
            + grad_variance * 2.0 * centred / dim
            + grad_mean / dim
        )


class ReLU(Module):
    """Rectified linear activation."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._mask is not None
        return grad_output * self._mask


def _masked_softmax(scores: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Softmax over the last axis, with masked positions forced to ~0 weight.

    ``mask`` has shape (B, L) with 1 for real tokens and 0 for padding; it is
    applied to the *key* dimension.  Rows whose keys are all masked (which
    cannot happen for well-formed inputs, since position 0 is always [CLS])
    would yield a uniform distribution over masked keys — guarded by the
    epsilon in the normalisation.
    """
    key_mask = mask[:, None, :]  # (B, 1, L) broadcast over query positions
    masked_scores = np.where(key_mask > 0, scores, -1e30)
    masked_scores = masked_scores - masked_scores.max(axis=-1, keepdims=True)
    exp_scores = np.exp(masked_scores) * key_mask
    return exp_scores / (exp_scores.sum(axis=-1, keepdims=True) + 1e-30)


class SelfAttention(Module):
    """Single-head scaled dot-product self-attention with padding mask."""

    def __init__(self, dim: int, rng: np.random.Generator, name: str = "attention") -> None:
        self.query = Linear(dim, dim, rng, f"{name}.query")
        self.key = Linear(dim, dim, rng, f"{name}.key")
        self.value = Linear(dim, dim, rng, f"{name}.value")
        self.output = Linear(dim, dim, rng, f"{name}.output")
        self.dim = dim
        self._cache: dict[str, np.ndarray] | None = None

    def forward(self, x: np.ndarray, mask: np.ndarray) -> np.ndarray:
        queries = self.query.forward(x)
        keys = self.key.forward(x)
        values = self.value.forward(x)

        scale = 1.0 / np.sqrt(self.dim)
        scores = queries @ keys.transpose(0, 2, 1) * scale
        attention = _masked_softmax(scores, mask)
        context = attention @ values
        output = self.output.forward(context)

        self._cache = {
            "queries": queries,
            "keys": keys,
            "values": values,
            "attention": attention,
            "scale": np.asarray(scale),
        }
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._cache is not None
        cache = self._cache
        queries, keys, values = cache["queries"], cache["keys"], cache["values"]
        attention = cache["attention"]
        scale = float(cache["scale"])

        grad_context = self.output.backward(grad_output)

        grad_attention = grad_context @ values.transpose(0, 2, 1)
        grad_values = attention.transpose(0, 2, 1) @ grad_context

        # Softmax backward (per row of the attention matrix).
        row_dot = (grad_attention * attention).sum(axis=-1, keepdims=True)
        grad_scores = attention * (grad_attention - row_dot)

        grad_queries = grad_scores @ keys * scale
        grad_keys = grad_scores.transpose(0, 2, 1) @ queries * scale

        grad_x = self.query.backward(grad_queries)
        grad_x = grad_x + self.key.backward(grad_keys)
        grad_x = grad_x + self.value.backward(grad_values)
        return grad_x


class FeedForward(Module):
    """Position-wise feed-forward block: Linear -> ReLU -> Linear."""

    def __init__(self, dim: int, hidden_dim: int, rng: np.random.Generator,
                 name: str = "ffn") -> None:
        self.first = Linear(dim, hidden_dim, rng, f"{name}.first")
        self.activation = ReLU()
        self.second = Linear(hidden_dim, dim, rng, f"{name}.second")

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.second.forward(self.activation.forward(self.first.forward(x)))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.first.backward(self.activation.backward(self.second.backward(grad_output)))


class TransformerBlock(Module):
    """Pre-norm Transformer encoder block (attention + feed-forward)."""

    def __init__(self, dim: int, hidden_dim: int, rng: np.random.Generator,
                 name: str = "block") -> None:
        self.attention_norm = LayerNorm(dim, name=f"{name}.attention_norm")
        self.attention = SelfAttention(dim, rng, name=f"{name}.attention")
        self.ffn_norm = LayerNorm(dim, name=f"{name}.ffn_norm")
        self.ffn = FeedForward(dim, hidden_dim, rng, name=f"{name}.ffn")

    def forward(self, x: np.ndarray, mask: np.ndarray) -> np.ndarray:
        attended = x + self.attention.forward(self.attention_norm.forward(x), mask)
        return attended + self.ffn.forward(self.ffn_norm.forward(attended))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_attended = grad_output + self.ffn_norm.backward(self.ffn.backward(grad_output))
        grad_x = grad_attended + self.attention_norm.backward(
            self.attention.backward(grad_attended)
        )
        return grad_x


class MaskedMeanPool(Module):
    """Mean over the sequence axis, ignoring padded positions."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, mask: np.ndarray) -> np.ndarray:
        self._mask = mask
        weights = mask[:, :, None]
        totals = weights.sum(axis=1)
        totals[totals == 0] = 1.0
        return (x * weights).sum(axis=1) / totals

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        assert self._mask is not None
        weights = self._mask[:, :, None]
        totals = weights.sum(axis=1, keepdims=True)
        totals[totals == 0] = 1.0
        return grad_output[:, None, :] * weights / totals


# ---------------------------------------------------------------------------
# Loss and optimiser
# ---------------------------------------------------------------------------


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with max subtraction for stability."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def cross_entropy(
    logits: np.ndarray,
    labels: np.ndarray,
    sample_weights: np.ndarray | None = None,
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy loss and its gradient w.r.t. the logits.

    ``sample_weights`` rescales each example's contribution — used for class
    balancing when negatives outnumber positives 5:1 during fine-tuning.
    """
    if logits.ndim != 2:
        raise ValueError("logits must be 2-dimensional (batch, classes)")
    batch = logits.shape[0]
    if sample_weights is None:
        sample_weights = np.ones(batch)
    elif sample_weights.shape != (batch,):
        raise ValueError("sample_weights must have shape (batch,)")
    probabilities = softmax(logits)
    eps = 1e-12
    per_example = -np.log(probabilities[np.arange(batch), labels] + eps)
    loss = float((per_example * sample_weights).mean())
    grad = probabilities.copy()
    grad[np.arange(batch), labels] -= 1.0
    grad *= sample_weights[:, None]
    return loss, grad / batch


class Adam:
    """Adam optimiser over a fixed list of :class:`Parameter` objects."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer needs at least one parameter")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._first_moments = [np.zeros_like(p.value) for p in self.parameters]
        self._second_moments = [np.zeros_like(p.value) for p in self.parameters]

    def step(self) -> None:
        """Apply one update using the parameters' accumulated gradients."""
        self._step += 1
        bias_correction1 = 1.0 - self.beta1 ** self._step
        bias_correction2 = 1.0 - self.beta2 ** self._step
        for parameter, first, second in zip(
            self.parameters, self._first_moments, self._second_moments
        ):
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.value
            first[...] = self.beta1 * first + (1.0 - self.beta1) * grad
            second[...] = self.beta2 * second + (1.0 - self.beta2) * grad * grad
            corrected_first = first / bias_correction1
            corrected_second = second / bias_correction2
            parameter.value -= (
                self.learning_rate * corrected_first / (np.sqrt(corrected_second) + self.eps)
            )

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()
