"""The high-level facade: specs in, pipelines and results out.

Three entry points cover the config-driven workflow end to end:

* :func:`load_spec` — read an :class:`~repro.specs.ExperimentSpec` from a
  JSON or TOML file (or an already-parsed mapping),
* :func:`build_pipeline` — resolve a spec into a runnable
  :class:`~repro.core.pipeline.EntityGroupMatchingPipeline` around a given
  matcher,
* :func:`run_experiment` — the whole Table 4 protocol (fine-tune, run,
  score) from a spec,
* :func:`open_state` / :func:`ingest` — the incremental-ingestion
  counterpart: initialise or reopen a persistent
  :class:`~repro.incremental.MatchState` and feed it record deltas.

The CLI's ``repro run config.toml`` / ``repro ingest`` are thin wrappers
over these, and ``repro match`` builds a spec internally — there is exactly
one code path from configuration to results.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path
from collections.abc import Mapping
from typing import Any

from repro.specs import ExperimentSpec, PipelineSpec, SpecValidationError

#: Spec file suffixes :func:`load_spec` understands, mapped to their parser.
SPEC_SUFFIXES = (".toml", ".json")


def load_spec(source: str | Path | Mapping[str, Any]) -> ExperimentSpec:
    """Load an :class:`ExperimentSpec` from a file path or parsed mapping.

    Paths are dispatched on suffix (case-insensitive): ``.toml`` parses as
    TOML, ``.json`` as JSON.  Every failure mode — missing file, directory,
    unknown suffix — raises a :class:`SpecValidationError` naming the path
    and the supported extensions, never a raw ``FileNotFoundError`` /
    ``KeyError`` traceback.  Relative dataset paths inside the spec are
    interpreted against the current working directory (not the spec file),
    matching how the CLI documents them.
    """
    if isinstance(source, Mapping):
        return ExperimentSpec.from_dict(source)
    path = Path(source)
    supported = " or ".join(SPEC_SUFFIXES)
    if not path.exists():
        raise SpecValidationError(
            str(path), f"spec file not found (expected a {supported} file)"
        )
    if path.is_dir():
        raise SpecValidationError(
            str(path), f"expected a {supported} spec file, got a directory"
        )
    text = path.read_text(encoding="utf-8")
    suffix = path.suffix.lower()
    if suffix == ".toml":
        return ExperimentSpec.from_toml(text)
    if suffix == ".json":
        return ExperimentSpec.from_json(text)
    raise SpecValidationError(
        str(path),
        f"unsupported spec format {suffix or path.name!r}; expected {supported}",
    )


def _effective_pipeline_spec(
    spec: ExperimentSpec | PipelineSpec,
) -> tuple[PipelineSpec, str | None, dict[str, dict[str, Any]]]:
    """Normalise either spec flavour to (pipeline spec, kind, extra params).

    The extra params carry the experiment-level ``token_overlap`` top-n
    default through the same injection mechanism the experiment harness
    uses, so both construction paths share one resolver
    (:meth:`PipelineSpec.build_blocking`).
    """
    if isinstance(spec, ExperimentSpec):
        pipeline = spec.pipeline
        if not pipeline.blocking:
            pipeline = replace(pipeline, blocking=spec.blocking_specs)
        return pipeline, spec.kind, {"token_overlap": {"top_n": spec.token_top_n}}
    return spec, None, {}


def build_pipeline(
    spec: PipelineSpec | ExperimentSpec,
    matcher,
    dataset=None,
    extra_blocking_params: Mapping[str, Mapping[str, Any]] | None = None,
):
    """Build the pipeline a spec describes, around an existing matcher.

    ``dataset`` (optional) only informs derived defaults — ``mu`` from the
    source count — it is not consumed.  ``extra_blocking_params`` injects
    run-time-only constructor params by blocking name; an ``issuer_match``
    blocking *requires* its company-group mapping this way (e.g.
    ``{"issuer_match": {"issuer_groups": company_groups}}``) because the
    mapping only exists at run time — the full experiment harness
    (:func:`run_experiment`) injects the ground-truth oracle automatically.
    Pass an :class:`ExperimentSpec` to inherit its kind-derived defaults,
    or a bare :class:`PipelineSpec` for full manual control.

    The returned pipeline owns its execution runtime: under a parallel
    ``[pipeline.runtime]`` with the (default) warm pool, worker processes
    persist across :meth:`~repro.core.pipeline.EntityGroupMatchingPipeline.run`
    calls — call ``pipeline.close()`` when done, or use the pipeline as a
    context manager.
    """
    from repro.core.pipeline import EntityGroupMatchingPipeline

    pipeline_spec, kind, extra = _effective_pipeline_spec(spec)
    for name, params in (extra_blocking_params or {}).items():
        extra[name] = {**extra.get(name, {}), **params}
    num_sources = len(dataset.sources) if dataset is not None else None
    return EntityGroupMatchingPipeline(
        matcher=matcher,
        blocking=pipeline_spec.build_blocking(extra),
        cleanup_config=pipeline_spec.build_cleanup_config(num_sources),
        pre_cleanup_config=pipeline_spec.build_pre_cleanup_config(kind),
        runtime=pipeline_spec.runtime.to_runtime_config(),
        cleanup_strategy=pipeline_spec.cleanup.strategy,
    )


def run_experiment(
    spec: ExperimentSpec | str | Path | Mapping[str, Any],
    dataset=None,
):
    """Run the full fine-tune + match + score experiment a spec describes.

    ``dataset`` may be passed directly (a
    :class:`~repro.datagen.records.Dataset`); otherwise the spec's
    ``dataset`` CSV path is loaded.  Returns the
    :class:`~repro.evaluation.experiment.ExperimentResult` (one Table 4
    row, with the full :class:`~repro.core.pipeline.PipelineResult`
    attached).
    """
    from repro.datagen.io import read_dataset_csv
    from repro.evaluation.experiment import EntityGroupMatchingExperiment

    if not isinstance(spec, ExperimentSpec):
        spec = load_spec(spec)
    if dataset is None:
        if spec.dataset is None:
            raise SpecValidationError(
                "experiment.dataset", "no dataset path in the spec and none passed in"
            )
        dataset_path = Path(spec.dataset)
        if not dataset_path.exists():
            raise SpecValidationError(
                "experiment.dataset", f"dataset file not found: {dataset_path}"
            )
        dataset = read_dataset_csv(dataset_path)
    experiment = EntityGroupMatchingExperiment(dataset, spec.to_experiment_config())
    return experiment.run()


def _as_dataset(source):
    """Accept a Dataset or a CSV path."""
    from repro.datagen.io import read_dataset_csv
    from repro.datagen.records import Dataset

    if isinstance(source, Dataset):
        return source
    path = Path(source)
    if not path.exists():
        raise SpecValidationError(str(path), "dataset file not found")
    return read_dataset_csv(path)


def open_state(
    state_dir: str | Path,
    *,
    spec: ExperimentSpec | str | Path | Mapping[str, Any] | None = None,
    train_dataset=None,
    runtime=None,
    save: bool = True,
):
    """Open — or initialise — a persistent incremental match state.

    If ``state_dir`` already holds a saved state, it is loaded (``spec`` and
    ``train_dataset`` are ignored; ``runtime`` optionally overrides the
    stored engine settings, which never changes results).  Otherwise a fresh
    state is initialised from ``spec``: the spec's model is fine-tuned on
    ``train_dataset`` with exactly the :func:`run_experiment` protocol, so
    ingesting that corpus (in any partition) reproduces ``run_experiment``'s
    groups byte for byte.  With ``save`` (default) the fresh state is
    persisted to ``state_dir`` immediately.

    Returns an :class:`~repro.incremental.IncrementalMatcher`.  Under a
    parallel runtime the matcher keeps one warm worker pool (and the
    shipped profile store) alive *across* :func:`ingest` calls — that is
    what makes multi-batch ingestion fast — so close it when done
    (``matcher.close()``) or use it as a context manager.
    """
    from repro.evaluation.experiment import EntityGroupMatchingExperiment
    from repro.incremental import IncrementalMatcher, is_state_dir

    state_dir = Path(state_dir)
    if is_state_dir(state_dir):
        return IncrementalMatcher.load(state_dir, runtime=runtime)
    if spec is None:
        raise SpecValidationError(
            str(state_dir),
            "not an initialised match state and no spec was given — pass "
            "spec= (and train_dataset=) to create one",
        )
    if not isinstance(spec, ExperimentSpec):
        spec = load_spec(spec)
    if train_dataset is None:
        if spec.dataset is None:
            raise SpecValidationError(
                "experiment.dataset",
                "initialising a match state needs a training dataset: pass "
                "train_dataset= or set experiment.dataset in the spec",
            )
        train_dataset = spec.dataset
    train_dataset = _as_dataset(train_dataset)
    experiment = EntityGroupMatchingExperiment(
        train_dataset, spec.to_experiment_config()
    )
    matcher = IncrementalMatcher.from_pipeline(
        experiment.build_pipeline(), name=train_dataset.name
    )
    if runtime is not None:
        from repro.runtime import PipelineRuntime, RuntimeConfig

        if isinstance(runtime, RuntimeConfig):
            runtime = PipelineRuntime(runtime)
        matcher.runtime = runtime
    matcher.state_dir = state_dir
    if save:
        matcher.save(state_dir)
    return matcher


def ingest(state, records, *, save: bool = True):
    """Ingest a record delta into a persistent match state.

    ``state`` is an :class:`~repro.incremental.IncrementalMatcher` or a
    state directory path; ``records`` is a
    :class:`~repro.datagen.records.Dataset`, a CSV path, or an iterable of
    records.  With ``save`` (default) the updated state is persisted back
    to its directory — a matcher that has no directory (never saved or
    loaded) raises rather than silently dropping the persistence; pass
    ``save=False`` for deliberate in-memory use.  Returns the
    :class:`~repro.incremental.IngestReport`.
    """
    from repro.incremental import IncrementalMatcher

    matcher = state if isinstance(state, IncrementalMatcher) else open_state(state)
    if save and matcher.state_dir is None:
        raise ValueError(
            "ingest(save=True) needs a state directory, but this matcher "
            "was never saved or loaded — save it first or pass save=False "
            "for in-memory ingestion"
        )
    if isinstance(records, (str, Path)):
        records = _as_dataset(records)
    batch = records.records if hasattr(records, "records") else list(records)
    report = matcher.ingest(batch)
    if save:
        matcher.save()
    return report


__all__ = [
    "build_pipeline",
    "ingest",
    "load_spec",
    "open_state",
    "run_experiment",
]
