"""Word banks for the procedural seed-company corpus.

The matching difficulty of the synthetic companies dataset comes largely from
names that share common industry, technology and geographic terms ("hi-tech",
"networks", "energy", "resources", geographical terms etc. — Section 6.2.1).
The word banks below are designed so that generated names collide on such
terms with realistic frequency, which is what produces hard negative
candidate pairs under the Token Overlap blocking.
"""

from __future__ import annotations

# Distinctive "brand" roots.  Some share long character sequences on purpose
# (crowd/cloud/strike/street/stream …) to recreate the Crowdstrike vs
# Crowdstreet style of false-positive pressure from Figure 2.
BRAND_ROOTS: tuple[str, ...] = (
    "Acme", "Aero", "Agri", "Alpha", "Apex", "Aqua", "Arbor", "Astra", "Atlas",
    "Aurora", "Axion", "Beacon", "Bio", "Blue", "Bolt", "Bright", "Canyon",
    "Cedar", "Centra", "Cipher", "Clear", "Cloud", "Cobalt", "Comet", "Core",
    "Crest", "Crowd", "Crown", "Cyber", "Delta", "Digi", "Dyna", "Echo",
    "Eco", "Edge", "Ember", "Epic", "Equi", "Ever", "Falcon", "Fern", "First",
    "Flex", "Flux", "Forge", "Fort", "Fusion", "Gale", "Gamma", "Gen",
    "Giga", "Gold", "Granite", "Green", "Grid", "Harbor", "Haven", "Helio",
    "Hex", "Horizon", "Hydro", "Ion", "Iron", "Jade", "Jet", "Juno", "Keystone",
    "Kinetic", "Lake", "Laser", "Ledger", "Lumen", "Luna", "Macro", "Magna",
    "Maple", "Merid", "Meta", "Micro", "Mono", "Nano", "Nebula", "Neo",
    "Nexus", "Nimbus", "Nova", "Oak", "Ocean", "Omega", "Onyx", "Opti",
    "Orbit", "Orion", "Osprey", "Para", "Peak", "Pinnacle", "Pioneer",
    "Pixel", "Polar", "Prime", "Prism", "Pulse", "Quant", "Quartz", "Radiant",
    "Rapid", "Raven", "Ridge", "River", "Rock", "Royal", "Sage", "Sierra",
    "Silver", "Sky", "Smart", "Solar", "Spark", "Spectra", "Sphere", "Star",
    "Stellar", "Sterling", "Stone", "Stream", "Street", "Strike", "Summit",
    "Swift", "Sync", "Terra", "Titan", "Torrent", "Trade", "Tri", "True",
    "Turbo", "Ultra", "Umbra", "Union", "Unity", "Vanguard", "Vantage",
    "Vector", "Velo", "Verde", "Vertex", "Vista", "Vital", "Volt", "Vortex",
    "Wave", "West", "Willow", "Wind", "Wolf", "Zen", "Zenith", "Zephyr",
)

# Industry / technology terms that frequently appear in several names.
INDUSTRY_TERMS: tuple[str, ...] = (
    "Analytics", "Automation", "Bank", "Biotech", "Capital", "Chemicals",
    "Commerce", "Communications", "Computing", "Consulting", "Data",
    "Devices", "Diagnostics", "Digital", "Dynamics", "Energy", "Engineering",
    "Finance", "Financial", "Foods", "Health", "Healthcare", "Industries",
    "Informatics", "Instruments", "Insurance", "Labs", "Logistics", "Materials",
    "Media", "Medical", "Mining", "Mobility", "Networks", "Payments", "Pharma",
    "Platforms", "Power", "Properties", "Realty", "Resources", "Retail",
    "Robotics", "Security", "Semiconductors", "Services", "Software",
    "Systems", "Tech", "Technologies", "Telecom", "Therapeutics", "Transport",
    "Utilities", "Ventures", "Works",
)

CORPORATE_SUFFIXES: tuple[str, ...] = (
    "Inc", "Inc.", "Incorporated", "Corp", "Corp.", "Corporation", "Ltd",
    "Ltd.", "Limited", "LLC", "PLC", "GmbH", "AG", "SA", "NV", "Co",
    "Company", "Holdings", "Group",
)

CITIES: tuple[tuple[str, str, str], ...] = (
    # (city, region, country_code)
    ("New York", "New York", "USA"),
    ("San Francisco", "California", "USA"),
    ("Austin", "Texas", "USA"),
    ("Boston", "Massachusetts", "USA"),
    ("Seattle", "Washington", "USA"),
    ("Chicago", "Illinois", "USA"),
    ("Denver", "Colorado", "USA"),
    ("Atlanta", "Georgia", "USA"),
    ("Toronto", "Ontario", "CAN"),
    ("Vancouver", "British Columbia", "CAN"),
    ("London", "England", "GBR"),
    ("Manchester", "England", "GBR"),
    ("Edinburgh", "Scotland", "GBR"),
    ("Dublin", "Leinster", "IRL"),
    ("Paris", "Ile-de-France", "FRA"),
    ("Lyon", "Auvergne-Rhone-Alpes", "FRA"),
    ("Berlin", "Berlin", "DEU"),
    ("Munich", "Bavaria", "DEU"),
    ("Frankfurt", "Hesse", "DEU"),
    ("Zurich", "Zurich", "CHE"),
    ("Geneva", "Geneva", "CHE"),
    ("Amsterdam", "North Holland", "NLD"),
    ("Stockholm", "Stockholm", "SWE"),
    ("Madrid", "Madrid", "ESP"),
    ("Barcelona", "Catalonia", "ESP"),
    ("Milan", "Lombardy", "ITA"),
    ("Tokyo", "Tokyo", "JPN"),
    ("Osaka", "Osaka", "JPN"),
    ("Singapore", "Singapore", "SGP"),
    ("Sydney", "New South Wales", "AUS"),
    ("Melbourne", "Victoria", "AUS"),
    ("Mumbai", "Maharashtra", "IND"),
    ("Bangalore", "Karnataka", "IND"),
    ("Sao Paulo", "Sao Paulo", "BRA"),
    ("Tel Aviv", "Tel Aviv", "ISR"),
    ("Copenhagen", "Capital Region", "DNK"),
    ("Oslo", "Oslo", "NOR"),
    ("Helsinki", "Uusimaa", "FIN"),
    ("Vienna", "Vienna", "AUT"),
    ("Brussels", "Brussels", "BEL"),
)

INDUSTRY_SECTORS: tuple[str, ...] = (
    "Information Technology", "Health Care", "Financials", "Energy",
    "Materials", "Industrials", "Consumer Discretionary", "Consumer Staples",
    "Communication Services", "Utilities", "Real Estate",
)

DESCRIPTION_TEMPLATES: tuple[str, ...] = (
    "{name} provides {offer} for {audience} in the {sector} sector.",
    "{name} is a {adjective} provider of {offer} serving {audience}.",
    "{name} develops {offer} that help {audience} {benefit}.",
    "Based in {city}, {name} offers {offer} to {audience}.",
    "{name} builds {adjective} {offer} for {audience} worldwide.",
    "{name} operates a {adjective} platform delivering {offer} to {audience}.",
)

OFFERS: tuple[str, ...] = (
    "cloud software", "data analytics tools", "payment solutions",
    "logistics services", "renewable energy systems", "medical devices",
    "cybersecurity platforms", "enterprise software", "mobile applications",
    "financial services", "e-commerce infrastructure", "industrial equipment",
    "biotech therapies", "insurance products", "real estate services",
    "semiconductor components", "telecom infrastructure", "consulting services",
    "robotics systems", "agricultural technology",
)

AUDIENCES: tuple[str, ...] = (
    "small businesses", "large enterprises", "hospitals", "retailers", "banks",
    "manufacturers", "consumers", "government agencies", "startups",
    "utility companies", "logistics providers", "asset managers",
)

ADJECTIVES: tuple[str, ...] = (
    "leading", "innovative", "global", "trusted", "fast-growing", "specialised",
    "award-winning", "next-generation", "pioneering", "established",
)

BENEFITS: tuple[str, ...] = (
    "reduce costs", "scale faster", "manage risk", "improve outcomes",
    "automate workflows", "reach new markets", "stay compliant",
    "increase efficiency", "secure their data", "grow revenue",
)

SECURITY_TYPES: tuple[str, ...] = (
    "common stock", "preferred stock", "bond", "convertible bond", "right",
    "unit", "warrant", "depositary receipt",
)

# Synonym table used by the rule-based paraphraser (Pegasus substitute).
PARAPHRASE_SYNONYMS: dict[str, str] = {
    "provides": "supplies",
    "provider": "supplier",
    "develops": "creates",
    "builds": "designs",
    "offers": "delivers",
    "operates": "runs",
    "help": "enable",
    "serving": "supporting",
    "leading": "prominent",
    "innovative": "cutting-edge",
    "global": "international",
    "trusted": "reliable",
    "platform": "solution",
    "software": "applications",
    "tools": "solutions",
    "services": "offerings",
    "worldwide": "globally",
    "customers": "clients",
    "small": "smaller",
    "large": "major",
}
