"""Synthetic benchmark dataset generation.

The paper's synthetic companies and securities datasets are derived from a
licensed Crunchbase export; here the seed corpus itself is generated
procedurally (see ``DESIGN.md``, substitution 1) and the same *data artifact*
machinery described in Section 3.2 is applied on top:

* :mod:`repro.datagen.records` — the record / dataset model,
* :mod:`repro.datagen.identifiers` — ISIN / CUSIP / SEDOL / VALOR / LEI
  generation and validation with real check-digit algorithms,
* :mod:`repro.datagen.seed` — the procedural seed-company corpus,
* :mod:`repro.datagen.artifacts` — the data artifacts (AcronymName,
  InsertCorporateTerm, acquisitions, mergers, MultipleIDs, NoIdOverlaps, …),
* :mod:`repro.datagen.generator` — multi-source companies + securities
  dataset generation with ground truth,
* :mod:`repro.datagen.wdc` — a WDC-Products-style product matching benchmark,
* :mod:`repro.datagen.examples` — the small Figure 2 example dataset,
* :mod:`repro.datagen.stats` — Table 1 statistics.
"""

from repro.datagen.records import (
    CompanyRecord,
    Dataset,
    ProductRecord,
    Record,
    SecurityRecord,
)
from repro.datagen.config import GenerationConfig, RealLikeConfig, SyntheticConfig
from repro.datagen.generator import SyntheticDatasetGenerator, generate_benchmark
from repro.datagen.seed import SeedCompany, generate_seed_companies
from repro.datagen.stats import DatasetStatistics, dataset_statistics
from repro.datagen.wdc import WdcProductsGenerator, generate_wdc_products
from repro.datagen.examples import figure2_dataset

__all__ = [
    "Record",
    "CompanyRecord",
    "SecurityRecord",
    "ProductRecord",
    "Dataset",
    "GenerationConfig",
    "SyntheticConfig",
    "RealLikeConfig",
    "SyntheticDatasetGenerator",
    "generate_benchmark",
    "SeedCompany",
    "generate_seed_companies",
    "DatasetStatistics",
    "dataset_statistics",
    "WdcProductsGenerator",
    "generate_wdc_products",
    "figure2_dataset",
]
