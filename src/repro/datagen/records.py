"""Record and dataset model for multi-source entity group matching.

A *record* is one row from one data source.  Records carry the ground-truth
``entity_id`` of the real-world entity they describe (available because we
generate the data), which the experiment harness uses for scoring but which
no matcher is allowed to read.

Three record families mirror the paper's datasets:

* :class:`CompanyRecord` — name, city, region, country code, description;
* :class:`SecurityRecord` — security name / type, issuer, ISIN / CUSIP /
  SEDOL / VALOR identifiers;
* :class:`ProductRecord` — WDC-Products-style offers (brand, title, price,
  description).

A :class:`Dataset` bundles the records of one matching task with its ground
truth (entity groups and true match pairs).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, fields, replace
from collections.abc import Iterable, Iterator, Sequence
from typing import Any, ClassVar

from repro.graphs.graph import canonical_edge

MatchPair = tuple[str, str]


@dataclass
class Record:
    """Base record: one row of one data source.

    ``record_id`` is globally unique across sources; ``source`` names the
    data source (e.g. ``"S1"``); ``entity_id`` is the ground-truth group.
    """

    record_id: str
    source: str
    entity_id: str

    #: Attribute names (in serialisation order) that describe the entity;
    #: subclasses override this.
    MATCHING_ATTRIBUTES: ClassVar[tuple[str, ...]] = ()

    def attributes(self) -> dict[str, Any]:
        """Return the matching-relevant attributes as a plain dictionary."""
        return {name: getattr(self, name) for name in self.MATCHING_ATTRIBUTES}

    def copy_with(self, **changes: Any) -> "Record":
        """Return a copy of the record with ``changes`` applied."""
        return replace(self, **changes)

    def to_dict(self) -> dict[str, Any]:
        """Full dictionary form (including ids), used by the CSV writer."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class CompanyRecord(Record):
    """A company record as distributed by a financial data vendor."""

    name: str = ""
    city: str | None = None
    region: str | None = None
    country_code: str | None = None
    description: str | None = None
    lei: str | None = None
    industry: str | None = None
    #: Identifiers of the securities issued by this company *as recorded by
    #: this source* — used by the ID Overlap blocking for companies.
    security_isins: tuple[str, ...] = ()

    MATCHING_ATTRIBUTES: ClassVar[tuple[str, ...]] = (
        "name",
        "city",
        "region",
        "country_code",
        "industry",
        "description",
    )


@dataclass
class SecurityRecord(Record):
    """A security (share, bond, right, unit …) record."""

    name: str = ""
    security_type: str = "equity"
    issuer_name: str | None = None
    #: Record id of the issuing company *in the same data source*.
    issuer_record_id: str | None = None
    #: Ground-truth entity id of the issuing company.
    issuer_entity_id: str | None = None
    isin: str | None = None
    cusip: str | None = None
    sedol: str | None = None
    valor: str | None = None
    ticker: str | None = None

    MATCHING_ATTRIBUTES: ClassVar[tuple[str, ...]] = (
        "name",
        "security_type",
        "issuer_name",
        "isin",
        "cusip",
        "sedol",
        "valor",
        "ticker",
    )

    def identifier_values(self) -> dict[str, str | None]:
        """The identifier attributes used by the ID Overlap blocking."""
        return {
            "isin": self.isin,
            "cusip": self.cusip,
            "sedol": self.sedol,
            "valor": self.valor,
        }


@dataclass
class ProductRecord(Record):
    """A WDC-Products-style product offer record."""

    title: str = ""
    brand: str | None = None
    category: str | None = None
    price: str | None = None
    description: str | None = None

    MATCHING_ATTRIBUTES: ClassVar[tuple[str, ...]] = (
        "title",
        "brand",
        "category",
        "price",
        "description",
    )


class Dataset:
    """A multi-source matching task: records plus ground truth.

    The ground truth is derived from the records' ``entity_id`` values: all
    records sharing an entity id form one group, and every unordered pair of
    records within a group (across or within sources) is a true match, which
    is how the paper counts "# of Matches" in Table 1.
    """

    def __init__(self, name: str, records: Iterable[Record]) -> None:
        self.name = name
        self._records: list[Record] = list(records)
        self._by_id: dict[str, Record] = {}
        for record in self._records:
            if record.record_id in self._by_id:
                raise ValueError(f"duplicate record id: {record.record_id!r}")
            self._by_id[record.record_id] = record

    # -- basic access --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    @property
    def records(self) -> list[Record]:
        return list(self._records)

    def record(self, record_id: str) -> Record:
        return self._by_id[record_id]

    def __contains__(self, record_id: str) -> bool:
        return record_id in self._by_id

    def add_record(self, record: Record) -> None:
        if record.record_id in self._by_id:
            raise ValueError(f"duplicate record id: {record.record_id!r}")
        self._records.append(record)
        self._by_id[record.record_id] = record

    # -- views ----------------------------------------------------------------

    @property
    def sources(self) -> list[str]:
        return sorted({record.source for record in self._records})

    def records_by_source(self) -> dict[str, list[Record]]:
        grouped: dict[str, list[Record]] = defaultdict(list)
        for record in self._records:
            grouped[record.source].append(record)
        return dict(grouped)

    def entity_groups(self) -> dict[str, list[str]]:
        """Ground truth: entity id -> sorted list of record ids."""
        groups: dict[str, list[str]] = defaultdict(list)
        for record in self._records:
            groups[record.entity_id].append(record.record_id)
        return {entity: sorted(ids) for entity, ids in groups.items()}

    def true_matches(self) -> set[MatchPair]:
        """All unordered pairs of record ids belonging to the same entity."""
        matches: set[MatchPair] = set()
        for record_ids in self.entity_groups().values():
            for i, left in enumerate(record_ids):
                for right in record_ids[i + 1:]:
                    matches.add(canonical_edge(left, right))  # type: ignore[arg-type]
        return matches

    def entity_of(self, record_id: str) -> str:
        return self._by_id[record_id].entity_id

    def is_true_match(self, left_id: str, right_id: str) -> bool:
        return self._by_id[left_id].entity_id == self._by_id[right_id].entity_id

    # -- restriction ----------------------------------------------------------

    def subset_by_entities(self, entity_ids: Iterable[str], name: str | None = None) -> "Dataset":
        """Dataset restricted to the records of the given entities."""
        keep = set(entity_ids)
        selected = [record for record in self._records if record.entity_id in keep]
        return Dataset(name or f"{self.name}-subset", selected)

    def subset_by_records(self, record_ids: Iterable[str], name: str | None = None) -> "Dataset":
        keep = set(record_ids)
        selected = [record for record in self._records if record.record_id in keep]
        return Dataset(name or f"{self.name}-subset", selected)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Dataset(name={self.name!r}, records={len(self._records)}, "
            f"entities={len(self.entity_groups())}, sources={len(self.sources)})"
        )


def pair_key(left: Record | str, right: Record | str) -> MatchPair:
    """Canonical unordered pair of record ids."""
    left_id = left if isinstance(left, str) else left.record_id
    right_id = right if isinstance(right, str) else right.record_id
    return canonical_edge(left_id, right_id)  # type: ignore[return-value]


def records_to_attribute_rows(records: Sequence[Record]) -> list[dict[str, Any]]:
    """Convenience for serialisers: list of full dictionaries."""
    return [record.to_dict() for record in records]
