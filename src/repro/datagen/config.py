"""Generation configurations.

The paper evaluates on four dataset instances (Table 1 / Table 2):

* the **synthetic** companies / securities datasets — 5 sources, 200K
  entities, the full artifact mix;
* the **real** (labelled subset) companies / securities datasets — 8 sources,
  65K records, mostly identifier-matchable groups with a small share of hand
  found edge cases.

:class:`SyntheticConfig` and :class:`RealLikeConfig` capture the two shapes.
The ``num_entities`` default here is deliberately small so tests and the
checked-in benchmark harness run in minutes on CPU; the generator itself is
linear in the number of groups and scales to the paper's 200K (see
``EXPERIMENTS.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class GenerationConfig:
    """Parameters of a synthetic benchmark generation run."""

    #: Number of company entities (record groups) to generate.
    num_entities: int = 1_000
    #: Number of data sources records are spread over.
    num_sources: int = 5
    #: Range of sources each company entity appears in (inclusive).  ``None``
    #: means "derive from num_sources": every entity appears in between
    #: ``min(3, num_sources)`` and ``num_sources`` sources.
    min_sources_per_entity: int | None = None
    max_sources_per_entity: int | None = None
    #: Share of companies with a textual description (Table 1: 32%).
    description_probability: float = 0.32
    #: Probability that a company issues a second "common stock" listing in
    #: addition to its primary security before artifacts run.
    extra_listing_probability: float = 0.15
    #: Fraction of groups participating in an acquisition event (as acquiree).
    acquisition_rate: float = 0.03
    #: Fraction of groups participating in a merger event.
    merger_rate: float = 0.03
    #: Per-group application probability of each single-group company artifact,
    #: keyed by artifact name; unspecified artifacts use the defaults from
    #: :mod:`repro.datagen.artifacts`.
    company_artifact_rates: dict[str, float] = field(default_factory=dict)
    #: Per-group application probability of each security artifact.
    security_artifact_rates: dict[str, float] = field(default_factory=dict)
    #: RNG seed for the whole generation.
    seed: int = 0
    #: Prefix used in record / entity identifiers (handy when several
    #: datasets coexist in one experiment).
    id_prefix: str = "SYN"

    def __post_init__(self) -> None:
        if self.num_entities < 0:
            raise ValueError("num_entities must be non-negative")
        if self.num_sources < 1:
            raise ValueError("num_sources must be at least 1")
        if self.max_sources_per_entity is None:
            self.max_sources_per_entity = self.num_sources
        if self.min_sources_per_entity is None:
            self.min_sources_per_entity = min(3, self.max_sources_per_entity)
        if not 1 <= self.min_sources_per_entity <= self.max_sources_per_entity:
            raise ValueError(
                "need 1 <= min_sources_per_entity <= max_sources_per_entity"
            )
        if self.max_sources_per_entity > self.num_sources:
            raise ValueError("max_sources_per_entity cannot exceed num_sources")
        for rate_name in ("acquisition_rate", "merger_rate",
                          "description_probability", "extra_listing_probability"):
            value = getattr(self, rate_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{rate_name} must be in [0, 1]")

    @property
    def source_names(self) -> list[str]:
        return [f"S{i + 1}" for i in range(self.num_sources)]


@dataclass
class SyntheticConfig(GenerationConfig):
    """The synthetic benchmark shape: 5 sources, full artifact mix."""

    num_entities: int = 2_000
    num_sources: int = 5
    min_sources_per_entity: int = 3
    max_sources_per_entity: int = 5
    description_probability: float = 0.32
    acquisition_rate: float = 0.03
    merger_rate: float = 0.03
    id_prefix: str = "SYN"


@dataclass
class RealLikeConfig(GenerationConfig):
    """The labelled-real-subset shape: 8 sources, mostly easy ID groups.

    The paper's labelled real subset was built by matching identifier codes
    plus a small number of manually found edge cases, so artifacts that
    destroy identifier overlaps are rare and the description share is lower.
    """

    num_entities: int = 800
    num_sources: int = 8
    min_sources_per_entity: int = 4
    max_sources_per_entity: int = 8
    description_probability: float = 0.25
    acquisition_rate: float = 0.01
    merger_rate: float = 0.01
    company_artifact_rates: dict[str, float] = field(
        default_factory=lambda: {
            "AcronymName": 0.04,
            "ReorderNameTokens": 0.04,
            "TypoName": 0.08,
            "ParaphraseAttribute": 0.15,
            "DropAttributes": 0.20,
            "InsertCorporateTerm": 0.30,
        }
    )
    security_artifact_rates: dict[str, float] = field(
        default_factory=lambda: {
            "MultipleSecurities": 0.15,
            "MultipleIDs": 0.05,
            "NoIdOverlaps": 0.02,
            "CorruptIdentifier": 0.03,
        }
    )
    id_prefix: str = "REAL"
