"""CSV persistence for generated datasets.

The paper ships its synthetic benchmark as CSV files; this module writes and
reads the generated datasets in the same spirit so that an expensive
generation (or model predictions) can be cached on disk and shared.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.datagen.records import (
    CompanyRecord,
    Dataset,
    ProductRecord,
    Record,
    SecurityRecord,
)

_RECORD_TYPES: dict[str, type[Record]] = {
    "company": CompanyRecord,
    "security": SecurityRecord,
    "product": ProductRecord,
}
_TYPE_NAMES = {cls: name for name, cls in _RECORD_TYPES.items()}

_TUPLE_FIELDS = {"security_isins"}
_TUPLE_SEPARATOR = "|"


def write_dataset_csv(dataset: Dataset, path: str | Path) -> Path:
    """Write ``dataset`` to a CSV file; returns the path written.

    A ``record_type`` column is added so mixed exports stay round-trippable;
    tuple-valued fields are joined with ``|``.
    """
    path = Path(path)
    records = dataset.records
    if not records:
        raise ValueError("cannot write an empty dataset")

    fieldnames: list[str] = ["record_type"]
    for record in records:
        for column in record.to_dict():
            if column not in fieldnames:
                fieldnames.append(column)

    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames, restval="")
        writer.writeheader()
        for record in records:
            row = {"record_type": _TYPE_NAMES[type(record)]}
            for column, value in record.to_dict().items():
                if column in _TUPLE_FIELDS and isinstance(value, tuple):
                    row[column] = _TUPLE_SEPARATOR.join(value)
                elif value is None:
                    row[column] = ""
                else:
                    row[column] = value
            writer.writerow(row)
    return path


def read_dataset_csv(path: str | Path, name: str | None = None) -> Dataset:
    """Read a dataset previously written by :func:`write_dataset_csv`."""
    path = Path(path)
    records: list[Record] = []
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            record_type = row.pop("record_type", "")
            record_class = _RECORD_TYPES.get(record_type)
            if record_class is None:
                raise ValueError(f"unknown record_type {record_type!r} in {path}")
            records.append(_row_to_record(record_class, row))
    return Dataset(name or path.stem, records)


def _row_to_record(record_class: type[Record], row: dict[str, str]) -> Record:
    import dataclasses

    kwargs: dict[str, object] = {}
    field_names = {f.name for f in dataclasses.fields(record_class)}
    for column, raw in row.items():
        if column not in field_names:
            continue
        if column in _TUPLE_FIELDS:
            kwargs[column] = tuple(part for part in raw.split(_TUPLE_SEPARATOR) if part)
        elif raw == "":
            # Required string fields keep "", optional fields become None.
            kwargs[column] = "" if column in ("record_id", "source", "entity_id", "name",
                                              "title", "security_type") else None
        else:
            kwargs[column] = raw
    return record_class(**kwargs)  # type: ignore[arg-type]
