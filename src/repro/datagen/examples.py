"""The small worked example of Figure 2.

Figure 2 of the paper shows companies and securities records from four data
sources illustrating the matching challenges: naming variations
(Crowdstrike Plt. / Crowd Strike Platforms / Crowdstrike Holdings), look-alike
non-matches (Crowdstreet), a merger (lastminute.com / Travix) where
identifiers were overwritten without the records being matches, and an
acquisition (Herotel / Hearst) where records are matches but only reachable
transitively.

This module reconstructs that example as a pair of :class:`Dataset` objects;
it is used by the documentation example, by the Figure 3 / Figure 4 benches
and by integration tests because every interesting phenomenon appears in it
at minimum size.
"""

from __future__ import annotations

from repro.datagen.records import CompanyRecord, Dataset, SecurityRecord


def figure2_dataset() -> tuple[Dataset, Dataset]:
    """Return the (companies, securities) datasets of the Figure 2 example."""
    companies = [
        # Entity: lastminute.com (merged with Travix -> NOT a match with #42)
        CompanyRecord(
            record_id="#10", source="S1", entity_id="lastminute",
            name="lastminute.com", city="Amsterdam", country_code="NLD",
            description="Online travel and leisure retailer",
            security_isins=("NL0010733960",),
        ),
        CompanyRecord(
            record_id="#20", source="S2", entity_id="lastminute",
            name="Lastminute com NV", city="Amsterdam", country_code="NLD",
            description=None,
            security_isins=(),
        ),
        CompanyRecord(
            record_id="#30", source="S3", entity_id="lastminute",
            name="lastminute.com N.V.", city="Amsterdam", country_code="NLD",
            description="Travel booking platform",
            # Merger contamination: carries a Travix identifier.
            security_isins=("NL0010733960", "NL00TRAVIX01"),
        ),
        CompanyRecord(
            record_id="#42", source="S4", entity_id="travix",
            name="Travix International", city="Amsterdam", country_code="NLD",
            description="Online travel agency operating booking sites",
            security_isins=("NL00TRAVIX01",),
        ),
        # Entity: Herotel (acquired by Hearst -> all records match)
        CompanyRecord(
            record_id="#11", source="S1", entity_id="hearst",
            name="Herotel", city="Cape Town", country_code="ZAF",
            description="Wireless internet service provider",
            security_isins=("ZAE000HERO11",),
        ),
        CompanyRecord(
            record_id="#21", source="S2", entity_id="hearst",
            name="Herotel Ltd", city="Cape Town", country_code="ZAF",
            description=None,
            # Acquisition recorded: carries the acquirer's ISIN.
            security_isins=("US4434101012",),
        ),
        CompanyRecord(
            record_id="#33", source="S3", entity_id="hearst",
            name="Hearst Communications", city="New York", country_code="USA",
            description="Diversified media information and services company",
            security_isins=("US4434101012",),
        ),
        CompanyRecord(
            record_id="#41", source="S4", entity_id="hearst",
            name="Hearst Corp", city="New York", country_code="USA",
            description="Media conglomerate",
            security_isins=("US4434101012",),
        ),
        # Entity: Crowdstrike (naming variations across sources)
        CompanyRecord(
            record_id="#12", source="S1", entity_id="crowdstrike",
            name="Crowdstrike Plt.", city="Austin", country_code="USA",
            description="Cloud-delivered endpoint protection platform",
            security_isins=("US31807756E0",),
        ),
        CompanyRecord(
            record_id="#22", source="S2", entity_id="crowdstrike",
            name="Crowd Strike Platforms", city="Austin", country_code="USA",
            description=None,
            security_isins=("US318077DSIE",),
        ),
        CompanyRecord(
            record_id="#31", source="S3", entity_id="crowdstrike",
            name="Crowdstrike Holdings", city="Austin", country_code="USA",
            description="Cybersecurity technology company",
            security_isins=("US31807756E0",),
        ),
        CompanyRecord(
            record_id="#40", source="S4", entity_id="crowdstrike",
            name="CrowdStrike Holdings Inc", city="Austin", country_code="USA",
            description="Provider of cloud workload and endpoint security",
            security_isins=("US318077DSIE",),
        ),
        # Entity: Crowdstreet (the look-alike non-match)
        CompanyRecord(
            record_id="#13", source="S1", entity_id="crowdstreet",
            name="Crowdstreet", city="Austin", country_code="USA",
            description="Online commercial real estate investing marketplace",
            security_isins=("US22888CRWD1",),
        ),
        CompanyRecord(
            record_id="#23", source="S2", entity_id="crowdstreet",
            name="CrowdStreet Inc", city="Austin", country_code="USA",
            description=None,
            security_isins=("US22888CRWD1",),
        ),
        CompanyRecord(
            record_id="#32", source="S3", entity_id="crowdstreet",
            name="Crowd Street", city="Austin", country_code="USA",
            description="Real estate investment platform",
            security_isins=("US22888CRWD1",),
        ),
    ]

    securities = [
        # Crowdstrike securities: two listings with different ISINs.
        SecurityRecord(
            record_id="#S12", source="S1", entity_id="crowdstrike-cs",
            name="Crowdstrike common stock", security_type="common stock",
            issuer_name="Crowdstrike Plt.", issuer_record_id="#12",
            issuer_entity_id="crowdstrike", isin="US31807756E0", ticker="CRWD",
        ),
        SecurityRecord(
            record_id="#S31", source="S3", entity_id="crowdstrike-cs",
            name="Crowdstrike Holdings Class A", security_type="common stock",
            issuer_name="Crowdstrike Holdings", issuer_record_id="#31",
            issuer_entity_id="crowdstrike", isin="US31807756E0", ticker="CRWD",
        ),
        SecurityRecord(
            record_id="#S22", source="S2", entity_id="crowdstrike-cs",
            name="Crowd Strike Platforms shares", security_type="common stock",
            issuer_name="Crowd Strike Platforms", issuer_record_id="#22",
            issuer_entity_id="crowdstrike", isin="US318077DSIE", ticker="CRWD",
        ),
        SecurityRecord(
            record_id="#S40", source="S4", entity_id="crowdstrike-cs",
            name="CrowdStrike Holdings Class A", security_type="common stock",
            issuer_name="CrowdStrike Holdings Inc", issuer_record_id="#40",
            issuer_entity_id="crowdstrike", isin="US318077DSIE", ticker="CRWD",
        ),
        # Crowdstreet security.
        SecurityRecord(
            record_id="#S13", source="S1", entity_id="crowdstreet-cs",
            name="Crowdstreet common stock", security_type="common stock",
            issuer_name="Crowdstreet", issuer_record_id="#13",
            issuer_entity_id="crowdstreet", isin="US22888CRWD1", ticker="CRWS",
        ),
        SecurityRecord(
            record_id="#S23", source="S2", entity_id="crowdstreet-cs",
            name="CrowdStreet Inc shares", security_type="common stock",
            issuer_name="CrowdStreet Inc", issuer_record_id="#23",
            issuer_entity_id="crowdstreet", isin="US22888CRWD1", ticker="CRWS",
        ),
        # Herotel / Hearst securities: acquisition overwrote identifiers on #S21.
        SecurityRecord(
            record_id="#S11", source="S1", entity_id="hearst-cs",
            name="Herotel ordinary shares", security_type="common stock",
            issuer_name="Herotel", issuer_record_id="#11",
            issuer_entity_id="hearst", isin="ZAE000HERO11", ticker="HTL",
        ),
        SecurityRecord(
            record_id="#S21", source="S2", entity_id="hearst-cs",
            name="Herotel Ltd shares", security_type="common stock",
            issuer_name="Herotel Ltd", issuer_record_id="#21",
            issuer_entity_id="hearst", isin="US4434101012", ticker="HTL",
        ),
        SecurityRecord(
            record_id="#S33", source="S3", entity_id="hearst-cs",
            name="Hearst Communications stock", security_type="common stock",
            issuer_name="Hearst Communications", issuer_record_id="#33",
            issuer_entity_id="hearst", isin="US4434101012", ticker="HRST",
        ),
        SecurityRecord(
            record_id="#S41", source="S4", entity_id="hearst-cs",
            name="Hearst Corp stock", security_type="common stock",
            issuer_name="Hearst Corp", issuer_record_id="#41",
            issuer_entity_id="hearst", isin="US4434101012", ticker="HRST",
        ),
        # lastminute.com / Travix securities: merger contamination on #S30.
        SecurityRecord(
            record_id="#S10", source="S1", entity_id="lastminute-cs",
            name="lastminute.com ordinary shares", security_type="common stock",
            issuer_name="lastminute.com", issuer_record_id="#10",
            issuer_entity_id="lastminute", isin="NL0010733960", ticker="LMN",
        ),
        SecurityRecord(
            record_id="#S30", source="S3", entity_id="lastminute-cs",
            name="lastminute.com N.V. shares", security_type="common stock",
            issuer_name="lastminute.com N.V.", issuer_record_id="#30",
            issuer_entity_id="lastminute", isin="NL00TRAVIX01", ticker="LMN",
        ),
        SecurityRecord(
            record_id="#S42", source="S4", entity_id="travix-cs",
            name="Travix International shares", security_type="common stock",
            issuer_name="Travix International", issuer_record_id="#42",
            issuer_entity_id="travix", isin="NL00TRAVIX01", ticker="TRVX",
        ),
    ]

    return Dataset("figure2-companies", companies), Dataset("figure2-securities", securities)
