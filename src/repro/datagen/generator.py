"""Multi-source synthetic benchmark generation.

The generator turns the procedural seed corpus into the two matching tasks
of the paper — a **companies** dataset and a **securities** dataset — with
ground truth, by:

1. expanding every seed company into per-source record drafts plus one or
   more security drafts (each listed in a subset of the sources),
2. applying per-source *baseline variation* (formatting differences that
   exist even without artifacts),
3. applying a random combination of single-group data artifacts to every
   group, and cross-group acquisition / merger events to a sampled fraction,
4. freezing the drafts into immutable records and wrapping them in
   :class:`~repro.datagen.records.Dataset` objects.

Generation is fully deterministic given the configuration (including its
seed) and linear in the number of groups, as described in Section 3.2.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datagen.artifacts import (
    DEFAULT_COMPANY_ARTIFACTS,
    DEFAULT_SECURITY_ARTIFACTS,
    CreateCorporateAcquisition,
    CreateCorporateMerger,
    DataArtifact,
)
from repro.datagen.config import GenerationConfig
from repro.datagen.drafts import CompanyGroupDraft, SecurityDraft
from repro.datagen.identifiers import make_security_identifiers, make_ticker
from repro.datagen.records import CompanyRecord, Dataset, SecurityRecord
from repro.datagen.seed import SeedCompany, iter_seed_companies


@dataclass
class GeneratedBenchmark:
    """The output of one generation run."""

    companies: Dataset
    securities: Dataset
    #: The frozen drafts, kept for statistics and debugging.
    drafts: list[CompanyGroupDraft]
    config: GenerationConfig


class SyntheticDatasetGenerator:
    """Generates the companies + securities benchmark for one configuration."""

    def __init__(self, config: GenerationConfig | None = None) -> None:
        self.config = config or GenerationConfig()

    # -- public API -----------------------------------------------------------

    def generate(self) -> GeneratedBenchmark:
        """Run the full generation pipeline."""
        rng = random.Random(self.config.seed)
        drafts = [
            self._draft_group(seed_company, rng)
            for seed_company in iter_seed_companies(
                self.config.num_entities,
                seed=self.config.seed,
                description_probability=self.config.description_probability,
            )
        ]
        self._apply_single_group_artifacts(drafts, rng)
        self._apply_cross_group_events(drafts, rng)
        companies, securities = self._freeze(drafts)
        return GeneratedBenchmark(
            companies=companies,
            securities=securities,
            drafts=drafts,
            config=self.config,
        )

    # -- stage 1: drafting -----------------------------------------------------

    def _draft_group(self, seed_company: SeedCompany, rng: random.Random) -> CompanyGroupDraft:
        config = self.config
        entity_id = f"{config.id_prefix}-{seed_company.entity_id}"
        num_sources = rng.randint(
            config.min_sources_per_entity, config.max_sources_per_entity
        )
        sources = sorted(rng.sample(config.source_names, num_sources))

        draft = CompanyGroupDraft(seed=seed_company, entity_id=entity_id)
        for source in sources:
            draft.company_records[source] = self._base_company_attributes(
                seed_company, source, rng
            )

        draft.securities.append(
            self._draft_security(seed_company, entity_id, 0, sources, rng)
        )
        if rng.random() < config.extra_listing_probability:
            draft.securities.append(
                self._draft_security(seed_company, entity_id, 1, sources, rng)
            )
        return draft

    def _base_company_attributes(
        self, seed_company: SeedCompany, source: str, rng: random.Random
    ) -> dict[str, object]:
        """Per-source formatting variation applied to every record."""
        name = seed_company.name
        style = rng.random()
        if style < 0.15:
            name = name.upper()
        elif style < 0.25:
            name = name.replace(" Corporation", " Corp").replace(" Incorporated", " Inc")
        return {
            "name": name,
            "city": seed_company.city,
            "region": seed_company.region,
            "country_code": seed_company.country_code,
            "description": seed_company.description or None,
            "industry": seed_company.industry,
        }

    def _draft_security(
        self,
        seed_company: SeedCompany,
        entity_id: str,
        index: int,
        company_sources: list[str],
        rng: random.Random,
    ) -> SecurityDraft:
        identifiers = make_security_identifiers(rng)
        ticker = make_ticker(rng, seed_company.name)
        security_type = "common stock"
        name = f"{seed_company.name} {security_type}" if index == 0 else (
            f"{seed_company.name} registered shares"
        )
        security = SecurityDraft(
            entity_id=f"{entity_id}-SEC{index}",
            name=name,
            security_type=security_type,
            identifiers=identifiers,
            ticker=ticker,
        )
        # The security is listed in most (but not necessarily all) of the
        # sources carrying the company.
        listed_count = rng.randint(max(1, len(company_sources) - 2), len(company_sources))
        listed = sorted(rng.sample(company_sources, listed_count))
        for source in listed:
            security.records[source] = {
                "name": name,
                "security_type": security_type,
                "issuer_name": seed_company.name,
                "ticker": ticker,
                **identifiers,
            }
        return security

    # -- stage 2: artifacts ------------------------------------------------------

    def _artifact_rate(self, artifact: DataArtifact, default: float, table: dict[str, float]) -> float:
        return table.get(artifact.name, default)

    def _apply_single_group_artifacts(
        self, drafts: list[CompanyGroupDraft], rng: random.Random
    ) -> None:
        for draft in drafts:
            for artifact, default_rate in DEFAULT_COMPANY_ARTIFACTS:
                rate = self._artifact_rate(
                    artifact, default_rate, self.config.company_artifact_rates
                )
                if rng.random() < rate:
                    artifact.apply(draft, rng)
            for artifact, default_rate in DEFAULT_SECURITY_ARTIFACTS:
                rate = self._artifact_rate(
                    artifact, default_rate, self.config.security_artifact_rates
                )
                if rng.random() < rate:
                    artifact.apply(draft, rng)

    def _apply_cross_group_events(
        self, drafts: list[CompanyGroupDraft], rng: random.Random
    ) -> None:
        """Pair up groups for acquisition and merger events (disjointly)."""
        if len(drafts) < 4:
            return
        num_acquisitions = int(len(drafts) * self.config.acquisition_rate / 2)
        num_mergers = int(len(drafts) * self.config.merger_rate / 2)
        needed = 2 * (num_acquisitions + num_mergers)
        if needed == 0:
            return
        needed = min(needed, len(drafts) - len(drafts) % 2)
        chosen = rng.sample(range(len(drafts)), needed)

        acquisition = CreateCorporateAcquisition()
        merger = CreateCorporateMerger()
        cursor = 0
        for _ in range(num_acquisitions):
            if cursor + 1 >= len(chosen):
                break
            acquirer = drafts[chosen[cursor]]
            acquiree = drafts[chosen[cursor + 1]]
            acquisition.apply_pair(acquirer, acquiree, rng)
            cursor += 2
        for _ in range(num_mergers):
            if cursor + 1 >= len(chosen):
                break
            first = drafts[chosen[cursor]]
            second = drafts[chosen[cursor + 1]]
            merger.apply_pair(first, second, rng)
            cursor += 2

    # -- stage 3: freezing ---------------------------------------------------------

    def _freeze(self, drafts: list[CompanyGroupDraft]) -> tuple[Dataset, Dataset]:
        company_records: list[CompanyRecord] = []
        security_records: list[SecurityRecord] = []
        record_counter = 0

        for draft_index, draft in enumerate(drafts):
            # Collect, per source, the ISINs of the draft's securities as that
            # source records them (used by the company ID Overlap blocking).
            isins_by_source: dict[str, list[str]] = {}
            for security in draft.securities:
                for source, attributes in security.records.items():
                    isin = attributes.get("isin")
                    if isin:
                        isins_by_source.setdefault(source, []).append(str(isin))

            company_ids_by_source: dict[str, str] = {}
            for source, attributes in sorted(draft.company_records.items()):
                record_id = f"{self.config.id_prefix}-C{draft_index:06d}-{source}"
                company_ids_by_source[source] = record_id
                company_records.append(
                    CompanyRecord(
                        record_id=record_id,
                        source=source,
                        entity_id=draft.entity_id,
                        name=str(attributes.get("name") or ""),
                        city=attributes.get("city"),
                        region=attributes.get("region"),
                        country_code=attributes.get("country_code"),
                        description=attributes.get("description"),
                        industry=attributes.get("industry"),
                        security_isins=tuple(sorted(isins_by_source.get(source, []))),
                    )
                )
                record_counter += 1

            for security_index, security in enumerate(draft.securities):
                for source, attributes in sorted(security.records.items()):
                    record_id = (
                        f"{self.config.id_prefix}-X{draft_index:06d}"
                        f"-{security_index}-{source}"
                    )
                    security_records.append(
                        SecurityRecord(
                            record_id=record_id,
                            source=source,
                            entity_id=security.entity_id,
                            name=str(attributes.get("name") or ""),
                            security_type=str(attributes.get("security_type") or ""),
                            issuer_name=attributes.get("issuer_name"),
                            issuer_record_id=company_ids_by_source.get(source),
                            issuer_entity_id=draft.entity_id,
                            isin=attributes.get("isin"),
                            cusip=attributes.get("cusip"),
                            sedol=attributes.get("sedol"),
                            valor=attributes.get("valor"),
                            ticker=attributes.get("ticker"),
                        )
                    )
                    record_counter += 1

        prefix = self.config.id_prefix.lower()
        companies = Dataset(f"{prefix}-companies", company_records)
        securities = Dataset(f"{prefix}-securities", security_records)
        return companies, securities


def generate_benchmark(config: GenerationConfig | None = None) -> GeneratedBenchmark:
    """Convenience wrapper: run :class:`SyntheticDatasetGenerator` once."""
    return SyntheticDatasetGenerator(config).generate()
