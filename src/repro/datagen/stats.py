"""Dataset statistics (the quantities reported in Table 1).

Table 1 of the paper summarises each dataset with the number of data
sources, entities, records and ground-truth matches, the average number of
matches per entity, and the share of records carrying a text description.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datagen.records import CompanyRecord, Dataset


@dataclass(frozen=True)
class DatasetStatistics:
    """The Table 1 row for one dataset."""

    name: str
    num_sources: int
    num_entities: int
    num_records: int
    num_matches: int
    avg_matches_per_entity: float
    pct_records_with_description: float | None

    def as_row(self) -> dict[str, object]:
        """Dictionary form used by the reporting module."""
        return {
            "dataset": self.name,
            "# of Data Sources": self.num_sources,
            "# of Entities": self.num_entities,
            "# of Records": self.num_records,
            "# of Matches": self.num_matches,
            "Avg. # of Matches per Entity": round(self.avg_matches_per_entity, 2),
            "% of Records with Text Descriptions": (
                None
                if self.pct_records_with_description is None
                else round(self.pct_records_with_description, 1)
            ),
        }


def dataset_statistics(dataset: Dataset) -> DatasetStatistics:
    """Compute the Table 1 statistics for ``dataset``.

    The match count follows the paper's convention: every unordered pair of
    records belonging to the same entity is one match.  The description
    share is only defined for company-style records (securities carry no
    descriptions, reported as "-" in the paper).
    """
    groups = dataset.entity_groups()
    num_entities = len(groups)
    num_matches = sum(len(ids) * (len(ids) - 1) // 2 for ids in groups.values())
    avg_matches = num_matches / num_entities if num_entities else 0.0

    company_records = [
        record for record in dataset if isinstance(record, CompanyRecord)
    ]
    if company_records:
        with_description = sum(
            1 for record in company_records if record.description
        )
        pct_description: float | None = 100.0 * with_description / len(company_records)
    else:
        pct_description = None

    return DatasetStatistics(
        name=dataset.name,
        num_sources=len(dataset.sources),
        num_entities=num_entities,
        num_records=len(dataset),
        num_matches=num_matches,
        avg_matches_per_entity=avg_matches,
        pct_records_with_description=pct_description,
    )
